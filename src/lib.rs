//! # wirelesshart
//!
//! A from-scratch Rust reproduction of **Remke & Wu, "WirelessHART
//! Modeling and Performance Evaluation" (DSN 2013)**: a hierarchical
//! discrete-time Markov chain model of message delivery in WirelessHART
//! process-control networks, with every substrate it depends on.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`dtmc`] — Markov-chain substrate (sparse stochastic matrices,
//!   transient/absorbing analysis, discrete distributions, DOT export);
//! * [`channel`] — physical layer (OQPSK BER over AWGN, binary symmetric
//!   channel, two-state link model, 16-channel hopping, blacklisting,
//!   pilot estimation);
//! * [`net`] — protocol substrate (topology, routing, TDMA super-frames,
//!   communication schedules, message life cycle, the paper's scenarios);
//! * [`model`] — **the paper's contribution**: the hierarchical path DTMC,
//!   all quality-of-service measures, network evaluation, composition,
//!   failure studies and prediction;
//! * [`sim`] — a slot-level Monte-Carlo simulator used as ground truth;
//! * [`control`] — a networked PID control loop (the paper's future work).
//!
//! # Quickstart
//!
//! The paper's Section V example path:
//!
//! ```
//! use wirelesshart::channel::LinkModel;
//! use wirelesshart::model::{DelayConvention, LinkDynamics, PathModel};
//! use wirelesshart::net::{ReportingInterval, Superframe};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let link = LinkModel::from_availability(0.75, 0.9)?;
//! let mut builder = PathModel::builder();
//! builder
//!     .add_hop(LinkDynamics::steady(link), 2)
//!     .add_hop(LinkDynamics::steady(link), 5)
//!     .add_hop(LinkDynamics::steady(link), 6)
//!     .superframe(Superframe::symmetric(7)?)
//!     .interval(ReportingInterval::new(4)?);
//! let evaluation = builder.build()?.evaluate();
//! assert!((evaluation.reachability() - 0.9624).abs() < 1e-4);
//! assert!(
//!     (evaluation.expected_delay_ms(DelayConvention::Absolute).unwrap() - 190.8).abs() < 0.05
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use whart_channel as channel;
pub use whart_control as control;
pub use whart_dtmc as dtmc;
pub use whart_model as model;
pub use whart_net as net;
pub use whart_sim as sim;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use whart_channel::{EbN0, LinkModel, Modulation, WIRELESSHART_MESSAGE_BITS};
    pub use whart_dtmc::{Dtmc, Pmf, ValueDistribution};
    pub use whart_model::{
        DelayConvention, LinkDynamics, NetworkModel, PathEvaluation, PathModel,
        UtilizationConvention,
    };
    pub use whart_net::{NodeId, Path, ReportingInterval, Schedule, Superframe, Topology};
    pub use whart_sim::{PhyMode, Simulator};
}
