//! `bench-engine` — regenerate `BENCH_engine.json` from a metrics
//! snapshot and gate CI on throughput regressions.
//!
//! ```text
//! bench-engine [--short] [--iterations N] [--warmup N]
//!              [--out <bench.json>] [--check <baseline.json>] [--tolerance <fraction>]
//! ```
//!
//! Runs the engine-throughput groups (serial loop, cold and warm engine
//! drains at 1/2/4/8 workers, plus the profiler-attached `profiled/4`
//! drain) over the 18-scenario acceptance fleet, derives one JSON line
//! per group plus the first-class scaling-ratio rows (`scale/cold/N` vs
//! the serial loop, `scale/warm/N` vs `warm/1`, `scale/profiled/4` vs
//! `warm/4`) from the `whart-obs` snapshot, and — with `--check` —
//! fails (exit 1) when any group's serial-loop-normalized mean grew
//! beyond the tolerance (default 0.25 = 25%), when a scaling ratio
//! drifted beyond it, or when any scale row in the fresh run exceeds
//! its hard ceiling: 1.25 for the parallel-path rows (losing outright
//! to the code it replaces is a regression no baseline can excuse),
//! 1.05 for `scale/profiled/4` (a profiler too costly to leave on
//! defeats its purpose). The self-profile captured during the warm
//! phase is printed to stderr as a frame-attribution table.

use std::process::ExitCode;
use whart_bench::harness::{
    attribution_lines, bench_lines, check_regression, engine_fleet, run_engine_throughput,
    BenchConfig,
};

fn flag_value(args: &[String], flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        Some(i) => args
            .get(i + 1)
            .cloned()
            .map(Some)
            .ok_or_else(|| format!("{flag} needs a value")),
        None => Ok(None),
    }
}

fn run(args: &[String]) -> Result<bool, String> {
    let mut config = if args.iter().any(|a| a == "--short") {
        BenchConfig::short()
    } else {
        BenchConfig::full()
    };
    if let Some(n) = flag_value(args, "--iterations")? {
        config.iterations = n
            .parse()
            .map_err(|_| format!("invalid --iterations '{n}'"))?;
    }
    if let Some(n) = flag_value(args, "--warmup")? {
        config.warmup = n.parse().map_err(|_| format!("invalid --warmup '{n}'"))?;
    }
    if config.iterations == 0 {
        return Err("--iterations must be positive".into());
    }
    let tolerance: f64 = match flag_value(args, "--tolerance")? {
        Some(t) => t
            .parse()
            .map_err(|_| format!("invalid --tolerance '{t}'"))?,
        None => 0.25,
    };

    let out = flag_value(args, "--out")?;
    let check = flag_value(args, "--check")?;
    if let (Some(out), Some(check)) = (&out, &check) {
        if out == check {
            return Err(
                "--out would overwrite the --check baseline before it is read; \
                 write the fresh run elsewhere"
                    .into(),
            );
        }
    }

    let models = engine_fleet();
    let (snapshot, profile) = run_engine_throughput(config, &models);
    let lines = bench_lines(&snapshot, models.len() as u64);
    eprint!("{}", attribution_lines(&profile));
    match out {
        Some(path) => {
            std::fs::write(&path, &lines).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {} groups to {path}", lines.lines().count());
        }
        None => print!("{lines}"),
    }

    if let Some(path) = check {
        let baseline =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let failures = check_regression(&baseline, &lines, tolerance)?;
        if !failures.is_empty() {
            for failure in &failures {
                eprintln!("regression: {failure}");
            }
            return Ok(false);
        }
        eprintln!(
            "no regression vs {path} (tolerance {:.0}%)",
            tolerance * 100.0
        );
    }
    Ok(true)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
