//! Shared builders for the Criterion benchmark suite, plus the
//! snapshot-backed [`harness`] behind the `bench-engine` binary and the
//! CI regression gate.

pub mod harness;

use whart_channel::LinkModel;
use whart_model::{LinkDynamics, NetworkModel, PathModel};
use whart_net::typical::TypicalNetwork;
use whart_net::{ReportingInterval, Superframe};

/// The Section V example path model at `pi = 0.75`.
pub fn section_v_model(is: u32) -> PathModel {
    let link = LinkModel::from_availability(0.75, 0.9).expect("valid");
    let mut b = PathModel::builder();
    b.add_hop(LinkDynamics::steady(link), 2)
        .add_hop(LinkDynamics::steady(link), 5)
        .add_hop(LinkDynamics::steady(link), 6)
        .superframe(Superframe::symmetric(7).expect("valid"))
        .interval(ReportingInterval::new(is).expect("positive"));
    b.build().expect("valid")
}

/// An n-hop chain in an `F_up = f_up` frame.
pub fn chain(hops: u32, f_up: u32, is: u32) -> PathModel {
    let link = LinkModel::from_availability(0.83, 0.9).expect("valid");
    let mut b = PathModel::builder();
    for k in 0..hops as usize {
        b.add_hop(LinkDynamics::steady(link), k);
    }
    b.superframe(Superframe::symmetric(f_up.max(hops)).expect("valid"))
        .interval(ReportingInterval::new(is).expect("positive"));
    b.build().expect("valid")
}

/// The typical network's model under `eta_a`.
pub fn typical_model(availability: f64) -> NetworkModel {
    let net = TypicalNetwork::new(LinkModel::from_availability(availability, 0.9).expect("valid"));
    NetworkModel::from_typical(&net, net.schedule_eta_a(), ReportingInterval::REGULAR)
        .expect("valid")
}

/// The typical network itself.
pub fn typical_network(availability: f64) -> TypicalNetwork {
    TypicalNetwork::new(LinkModel::from_availability(availability, 0.9).expect("valid"))
}
