//! The snapshot-backed engine-throughput harness.
//!
//! Times the acceptance fleet (the typical network at 6 availabilities
//! x 3 reporting intervals) through the batch engine, recording each
//! iteration's wall time into a `whart-obs` latency histogram per
//! benchmark group. `BENCH_engine.json` is then *generated from the
//! [`MetricsSnapshot`]* — the same observability path the engine and
//! solvers report through — instead of a bespoke timing layer, and
//! [`check_regression`] gates CI on it.
//!
//! Groups match the Criterion benchmark of the same name:
//! * `serial-loop` — `NetworkModel::evaluate` per scenario, no sharing;
//! * `cold/{workers}` — a fresh engine per iteration;
//! * `warm/{workers}` — a pre-warmed engine (pure cache traffic);
//! * `profiled/4` — the warm 4-worker drain with a `whart-prof`
//!   profiler attached and a live capture sampling at the default rate,
//!   pinning the facade's observed overhead (gated at
//!   [`PROFILED_CEILING`] of the `warm/4` time).
//!
//! The harness run itself executes under that capture, so alongside the
//! timings it returns a [`whart_prof::Profile`] attributing the warm
//! phase's wall time to engine frames — the attribution table
//! `bench-engine` prints to explain flat warm-scaling rows.

use std::hint::black_box;
use std::sync::Arc;
use whart_channel::LinkModel;
use whart_engine::{Engine, MeasureSet, Scenario};
use whart_json::Json;
use whart_model::NetworkModel;
use whart_net::typical::TypicalNetwork;
use whart_net::ReportingInterval;
use whart_obs::{Metrics, MetricsSnapshot};
use whart_prof::{Profile, Profiler};

const AVAILABILITIES: [f64; 6] = [0.693, 0.774, 0.83, 0.903, 0.948, 0.989];
const INTERVALS: [u32; 3] = [1, 2, 4];
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Worker count of the `profiled/…` group (compared against the same
/// worker count's `warm/…` group).
const PROFILED_WORKERS: usize = 4;

/// The benchmark groups, in the order their lines are emitted.
pub const GROUPS: [&str; 10] = [
    "serial-loop",
    "cold/1",
    "cold/2",
    "cold/4",
    "cold/8",
    "warm/1",
    "warm/2",
    "warm/4",
    "warm/8",
    "profiled/4",
];

/// Histogram-name prefix the harness records under.
const PREFIX: &str = "bench.engine_throughput/";

/// Hard ceiling on every first-class scale row, checked against the
/// current run alone (no baseline involved): a ratio above this means
/// the parallel execution path is slower than its denominator by more
/// than measurement noise allows.
pub const SCALE_CEILING: f64 = 1.25;

/// Hard ceiling on the `scale/profiled/N` row: an attached profiler
/// with a live default-rate capture may cost at most 5% over the same
/// worker count's plain warm drain. The facade's sales pitch is
/// "cheap enough to leave on in production"; this row is that pitch,
/// measured on every CI run.
pub const PROFILED_CEILING: f64 = 1.05;

/// Iteration counts for one harness run.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Timed iterations per group.
    pub iterations: usize,
    /// Untimed warm-up iterations per group.
    pub warmup: usize,
}

impl BenchConfig {
    /// The default full run. One fleet iteration is a few hundred
    /// microseconds, so iterations are cheap — and the scaling-ratio
    /// gates divide two measured means, which doubles their noise: a
    /// single scheduler preemption inside a 5-iteration mean can swing
    /// a ratio past the hard ceiling on an otherwise healthy build.
    pub fn full() -> BenchConfig {
        BenchConfig {
            iterations: 100,
            warmup: 10,
        }
    }

    /// The CI smoke run (`--short`): enough iterations for ratio-stable
    /// means (see [`BenchConfig::full`]), small enough to stay well
    /// under a second.
    pub fn short() -> BenchConfig {
        BenchConfig {
            iterations: 30,
            warmup: 3,
        }
    }
}

/// The acceptance fleet: 18 scenarios, 180 path DTMCs. Models come
/// wrapped in [`Arc`] so every submission bumps a reference count
/// instead of deep-copying the topology.
pub fn engine_fleet() -> Vec<Arc<NetworkModel>> {
    let mut models = Vec::new();
    for &pi in &AVAILABILITIES {
        for &is in &INTERVALS {
            let link = LinkModel::from_availability(pi, 0.9).expect("valid");
            let net = TypicalNetwork::new(link);
            models.push(Arc::new(
                NetworkModel::from_typical(
                    &net,
                    net.schedule_eta_a(),
                    ReportingInterval::new(is).expect("valid"),
                )
                .expect("valid"),
            ));
        }
    }
    models
}

/// The serial baseline produces a bare `NetworkEvaluation`, so the
/// engine scenarios request exactly that (no per-path extraction).
pub fn evaluation_only() -> MeasureSet {
    MeasureSet {
        reachability: false,
        expected_delay: false,
        expected_intervals_to_first_loss: false,
        utilization: false,
        cycle_probabilities: false,
        ..MeasureSet::default()
    }
}

/// Submits every fleet model as an evaluation-only scenario (a cheap
/// `Arc` clone per submission).
pub fn submit_fleet(engine: &mut Engine, models: &[Arc<NetworkModel>]) {
    for (i, model) in models.iter().enumerate() {
        engine.submit(
            Scenario::network(format!("s{i}"), Arc::clone(model)).with_measures(evaluation_only()),
        );
    }
}

fn time_one<F: FnOnce()>(metrics: &Metrics, group: &str, iteration: F) {
    let span = metrics.histogram(&format!("{PREFIX}{group}")).start();
    iteration();
    span.stop();
}

/// Runs every group over `models`, returning the registry snapshot the
/// `BENCH_engine.json` lines are derived from.
///
/// Groups are timed **round-robin**: iteration `k` of every group runs
/// back-to-back before iteration `k+1` of any. The scale rows divide
/// one group's mean by another's, so slow machine-level drift across
/// the run (thermal throttling, a backup job starting) would otherwise
/// land entirely on whichever group happened to run last and surface
/// as a phantom scaling regression. Interleaving spreads that drift
/// evenly over all the groups a ratio relates.
pub fn run_engine_throughput(
    config: BenchConfig,
    models: &[Arc<NetworkModel>],
) -> (MetricsSnapshot, Profile) {
    let metrics = Metrics::new();

    let serial = || {
        for model in models {
            black_box(black_box(model).evaluate().expect("valid"));
        }
    };
    let cold = |workers: usize| {
        let mut engine = Engine::new(workers);
        submit_fleet(&mut engine, models);
        black_box(engine.drain().expect("valid"));
    };

    for _ in 0..config.warmup {
        serial();
        for workers in WORKER_COUNTS {
            cold(workers);
        }
    }
    for _ in 0..config.iterations {
        time_one(&metrics, "serial-loop", serial);
        for workers in WORKER_COUNTS {
            time_one(&metrics, &format!("cold/{workers}"), || cold(workers));
        }
    }

    let mut engines: Vec<(usize, Engine)> = WORKER_COUNTS
        .iter()
        .map(|&workers| {
            let mut engine = Engine::new(workers);
            submit_fleet(&mut engine, models);
            engine.drain().expect("valid");
            (workers, engine)
        })
        .collect();
    // The profiled group: the same warm drain at PROFILED_WORKERS, but
    // with a profiler attached and a live capture sampling at the
    // default rate for the whole warm phase. Only this engine carries
    // the profiler, so the returned profile attributes its drains alone.
    let profiler = Profiler::new();
    let mut profiled_engine = Engine::new(PROFILED_WORKERS);
    profiled_engine.set_profiler(profiler.clone());
    submit_fleet(&mut profiled_engine, models);
    profiled_engine.drain().expect("valid");
    let capture = profiler
        .start_capture(whart_prof::DEFAULT_HZ)
        .expect("enabled profiler starts a capture");

    let warm = |engine: &mut Engine| {
        submit_fleet(engine, models);
        black_box(engine.drain().expect("valid"));
    };
    for _ in 0..config.warmup {
        for (_, engine) in &mut engines {
            warm(engine);
        }
        warm(&mut profiled_engine);
    }
    for _ in 0..config.iterations {
        for (workers, engine) in &mut engines {
            time_one(&metrics, &format!("warm/{workers}"), || warm(engine));
        }
        time_one(&metrics, &format!("profiled/{PROFILED_WORKERS}"), || {
            warm(&mut profiled_engine)
        });
    }

    (metrics.snapshot(), capture.stop())
}

/// Renders the snapshot's harness histograms as `BENCH_engine.json`
/// lines: one compact JSON object per group, in [`GROUPS`] order,
/// followed by the first-class scaling-ratio rows (see `scale_rows`).
pub fn bench_lines(snapshot: &MetricsSnapshot, elements: u64) -> String {
    let mut out = String::new();
    for group in GROUPS {
        let Some(hist) = snapshot.histogram(&format!("{PREFIX}{group}")) else {
            continue;
        };
        let mean = hist.mean().unwrap_or(0.0);
        // Quantile keys are informational: check_regression reads only
        // id + mean_ns, so committed baselines stay valid.
        let quantile = |q: f64| Json::from(hist.quantile(q).unwrap_or(0.0));
        let line = Json::object([
            ("id", Json::from(format!("engine_throughput/{group}"))),
            ("mean_ns", Json::from((mean * 10.0).round() / 10.0)),
            ("p50_ns", quantile(0.5)),
            ("p95_ns", quantile(0.95)),
            ("p99_ns", quantile(0.99)),
            ("elements", Json::from(elements)),
        ]);
        out.push_str(&line.to_compact());
        out.push('\n');
    }
    for (id, ratio, of) in scale_rows(snapshot) {
        let line = Json::object([
            ("id", Json::from(id)),
            ("ratio", Json::from((ratio * 10_000.0).round() / 10_000.0)),
            ("of", Json::from(of)),
        ]);
        out.push_str(&line.to_compact());
        out.push('\n');
    }
    out
}

/// Renders the harness's self-profile as a plain-text attribution
/// table: capture parameters, the engine-worker share of all samples,
/// then each frame's inclusive sample share, largest first. This is
/// what `bench-engine` prints to explain a moved warm-scaling row —
/// the flat rows say *that* the drain slowed down, the table says
/// *where* the sampled time went.
pub fn attribution_lines(profile: &Profile) -> String {
    let total = profile.total_samples();
    let mut out = format!(
        "profiled/{PROFILED_WORKERS} attribution: {total} samples at {} Hz over {:.0} ms\n",
        profile.hz,
        profile.duration.as_secs_f64() * 1e3
    );
    if total == 0 {
        out.push_str("  (no samples: the capture never caught a worker mid-drain)\n");
        return out;
    }
    let pct = |count: u64| count as f64 * 100.0 / total as f64;
    out.push_str(&format!(
        "  engine workers (whart-worker-*): {} samples ({:.1}%)\n",
        profile.thread_samples("whart-worker-"),
        pct(profile.thread_samples("whart-worker-"))
    ));
    let mut inclusive: Vec<(&str, u64)> = Vec::new();
    for thread in &profile.threads {
        for (stack, count) in &thread.stacks {
            let mut seen: Vec<&str> = Vec::with_capacity(stack.len());
            for frame in stack {
                if !seen.contains(&frame.as_str()) {
                    seen.push(frame);
                    match inclusive.iter_mut().find(|(f, _)| *f == frame) {
                        Some((_, c)) => *c += count,
                        None => inclusive.push((frame, *count)),
                    }
                }
            }
        }
    }
    inclusive.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    for (frame, count) in inclusive {
        out.push_str(&format!(
            "  {frame}: {count} samples ({:.1}%)\n",
            pct(count)
        ));
    }
    out
}

/// The per-thread-count scaling ratios as first-class rows:
///
/// * `scale/cold/{N}` — the cold N-worker drain over the serial loop.
///   Below 1.0 the engine beats evaluating the fleet serially; the
///   committed baseline pins that headroom per worker count.
/// * `scale/warm/{N}` — the warm N-worker drain over `warm/1` (pure
///   cache traffic, so this isolates pool + shard contention with zero
///   solve work to hide it).
/// * `scale/profiled/{N}` — the profiled warm drain over the same
///   worker count's plain `warm/{N}` drain: the profiler facade's
///   overhead in isolation, gated at [`PROFILED_CEILING`].
///
/// Ratios divide the groups' **minimum** iteration times, not their
/// means: preemption and scheduler noise only ever add time, so the
/// minimum over the iterations is the repeatable cost of the work
/// itself. A mean-based ratio of two ~100µs drains can swing 2x from
/// one multi-millisecond preemption; the min-based ratio holds steady
/// on a loaded machine.
///
/// Returns `(id, ratio, denominator)` triples in emission order.
fn scale_rows(snapshot: &MetricsSnapshot) -> Vec<(String, f64, &'static str)> {
    let best = |group: &str| {
        snapshot
            .histogram(&format!("{PREFIX}{group}"))
            .map(|h| h.min as f64)
            .filter(|m| *m > 0.0)
    };
    let mut rows = Vec::new();
    if let Some(serial) = best("serial-loop") {
        for workers in WORKER_COUNTS {
            if let Some(cold) = best(&format!("cold/{workers}")) {
                rows.push((
                    format!("engine_throughput/scale/cold/{workers}"),
                    cold / serial,
                    "serial-loop",
                ));
            }
        }
    }
    if let Some(warm_one) = best("warm/1") {
        for workers in WORKER_COUNTS {
            if workers == 1 {
                continue;
            }
            if let Some(warm) = best(&format!("warm/{workers}")) {
                rows.push((
                    format!("engine_throughput/scale/warm/{workers}"),
                    warm / warm_one,
                    "warm/1",
                ));
            }
        }
    }
    if let (Some(profiled), Some(warm)) = (
        best(&format!("profiled/{PROFILED_WORKERS}")),
        best(&format!("warm/{PROFILED_WORKERS}")),
    ) {
        rows.push((
            format!("engine_throughput/scale/profiled/{PROFILED_WORKERS}"),
            profiled / warm,
            "warm/4",
        ));
    }
    rows
}

/// Parsed `BENCH_engine.json`: `(mean rows, scale-ratio rows)`.
type BenchRows = (Vec<(String, f64)>, Vec<(String, f64)>);

fn parse_bench_lines(text: &str) -> Result<BenchRows, String> {
    let mut means = Vec::new();
    let mut scales = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = Json::parse(line).map_err(|e| format!("bench line {}: {e}", i + 1))?;
        let id = value["id"]
            .as_str()
            .ok_or_else(|| format!("bench line {}: missing 'id'", i + 1))?
            .to_string();
        if id.contains("/scale/") {
            let ratio = value["ratio"]
                .as_f64()
                .ok_or_else(|| format!("bench line {}: scale row missing 'ratio'", i + 1))?;
            scales.push((id, ratio));
        } else {
            let mean = value["mean_ns"]
                .as_f64()
                .ok_or_else(|| format!("bench line {}: missing 'mean_ns'", i + 1))?;
            means.push((id, mean));
        }
    }
    Ok((means, scales))
}

/// Compares `current` bench lines against `baseline`, flagging groups
/// whose mean grew by more than `tolerance` (0.25 = 25%).
///
/// Two gates run over the same lines:
///
/// 1. **Per-group means**, normalized by the same file's
///    `engine_throughput/serial-loop` mean, so the gate compares the
///    engine's *speedup over the serial loop on the same machine* — a
///    faster or slower CI runner shifts both means together and cancels
///    out. The serial-loop group itself is the calibration and is never
///    flagged.
/// 2. **Per-thread-count scaling ratios**: within each `cold`/`warm`
///    family, every multi-worker mean is divided by the same file's
///    single-worker mean (`warm/8` vs `warm/1`, and so on). This
///    isolates how much adding threads still pays off — a contention
///    regression can leave every serial-normalized mean inside the
///    tolerance while the 8-worker drain quietly collapses toward the
///    1-worker time, and only the scaling ratio moves.
///
/// 3. **First-class scale rows** (`scale/cold/N`, `scale/warm/N`): the
///    current run's ratios must stay under a hard ceiling of
///    [`SCALE_CEILING`] regardless of the baseline — a cold engine
///    drain that costs more than 1.25x the serial loop, or a warm
///    N-worker drain more than 1.25x the warm 1-worker drain, means
///    the parallel path is actively losing to the code it replaces.
///    `scale/profiled/N` rows use the tighter [`PROFILED_CEILING`]
///    instead: an attached profiler must stay within 5% of the plain
///    warm drain or it is too expensive to leave on.
///    When the baseline carries scale rows too, each one additionally
///    gates drift at `tolerance`, and a scale row missing from the
///    current run is a failure.
///
/// Returns one message per regression; empty means pass.
///
/// # Errors
///
/// Malformed bench lines, or a side missing the serial-loop group.
pub fn check_regression(
    baseline: &str,
    current: &str,
    tolerance: f64,
) -> Result<Vec<String>, String> {
    let serial = "engine_throughput/serial-loop";
    let (base, base_scales) = parse_bench_lines(baseline)?;
    let (cur, cur_scales) = parse_bench_lines(current)?;
    let find = |entries: &[(String, f64)], id: &str| {
        entries.iter().find(|(e, _)| e == id).map(|(_, m)| *m)
    };
    let base_serial = find(&base, serial).ok_or("baseline has no serial-loop mean")?;
    let cur_serial = find(&cur, serial).ok_or("current run has no serial-loop mean")?;
    if base_serial <= 0.0 || cur_serial <= 0.0 {
        return Err("serial-loop means must be positive".into());
    }
    let mut failures = Vec::new();
    for (id, base_mean) in &base {
        if id == serial || *base_mean <= 0.0 {
            continue;
        }
        let Some(cur_mean) = find(&cur, id) else {
            failures.push(format!("{id}: missing from the current run"));
            continue;
        };
        let ratio = (cur_mean / cur_serial) / (base_mean / base_serial);
        if ratio > 1.0 + tolerance {
            failures.push(format!(
                "{id}: normalized mean grew {:.1}% (> {:.0}% tolerance; \
                 baseline {base_mean:.0} ns, current {cur_mean:.0} ns)",
                (ratio - 1.0) * 100.0,
                tolerance * 100.0,
            ));
        }
    }
    for family in ["cold", "warm"] {
        let one = format!("engine_throughput/{family}/1");
        let (Some(base_one), Some(cur_one)) = (find(&base, &one), find(&cur, &one)) else {
            continue;
        };
        if base_one <= 0.0 || cur_one <= 0.0 {
            continue;
        }
        let prefix = format!("engine_throughput/{family}/");
        for (id, base_mean) in &base {
            let Some(workers) = id.strip_prefix(&prefix) else {
                continue;
            };
            if workers == "1" || *base_mean <= 0.0 {
                continue;
            }
            // A group missing from the current run was already flagged
            // by the per-group pass.
            let Some(cur_mean) = find(&cur, id) else {
                continue;
            };
            let base_scaling = base_mean / base_one;
            let cur_scaling = cur_mean / cur_one;
            let ratio = cur_scaling / base_scaling;
            if ratio > 1.0 + tolerance {
                failures.push(format!(
                    "{id}: scaling ratio vs {family}/1 grew {:.1}% \
                     (> {:.0}% tolerance; baseline {base_scaling:.3}x, \
                     current {cur_scaling:.3}x of the {family}/1 mean)",
                    (ratio - 1.0) * 100.0,
                    tolerance * 100.0,
                ));
            }
        }
    }
    for (id, ratio) in &cur_scales {
        let ceiling = if id.contains("/scale/profiled/") {
            PROFILED_CEILING
        } else {
            SCALE_CEILING
        };
        if *ratio > ceiling {
            failures.push(format!(
                "{id}: ratio {ratio:.3} exceeds the hard ceiling {ceiling} \
                 (the parallel path must not lose to its denominator)"
            ));
        }
    }
    for (id, base_ratio) in &base_scales {
        if *base_ratio <= 0.0 {
            continue;
        }
        let Some((_, cur_ratio)) = cur_scales.iter().find(|(c, _)| c == id) else {
            failures.push(format!("{id}: scale row missing from the current run"));
            continue;
        };
        let drift = cur_ratio / base_ratio;
        if drift > 1.0 + tolerance {
            failures.push(format!(
                "{id}: scale ratio grew {:.1}% (> {:.0}% tolerance; \
                 baseline {base_ratio:.3}, current {cur_ratio:.3})",
                (drift - 1.0) * 100.0,
                tolerance * 100.0,
            ));
        }
    }
    Ok(failures)
}

#[cfg(test)]
mod tests {
    use super::*;
    use whart_net::ReportingInterval;

    fn tiny_fleet() -> Vec<Arc<NetworkModel>> {
        let link = LinkModel::from_availability(0.83, 0.9).expect("valid");
        let net = TypicalNetwork::new(link);
        vec![Arc::new(
            NetworkModel::from_typical(&net, net.schedule_eta_a(), ReportingInterval::REGULAR)
                .expect("valid"),
        )]
    }

    #[test]
    fn harness_emits_one_line_per_group() {
        let config = BenchConfig {
            iterations: 1,
            warmup: 0,
        };
        let (snapshot, profile) = run_engine_throughput(config, &tiny_fleet());
        let lines = bench_lines(&snapshot, 1);
        // 10 mean rows plus 8 scale rows: scale/cold/{1,2,4,8},
        // scale/warm/{2,4,8} and scale/profiled/4.
        assert_eq!(lines.lines().count(), GROUPS.len() + 8);
        for (line, group) in lines.lines().zip(GROUPS) {
            let value = Json::parse(line).unwrap();
            assert_eq!(
                value["id"].as_str().unwrap(),
                format!("engine_throughput/{group}")
            );
            assert!(value["mean_ns"].as_f64().unwrap() > 0.0);
            // With a single iteration the quantiles collapse onto that
            // one observation's min==max.
            let p50 = value["p50_ns"].as_f64().unwrap();
            let p99 = value["p99_ns"].as_f64().unwrap();
            assert!(p50 > 0.0 && p99 >= p50, "p50={p50} p99={p99}");
            assert_eq!(value["elements"].as_f64().unwrap(), 1.0);
        }
        // Every group histogram holds exactly the timed iterations.
        for group in GROUPS {
            let hist = snapshot.histogram(&format!("{PREFIX}{group}")).unwrap();
            assert_eq!(hist.count, 1, "{group}");
        }
        // The scale rows follow the mean rows, carry a positive ratio
        // and name their denominator.
        let scale_lines: Vec<&str> = lines.lines().skip(GROUPS.len()).collect();
        let expected_ids = [
            "scale/cold/1",
            "scale/cold/2",
            "scale/cold/4",
            "scale/cold/8",
            "scale/warm/2",
            "scale/warm/4",
            "scale/warm/8",
            "scale/profiled/4",
        ];
        for (line, id) in scale_lines.iter().zip(expected_ids) {
            let value = Json::parse(line).unwrap();
            assert_eq!(
                value["id"].as_str().unwrap(),
                format!("engine_throughput/{id}")
            );
            assert!(value["ratio"].as_f64().unwrap() > 0.0, "{line}");
            let of = if id.starts_with("scale/cold") {
                "serial-loop"
            } else if id.starts_with("scale/profiled") {
                "warm/4"
            } else {
                "warm/1"
            };
            assert_eq!(value["of"].as_str().unwrap(), of, "{line}");
        }
        // The self-profile renders an attribution table whether or not
        // this single iteration happened to land under a sampler tick.
        let attribution = attribution_lines(&profile);
        assert!(
            attribution.starts_with("profiled/4 attribution:"),
            "{attribution}"
        );
    }

    #[test]
    fn regression_check_is_normalized_by_the_serial_loop() {
        let baseline = "\
{\"id\":\"engine_throughput/serial-loop\",\"mean_ns\":1000.0,\"elements\":18}\n\
{\"id\":\"engine_throughput/cold/2\",\"mean_ns\":500.0,\"elements\":18}\n";
        // Twice as slow overall but the same *relative* cost: pass.
        let same_ratio = "\
{\"id\":\"engine_throughput/serial-loop\",\"mean_ns\":2000.0,\"elements\":18}\n\
{\"id\":\"engine_throughput/cold/2\",\"mean_ns\":1000.0,\"elements\":18}\n";
        assert!(check_regression(baseline, same_ratio, 0.25)
            .unwrap()
            .is_empty());
        // The engine lost its edge relative to the serial loop: fail.
        let regressed = "\
{\"id\":\"engine_throughput/serial-loop\",\"mean_ns\":1000.0,\"elements\":18}\n\
{\"id\":\"engine_throughput/cold/2\",\"mean_ns\":700.0,\"elements\":18}\n";
        let failures = check_regression(baseline, regressed, 0.25).unwrap();
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("cold/2"), "{failures:?}");
        // A wider tolerance accepts the same drift.
        assert!(check_regression(baseline, regressed, 0.5)
            .unwrap()
            .is_empty());
        // A group missing from the current run is a failure, not a skip.
        let missing = "\
{\"id\":\"engine_throughput/serial-loop\",\"mean_ns\":1000.0,\"elements\":18}\n";
        let failures = check_regression(baseline, missing, 0.25).unwrap();
        assert!(failures[0].contains("missing"), "{failures:?}");
        // Malformed inputs are errors, not passes.
        assert!(check_regression("nonsense", baseline, 0.25).is_err());
        assert!(check_regression(missing, "{\"id\":\"x\"}", 0.25).is_err());
    }

    #[test]
    fn scaling_ratio_gate_catches_contention_the_mean_gate_misses() {
        let baseline = "\
{\"id\":\"engine_throughput/serial-loop\",\"mean_ns\":1000.0,\"elements\":18}\n\
{\"id\":\"engine_throughput/warm/1\",\"mean_ns\":400.0,\"elements\":18}\n\
{\"id\":\"engine_throughput/warm/8\",\"mean_ns\":100.0,\"elements\":18}\n";
        // warm/8 stays within the per-group tolerance (1.2x normalized)
        // but warm/1 got faster, so the 8-thread speedup collapsed from
        // 4.0x to 2.5x — only the scaling gate sees it.
        let contended = "\
{\"id\":\"engine_throughput/serial-loop\",\"mean_ns\":1000.0,\"elements\":18}\n\
{\"id\":\"engine_throughput/warm/1\",\"mean_ns\":300.0,\"elements\":18}\n\
{\"id\":\"engine_throughput/warm/8\",\"mean_ns\":120.0,\"elements\":18}\n";
        let failures = check_regression(baseline, contended, 0.25).unwrap();
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("warm/8"), "{failures:?}");
        assert!(failures[0].contains("scaling ratio"), "{failures:?}");
        // Proportional slowdowns keep every ratio and stay green.
        let uniform = "\
{\"id\":\"engine_throughput/serial-loop\",\"mean_ns\":3000.0,\"elements\":18}\n\
{\"id\":\"engine_throughput/warm/1\",\"mean_ns\":1200.0,\"elements\":18}\n\
{\"id\":\"engine_throughput/warm/8\",\"mean_ns\":300.0,\"elements\":18}\n";
        assert!(check_regression(baseline, uniform, 0.25)
            .unwrap()
            .is_empty());
        // Without a single-worker anchor the scaling gate stands down
        // instead of erroring out (the per-group gate still ran).
        let no_anchor = "\
{\"id\":\"engine_throughput/serial-loop\",\"mean_ns\":1000.0,\"elements\":18}\n\
{\"id\":\"engine_throughput/warm/8\",\"mean_ns\":100.0,\"elements\":18}\n";
        assert!(check_regression(no_anchor, no_anchor, 0.25)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn scale_rows_are_gated_by_a_hard_ceiling_and_baseline_drift() {
        let means = "\
{\"id\":\"engine_throughput/serial-loop\",\"mean_ns\":1000.0,\"elements\":18}\n";
        // The pre-refactor pool's measured single-core ratios: a cold
        // 8-worker drain 2.23x the serial loop, a warm 8-worker drain
        // 1.57x the warm 1-worker drain. Both must fail the hard
        // ceiling even when the baseline carries the same bad numbers.
        let broken = format!(
            "{means}\
{{\"id\":\"engine_throughput/scale/cold/8\",\"ratio\":2.23,\"of\":\"serial-loop\"}}\n\
{{\"id\":\"engine_throughput/scale/warm/8\",\"ratio\":1.57,\"of\":\"warm/1\"}}\n"
        );
        let failures = check_regression(&broken, &broken, 0.25).unwrap();
        assert_eq!(failures.len(), 2, "{failures:?}");
        assert!(failures[0].contains("scale/cold/8"), "{failures:?}");
        assert!(failures[0].contains("hard ceiling"), "{failures:?}");
        assert!(failures[1].contains("scale/warm/8"), "{failures:?}");

        // Healthy ratios self-check clean.
        let healthy = format!(
            "{means}\
{{\"id\":\"engine_throughput/scale/cold/8\",\"ratio\":0.55,\"of\":\"serial-loop\"}}\n\
{{\"id\":\"engine_throughput/scale/warm/8\",\"ratio\":1.02,\"of\":\"warm/1\"}}\n"
        );
        assert!(check_regression(&healthy, &healthy, 0.25)
            .unwrap()
            .is_empty());

        // Drift against the baseline is flagged even under the ceiling.
        let drifted = format!(
            "{means}\
{{\"id\":\"engine_throughput/scale/cold/8\",\"ratio\":0.80,\"of\":\"serial-loop\"}}\n\
{{\"id\":\"engine_throughput/scale/warm/8\",\"ratio\":1.02,\"of\":\"warm/1\"}}\n"
        );
        let failures = check_regression(&healthy, &drifted, 0.25).unwrap();
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("scale/cold/8"), "{failures:?}");
        assert!(failures[0].contains("grew"), "{failures:?}");

        // A scale row the baseline pins cannot silently vanish.
        let failures = check_regression(&healthy, means, 0.25).unwrap();
        assert_eq!(failures.len(), 2, "{failures:?}");
        assert!(
            failures.iter().all(|f| f.contains("missing")),
            "{failures:?}"
        );

        // A malformed scale row is an error, not a pass.
        let bad = "{\"id\":\"engine_throughput/scale/cold/8\",\"mean_ns\":1.0}";
        assert!(check_regression(&healthy, bad, 0.25).is_err());
    }

    #[test]
    fn profiled_scale_row_uses_the_tighter_ceiling() {
        let means = "\
{\"id\":\"engine_throughput/serial-loop\",\"mean_ns\":1000.0,\"elements\":18}\n";
        // 1.08x would sail under the general 1.25 ceiling, but a
        // profiler costing 8% over the plain warm drain breaks the
        // leave-it-on contract.
        let costly = format!(
            "{means}\
{{\"id\":\"engine_throughput/scale/profiled/4\",\"ratio\":1.08,\"of\":\"warm/4\"}}\n"
        );
        let failures = check_regression(&costly, &costly, 0.25).unwrap();
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("scale/profiled/4"), "{failures:?}");
        assert!(failures[0].contains("1.05"), "{failures:?}");
        // Under the profiled ceiling: clean.
        let cheap = format!(
            "{means}\
{{\"id\":\"engine_throughput/scale/profiled/4\",\"ratio\":1.02,\"of\":\"warm/4\"}}\n"
        );
        assert!(check_regression(&cheap, &cheap, 0.25).unwrap().is_empty());
    }

    #[test]
    fn committed_baseline_parses_and_checks_against_itself() {
        let baseline = include_str!("../../../BENCH_engine.json");
        let failures = check_regression(baseline, baseline, 0.25).unwrap();
        assert!(failures.is_empty(), "{failures:?}");
    }
}
