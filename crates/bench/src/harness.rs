//! The snapshot-backed engine-throughput harness.
//!
//! Times the acceptance fleet (the typical network at 6 availabilities
//! x 3 reporting intervals) through the batch engine, recording each
//! iteration's wall time into a `whart-obs` latency histogram per
//! benchmark group. `BENCH_engine.json` is then *generated from the
//! [`MetricsSnapshot`]* — the same observability path the engine and
//! solvers report through — instead of a bespoke timing layer, and
//! [`check_regression`] gates CI on it.
//!
//! Groups match the Criterion benchmark of the same name:
//! * `serial-loop` — `NetworkModel::evaluate` per scenario, no sharing;
//! * `cold/{workers}` — a fresh engine per iteration;
//! * `warm/{workers}` — a pre-warmed engine (pure cache traffic).

use std::hint::black_box;
use whart_channel::LinkModel;
use whart_engine::{Engine, MeasureSet, Scenario};
use whart_json::Json;
use whart_model::NetworkModel;
use whart_net::typical::TypicalNetwork;
use whart_net::ReportingInterval;
use whart_obs::{Metrics, MetricsSnapshot};

const AVAILABILITIES: [f64; 6] = [0.693, 0.774, 0.83, 0.903, 0.948, 0.989];
const INTERVALS: [u32; 3] = [1, 2, 4];
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The benchmark groups, in the order their lines are emitted.
pub const GROUPS: [&str; 9] = [
    "serial-loop",
    "cold/1",
    "cold/2",
    "cold/4",
    "cold/8",
    "warm/1",
    "warm/2",
    "warm/4",
    "warm/8",
];

/// Histogram-name prefix the harness records under.
const PREFIX: &str = "bench.engine_throughput/";

/// Iteration counts for one harness run.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Timed iterations per group.
    pub iterations: usize,
    /// Untimed warm-up iterations per group.
    pub warmup: usize,
}

impl BenchConfig {
    /// The default full run.
    pub fn full() -> BenchConfig {
        BenchConfig {
            iterations: 20,
            warmup: 3,
        }
    }

    /// The CI smoke run (`--short`): enough iterations for a stable
    /// mean, small enough to stay in the seconds range.
    pub fn short() -> BenchConfig {
        BenchConfig {
            iterations: 5,
            warmup: 1,
        }
    }
}

/// The acceptance fleet: 18 scenarios, 180 path DTMCs.
pub fn engine_fleet() -> Vec<NetworkModel> {
    let mut models = Vec::new();
    for &pi in &AVAILABILITIES {
        for &is in &INTERVALS {
            let link = LinkModel::from_availability(pi, 0.9).expect("valid");
            let net = TypicalNetwork::new(link);
            models.push(
                NetworkModel::from_typical(
                    &net,
                    net.schedule_eta_a(),
                    ReportingInterval::new(is).expect("valid"),
                )
                .expect("valid"),
            );
        }
    }
    models
}

/// The serial baseline produces a bare `NetworkEvaluation`, so the
/// engine scenarios request exactly that (no per-path extraction).
pub fn evaluation_only() -> MeasureSet {
    MeasureSet {
        reachability: false,
        expected_delay: false,
        expected_intervals_to_first_loss: false,
        utilization: false,
        cycle_probabilities: false,
        ..MeasureSet::default()
    }
}

/// Submits every fleet model as an evaluation-only scenario.
pub fn submit_fleet(engine: &mut Engine, models: &[NetworkModel]) {
    for (i, model) in models.iter().enumerate() {
        engine.submit(
            Scenario::network(format!("s{i}"), model.clone()).with_measures(evaluation_only()),
        );
    }
}

fn measure<F: FnMut()>(metrics: &Metrics, group: &str, config: BenchConfig, mut iteration: F) {
    for _ in 0..config.warmup {
        iteration();
    }
    let hist = metrics.histogram(&format!("{PREFIX}{group}"));
    for _ in 0..config.iterations {
        let span = hist.start();
        iteration();
        span.stop();
    }
}

/// Runs every group over `models`, returning the registry snapshot the
/// `BENCH_engine.json` lines are derived from.
pub fn run_engine_throughput(config: BenchConfig, models: &[NetworkModel]) -> MetricsSnapshot {
    let metrics = Metrics::new();

    measure(&metrics, "serial-loop", config, || {
        for model in models {
            black_box(black_box(model).evaluate().expect("valid"));
        }
    });

    for workers in WORKER_COUNTS {
        measure(&metrics, &format!("cold/{workers}"), config, || {
            let mut engine = Engine::new(workers);
            submit_fleet(&mut engine, models);
            black_box(engine.drain().expect("valid"));
        });
    }

    for workers in WORKER_COUNTS {
        let mut engine = Engine::new(workers);
        submit_fleet(&mut engine, models);
        engine.drain().expect("valid");
        measure(&metrics, &format!("warm/{workers}"), config, || {
            submit_fleet(&mut engine, models);
            black_box(engine.drain().expect("valid"));
        });
    }

    metrics.snapshot()
}

/// Renders the snapshot's harness histograms as `BENCH_engine.json`
/// lines (one compact JSON object per group, in [`GROUPS`] order).
pub fn bench_lines(snapshot: &MetricsSnapshot, elements: u64) -> String {
    let mut out = String::new();
    for group in GROUPS {
        let Some(hist) = snapshot.histogram(&format!("{PREFIX}{group}")) else {
            continue;
        };
        let mean = hist.mean().unwrap_or(0.0);
        // Quantile keys are informational: check_regression reads only
        // id + mean_ns, so committed baselines stay valid.
        let quantile = |q: f64| Json::from(hist.quantile(q).unwrap_or(0.0));
        let line = Json::object([
            ("id", Json::from(format!("engine_throughput/{group}"))),
            ("mean_ns", Json::from((mean * 10.0).round() / 10.0)),
            ("p50_ns", quantile(0.5)),
            ("p95_ns", quantile(0.95)),
            ("p99_ns", quantile(0.99)),
            ("elements", Json::from(elements)),
        ]);
        out.push_str(&line.to_compact());
        out.push('\n');
    }
    out
}

fn parse_bench_lines(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut entries = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = Json::parse(line).map_err(|e| format!("bench line {}: {e}", i + 1))?;
        let id = value["id"]
            .as_str()
            .ok_or_else(|| format!("bench line {}: missing 'id'", i + 1))?
            .to_string();
        let mean = value["mean_ns"]
            .as_f64()
            .ok_or_else(|| format!("bench line {}: missing 'mean_ns'", i + 1))?;
        entries.push((id, mean));
    }
    Ok(entries)
}

/// Compares `current` bench lines against `baseline`, flagging groups
/// whose mean grew by more than `tolerance` (0.25 = 25%).
///
/// Two gates run over the same lines:
///
/// 1. **Per-group means**, normalized by the same file's
///    `engine_throughput/serial-loop` mean, so the gate compares the
///    engine's *speedup over the serial loop on the same machine* — a
///    faster or slower CI runner shifts both means together and cancels
///    out. The serial-loop group itself is the calibration and is never
///    flagged.
/// 2. **Per-thread-count scaling ratios**: within each `cold`/`warm`
///    family, every multi-worker mean is divided by the same file's
///    single-worker mean (`warm/8` vs `warm/1`, and so on). This
///    isolates how much adding threads still pays off — a contention
///    regression can leave every serial-normalized mean inside the
///    tolerance while the 8-worker drain quietly collapses toward the
///    1-worker time, and only the scaling ratio moves.
///
/// Returns one message per regression; empty means pass.
///
/// # Errors
///
/// Malformed bench lines, or a side missing the serial-loop group.
pub fn check_regression(
    baseline: &str,
    current: &str,
    tolerance: f64,
) -> Result<Vec<String>, String> {
    let serial = "engine_throughput/serial-loop";
    let base = parse_bench_lines(baseline)?;
    let cur = parse_bench_lines(current)?;
    let find = |entries: &[(String, f64)], id: &str| {
        entries.iter().find(|(e, _)| e == id).map(|(_, m)| *m)
    };
    let base_serial = find(&base, serial).ok_or("baseline has no serial-loop mean")?;
    let cur_serial = find(&cur, serial).ok_or("current run has no serial-loop mean")?;
    if base_serial <= 0.0 || cur_serial <= 0.0 {
        return Err("serial-loop means must be positive".into());
    }
    let mut failures = Vec::new();
    for (id, base_mean) in &base {
        if id == serial || *base_mean <= 0.0 {
            continue;
        }
        let Some(cur_mean) = find(&cur, id) else {
            failures.push(format!("{id}: missing from the current run"));
            continue;
        };
        let ratio = (cur_mean / cur_serial) / (base_mean / base_serial);
        if ratio > 1.0 + tolerance {
            failures.push(format!(
                "{id}: normalized mean grew {:.1}% (> {:.0}% tolerance; \
                 baseline {base_mean:.0} ns, current {cur_mean:.0} ns)",
                (ratio - 1.0) * 100.0,
                tolerance * 100.0,
            ));
        }
    }
    for family in ["cold", "warm"] {
        let one = format!("engine_throughput/{family}/1");
        let (Some(base_one), Some(cur_one)) = (find(&base, &one), find(&cur, &one)) else {
            continue;
        };
        if base_one <= 0.0 || cur_one <= 0.0 {
            continue;
        }
        let prefix = format!("engine_throughput/{family}/");
        for (id, base_mean) in &base {
            let Some(workers) = id.strip_prefix(&prefix) else {
                continue;
            };
            if workers == "1" || *base_mean <= 0.0 {
                continue;
            }
            // A group missing from the current run was already flagged
            // by the per-group pass.
            let Some(cur_mean) = find(&cur, id) else {
                continue;
            };
            let base_scaling = base_mean / base_one;
            let cur_scaling = cur_mean / cur_one;
            let ratio = cur_scaling / base_scaling;
            if ratio > 1.0 + tolerance {
                failures.push(format!(
                    "{id}: scaling ratio vs {family}/1 grew {:.1}% \
                     (> {:.0}% tolerance; baseline {base_scaling:.3}x, \
                     current {cur_scaling:.3}x of the {family}/1 mean)",
                    (ratio - 1.0) * 100.0,
                    tolerance * 100.0,
                ));
            }
        }
    }
    Ok(failures)
}

#[cfg(test)]
mod tests {
    use super::*;
    use whart_net::ReportingInterval;

    fn tiny_fleet() -> Vec<NetworkModel> {
        let link = LinkModel::from_availability(0.83, 0.9).expect("valid");
        let net = TypicalNetwork::new(link);
        vec![
            NetworkModel::from_typical(&net, net.schedule_eta_a(), ReportingInterval::REGULAR)
                .expect("valid"),
        ]
    }

    #[test]
    fn harness_emits_one_line_per_group() {
        let config = BenchConfig {
            iterations: 1,
            warmup: 0,
        };
        let snapshot = run_engine_throughput(config, &tiny_fleet());
        let lines = bench_lines(&snapshot, 1);
        assert_eq!(lines.lines().count(), GROUPS.len());
        for (line, group) in lines.lines().zip(GROUPS) {
            let value = Json::parse(line).unwrap();
            assert_eq!(
                value["id"].as_str().unwrap(),
                format!("engine_throughput/{group}")
            );
            assert!(value["mean_ns"].as_f64().unwrap() > 0.0);
            // With a single iteration the quantiles collapse onto that
            // one observation's min==max.
            let p50 = value["p50_ns"].as_f64().unwrap();
            let p99 = value["p99_ns"].as_f64().unwrap();
            assert!(p50 > 0.0 && p99 >= p50, "p50={p50} p99={p99}");
            assert_eq!(value["elements"].as_f64().unwrap(), 1.0);
        }
        // Every group histogram holds exactly the timed iterations.
        for group in GROUPS {
            let hist = snapshot.histogram(&format!("{PREFIX}{group}")).unwrap();
            assert_eq!(hist.count, 1, "{group}");
        }
    }

    #[test]
    fn regression_check_is_normalized_by_the_serial_loop() {
        let baseline = "\
{\"id\":\"engine_throughput/serial-loop\",\"mean_ns\":1000.0,\"elements\":18}\n\
{\"id\":\"engine_throughput/cold/2\",\"mean_ns\":500.0,\"elements\":18}\n";
        // Twice as slow overall but the same *relative* cost: pass.
        let same_ratio = "\
{\"id\":\"engine_throughput/serial-loop\",\"mean_ns\":2000.0,\"elements\":18}\n\
{\"id\":\"engine_throughput/cold/2\",\"mean_ns\":1000.0,\"elements\":18}\n";
        assert!(check_regression(baseline, same_ratio, 0.25)
            .unwrap()
            .is_empty());
        // The engine lost its edge relative to the serial loop: fail.
        let regressed = "\
{\"id\":\"engine_throughput/serial-loop\",\"mean_ns\":1000.0,\"elements\":18}\n\
{\"id\":\"engine_throughput/cold/2\",\"mean_ns\":700.0,\"elements\":18}\n";
        let failures = check_regression(baseline, regressed, 0.25).unwrap();
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("cold/2"), "{failures:?}");
        // A wider tolerance accepts the same drift.
        assert!(check_regression(baseline, regressed, 0.5)
            .unwrap()
            .is_empty());
        // A group missing from the current run is a failure, not a skip.
        let missing = "\
{\"id\":\"engine_throughput/serial-loop\",\"mean_ns\":1000.0,\"elements\":18}\n";
        let failures = check_regression(baseline, missing, 0.25).unwrap();
        assert!(failures[0].contains("missing"), "{failures:?}");
        // Malformed inputs are errors, not passes.
        assert!(check_regression("nonsense", baseline, 0.25).is_err());
        assert!(check_regression(missing, "{\"id\":\"x\"}", 0.25).is_err());
    }

    #[test]
    fn scaling_ratio_gate_catches_contention_the_mean_gate_misses() {
        let baseline = "\
{\"id\":\"engine_throughput/serial-loop\",\"mean_ns\":1000.0,\"elements\":18}\n\
{\"id\":\"engine_throughput/warm/1\",\"mean_ns\":400.0,\"elements\":18}\n\
{\"id\":\"engine_throughput/warm/8\",\"mean_ns\":100.0,\"elements\":18}\n";
        // warm/8 stays within the per-group tolerance (1.2x normalized)
        // but warm/1 got faster, so the 8-thread speedup collapsed from
        // 4.0x to 2.5x — only the scaling gate sees it.
        let contended = "\
{\"id\":\"engine_throughput/serial-loop\",\"mean_ns\":1000.0,\"elements\":18}\n\
{\"id\":\"engine_throughput/warm/1\",\"mean_ns\":300.0,\"elements\":18}\n\
{\"id\":\"engine_throughput/warm/8\",\"mean_ns\":120.0,\"elements\":18}\n";
        let failures = check_regression(baseline, contended, 0.25).unwrap();
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("warm/8"), "{failures:?}");
        assert!(failures[0].contains("scaling ratio"), "{failures:?}");
        // Proportional slowdowns keep every ratio and stay green.
        let uniform = "\
{\"id\":\"engine_throughput/serial-loop\",\"mean_ns\":3000.0,\"elements\":18}\n\
{\"id\":\"engine_throughput/warm/1\",\"mean_ns\":1200.0,\"elements\":18}\n\
{\"id\":\"engine_throughput/warm/8\",\"mean_ns\":300.0,\"elements\":18}\n";
        assert!(check_regression(baseline, uniform, 0.25)
            .unwrap()
            .is_empty());
        // Without a single-worker anchor the scaling gate stands down
        // instead of erroring out (the per-group gate still ran).
        let no_anchor = "\
{\"id\":\"engine_throughput/serial-loop\",\"mean_ns\":1000.0,\"elements\":18}\n\
{\"id\":\"engine_throughput/warm/8\",\"mean_ns\":100.0,\"elements\":18}\n";
        assert!(check_regression(no_anchor, no_anchor, 0.25)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn committed_baseline_parses_and_checks_against_itself() {
        let baseline = include_str!("../../../BENCH_engine.json");
        let failures = check_regression(baseline, baseline, 0.25).unwrap();
        assert!(failures.is_empty(), "{failures:?}");
    }
}
