//! One benchmark per paper artifact: the full computation behind every
//! table and figure of the evaluation, so regressions in any reproduction
//! path show up as timing changes and the harness cost is documented.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use whart_bench::{chain, section_v_model, typical_model};
use whart_channel::{EbN0, LinkModel, Modulation, WIRELESSHART_MESSAGE_BITS};
use whart_model::compose::{peer_cycle_probabilities, predict_composition};
use whart_model::explicit::explicit_chain;
use whart_model::failure::reachability_with_lost_cycles;
use whart_model::sweeps::{delay_summaries, paper_availabilities, sweep_hop_count};
use whart_model::{DelayConvention, LinkDynamics, UtilizationConvention};
use whart_net::ReportingInterval;

fn fig4_fig5(c: &mut Criterion) {
    c.bench_function("experiments/fig4+5 explicit chains", |b| {
        b.iter(|| {
            let f4 = explicit_chain(&section_v_model(1));
            let f5 = explicit_chain(&section_v_model(2));
            black_box((f4.state_count(), f5.state_count()))
        })
    });
}

fn fig6_fig7(c: &mut Criterion) {
    c.bench_function("experiments/fig6+7 transient + delays", |b| {
        b.iter(|| {
            let eval = section_v_model(4).evaluate();
            let dist = eval.delay_distribution(DelayConvention::Absolute);
            black_box((eval.reachability(), dist.expectation()))
        })
    });
}

fn fig8_table1_fig9(c: &mut Criterion) {
    c.bench_function("experiments/fig8+9+table1 availability sweep", |b| {
        b.iter(|| {
            let rows = delay_summaries(
                &paper_availabilities(),
                ReportingInterval::REGULAR,
                DelayConvention::Absolute,
            )
            .expect("valid");
            black_box(rows.len())
        })
    });
}

fn fig10(c: &mut Criterion) {
    c.bench_function("experiments/fig10 hop-count sweep", |b| {
        b.iter(|| sweep_hop_count(4, 0.83, ReportingInterval::REGULAR).expect("valid"))
    });
}

fn fig13_to_16_table2(c: &mut Criterion) {
    c.bench_function("experiments/fig13-16+table2 network suite", |b| {
        b.iter(|| {
            let eval = typical_model(0.83).evaluate().expect("valid");
            black_box((
                eval.reachabilities(),
                eval.mean_delay_ms(DelayConvention::Absolute),
                eval.utilization(UtilizationConvention::AsEvaluated),
            ))
        })
    });
}

fn fig17(c: &mut Criterion) {
    let link = LinkModel::new(0.184, 0.9).expect("valid");
    c.bench_function("experiments/fig17 recovery trajectory", |b| {
        b.iter(|| {
            LinkDynamics::starting_in(black_box(link), whart_channel::LinkState::Down)
                .up_trajectory(6)
        })
    });
}

fn table3(c: &mut Criterion) {
    let model = chain(3, 20, 4);
    c.bench_function("experiments/table3 failure study", |b| {
        b.iter(|| reachability_with_lost_cycles(black_box(&model), 1).expect("valid"))
    });
}

fn fig18_fig19(c: &mut Criterion) {
    c.bench_function("experiments/fig18+19 interval comparison", |b| {
        b.iter(|| {
            let fast = chain(3, 20, 2).evaluate().reachability();
            let regular = chain(3, 20, 4).evaluate().reachability();
            black_box(regular - fast)
        })
    });
}

fn table4(c: &mut Criterion) {
    let peer = LinkModel::from_snr(
        Modulation::Oqpsk,
        EbN0::from_linear(7.0),
        WIRELESSHART_MESSAGE_BITS,
        0.9,
    )
    .expect("valid");
    let existing = chain(2, 20, 4).evaluate();
    c.bench_function("experiments/table4 prediction", |b| {
        b.iter(|| {
            let g = peer_cycle_probabilities(black_box(peer), ReportingInterval::REGULAR);
            predict_composition(&g, 1, black_box(&existing)).expect("valid")
        })
    });
}

criterion_group!(
    benches,
    fig4_fig5,
    fig6_fig7,
    fig8_table1_fig9,
    fig10,
    fig13_to_16_table2,
    fig17,
    table3,
    fig18_fig19,
    table4
);
criterion_main!(benches);
