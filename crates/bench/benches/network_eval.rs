//! Benchmarks of whole-network evaluation (Section VI): the ten-path
//! typical network under both schedules, measure extraction, and the
//! failure / composition machinery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use whart_bench::{typical_model, typical_network};
use whart_channel::LinkModel;
use whart_model::compose::{peer_cycle_probabilities, predict_composition};
use whart_model::failure::reachability_with_lost_cycles;
use whart_model::{DelayConvention, NetworkModel, UtilizationConvention};
use whart_net::ReportingInterval;

fn bench_network_evaluate(c: &mut Criterion) {
    let mut group = c.benchmark_group("network/evaluate");
    for pi in [0.693, 0.83, 0.948] {
        let model = typical_model(pi);
        group.bench_with_input(BenchmarkId::from_parameter(pi), &model, |b, m| {
            b.iter(|| black_box(m).evaluate().expect("valid"))
        });
    }
    group.finish();
}

fn bench_schedules(c: &mut Criterion) {
    let net = typical_network(0.83);
    let mut group = c.benchmark_group("network/schedule-build");
    group.bench_function("eta_a", |b| b.iter(|| black_box(&net).schedule_eta_a()));
    group.bench_function("eta_b", |b| b.iter(|| black_box(&net).schedule_eta_b()));
    group.finish();
}

fn bench_measures(c: &mut Criterion) {
    let evaluation = typical_model(0.83).evaluate().expect("valid");
    let mut group = c.benchmark_group("network/measures");
    group.bench_function("overall delay distribution", |b| {
        b.iter(|| black_box(&evaluation).overall_delay_distribution(DelayConvention::Absolute))
    });
    group.bench_function("mean delay", |b| {
        b.iter(|| black_box(&evaluation).mean_delay_ms(DelayConvention::Absolute))
    });
    group.bench_function("utilization", |b| {
        b.iter(|| black_box(&evaluation).utilization(UtilizationConvention::AsEvaluated))
    });
    group.finish();
}

fn bench_failure_and_composition(c: &mut Criterion) {
    let model = typical_model(0.83);
    let path10 = model.path_model(9).expect("valid");
    let mut group = c.benchmark_group("network/what-if");
    group.bench_function("lost-cycle reachability", |b| {
        b.iter(|| reachability_with_lost_cycles(black_box(&path10), 1).expect("valid"))
    });
    let peer = peer_cycle_probabilities(
        LinkModel::from_availability(0.91, 0.9).expect("valid"),
        ReportingInterval::REGULAR,
    );
    let existing = model.path_model(3).expect("valid").evaluate();
    group.bench_function("composition prediction", |b| {
        b.iter(|| predict_composition(black_box(&peer), 1, black_box(&existing)).expect("valid"))
    });
    group.finish();
}

fn bench_model_construction(c: &mut Criterion) {
    let net = typical_network(0.83);
    c.bench_function("network/model-construction", |b| {
        b.iter(|| {
            NetworkModel::from_typical(
                black_box(&net),
                net.schedule_eta_a(),
                ReportingInterval::REGULAR,
            )
            .expect("valid")
        })
    });
}

criterion_group!(
    benches,
    bench_network_evaluate,
    bench_schedules,
    bench_measures,
    bench_failure_and_composition,
    bench_model_construction
);
criterion_main!(benches);
