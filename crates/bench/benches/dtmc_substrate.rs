//! Benchmarks of the DTMC and channel substrates: transient steps,
//! steady-state and absorbing solves, convolution, and the special
//! functions behind Eq. 1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use whart_channel::math::erfc;
use whart_channel::{message_failure_probability, EbN0, Modulation};
use whart_dtmc::{Dtmc, Pmf};

/// A random-ish row-stochastic birth-death chain of n states.
fn birth_death(n: usize) -> Dtmc {
    let mut b = Dtmc::builder();
    let states: Vec<_> = (0..n).map(|i| b.add_state(format!("s{i}"))).collect();
    for i in 0..n {
        let up = if i + 1 < n { 0.4 } else { 0.0 };
        let down = if i > 0 { 0.35 } else { 0.0 };
        let stay = 1.0 - up - down;
        if up > 0.0 {
            b.add_transition(states[i], states[i + 1], up)
                .expect("valid");
        }
        if down > 0.0 {
            b.add_transition(states[i], states[i - 1], down)
                .expect("valid");
        }
        b.add_transition(states[i], states[i], stay).expect("valid");
    }
    b.build().expect("stochastic")
}

/// An absorbing chain: a line of n transient states draining into goal and
/// discard states.
fn absorbing_line(n: usize) -> Dtmc {
    let mut b = Dtmc::builder();
    let states: Vec<_> = (0..n).map(|i| b.add_state(format!("t{i}"))).collect();
    let goal = b.add_state("goal");
    let discard = b.add_state("discard");
    for i in 0..n {
        let next = if i + 1 < n { states[i + 1] } else { goal };
        b.add_transition(states[i], next, 0.8).expect("valid");
        b.add_transition(states[i], discard, 0.2).expect("valid");
    }
    b.make_absorbing(goal).expect("valid");
    b.make_absorbing(discard).expect("valid");
    b.build().expect("stochastic")
}

fn bench_transient(c: &mut Criterion) {
    let mut group = c.benchmark_group("dtmc/transient-100-steps");
    for n in [10usize, 100, 400] {
        let chain = birth_death(n);
        let mut init = vec![0.0; n];
        init[0] = 1.0;
        group.bench_with_input(BenchmarkId::from_parameter(n), &chain, |b, chain| {
            b.iter(|| chain.transient(black_box(&init), 100).expect("valid"))
        });
    }
    group.finish();
}

fn bench_steady_state(c: &mut Criterion) {
    let mut group = c.benchmark_group("dtmc/steady-state");
    for n in [10usize, 50, 150] {
        let chain = birth_death(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &chain, |b, chain| {
            b.iter(|| black_box(chain).steady_state().expect("solvable"))
        });
    }
    group.finish();
}

fn bench_absorption(c: &mut Criterion) {
    let mut group = c.benchmark_group("dtmc/absorption");
    for n in [10usize, 50, 150] {
        let chain = absorbing_line(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &chain, |b, chain| {
            b.iter(|| black_box(chain).absorption().expect("solvable"))
        });
    }
    group.finish();
}

fn bench_convolution(c: &mut Criterion) {
    let a = Pmf::negative_binomial(0.8, 3, 64).expect("valid");
    let g = Pmf::geometric(0.9, 64).expect("valid");
    c.bench_function("dtmc/convolution-64x64", |b| {
        b.iter(|| black_box(&a).convolve(black_box(&g)))
    });
}

fn bench_channel_math(c: &mut Criterion) {
    let mut group = c.benchmark_group("channel/math");
    group.bench_function("erfc", |b| b.iter(|| erfc(black_box(2.6457513))));
    group.bench_function("oqpsk ber", |b| {
        b.iter(|| Modulation::Oqpsk.ber(black_box(EbN0::from_linear(7.0))))
    });
    group.bench_function("message failure probability", |b| {
        b.iter(|| message_failure_probability(black_box(1e-4), 1016))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_transient,
    bench_steady_state,
    bench_absorption,
    bench_convolution,
    bench_channel_math
);
criterion_main!(benches);
