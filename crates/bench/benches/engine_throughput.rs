//! Throughput of the batch engine on the acceptance fleet: the typical
//! network at 6 availabilities x 3 reporting intervals (18 scenarios,
//! 180 path DTMCs), compared against a plain serial evaluation loop.
//!
//! Groups:
//! * `serial-loop` — `NetworkModel::evaluate` per scenario, no sharing;
//! * `cold/{workers}` — a fresh engine per iteration (every path solved);
//! * `warm/{workers}` — a pre-warmed engine (every path answered from
//!   the path cache).
//!
//! Throughput is reported in scenarios per second.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use whart_channel::LinkModel;
use whart_engine::{Engine, MeasureSet, Scenario};
use whart_model::NetworkModel;
use whart_net::typical::TypicalNetwork;
use whart_net::ReportingInterval;

const AVAILABILITIES: [f64; 6] = [0.693, 0.774, 0.83, 0.903, 0.948, 0.989];
const INTERVALS: [u32; 3] = [1, 2, 4];

fn fleet() -> Vec<NetworkModel> {
    let mut models = Vec::new();
    for &pi in &AVAILABILITIES {
        for &is in &INTERVALS {
            let link = LinkModel::from_availability(pi, 0.9).expect("valid");
            let net = TypicalNetwork::new(link);
            models.push(
                NetworkModel::from_typical(
                    &net,
                    net.schedule_eta_a(),
                    ReportingInterval::new(is).expect("valid"),
                )
                .expect("valid"),
            );
        }
    }
    models
}

/// The serial baseline produces a bare `NetworkEvaluation`, so the engine
/// scenarios request exactly that (no per-path measure extraction).
fn evaluation_only() -> MeasureSet {
    MeasureSet {
        reachability: false,
        expected_delay: false,
        expected_intervals_to_first_loss: false,
        utilization: false,
        cycle_probabilities: false,
        ..MeasureSet::default()
    }
}

fn submit_fleet(engine: &mut Engine, models: &[NetworkModel]) {
    for (i, model) in models.iter().enumerate() {
        engine.submit(
            Scenario::network(format!("s{i}"), model.clone()).with_measures(evaluation_only()),
        );
    }
}

fn bench_engine_throughput(c: &mut Criterion) {
    let models = fleet();
    let scenarios = models.len() as u64;
    let mut group = c.benchmark_group("engine_throughput");
    group.throughput(Throughput::Elements(scenarios));

    group.bench_function("serial-loop", |b| {
        b.iter(|| {
            for model in &models {
                black_box(black_box(model).evaluate().expect("valid"));
            }
        })
    });

    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("cold", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let mut engine = Engine::new(workers);
                    submit_fleet(&mut engine, &models);
                    black_box(engine.drain().expect("valid"))
                })
            },
        );
    }

    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("warm", workers),
            &workers,
            |b, &workers| {
                let mut engine = Engine::new(workers);
                submit_fleet(&mut engine, &models);
                engine.drain().expect("valid");
                b.iter(|| {
                    submit_fleet(&mut engine, &models);
                    black_box(engine.drain().expect("valid"))
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_engine_throughput);
criterion_main!(benches);
