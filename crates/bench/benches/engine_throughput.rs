//! Throughput of the batch engine on the acceptance fleet: the typical
//! network at 6 availabilities x 3 reporting intervals (18 scenarios,
//! 180 path DTMCs), compared against a plain serial evaluation loop.
//!
//! Groups:
//! * `serial-loop` — `NetworkModel::evaluate` per scenario, no sharing;
//! * `cold/{workers}` — a fresh engine per iteration (every path solved);
//! * `warm/{workers}` — a pre-warmed engine (every path answered from
//!   the path cache).
//!
//! Throughput is reported in scenarios per second.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use whart_bench::harness::{engine_fleet, submit_fleet};
use whart_engine::Engine;

fn bench_engine_throughput(c: &mut Criterion) {
    let models = engine_fleet();
    let scenarios = models.len() as u64;
    let mut group = c.benchmark_group("engine_throughput");
    group.throughput(Throughput::Elements(scenarios));

    group.bench_function("serial-loop", |b| {
        b.iter(|| {
            for model in &models {
                black_box(black_box(model).evaluate().expect("valid"));
            }
        })
    });

    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("cold", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let mut engine = Engine::new(workers);
                    submit_fleet(&mut engine, &models);
                    black_box(engine.drain().expect("valid"))
                })
            },
        );
    }

    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("warm", workers),
            &workers,
            |b, &workers| {
                let mut engine = Engine::new(workers);
                submit_fleet(&mut engine, &models);
                engine.drain().expect("valid");
                b.iter(|| {
                    submit_fleet(&mut engine, &models);
                    black_box(engine.drain().expect("valid"))
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_engine_throughput);
criterion_main!(benches);
