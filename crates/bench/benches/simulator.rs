//! Benchmarks of the Monte-Carlo simulator: per-interval throughput under
//! both PHY fidelities and the scaling of parallel execution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use whart_bench::typical_network;
use whart_channel::{Blacklist, ChannelConditions};
use whart_net::ReportingInterval;
use whart_sim::{PhyMode, Simulator};

const INTERVALS: u64 = 2_000;

fn gilbert_sim() -> Simulator {
    let net = typical_network(0.83);
    Simulator::from_typical(
        &net,
        net.schedule_eta_a(),
        ReportingInterval::REGULAR,
        PhyMode::Gilbert,
    )
    .expect("valid")
}

fn hopping_sim() -> Simulator {
    let net = typical_network(0.83);
    Simulator::from_typical(
        &net,
        net.schedule_eta_a(),
        ReportingInterval::REGULAR,
        PhyMode::Hopping {
            conditions: ChannelConditions::uniform(2e-4).expect("valid"),
            blacklist: Blacklist::new(),
            message_bits: 1016,
        },
    )
    .expect("valid")
}

fn bench_phy_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/phy");
    group.sample_size(10);
    group.throughput(Throughput::Elements(INTERVALS));
    let gilbert = gilbert_sim();
    group.bench_function("gilbert", |b| {
        b.iter(|| black_box(&gilbert).run(1, INTERVALS))
    });
    let hopping = hopping_sim();
    group.bench_function("hopping", |b| {
        b.iter(|| black_box(&hopping).run(1, INTERVALS))
    });
    group.finish();
}

fn bench_parallel_scaling(c: &mut Criterion) {
    let sim = gilbert_sim();
    let mut group = c.benchmark_group("simulator/parallel");
    group.sample_size(10);
    group.throughput(Throughput::Elements(8 * INTERVALS));
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| black_box(&sim).run_parallel(1, 8 * INTERVALS, w))
        });
    }
    group.finish();
}

fn bench_vs_analysis(c: &mut Criterion) {
    // How many simulated intervals one analytical solve is worth: both
    // produce the ten-path reachability vector.
    let sim = gilbert_sim();
    let model = whart_bench::typical_model(0.83);
    let mut group = c.benchmark_group("simulator/vs-analysis");
    group.sample_size(10);
    group.bench_function("analysis (exact)", |b| {
        b.iter(|| black_box(&model).evaluate().expect("valid"))
    });
    group.bench_function("simulation (2k intervals)", |b| {
        b.iter(|| black_box(&sim).run(1, INTERVALS))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_phy_modes,
    bench_parallel_scaling,
    bench_vs_analysis
);
criterion_main!(benches);
