//! Benchmarks of the hierarchical path model: construction, the fast
//! transient evaluator (Eq. 5) and its scaling in `Is`, hop count and
//! `F_up` — the paper's O(Is * F_s * n) complexity claim — plus the
//! explicit Algorithm-1 chain as the ablation baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use whart_bench::{chain, section_v_model};
use whart_model::explicit::explicit_chain;

fn bench_section_v(c: &mut Criterion) {
    let model = section_v_model(4);
    c.bench_function("path/evaluate/section-v Is=4", |b| {
        b.iter(|| black_box(&model).evaluate())
    });
}

fn bench_scaling_in_interval(c: &mut Criterion) {
    let mut group = c.benchmark_group("path/evaluate/interval-scaling");
    for is in [1u32, 2, 4, 8, 16, 32] {
        let model = section_v_model(is);
        group.bench_with_input(BenchmarkId::from_parameter(is), &model, |b, m| {
            b.iter(|| black_box(m).evaluate())
        });
    }
    group.finish();
}

fn bench_scaling_in_hops(c: &mut Criterion) {
    let mut group = c.benchmark_group("path/evaluate/hop-scaling");
    for hops in [1u32, 2, 4, 8, 16] {
        let model = chain(hops, hops, 4);
        group.bench_with_input(BenchmarkId::from_parameter(hops), &model, |b, m| {
            b.iter(|| black_box(m).evaluate())
        });
    }
    group.finish();
}

fn bench_scaling_in_frame(c: &mut Criterion) {
    let mut group = c.benchmark_group("path/evaluate/frame-scaling");
    for f_up in [7u32, 20, 50, 100] {
        let model = chain(3, f_up, 4);
        group.bench_with_input(BenchmarkId::from_parameter(f_up), &model, |b, m| {
            b.iter(|| black_box(m).evaluate())
        });
    }
    group.finish();
}

fn bench_explicit_vs_fast(c: &mut Criterion) {
    // Ablation: the unrolled Algorithm-1 chain (construction + absorbing
    // analysis) vs the in-place evaluator, same results.
    let model = section_v_model(4);
    let mut group = c.benchmark_group("path/explicit-vs-fast");
    group.bench_function("fast evaluator", |b| {
        b.iter(|| black_box(&model).evaluate())
    });
    group.bench_function("explicit chain build", |b| {
        b.iter(|| explicit_chain(black_box(&model)))
    });
    let chain_built = explicit_chain(&model);
    group.bench_function("explicit chain absorption", |b| {
        b.iter(|| {
            black_box(&chain_built)
                .cycle_probabilities()
                .expect("solvable")
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_section_v,
    bench_scaling_in_interval,
    bench_scaling_in_hops,
    bench_scaling_in_frame,
    bench_explicit_vs_fast
);
criterion_main!(benches);
