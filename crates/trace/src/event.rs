//! The typed event record and the drained journal.

use whart_json::Json;

/// The kind of a recorded event, mirroring the Chrome `trace_event`
/// phase letters that matter here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A complete span (`ph: "X"`): a named duration starting at the
    /// event's timestamp.
    Complete {
        /// Span duration in nanoseconds.
        dur_ns: u64,
    },
    /// A point-in-time provenance record (`ph: "i"`).
    Instant,
}

/// A typed argument value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// A non-negative integer (counts, seeds, slot numbers).
    U64(u64),
    /// A real number (probabilities, masses, residuals).
    F64(f64),
    /// A short label (backend names, cache outcomes).
    Str(String),
    /// A flag.
    Bool(bool),
}

impl ArgValue {
    /// The value as JSON (used by the event serializer and by services
    /// copying trace arguments onto structured log lines).
    pub fn to_json(&self) -> Json {
        match self {
            ArgValue::U64(v) => Json::from(*v),
            ArgValue::F64(v) => Json::from(*v),
            ArgValue::Str(v) => Json::from(v.as_str()),
            ArgValue::Bool(v) => Json::from(*v),
        }
    }

    /// The value as a float, when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ArgValue::U64(v) => Some(*v as f64),
            ArgValue::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, when it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            ArgValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string, when it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ArgValue::Str(v) => Some(v),
            _ => None,
        }
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> ArgValue {
        ArgValue::U64(v)
    }
}

impl From<u32> for ArgValue {
    fn from(v: u32) -> ArgValue {
        ArgValue::U64(u64::from(v))
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> ArgValue {
        ArgValue::U64(v as u64)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> ArgValue {
        ArgValue::F64(v)
    }
}

impl From<bool> for ArgValue {
    fn from(v: bool) -> ArgValue {
        ArgValue::Bool(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> ArgValue {
        ArgValue::Str(v.to_owned())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> ArgValue {
        ArgValue::Str(v)
    }
}

/// One recorded event: a completed span or an instant provenance
/// record, stamped with the journal-relative timestamp and the
/// journal-assigned worker/thread id.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (span or record label).
    pub name: String,
    /// Dotted category, e.g. `"engine"` or `"solver.fast"`.
    pub cat: &'static str,
    /// Span or instant.
    pub ph: Phase,
    /// Nanoseconds since the trace handle was created.
    pub ts_ns: u64,
    /// Journal-assigned thread id (0 is the first thread that emitted).
    pub tid: u64,
    /// Typed provenance arguments, in emission order.
    pub args: Vec<(&'static str, ArgValue)>,
}

impl TraceEvent {
    /// The argument named `key`, if attached.
    pub fn arg(&self, key: &str) -> Option<&ArgValue> {
        self.args.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Span duration in nanoseconds (0 for instants).
    pub fn dur_ns(&self) -> u64 {
        match self.ph {
            Phase::Complete { dur_ns } => dur_ns,
            Phase::Instant => 0,
        }
    }

    /// The event's JSONL form: a flat object with nanosecond timing.
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = vec![
            ("name".into(), Json::from(self.name.as_str())),
            ("cat".into(), Json::from(self.cat)),
            (
                "ph".into(),
                Json::from(match self.ph {
                    Phase::Complete { .. } => "X",
                    Phase::Instant => "i",
                }),
            ),
            ("ts_ns".into(), Json::from(self.ts_ns)),
        ];
        if let Phase::Complete { dur_ns } = self.ph {
            fields.push(("dur_ns".into(), Json::from(dur_ns)));
        }
        fields.push(("tid".into(), Json::from(self.tid)));
        if !self.args.is_empty() {
            fields.push((
                "args".into(),
                Json::Object(
                    self.args
                        .iter()
                        .map(|(k, v)| ((*k).to_owned(), v.to_json()))
                        .collect(),
                ),
            ));
        }
        Json::Object(fields)
    }
}

/// The drained journal: every event flushed so far, in timestamp order,
/// plus the number of events the capacity bound discarded.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceLog {
    /// Drained events, sorted by `(ts_ns, tid)`.
    pub events: Vec<TraceEvent>,
    /// Events discarded because the journal was full.
    pub dropped: u64,
}

impl TraceLog {
    /// Number of drained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the drain produced nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events whose name equals `name`, in timestamp order.
    pub fn named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.name == name)
    }

    /// The journal as JSON Lines: one compact event object per line
    /// (nanosecond timing, lossless). A final `trace.dropped` instant
    /// is appended when the capacity bound discarded events.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(&event.to_json().to_compact());
            out.push('\n');
        }
        if self.dropped > 0 {
            let marker = TraceEvent {
                name: "trace.dropped".into(),
                cat: "trace",
                ph: Phase::Instant,
                ts_ns: self.events.last().map_or(0, |e| e.ts_ns),
                tid: 0,
                args: vec![("count", ArgValue::U64(self.dropped))],
            };
            out.push_str(&marker.to_json().to_compact());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_json_has_phase_letters_and_args() {
        let event = TraceEvent {
            name: "hop".into(),
            cat: "solver.fast",
            ph: Phase::Instant,
            ts_ns: 12,
            tid: 3,
            args: vec![("p_fl", ArgValue::F64(0.25)), ("slot", ArgValue::U64(6))],
        };
        let json = event.to_json();
        assert_eq!(json.get("ph").and_then(Json::as_str), Some("i"));
        assert!(json.get("dur_ns").is_none(), "instants carry no duration");
        let args = json.get("args").unwrap();
        assert_eq!(args.get("p_fl").and_then(Json::as_f64), Some(0.25));
        assert_eq!(args.get("slot").and_then(Json::as_u64), Some(6));
        assert_eq!(event.arg("slot").and_then(ArgValue::as_u64), Some(6));
        assert!(event.arg("missing").is_none());
    }

    #[test]
    fn jsonl_appends_a_drop_marker() {
        let log = TraceLog {
            events: vec![TraceEvent {
                name: "solve".into(),
                cat: "engine",
                ph: Phase::Complete { dur_ns: 42 },
                ts_ns: 7,
                tid: 0,
                args: Vec::new(),
            }],
            dropped: 5,
        };
        let text = log.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = Json::parse(lines[0]).unwrap();
        assert_eq!(first.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(first.get("dur_ns").and_then(Json::as_u64), Some(42));
        let marker = Json::parse(lines[1]).unwrap();
        assert_eq!(
            marker.get("name").and_then(Json::as_str),
            Some("trace.dropped")
        );
        assert_eq!(
            marker
                .get("args")
                .and_then(|a| a.get("count"))
                .and_then(Json::as_u64),
            Some(5)
        );
    }

    #[test]
    fn arg_value_conversions() {
        assert_eq!(ArgValue::from(3u32), ArgValue::U64(3));
        assert_eq!(ArgValue::from(3usize), ArgValue::U64(3));
        assert_eq!(ArgValue::from("x").as_str(), Some("x"));
        assert_eq!(ArgValue::from(0.5).as_f64(), Some(0.5));
        assert_eq!(ArgValue::from(7u64).as_f64(), Some(7.0));
        assert_eq!(ArgValue::from(true), ArgValue::Bool(true));
        assert!(ArgValue::from("x").as_f64().is_none());
    }
}
