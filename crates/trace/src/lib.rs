//! whart-trace: the workspace's structured event journal.
//!
//! `whart-obs` answers *how much* (counters, log2 histograms);
//! this crate answers *why* and *where*: hierarchical spans (scenario →
//! compile → path solve → per-hop link resolution) and typed provenance
//! events — per-hop `p_fl`/`p_rc`, per-cycle transition mass into
//! goal/loss states, transient-step residuals, chain sizes, Monte-Carlo
//! seeds — recorded into per-thread buffers and drained to JSONL or
//! Chrome `trace_event` JSON (loadable in `chrome://tracing`/Perfetto).
//!
//! The contract mirrors the `whart-obs` `Metrics` facade:
//!
//! * [`Trace::disabled`] (the default) carries no journal at all. Every
//!   event site costs a single `Option` branch — no allocation, no clock
//!   read, no lock.
//! * Enabled handles buffer events in thread-local chunks, so the
//!   per-event hot path takes no lock; chunks flush to the shared sink
//!   every [`FLUSH_CHUNK`] events and when a thread exits.
//! * The journal is bounded: once `capacity` events have been admitted
//!   between drains, further events are counted in
//!   [`TraceLog::dropped`] instead of stored, so a runaway per-slot
//!   instrumentation cannot exhaust memory.
//!
//! Tracing must never perturb results: traced solves are bit-identical
//! to untraced ones (asserted by the backend parity tests in
//! `whart-engine`).
//!
//! ```
//! use whart_trace::Trace;
//!
//! let trace = Trace::new();
//! {
//!     let mut span = trace.span("solve", "solver.fast");
//!     span.arg("hops", 3u64);
//!     trace.instant("hop", "solver.fast", [("p_fl", 0.25.into())]);
//! }
//! let log = trace.drain();
//! assert_eq!(log.len(), 2);
//! assert!(log.to_jsonl().lines().count() == 2);
//!
//! // Disabled: same call sites, no effect, one branch each.
//! let off = Trace::disabled();
//! assert!(!off.span("solve", "solver.fast").is_recording());
//! assert!(off.drain().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod event;

pub use event::{ArgValue, Phase, TraceEvent, TraceLog};

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::Instant;

/// Thread-local buffer length at which a chunk is flushed to the shared
/// sink.
pub const FLUSH_CHUNK: usize = 256;

/// Default journal capacity (events admitted between drains).
pub const DEFAULT_CAPACITY: usize = 1 << 20;

/// Source of unique journal identities (thread-local buffers key on
/// these, so a new trace never inherits a dead trace's buffers).
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(0);

/// The journal behind an enabled [`Trace`] handle.
struct Shared {
    id: u64,
    start: Instant,
    capacity: usize,
    /// Events admitted (stored somewhere: local buffers or the sink).
    admitted: AtomicUsize,
    /// Events refused by the capacity bound.
    dropped: AtomicU64,
    /// Next journal-assigned thread id.
    next_tid: AtomicU64,
    /// Flushed events awaiting a drain.
    sink: Mutex<Vec<TraceEvent>>,
    /// Fast-path flag: whether [`Shared::context`] holds anything.
    context_set: AtomicBool,
    /// Ambient arguments stamped on every event created while a
    /// [`ContextGuard`] is in scope (e.g. the request id a service
    /// attaches around an engine drain, so solver spans on pool worker
    /// threads carry it too).
    context: Mutex<Vec<(&'static str, ArgValue)>>,
}

impl Shared {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// The current ambient context arguments (cheap when none are set:
    /// one atomic load, no lock).
    fn context_args(&self) -> Vec<(&'static str, ArgValue)> {
        if self.context_set.load(Ordering::Acquire) {
            self.context.lock().expect("trace context").clone()
        } else {
            Vec::new()
        }
    }
}

thread_local! {
    static LOCAL: RefCell<Vec<LocalBuffer>> = const { RefCell::new(Vec::new()) };
}

/// One thread's pending chunk for one journal.
struct LocalBuffer {
    trace_id: u64,
    shared: Weak<Shared>,
    tid: u64,
    events: Vec<TraceEvent>,
}

impl LocalBuffer {
    fn flush(&mut self) {
        if self.events.is_empty() {
            return;
        }
        match self.shared.upgrade() {
            Some(shared) => shared
                .sink
                .lock()
                .expect("trace sink")
                .append(&mut self.events),
            None => self.events.clear(),
        }
    }
}

impl Drop for LocalBuffer {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Pushes an admitted event into this thread's buffer for `shared`,
/// assigning the thread its journal tid on first contact.
fn buffer_event(shared: &Arc<Shared>, event: TraceEvent) {
    let mut slot = Some(event);
    let _ = LOCAL.try_with(|local| {
        let mut buffers = local.borrow_mut();
        let buffer = match buffers.iter_mut().position(|b| b.trace_id == shared.id) {
            Some(i) => &mut buffers[i],
            None => {
                // Registration is rare: prune buffers of dead journals
                // while we are here, then enrol this thread.
                buffers.retain(|b| b.shared.strong_count() > 0);
                buffers.push(LocalBuffer {
                    trace_id: shared.id,
                    shared: Arc::downgrade(shared),
                    tid: shared.next_tid.fetch_add(1, Ordering::Relaxed),
                    events: Vec::with_capacity(FLUSH_CHUNK),
                });
                buffers.last_mut().expect("just pushed")
            }
        };
        let mut event = slot.take().expect("event emitted once");
        event.tid = buffer.tid;
        buffer.events.push(event);
        if buffer.events.len() >= FLUSH_CHUNK {
            buffer.flush();
        }
    });
    if let Some(event) = slot {
        // Thread-local storage is tearing down (thread exit): bypass the
        // buffer and flush straight to the sink.
        shared.sink.lock().expect("trace sink").push(event);
    }
}

fn emit(shared: &Arc<Shared>, event: TraceEvent) {
    let admitted = shared.admitted.fetch_add(1, Ordering::Relaxed);
    if admitted >= shared.capacity {
        shared.admitted.fetch_sub(1, Ordering::Relaxed);
        shared.dropped.fetch_add(1, Ordering::Relaxed);
        return;
    }
    buffer_event(shared, event);
}

/// A cloneable handle to a structured event journal, or a no-op
/// stand-in.
///
/// Cloning shares the journal: events emitted through any clone (on any
/// thread) land in the same drain. The default handle is disabled.
#[derive(Clone, Default)]
pub struct Trace {
    shared: Option<Arc<Shared>>,
}

impl Trace {
    /// A fresh, enabled journal with the default capacity.
    pub fn new() -> Trace {
        Trace::with_capacity(DEFAULT_CAPACITY)
    }

    /// A fresh, enabled journal admitting at most `capacity` events
    /// between drains (clamped to at least one); the overflow is counted
    /// in [`TraceLog::dropped`].
    pub fn with_capacity(capacity: usize) -> Trace {
        Trace {
            shared: Some(Arc::new(Shared {
                id: NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed),
                start: Instant::now(),
                capacity: capacity.max(1),
                admitted: AtomicUsize::new(0),
                dropped: AtomicU64::new(0),
                next_tid: AtomicU64::new(0),
                sink: Mutex::new(Vec::new()),
                context_set: AtomicBool::new(false),
                context: Mutex::new(Vec::new()),
            })),
        }
    }

    /// The no-op handle: every event site resolved through it records
    /// nothing and costs one branch.
    pub fn disabled() -> Trace {
        Trace { shared: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Nanoseconds since the journal was created (0 when disabled; the
    /// clock is not read).
    pub fn now_ns(&self) -> u64 {
        self.shared.as_ref().map_or(0, |s| s.now_ns())
    }

    /// Starts a span; the completed duration is recorded when the guard
    /// drops (or via [`TraceSpan::finish`]). On a disabled handle the
    /// name is not materialized and the clock is not read.
    pub fn span(&self, name: impl Into<String>, cat: &'static str) -> TraceSpan {
        TraceSpan {
            inner: self.shared.as_ref().map(|shared| SpanInner {
                shared: Arc::clone(shared),
                name: name.into(),
                cat,
                start_ns: shared.now_ns(),
                args: shared.context_args(),
            }),
        }
    }

    /// Installs ambient context arguments stamped on every span and
    /// instant created — on any thread — until the returned guard
    /// drops. The canonical use is request correlation: a service sets
    /// `request_id` around an engine drain so every engine and solver
    /// span it produces (including those on pool worker threads)
    /// carries the id without threading it through the solver APIs.
    ///
    /// Scopes restore the previously installed context when they drop,
    /// so nesting is safe; overlapping scopes from *concurrent* threads
    /// are not distinguished — callers serialize scoped work (as the
    /// serve layer does around its engine lock). No-op on disabled
    /// handles; when no scope is active the per-event cost is one
    /// atomic load.
    pub fn context_scope<I>(&self, args: I) -> ContextGuard
    where
        I: IntoIterator<Item = (&'static str, ArgValue)>,
    {
        match &self.shared {
            None => ContextGuard {
                shared: None,
                previous: Vec::new(),
            },
            Some(shared) => {
                let mut context = shared.context.lock().expect("trace context");
                let previous = std::mem::replace(&mut *context, args.into_iter().collect());
                shared
                    .context_set
                    .store(!context.is_empty(), Ordering::Release);
                ContextGuard {
                    shared: Some(Arc::clone(shared)),
                    previous,
                }
            }
        }
    }

    /// Records an instant provenance event. On a disabled handle the
    /// name is not materialized and `args` is not consumed.
    ///
    /// Hot loops should guard the whole call with
    /// [`Trace::is_enabled`] so argument values are not even computed —
    /// that guard is the "one branch per event site" the disabled mode
    /// promises.
    pub fn instant<I>(&self, name: impl Into<String>, cat: &'static str, args: I)
    where
        I: IntoIterator<Item = (&'static str, ArgValue)>,
    {
        if let Some(shared) = &self.shared {
            let mut all = shared.context_args();
            all.extend(args);
            let event = TraceEvent {
                name: name.into(),
                cat,
                ph: Phase::Instant,
                ts_ns: shared.now_ns(),
                tid: 0,
                args: all,
            };
            emit(shared, event);
        }
    }

    /// Events refused so far by the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.shared
            .as_ref()
            .map_or(0, |s| s.dropped.load(Ordering::Relaxed))
    }

    /// Flushes the calling thread's pending chunk to the shared sink.
    ///
    /// Long-lived threads (e.g. `whart serve` HTTP workers) call this at
    /// a natural publication point — after finishing a request — so a
    /// [`Trace::drain`] from *another* thread observes their completed
    /// events without waiting for a [`FLUSH_CHUNK`] boundary or thread
    /// exit. No-op on disabled handles and when nothing is pending.
    pub fn flush(&self) {
        let Some(shared) = &self.shared else {
            return;
        };
        let _ = LOCAL.try_with(|local| {
            let mut buffers = local.borrow_mut();
            if let Some(buffer) = buffers.iter_mut().find(|b| b.trace_id == shared.id) {
                buffer.flush();
            }
        });
    }

    /// Drains the journal: the calling thread's pending chunk is flushed
    /// first, then every event flushed so far is taken (sorted by
    /// timestamp) and the capacity budget is released for them.
    ///
    /// Events still buffered on *other* live threads appear in a later
    /// drain (threads flush every [`FLUSH_CHUNK`] events, on
    /// [`Trace::flush`], and when they exit); the workspace drains after
    /// worker pools have joined, so a post-run drain is complete.
    /// Disabled handles drain empty.
    pub fn drain(&self) -> TraceLog {
        let Some(shared) = &self.shared else {
            return TraceLog::default();
        };
        self.flush();
        let mut events = std::mem::take(&mut *shared.sink.lock().expect("trace sink"));
        shared.admitted.fetch_sub(events.len(), Ordering::Relaxed);
        events.sort_by_key(|a| (a.ts_ns, a.tid));
        TraceLog {
            events,
            dropped: shared.dropped.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trace")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// Guard for [`Trace::context_scope`]: restores the previously
/// installed ambient context when dropped.
pub struct ContextGuard {
    shared: Option<Arc<Shared>>,
    previous: Vec<(&'static str, ArgValue)>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        if let Some(shared) = &self.shared {
            let mut context = shared.context.lock().expect("trace context");
            *context = std::mem::take(&mut self.previous);
            shared
                .context_set
                .store(!context.is_empty(), Ordering::Release);
        }
    }
}

struct SpanInner {
    shared: Arc<Shared>,
    name: String,
    cat: &'static str,
    start_ns: u64,
    args: Vec<(&'static str, ArgValue)>,
}

/// A scoped span guard; emits a [`Phase::Complete`] event covering its
/// lifetime when dropped.
pub struct TraceSpan {
    inner: Option<SpanInner>,
}

impl TraceSpan {
    /// Whether this span will emit anything (false on disabled handles).
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// Attaches a typed argument. On a non-recording span the value is
    /// not converted.
    pub fn arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if let Some(inner) = &mut self.inner {
            inner.args.push((key, value.into()));
        }
    }

    /// Ends the span now (dropping has the same effect).
    pub fn finish(self) {}
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let end_ns = inner.shared.now_ns();
            let event = TraceEvent {
                name: inner.name,
                cat: inner.cat,
                ph: Phase::Complete {
                    dur_ns: end_ns.saturating_sub(inner.start_ns),
                },
                ts_ns: inner.start_ns,
                tid: 0,
                args: inner.args,
            };
            emit(&inner.shared, event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_record_nothing() {
        let trace = Trace::disabled();
        assert!(!trace.is_enabled());
        assert_eq!(trace.now_ns(), 0);
        let mut span = trace.span("s", "t");
        assert!(!span.is_recording());
        span.arg("k", 1u64);
        drop(span);
        trace.instant("i", "t", [("k", 1u64.into())]);
        assert!(trace.drain().is_empty());
        assert_eq!(trace.dropped(), 0);
        assert!(!Trace::default().is_enabled());
    }

    #[test]
    fn spans_and_instants_drain_in_timestamp_order() {
        let trace = Trace::new();
        {
            let mut outer = trace.span("outer", "test");
            outer.arg("k", "v");
            trace.instant("inside", "test", [("n", 3u64.into())]);
        }
        let log = trace.drain();
        assert_eq!(log.len(), 2);
        // The instant starts after the span but drains after it too:
        // span events are stamped at their start.
        assert_eq!(log.events[0].name, "outer");
        assert_eq!(log.events[1].name, "inside");
        assert!(log.events[0].ts_ns <= log.events[1].ts_ns);
        assert_eq!(log.events[0].arg("k").and_then(ArgValue::as_str), Some("v"));
        // Drains consume: a second drain is empty.
        assert!(trace.drain().is_empty());
    }

    #[test]
    fn events_accumulate_across_threads_with_distinct_tids() {
        let trace = Trace::new();
        std::thread::scope(|scope| {
            for worker in 0..4 {
                let trace = trace.clone();
                scope.spawn(move || {
                    for i in 0..10 {
                        trace.instant(format!("w{worker}"), "test", [("i", (i as u64).into())]);
                    }
                });
            }
        });
        let log = trace.drain();
        assert_eq!(log.len(), 40, "threads flush on exit");
        let tids: std::collections::BTreeSet<u64> = log.events.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 4, "one journal tid per emitting thread");
    }

    #[test]
    fn capacity_bounds_the_journal_and_counts_drops() {
        let trace = Trace::with_capacity(5);
        for i in 0..12u64 {
            trace.instant("e", "test", [("i", i.into())]);
        }
        let log = trace.drain();
        assert_eq!(log.len(), 5);
        assert_eq!(log.dropped, 7);
        assert_eq!(trace.dropped(), 7);
        // Draining releases the budget: the journal admits again.
        trace.instant("after", "test", []);
        assert_eq!(trace.drain().len(), 1);
        let text = trace.drain().to_jsonl();
        assert!(text.contains("trace.dropped"), "{text}");
    }

    #[test]
    fn chunked_flushing_reaches_the_sink_mid_thread() {
        let trace = Trace::new();
        for _ in 0..(FLUSH_CHUNK + 3) {
            trace.instant("e", "test", []);
        }
        // The first FLUSH_CHUNK events flushed; the rest are drained from
        // this thread's live buffer.
        let log = trace.drain();
        assert_eq!(log.len(), FLUSH_CHUNK + 3);
    }

    #[test]
    fn flush_publishes_a_live_threads_events_to_another_threads_drain() {
        let trace = Trace::new();
        let worker = trace.clone();
        let (flushed_tx, flushed_rx) = std::sync::mpsc::channel();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        let handle = std::thread::spawn(move || {
            worker.instant("from-worker", "test", []);
            worker.flush();
            flushed_tx.send(()).unwrap();
            // Stay alive through the drain: visibility must come from the
            // explicit flush, not from thread-exit teardown.
            done_rx.recv().unwrap();
        });
        flushed_rx.recv().unwrap();
        let log = trace.drain();
        assert_eq!(log.len(), 1, "flushed event visible before thread exit");
        assert_eq!(log.events[0].name, "from-worker");
        done_tx.send(()).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn clones_share_one_journal() {
        let trace = Trace::new();
        trace.clone().instant("a", "test", []);
        trace.instant("b", "test", []);
        assert_eq!(trace.drain().len(), 2);
    }

    #[test]
    fn context_scope_stamps_events_on_every_thread() {
        let trace = Trace::new();
        {
            let _scope = trace.context_scope([("request_id", "req-7".into())]);
            let mut span = trace.span("drain", "engine");
            span.arg("scenarios", 1u64);
            drop(span);
            std::thread::scope(|s| {
                let worker = trace.clone();
                s.spawn(move || worker.instant("hop", "solver.fast", [("slot", 3u64.into())]));
            });
        }
        // After the scope: no stamping.
        trace.instant("outside", "test", []);
        let log = trace.drain();
        assert_eq!(log.len(), 3);
        for name in ["drain", "hop"] {
            let event = log.named(name).next().unwrap();
            assert_eq!(
                event.arg("request_id").and_then(ArgValue::as_str),
                Some("req-7"),
                "{name} missing the ambient request id"
            );
        }
        let span = log.named("drain").next().unwrap();
        assert_eq!(span.arg("scenarios").and_then(ArgValue::as_u64), Some(1));
        assert!(log.named("outside").next().unwrap().args.is_empty());
    }

    #[test]
    fn context_scopes_nest_and_restore() {
        let trace = Trace::new();
        let outer = trace.context_scope([("request_id", "outer".into())]);
        {
            let _inner = trace.context_scope([("request_id", "inner".into())]);
            trace.instant("a", "test", []);
        }
        trace.instant("b", "test", []);
        drop(outer);
        trace.instant("c", "test", []);
        let log = trace.drain();
        let id_of = |name: &str| {
            log.named(name)
                .next()
                .unwrap()
                .arg("request_id")
                .and_then(ArgValue::as_str)
                .map(str::to_owned)
        };
        assert_eq!(id_of("a").as_deref(), Some("inner"));
        assert_eq!(id_of("b").as_deref(), Some("outer"));
        assert_eq!(id_of("c"), None);
    }

    #[test]
    fn context_scope_on_a_disabled_handle_is_a_no_op() {
        let trace = Trace::disabled();
        let _scope = trace.context_scope([("request_id", "x".into())]);
        trace.instant("e", "test", []);
        assert!(trace.drain().is_empty());
    }

    #[test]
    fn capacity_is_clamped_positive() {
        let trace = Trace::with_capacity(0);
        trace.instant("e", "test", []);
        assert_eq!(trace.drain().len(), 1);
    }
}
