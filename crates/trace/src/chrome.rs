//! Chrome `trace_event` JSON export.
//!
//! The [object format](https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
//! understood by `chrome://tracing` and [Perfetto](https://ui.perfetto.dev):
//! a `traceEvents` array of complete (`ph: "X"`) and instant (`ph: "i"`)
//! events with microsecond timestamps. Nanosecond precision is preserved
//! as fractional microseconds.

use crate::event::{Phase, TraceEvent, TraceLog};
use whart_json::Json;

/// One event in the viewer's object form.
fn chrome_event(event: &TraceEvent) -> Json {
    let mut fields: Vec<(String, Json)> = vec![
        ("name".into(), Json::from(event.name.as_str())),
        ("cat".into(), Json::from(event.cat)),
        (
            "ph".into(),
            Json::from(match event.ph {
                Phase::Complete { .. } => "X",
                Phase::Instant => "i",
            }),
        ),
        ("ts".into(), Json::from(event.ts_ns as f64 / 1e3)),
    ];
    if let Phase::Complete { dur_ns } = event.ph {
        fields.push(("dur".into(), Json::from(dur_ns as f64 / 1e3)));
    }
    fields.push(("pid".into(), Json::from(1u64)));
    fields.push(("tid".into(), Json::from(event.tid)));
    if let Phase::Instant = event.ph {
        // Instant scope: thread-scoped tick marks.
        fields.push(("s".into(), Json::from("t")));
    }
    if !event.args.is_empty() {
        fields.push((
            "args".into(),
            Json::Object(
                event
                    .args
                    .iter()
                    .map(|(k, v)| {
                        let value = match v {
                            crate::ArgValue::U64(n) => Json::from(*n),
                            crate::ArgValue::F64(n) => Json::from(*n),
                            crate::ArgValue::Str(s) => Json::from(s.as_str()),
                            crate::ArgValue::Bool(b) => Json::from(*b),
                        };
                        ((*k).to_owned(), value)
                    })
                    .collect(),
            ),
        ));
    }
    Json::Object(fields)
}

impl TraceLog {
    /// The journal in Chrome `trace_event` object form, loadable in
    /// `chrome://tracing` or Perfetto. All events share `pid` 1; the
    /// journal's thread ids become viewer rows. The drop count, when
    /// non-zero, is recorded in `otherData.dropped_events`.
    pub fn to_chrome_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = vec![(
            "traceEvents".into(),
            Json::Array(self.events.iter().map(chrome_event).collect()),
        )];
        fields.push(("displayTimeUnit".into(), Json::from("ms")));
        if self.dropped > 0 {
            fields.push((
                "otherData".into(),
                Json::object([("dropped_events", Json::from(self.dropped))]),
            ));
        }
        Json::Object(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ArgValue;

    fn sample() -> TraceLog {
        TraceLog {
            events: vec![
                TraceEvent {
                    name: "scenario".into(),
                    cat: "engine",
                    ph: Phase::Complete { dur_ns: 1500 },
                    ts_ns: 500,
                    tid: 0,
                    args: vec![("cache", ArgValue::Str("miss".into()))],
                },
                TraceEvent {
                    name: "hop".into(),
                    cat: "solver.fast",
                    ph: Phase::Instant,
                    ts_ns: 800,
                    tid: 1,
                    args: vec![("p_fl", ArgValue::F64(0.3))],
                },
            ],
            dropped: 0,
        }
    }

    #[test]
    fn chrome_form_uses_microseconds_and_pid_one() {
        let json = sample().to_chrome_json();
        let events = json.get("traceEvents").and_then(Json::as_array).unwrap();
        assert_eq!(events.len(), 2);
        let span = &events[0];
        assert_eq!(span.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(span.get("ts").and_then(Json::as_f64), Some(0.5));
        assert_eq!(span.get("dur").and_then(Json::as_f64), Some(1.5));
        assert_eq!(span.get("pid").and_then(Json::as_u64), Some(1));
        let instant = &events[1];
        assert_eq!(instant.get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(instant.get("s").and_then(Json::as_str), Some("t"));
        assert_eq!(instant.get("tid").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn chrome_form_round_trips_through_whart_json() {
        let mut log = sample();
        log.dropped = 3;
        let text = log.to_chrome_json().to_pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, log.to_chrome_json());
        assert_eq!(
            back.get("otherData")
                .and_then(|o| o.get("dropped_events"))
                .and_then(Json::as_u64),
            Some(3)
        );
    }
}
