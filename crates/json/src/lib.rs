//! A small, dependency-free JSON library: a [`Json`] value type, a strict
//! recursive-descent parser and compact/pretty printers.
//!
//! The workspace builds fully offline, so `serde`/`serde_json` are not
//! available; this crate covers the subset the tools need — machine-readable
//! CLI output, network-spec files and scenario lists for the batch engine.
//! Object key order is preserved (insertion order), numbers are `f64`, and
//! integral numbers print without a decimal point exactly like `serde_json`.

use std::fmt;

/// A JSON document: the usual six value kinds.
///
/// Objects keep their keys in insertion order so printed output is stable
/// and diffs stay readable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

/// A parse failure: message plus byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
    offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns the first syntax error with its byte offset.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters"));
        }
        Ok(value)
    }

    /// Builds an object from key/value pairs, preserving their order.
    pub fn object(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from any iterator of convertible values.
    pub fn array(values: impl IntoIterator<Item = impl Into<Json>>) -> Json {
        Json::Array(values.into_iter().map(Into::into).collect())
    }

    /// Member lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Element lookup; `None` for non-arrays and out-of-range indices.
    pub fn at(&self, index: usize) -> Option<&Json> {
        match self {
            Json::Array(values) => values.get(index),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(values) => Some(values),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Compact rendering (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering: two-space indent, `"key": value` members.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Number(n) => out.push_str(&format_number(*n)),
            Json::String(s) => write_escaped(out, s),
            Json::Array(values) => {
                if values.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

/// Shortest round-trip rendering; integral values print without a point,
/// non-finite values (unrepresentable in JSON) print as `null`.
fn format_number(n: f64) -> String {
    if !n.is_finite() {
        return "null".to_owned();
    }
    format!("{n}")
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Number(n)
    }
}

macro_rules! json_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Json {
            fn from(n: $t) -> Json {
                Json::Number(n as f64)
            }
        }
    )*};
}

json_from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::String(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::String(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(values: Vec<Json>) -> Json {
        Json::Array(values)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(value: Option<T>) -> Json {
        value.map_or(Json::Null, Into::into)
    }
}

static NULL: Json = Json::Null;

impl std::ops::Index<&str> for Json {
    type Output = Json;

    /// Member access; missing keys and non-objects yield `Json::Null`.
    fn index(&self, key: &str) -> &Json {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Json {
    type Output = Json;

    /// Element access; out-of-range and non-arrays yield `Json::Null`.
    fn index(&self, index: usize) -> &Json {
        self.at(index).unwrap_or(&NULL)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", expected as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{literal}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut values = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(values));
        }
        loop {
            self.skip_ws();
            values.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(values));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let high = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&high) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    let combined =
                                        0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    return Err(self.error("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(high)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.error("invalid unicode escape")),
                            }
                            // hex4 advanced past the digits already.
                            continue;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar as-is.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.error("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated unicode escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid unicode escape"))?;
        let value =
            u32::from_str_radix(digits, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos = end;
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if let Some(b'e' | b'E') = self.peek() {
            self.pos += 1;
            if let Some(b'+' | b'-') = self.peek() {
                self.pos += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.error("invalid number"))
    }
}

/// Decode helpers shared by the CLI and the experiments binary.
impl Json {
    /// Required object member, by key.
    ///
    /// # Errors
    ///
    /// Describes the missing key.
    pub fn require(&self, key: &str) -> Result<&Json, String> {
        self.get(key)
            .ok_or_else(|| format!("missing field '{key}'"))
    }

    /// Required numeric member.
    ///
    /// # Errors
    ///
    /// Describes the missing or mistyped key.
    pub fn require_f64(&self, key: &str) -> Result<f64, String> {
        self.require(key)?
            .as_f64()
            .ok_or_else(|| format!("field '{key}' must be a number"))
    }

    /// Required non-negative integer member, converted to `u32`.
    ///
    /// # Errors
    ///
    /// Describes the missing or mistyped key.
    pub fn require_u32(&self, key: &str) -> Result<u32, String> {
        let n = self
            .require(key)?
            .as_u64()
            .ok_or_else(|| format!("field '{key}' must be a non-negative integer"))?;
        u32::try_from(n).map_err(|_| format!("field '{key}' does not fit in u32"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Number(42.0));
        assert_eq!(Json::parse("-1.5e3").unwrap(), Json::Number(-1500.0));
        assert_eq!(
            Json::parse("\"a\\nb\"").unwrap(),
            Json::String("a\nb".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a":[1,2,{"b":null}],"c":{"d":true}}"#).unwrap();
        assert_eq!(v["a"][2]["b"], Json::Null);
        assert_eq!(v["c"]["d"].as_bool(), Some(true));
        assert_eq!(v["a"].as_array().unwrap().len(), 3);
        assert_eq!(v["missing"], Json::Null);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "{\"a\":}", "tru", "1 2", "{'a':1}", "\"\\q\""] {
            assert!(Json::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn unicode_escapes_round_trip() {
        let v = Json::parse(r#""\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
    }

    #[test]
    fn integral_numbers_print_without_point() {
        let v = Json::object([("n", Json::from(20u32)), ("x", Json::from(0.83))]);
        assert_eq!(v.to_compact(), r#"{"n":20,"x":0.83}"#);
    }

    #[test]
    fn pretty_matches_two_space_style() {
        let v = Json::object([
            ("uplink_slots", Json::from(20u32)),
            (
                "paths",
                Json::array([Json::array([1u32]), Json::array([2u32, 1u32])]),
            ),
        ]);
        let pretty = v.to_pretty();
        assert!(pretty.contains("\"uplink_slots\": 20"), "{pretty}");
        assert!(pretty.starts_with("{\n  \""), "{pretty}");
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn round_trips_shortest_float_repr() {
        for x in [0.1, 1.0 / 3.0, 5e-324, 1e308, -0.0, 235.19999999] {
            let printed = Json::Number(x).to_compact();
            let back = Json::parse(&printed).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {printed}");
        }
    }

    #[test]
    fn require_helpers_report_errors() {
        let v = Json::parse(r#"{"a":1,"b":"x","c":1.5}"#).unwrap();
        assert_eq!(v.require_u32("a").unwrap(), 1);
        assert!(v.require_u32("b").is_err());
        assert!(v.require_u32("c").is_err());
        assert!(v.require_f64("missing").is_err());
        assert_eq!(v.require_f64("c").unwrap(), 1.5);
    }
}
