//! One shared batch engine for every experiment in the process.
//!
//! The experiments overlap heavily — fig9's delay summaries revisit
//! fig8's availability sweep points, fig19's regular-interval baseline
//! re-evaluates fig13's networks — so they all funnel through a single
//! memoizing [`Engine`]: each distinct path DTMC is solved once per run
//! of the suite.

use std::sync::{Mutex, OnceLock};
use whart_engine::Engine;

/// Runs `f` with the process-wide engine locked.
pub fn with_engine<T>(f: impl FnOnce(&mut Engine) -> T) -> T {
    static ENGINE: OnceLock<Mutex<Engine>> = OnceLock::new();
    let engine = ENGINE.get_or_init(|| Mutex::new(Engine::with_available_parallelism()));
    f(&mut engine.lock().expect("engine lock"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_is_shared_across_calls() {
        let first = with_engine(|engine| {
            engine.submit(whart_engine::Scenario::paths(
                "shared",
                vec![whart_model::sweeps::chain_model(
                    1,
                    0.8,
                    whart_net::ReportingInterval::REGULAR,
                )
                .unwrap()],
            ));
            engine.drain().unwrap();
            engine.stats().jobs_completed
        });
        let second = with_engine(|engine| engine.stats().jobs_completed);
        assert_eq!(first, second);
    }
}
