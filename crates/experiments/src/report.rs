//! Experiment reporting: paper-vs-computed checks and text rendering.

use whart_json::Json;

/// One comparison against a number the paper reports.
#[derive(Debug, Clone)]
pub struct Check {
    /// What is being compared, e.g. `"R (pi=0.903)"`.
    pub name: String,
    /// The paper's value.
    pub paper: f64,
    /// Our computed value.
    pub computed: f64,
    /// Absolute tolerance considered a reproduction.
    pub tolerance: f64,
    /// Optional note (e.g. known paper erratum).
    pub note: Option<String>,
}

impl Check {
    /// Creates a check.
    pub fn new(name: impl Into<String>, paper: f64, computed: f64, tolerance: f64) -> Check {
        Check {
            name: name.into(),
            paper,
            computed,
            tolerance,
            note: None,
        }
    }

    /// Attaches a note.
    pub fn with_note(mut self, note: impl Into<String>) -> Check {
        self.note = Some(note.into());
        self
    }

    /// Whether the computed value reproduces the paper's within tolerance.
    pub fn passes(&self) -> bool {
        (self.paper - self.computed).abs() <= self.tolerance
    }

    /// Encodes the check as JSON (same shape as the old serde encoding).
    pub fn to_json(&self) -> Json {
        Json::object([
            ("name", Json::from(self.name.clone())),
            ("paper", Json::from(self.paper)),
            ("computed", Json::from(self.computed)),
            ("tolerance", Json::from(self.tolerance)),
            ("note", Json::from(self.note.clone())),
        ])
    }
}

/// The output of one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Identifier, e.g. `"fig6"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Free-form result lines (tables, series).
    pub lines: Vec<String>,
    /// Numeric comparisons against the paper.
    pub checks: Vec<Check>,
}

impl ExperimentReport {
    /// Creates an empty report.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        ExperimentReport {
            id: id.into(),
            title: title.into(),
            lines: Vec::new(),
            checks: Vec::new(),
        }
    }

    /// Appends a text line.
    pub fn line(&mut self, text: impl Into<String>) -> &mut Self {
        self.lines.push(text.into());
        self
    }

    /// Appends a check.
    pub fn check(&mut self, check: Check) -> &mut Self {
        self.checks.push(check);
        self
    }

    /// Number of failing checks.
    pub fn failures(&self) -> usize {
        self.checks.iter().filter(|c| !c.passes()).count()
    }

    /// Encodes the report as JSON (same shape as the old serde encoding).
    pub fn to_json(&self) -> Json {
        Json::object([
            ("id", Json::from(self.id.clone())),
            ("title", Json::from(self.title.clone())),
            ("lines", Json::array(self.lines.iter().cloned())),
            (
                "checks",
                Json::Array(self.checks.iter().map(Check::to_json).collect()),
            ),
        ])
    }

    /// Renders the report as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        if !self.checks.is_empty() {
            out.push_str("paper vs computed:\n");
            for c in &self.checks {
                let status = if c.passes() { "ok  " } else { "FAIL" };
                out.push_str(&format!(
                    "  [{status}] {:<42} paper {:>10.4}  ours {:>10.4}  (tol {:.4})",
                    c.name, c.paper, c.computed, c.tolerance
                ));
                if let Some(note) = &c.note {
                    out.push_str(&format!("  — {note}"));
                }
                out.push('\n');
            }
        }
        out
    }
}

/// Formats a probability series as a compact line.
pub fn series(label: &str, values: impl IntoIterator<Item = f64>) -> String {
    let rendered: Vec<String> = values.into_iter().map(|v| format!("{v:.4}")).collect();
    format!("{label}: [{}]", rendered.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checks_pass_within_tolerance() {
        assert!(Check::new("x", 1.0, 1.004, 0.005).passes());
        assert!(!Check::new("x", 1.0, 1.006, 0.005).passes());
    }

    #[test]
    fn report_renders_status() {
        let mut r = ExperimentReport::new("fig0", "demo");
        r.line("hello");
        r.check(Check::new("a", 1.0, 1.0, 0.1));
        r.check(Check::new("b", 1.0, 2.0, 0.1).with_note("known issue"));
        let text = r.render();
        assert!(text.contains("== fig0"));
        assert!(text.contains("hello"));
        assert!(text.contains("[ok  ]"));
        assert!(text.contains("[FAIL]"));
        assert!(text.contains("known issue"));
        assert_eq!(r.failures(), 1);
    }

    #[test]
    fn series_formats() {
        assert_eq!(series("g", [0.5, 0.25]), "g: [0.5000, 0.2500]");
    }
}
