//! Section IV/V experiments: the example path (Figs. 4-10, Table I).

use crate::report::{series, Check, ExperimentReport};
use whart_model::explicit::explicit_chain;
use whart_model::sweeps::{
    self, delay_summaries, paper_availabilities, section_v_model, sweep_hop_count,
};
use whart_model::DelayConvention;
use whart_net::ReportingInterval;

fn interval(is: u32) -> ReportingInterval {
    ReportingInterval::new(is).expect("static intervals are positive")
}

/// Fig. 4: the explicit DTMC of the three-hop path at `Is = 1`.
pub fn fig4() -> ExperimentReport {
    let mut report = ExperimentReport::new("fig4", "explicit path DTMC, Is = 1");
    let model = section_v_model(0.75, interval(1)).expect("paper parameters are valid");
    let chain = explicit_chain(&model);
    report.line(format!(
        "states: {} (paper's Fig. 4 draws 16; ours adds the pre-slot-1 state), transitions: {}",
        chain.state_count(),
        chain.transition_count()
    ));
    report.line("DOT rendering (pipe into `dot -Tsvg`):");
    report.line(chain.to_dot("fig4"));
    // Paper structure: ages 1..7 at the source row, 3..7 after hop 1,
    // 6..7 after hop 2, one goal R7 and Discard => 16 states.
    report.check(
        Check::new(
            "state count (paper's 16 + initial)",
            17.0,
            chain.state_count() as f64,
            0.0,
        )
        .with_note("Fig. 4 omits the pre-slot-1 state; see module docs"),
    );
    report.check(Check::new(
        "goal states",
        1.0,
        chain.goals().len() as f64,
        0.0,
    ));
    report
}

/// Fig. 5: the explicit DTMC at `Is = 2` — the size doubles, gaining R14.
pub fn fig5() -> ExperimentReport {
    let mut report = ExperimentReport::new("fig5", "explicit path DTMC, Is = 2");
    let model = section_v_model(0.75, interval(2)).expect("paper parameters are valid");
    let chain = explicit_chain(&model);
    report.line(format!(
        "states: {}, transitions: {}, goals: R7 and R14",
        chain.state_count(),
        chain.transition_count()
    ));
    report.check(Check::new(
        "goal states",
        2.0,
        chain.goals().len() as f64,
        0.0,
    ));
    let has_r14 = chain.dtmc.state_by_label("R14").is_some();
    report.check(Check::new(
        "R14 present",
        1.0,
        f64::from(u8::from(has_r14)),
        0.0,
    ));
    // Linear growth in Is (the paper's O(Is * Fs * n) claim).
    let s1 = explicit_chain(&section_v_model(0.75, interval(1)).unwrap()).state_count();
    let s4 = explicit_chain(&section_v_model(0.75, interval(4)).unwrap()).state_count();
    report.line(format!(
        "state counts: Is=1 -> {s1}, Is=2 -> {}, Is=4 -> {s4}",
        chain.state_count()
    ));
    report.check(Check::new(
        "affine growth s4 - s2 = 2 (s2 - s1)",
        (2 * (chain.state_count() - s1)) as f64,
        (s4 - chain.state_count()) as f64,
        0.0,
    ));
    report
}

/// Fig. 6: transient goal-state probabilities of the example path
/// (`pi(up) = 0.75`, `Is = 4`).
pub fn fig6() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig6",
        "transient goal-state probabilities, Is = 4, pi = 0.75",
    );
    // The one artifact that plots the transient curve, so the one place
    // that opts into trajectory retention.
    let eval = section_v_model(0.75, interval(4))
        .expect("valid")
        .evaluate_with(whart_model::MeasurePlan::WITH_TRAJECTORY);
    let trajectory = eval.trajectory();
    for (t, row) in trajectory.iter().enumerate() {
        if t % 7 == 0 && t > 0 {
            report.line(series(&format!("t = {t:>2}"), row.iter().copied()));
        }
    }
    let g = eval.cycle_probabilities();
    report.check(Check::new("R7  final", 0.4219, g.get(0), 5e-5));
    report.check(Check::new("R14 final", 0.3164, g.get(1), 5e-5));
    report.check(Check::new("R21 final", 0.1582, g.get(2), 5e-5));
    report.check(Check::new("R28 final", 0.06592, g.get(3), 5e-6));
    report.check(Check::new(
        "reachability R",
        0.9624,
        eval.reachability(),
        5e-5,
    ));
    report.check(Check::new(
        "loss 1 - R",
        0.0376,
        eval.discard_probability(),
        5e-5,
    ));
    report
}

/// Fig. 7: the delay distribution of the example path, `E[tau]` = 190.8 ms.
pub fn fig7() -> ExperimentReport {
    let mut report = ExperimentReport::new("fig7", "delay distribution of the example path");
    let eval = section_v_model(0.75, interval(4))
        .expect("valid")
        .evaluate();
    let dist = eval.delay_distribution(DelayConvention::Absolute);
    for (delay, p) in dist.iter() {
        report.line(format!("  {delay:>4} ms : {p:.4}"));
    }
    let expected = eval
        .expected_delay_ms(DelayConvention::Absolute)
        .expect("reachable");
    report.check(Check::new("E[tau] ms", 190.8, expected, 0.05));
    report.check(Check::new(
        "first delay (ms)",
        70.0,
        dist.iter().next().unwrap().0,
        0.0,
    ));
    report.check(Check::new(
        "last delay (ms)",
        490.0,
        dist.iter().last().unwrap().0,
        0.0,
    ));
    // "the control-loop could be completed in one cycle with probability
    // 0.4219^2 = 0.178" under a symmetric downlink.
    let one_cycle_loop = eval.cycle_probabilities().get(0).powi(2);
    report.check(Check::new(
        "one-cycle closed loop",
        0.178,
        one_cycle_loop,
        5e-4,
    ));
    report
}

/// Fig. 8: reachability vs link availability.
pub fn fig8() -> ExperimentReport {
    let mut report = ExperimentReport::new("fig8", "reachability vs link availability");
    // The full sweep curve (for plotting), batched through the shared
    // engine.
    let grid: Vec<f64> = (0..=30).map(|i| 0.65 + i as f64 * 0.01).collect();
    let curve = crate::engine_support::with_engine(|engine| {
        whart_engine::sweeps::sweep_availability(engine, &grid, interval(4))
    })
    .expect("grid is representable");
    report.line(series("pi(up)", curve.iter().map(|p| p.availability)));
    report.line(series(
        "R",
        curve.iter().map(|p| p.evaluation.reachability()),
    ));
    // The paper's marked points.
    let marked = crate::engine_support::with_engine(|engine| {
        whart_engine::sweeps::sweep_availability(engine, &paper_availabilities(), interval(4))
    })
    .expect("valid");
    let want = [0.924, 0.9737, 0.9907, 0.9989, 0.9999];
    for (point, want_r) in marked.iter().zip(want) {
        report.check(Check::new(
            format!("R at pi = {:.3}", point.availability),
            want_r,
            point.evaluation.reachability(),
            6e-4,
        ));
    }
    report
}

/// Fig. 9: delay distributions under different link availabilities.
pub fn fig9() -> ExperimentReport {
    let mut report = ExperimentReport::new("fig9", "delay distributions vs link availability");
    let pis = paper_availabilities();
    let rows = crate::engine_support::with_engine(|engine| {
        whart_engine::sweeps::delay_summaries(
            engine,
            &pis[1..],
            interval(4),
            DelayConvention::Absolute,
        )
    })
    .expect("valid");
    for row in &rows {
        report.line(series(
            &format!("pi = {:.3}", row.availability),
            row.distribution.iter().map(|(_, p)| p),
        ));
    }
    // The figure's annotated points.
    let p210_774 = rows[0].distribution.cdf(210.0) - rows[0].distribution.cdf(70.0);
    let p350_774 = rows[0].distribution.cdf(350.0) - rows[0].distribution.cdf(210.0);
    let p210_948 = rows[3].distribution.cdf(210.0) - rows[3].distribution.cdf(70.0);
    report.check(Check::new(
        "P(210 ms) at pi = 0.774",
        0.3228,
        p210_774,
        5e-4,
    ));
    report.check(Check::new(
        "P(350 ms) at pi = 0.774",
        0.1459,
        p350_774,
        5e-4,
    ));
    report.check(Check::new(
        "P(210 ms) at pi = 0.948",
        0.1332,
        p210_948,
        5e-4,
    ));
    // Prose claims: 98.5% within two cycles at 0.948; ~77.8% at 0.774; the
    // 4th-cycle tail at 0.774 is "more than 5.3%". These fractions count
    // all generated messages, so the conditional cdf is scaled by R.
    let two_cycles = |row: &whart_model::sweeps::DelaySummary| {
        row.distribution.cdf(210.0) * row.reachability_percent / 100.0
    };
    report.check(Check::new(
        "2-cycle fraction at 0.948",
        0.985,
        two_cycles(&rows[3]),
        5e-4,
    ));
    report.check(Check::new(
        "2-cycle fraction at 0.774",
        0.778,
        two_cycles(&rows[0]),
        5e-4,
    ));
    let tail_774 = 1.0 - rows[0].distribution.cdf(350.0);
    report.check(
        Check::new(
            "4th-cycle tail at 0.774",
            0.053,
            tail_774 * rows[0].reachability_percent / 100.0,
            2e-3,
        )
        .with_note("paper: 'more than 5.3% ... delay of 470ms' (the 4th-cycle delay is 490 ms)"),
    );
    report
}

/// Table I: availability -> reachability and expected delay.
pub fn table1() -> ExperimentReport {
    let mut report = ExperimentReport::new("table1", "influence of pi(up) on R and E[tau]");
    let pis = paper_availabilities();
    let rows = delay_summaries(&pis[1..], interval(4), DelayConvention::Absolute).expect("valid");
    report.line("pi(up)   R (%)    E[tau] (ms)");
    for row in &rows {
        report.line(format!(
            "{:.3}    {:>6.2}   {:>6.1}",
            row.availability, row.reachability_percent, row.expected_delay_ms
        ));
    }
    report.check(Check::new(
        "R% at 0.774",
        97.37,
        rows[0].reachability_percent,
        0.011,
    ));
    report.check(Check::new(
        "E[tau] at 0.774",
        179.0,
        rows[0].expected_delay_ms,
        0.35,
    ));
    report.check(Check::new(
        "R% at 0.83",
        99.07,
        rows[1].reachability_percent,
        0.011,
    ));
    report.check(Check::new(
        "E[tau] at 0.83",
        151.0,
        rows[1].expected_delay_ms,
        0.35,
    ));
    report.check(Check::new(
        "R% at 0.903",
        99.89,
        rows[2].reachability_percent,
        0.011,
    ));
    report.check(
        Check::new("E[tau] at 0.903", 113.0, rows[2].expected_delay_ms, 1.6).with_note(
            "paper erratum: its own model yields 114.5 ms here (all other rows match to <0.3 ms)",
        ),
    );
    report.check(Check::new(
        "R% at 0.948",
        99.99,
        rows[3].reachability_percent,
        0.011,
    ));
    report.check(Check::new(
        "E[tau] at 0.948",
        93.0,
        rows[3].expected_delay_ms,
        0.35,
    ));
    report
}

/// Fig. 10: reachability vs hop count at `pi(up) = 0.83`.
pub fn fig10() -> ExperimentReport {
    let mut report = ExperimentReport::new("fig10", "reachability vs hop count");
    let points = sweep_hop_count(4, 0.83, interval(4)).expect("valid");
    for &(hops, r) in &points {
        report.line(format!("  {hops} hops: R = {r:.4}"));
    }
    let want = [0.9992, 0.9964, 0.9907, 0.9812];
    for (&(hops, r), want_r) in points.iter().zip(want) {
        report.check(Check::new(format!("R at {hops} hops"), want_r, r, 6e-4));
    }
    // Sanity: the 4-hop guideline model exists and the trend is monotone.
    report.check(Check::new(
        "monotone decrease",
        1.0,
        f64::from(u8::from(points.windows(2).all(|w| w[1].1 < w[0].1))),
        0.0,
    ));
    let _ = sweeps::chain_model(4, 0.83, interval(4)).expect("4 hops is the guideline maximum");
    report
}
