//! Extension experiments beyond the paper's evaluation: Wi-Fi coexistence
//! with blacklisting, and the geometry-to-performance pipeline.

use crate::report::{Check, ExperimentReport};
use whart_channel::{ChannelConditions, LinkModel, PropagationModel};
use whart_model::{DelayConvention, NetworkModel};
use whart_net::typical::TypicalNetwork;
use whart_net::{
    Deployment, Position, ReportingInterval, Schedule, SchedulePriority, Superframe,
    MAX_HOPS_GUIDELINE,
};
use whart_sim::{InterferenceWindow, PhyMode, Simulator};

/// Wi-Fi coexistence: a persistent interferer on 12 of 16 channels causes
/// losses under plain hopping; blacklisting the interfered channels (the
/// network manager's countermeasure, Section II) removes them.
pub fn interference(intervals: u64) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "interference",
        "Wi-Fi coexistence: hopping vs blacklisting (extension)",
    );
    let windows = vec![
        InterferenceWindow::wifi(1, 0, u64::MAX, 0.5),
        InterferenceWindow::wifi(6, 0, u64::MAX, 0.5),
        InterferenceWindow::wifi(11, 0, u64::MAX, 0.5),
    ];
    let net = TypicalNetwork::new(LinkModel::from_availability(0.83, 0.9).expect("valid"));
    let run = |blacklisted: bool| {
        let mut blacklist = whart_channel::Blacklist::new();
        if blacklisted {
            for w in &windows {
                for &c in &w.channels {
                    blacklist.ban(c).expect("four channels stay active");
                }
            }
        }
        let sim = Simulator::from_typical(
            &net,
            net.schedule_eta_a(),
            ReportingInterval::REGULAR,
            PhyMode::HoppingInterfered {
                conditions: ChannelConditions::uniform(1e-5).expect("valid"),
                blacklist,
                message_bits: 1016,
                windows: windows.clone(),
            },
        )
        .expect("valid");
        sim.run(20260707, intervals)
    };
    let interfered = run(false);
    let protected = run(true);
    let lost = |r: &whart_sim::SimReport| r.paths.iter().map(|p| p.lost).sum::<u64>();
    report.line(format!(
        "losses over {intervals} intervals: {} interfered vs {} blacklisted",
        lost(&interfered),
        lost(&protected)
    ));
    report.check(Check::new(
        "interferer causes losses",
        1.0,
        f64::from(u8::from(lost(&interfered) > 0)),
        0.0,
    ));
    let loss_rate_protected =
        lost(&protected) as f64 / (protected.paths.len() as u64 * intervals) as f64;
    report.check(Check::new(
        "blacklisting restores near-perfect delivery",
        0.0,
        loss_rate_protected,
        0.002,
    ));
    report
}

/// Geometry pipeline: a 160 m process hall deployed from coordinates;
/// topology, routes, schedule and QoS all derived from first principles.
pub fn floorplan() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "floorplan",
        "plant floor plan to quality of service (extension)",
    );
    let mut deployment = Deployment::new(
        Position::new(0.0, 0.0),
        PropagationModel::industrial(),
        0.85,
    )
    .expect("valid");
    let instruments = [
        (1u32, 25.0, 10.0),
        (2, 30.0, -12.0),
        (3, 60.0, 8.0),
        (4, 65.0, -15.0),
        (5, 95.0, 12.0),
        (6, 100.0, -10.0),
        (7, 130.0, 5.0),
        (8, 155.0, -5.0),
    ];
    for (id, x, y) in instruments {
        deployment
            .place(id, Position::new(x, y))
            .expect("distinct ids");
    }
    let (topology, paths) = deployment
        .build_routed(MAX_HOPS_GUIDELINE)
        .expect("the hall is coverable");
    let schedule =
        Schedule::by_priority(&paths, SchedulePriority::LongPathsFirst).expect("valid paths");
    let total_hops: usize = paths.iter().map(|p| p.hop_count()).sum();
    let superframe = Superframe::symmetric(total_hops as u32).expect("valid");
    let model = NetworkModel::new(
        topology,
        paths.clone(),
        schedule,
        superframe,
        ReportingInterval::REGULAR,
    )
    .expect("valid");
    let eval = model.evaluate().expect("valid");
    for (i, r) in eval.reports().iter().enumerate() {
        report.line(format!(
            "device {:>2}: {} (R = {:.6}, E[d] = {:.1} ms)",
            i + 1,
            r.path,
            r.evaluation.reachability(),
            r.evaluation
                .expected_delay_ms(DelayConvention::Absolute)
                .unwrap_or(f64::NAN)
        ));
    }
    // Every device respects the hop guideline and clears 99.9% reachability
    // at Is = 4 in this layout.
    report.check(Check::new(
        "all routes within 4 hops",
        1.0,
        f64::from(u8::from(paths.iter().all(|p| p.hop_count() <= 4))),
        0.0,
    ));
    let min_r = eval.reachabilities().iter().copied().fold(1.0, f64::min);
    report.check(Check::new(
        "worst device reachability > 0.999",
        1.0,
        min_r,
        1e-3,
    ));
    // Far devices relay: at least one multi-hop route emerges.
    report.check(Check::new(
        "mesh relaying emerges",
        1.0,
        f64::from(u8::from(paths.iter().any(|p| p.hop_count() >= 2))),
        0.0,
    ));
    report
}
