//! Regenerates every table and figure of the paper's evaluation
//! (Remke & Wu, "WirelessHART Modeling and Performance Evaluation",
//! DSN 2013) and prints paper-vs-computed comparisons.
//!
//! ```text
//! whart-experiments [all|<id> ...] [--json] [--sim-intervals N]
//! ```
//!
//! Ids: fig4 fig5 fig6 fig7 fig8 fig9 fig10 table1 fig13 fig14 fig15 fig16
//! table2 fig17 table3 table3-ablation fig18 fig19 table4 sim-validation
//! control-loop interference floorplan optimizer

mod engine_support;
mod extensions;
mod fast_control;
mod network;
mod optimizer;
mod prediction;
mod report;
mod robustness;
mod section_v;
mod validation;

use report::ExperimentReport;
use std::process::ExitCode;

const ALL_IDS: &[&str] = &[
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "table1",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "table2",
    "fig17",
    "table3",
    "table3-ablation",
    "fig18",
    "fig19",
    "table4",
    "sim-validation",
    "control-loop",
    "interference",
    "floorplan",
    "optimizer",
];

fn run_experiment(id: &str, sim_intervals: u64) -> Option<ExperimentReport> {
    Some(match id {
        "fig4" => section_v::fig4(),
        "fig5" => section_v::fig5(),
        "fig6" => section_v::fig6(),
        "fig7" => section_v::fig7(),
        "fig8" => section_v::fig8(),
        "fig9" => section_v::fig9(),
        "fig10" => section_v::fig10(),
        "table1" => section_v::table1(),
        "fig13" => network::fig13(),
        "fig14" => network::fig14(),
        "fig15" => network::fig15(),
        "fig16" => network::fig16(),
        "table2" => network::table2(),
        "fig17" => robustness::fig17(),
        "table3" => robustness::table3(),
        "table3-ablation" => robustness::table3_ablation(),
        "fig18" => fast_control::fig18(),
        "fig19" => fast_control::fig19(),
        "table4" => prediction::table4(),
        "sim-validation" => validation::sim_validation(sim_intervals),
        "control-loop" => validation::control_loop(),
        "interference" => extensions::interference(sim_intervals.min(20_000)),
        "floorplan" => extensions::floorplan(),
        "optimizer" => optimizer::optimizer(),
        _ => return None,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let sim_intervals = args
        .iter()
        .position(|a| a == "--sim-intervals")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000);
    let ids: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--") && !a.chars().all(|c| c.is_ascii_digit()))
        .cloned()
        .collect();
    let ids: Vec<&str> = if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ALL_IDS.to_vec()
    } else {
        ids.iter().map(String::as_str).collect()
    };

    let mut reports = Vec::new();
    for id in &ids {
        match run_experiment(id, sim_intervals) {
            Some(report) => reports.push(report),
            None => {
                eprintln!("unknown experiment '{id}'; known: {}", ALL_IDS.join(" "));
                return ExitCode::FAILURE;
            }
        }
    }

    let failures: usize = reports.iter().map(ExperimentReport::failures).sum();
    let checks: usize = reports.iter().map(|r| r.checks.len()).sum();
    if json {
        let payload =
            whart_json::Json::Array(reports.iter().map(ExperimentReport::to_json).collect());
        println!("{}", payload.to_pretty());
    } else {
        for r in &reports {
            println!("{}", r.render());
        }
        println!(
            "summary: {} experiments, {checks} checks, {failures} failures",
            reports.len()
        );
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_experiment_runs_and_passes() {
        for id in ALL_IDS {
            // Keep the Monte-Carlo part small in unit tests.
            let report = run_experiment(id, 20_000).unwrap_or_else(|| panic!("missing {id}"));
            assert_eq!(report.failures(), 0, "{id} failed:\n{}", report.render());
            assert!(
                !report.checks.is_empty() || !report.lines.is_empty(),
                "{id} is empty"
            );
        }
    }

    #[test]
    fn unknown_experiment_is_rejected() {
        assert!(run_experiment("fig99", 10).is_none());
    }
}
