//! Section VI-A/B experiments: the typical network
//! (Figs. 13-16, Table II).

use crate::engine_support::with_engine;
use crate::report::{series, Check, ExperimentReport};
use whart_channel::{LinkModel, WIRELESSHART_MESSAGE_BITS};
use whart_engine::{LinkQualitySpec, Outcome, Scenario};
use whart_model::sweeps::PAPER_BERS;
use whart_model::{DelayConvention, NetworkEvaluation, NetworkModel, UtilizationConvention};
use whart_net::typical::TypicalNetwork;
use whart_net::ReportingInterval;

/// Builds and evaluates the typical network at a BER operating point under
/// `eta_a` (or `eta_b`), through the shared batch engine: repeated
/// operating points (fig13 vs table2 vs fig19's baseline) answer from the
/// path cache instead of re-solving ten DTMCs.
pub fn evaluate_typical(ber: f64, eta_b: bool, interval: ReportingInterval) -> NetworkEvaluation {
    with_engine(|engine| {
        let link = engine
            .link_model(&LinkQualitySpec::Ber {
                ber,
                message_bits: WIRELESSHART_MESSAGE_BITS,
                p_rc: LinkModel::DEFAULT_RECOVERY,
            })
            .expect("paper operating points are valid");
        let net = TypicalNetwork::new(link);
        let schedule = if eta_b {
            net.schedule_eta_b()
        } else {
            net.schedule_eta_a()
        };
        let model = NetworkModel::from_typical(&net, schedule, interval)
            .expect("the typical network is statically valid");
        let label = format!("typical ber={ber} eta_b={eta_b} Is={}", interval.cycles());
        engine.submit(Scenario::network(label, model));
        let mut results = engine
            .drain()
            .expect("evaluation of a valid network succeeds");
        match results.pop().expect("one scenario drained").outcome {
            Outcome::Network(evaluation) => evaluation,
            Outcome::Paths(_) => unreachable!("network workload"),
        }
    })
}

/// Fig. 13: reachability of all ten paths at four availabilities.
pub fn fig13() -> ExperimentReport {
    let mut report = ExperimentReport::new("fig13", "per-path reachability in the typical network");
    // BERs for pi in {0.903, 0.83, 0.774, 0.693}.
    let points = [(1e-4, 0.903), (2e-4, 0.83), (3e-4, 0.774), (5e-4, 0.693)];
    let mut all = Vec::new();
    for (ber, pi) in points {
        let eval = evaluate_typical(ber, false, ReportingInterval::REGULAR);
        let r = eval.reachabilities();
        report.line(series(&format!("pi = {pi:.3}"), r.iter().copied()));
        all.push((pi, r));
    }
    // Shape checks from the paper's prose: high availability keeps even
    // 3-hop paths near 1; at 0.693 the 3-hop paths drop to ~0.93 ("a
    // message loss of one out of 13 messages").
    let r903 = &all[0].1;
    report.check(Check::new(
        "3-hop path R at pi = 0.903",
        0.9989,
        r903[9],
        5e-4,
    ));
    let r693 = &all[3].1;
    report.check(Check::new(
        "3-hop path R at pi = 0.693",
        0.9238,
        r693[9],
        2e-3,
    ));
    report.check(Check::new(
        "loss ~ 1/13 at pi = 0.693 (3-hop)",
        13.0,
        1.0 / (1.0 - r693[9]),
        0.6,
    ));
    // Reachability decreases with hop count at every availability.
    for (pi, r) in &all {
        let ordered = r[0] >= r[3] && r[3] >= r[8];
        report.check(Check::new(
            format!("1-hop >= 2-hop >= 3-hop at pi = {pi}"),
            1.0,
            f64::from(u8::from(ordered)),
            0.0,
        ));
    }
    report
}

/// Fig. 14: the overall delay distribution of the typical network at
/// `pi = 0.83`.
pub fn fig14() -> ExperimentReport {
    let mut report =
        ExperimentReport::new("fig14", "overall delay distribution (eta_a, pi = 0.83)");
    let eval = evaluate_typical(2e-4, false, ReportingInterval::REGULAR);
    let gamma = eval.overall_delay_distribution(DelayConvention::Absolute);
    for (delay, p) in gamma.iter() {
        if p > 1e-6 {
            report.line(format!("  {delay:>5} ms : {p:.4}"));
        }
    }
    let mean_r = eval.reachabilities().iter().sum::<f64>() / 10.0;
    // The paper's fractions count all generated messages (not only
    // delivered ones), hence the scaling by the mean reachability.
    let first = gamma.cdf(200.0) * mean_r;
    let second = (gamma.cdf(600.0) - gamma.cdf(200.0)) * mean_r;
    let by_600 = gamma.cdf(600.0) * mean_r;
    let by_1000 = gamma.cdf(1000.0) * mean_r;
    report.check(Check::new("first-cycle fraction", 0.708, first, 2e-3));
    report.check(Check::new("second-cycle fraction", 0.217, second, 3e-3));
    report.check(Check::new("delivered by 600 ms", 0.926, by_600, 3e-3));
    report.check(Check::new("delivered by 1000 ms", 0.983, by_1000, 3e-3));
    let max_delay = gamma.iter().last().expect("non-empty").0;
    report.check(
        Check::new("longest delay (ms)", 1400.0, max_delay, 15.0).with_note(
            "paper reads 1400 off the axis; the exact arrival is (3*40+19)*10 = 1390 ms",
        ),
    );
    report
}

/// Fig. 15: per-path expected delays under `eta_a` and the overall mean.
pub fn fig15() -> ExperimentReport {
    let mut report = ExperimentReport::new("fig15", "expected delays per path (eta_a)");
    let eval = evaluate_typical(2e-4, false, ReportingInterval::REGULAR);
    let delays = eval.expected_delays_ms(DelayConvention::Absolute);
    for (i, d) in delays.iter().enumerate() {
        report.line(format!(
            "  path {:>2}: {:>6.1} ms",
            i + 1,
            d.expect("reachable")
        ));
    }
    report.check(Check::new(
        "bottleneck path 10 E[tau]",
        421.409,
        delays[9].expect("reachable"),
        1.0,
    ));
    report.check(Check::new(
        "overall mean E[Gamma]",
        235.0,
        eval.mean_delay_ms(DelayConvention::Absolute)
            .expect("reachable"),
        1.0,
    ));
    report.check(Check::new(
        "bottleneck index",
        10.0,
        (eval
            .delay_bottleneck(DelayConvention::Absolute)
            .expect("paths exist")
            + 1) as f64,
        0.0,
    ));
    report
}

/// Fig. 16: `eta_a` vs `eta_b` expected delays.
pub fn fig16() -> ExperimentReport {
    let mut report = ExperimentReport::new("fig16", "expected delays under eta_a vs eta_b");
    let a = evaluate_typical(2e-4, false, ReportingInterval::REGULAR);
    let b = evaluate_typical(2e-4, true, ReportingInterval::REGULAR);
    let da = a.expected_delays_ms(DelayConvention::Absolute);
    let db = b.expected_delays_ms(DelayConvention::Absolute);
    report.line("path   eta_a (ms)   eta_b (ms)");
    for i in 0..10 {
        report.line(format!(
            "{:>4}   {:>9.1}   {:>9.1}",
            i + 1,
            da[i].expect("reachable"),
            db[i].expect("reachable")
        ));
    }
    report.check(Check::new(
        "eta_b path 10",
        291.0,
        db[9].expect("reachable"),
        1.5,
    ));
    report.check(Check::new(
        "eta_b new bottleneck path 7",
        317.9528,
        db[6].expect("reachable"),
        1.0,
    ));
    report.check(Check::new(
        "eta_b bottleneck index",
        7.0,
        (b.delay_bottleneck(DelayConvention::Absolute)
            .expect("paths exist")
            + 1) as f64,
        0.0,
    ));
    report.check(Check::new(
        "eta_b overall mean E[Gamma]",
        272.0,
        b.mean_delay_ms(DelayConvention::Absolute)
            .expect("reachable"),
        1.0,
    ));
    // eta_b balances: its delay spread is smaller than eta_a's.
    let spread = |d: &[Option<f64>]| {
        let v: Vec<f64> = d.iter().map(|x| x.expect("reachable")).collect();
        v.iter().copied().fold(f64::MIN, f64::max) - v.iter().copied().fold(f64::MAX, f64::min)
    };
    report.check(Check::new(
        "eta_b spread < eta_a spread",
        1.0,
        f64::from(u8::from(spread(&db) < spread(&da))),
        0.0,
    ));
    report
}

/// Table II: network utilization vs availability.
pub fn table2() -> ExperimentReport {
    let mut report = ExperimentReport::new("table2", "utilization of the typical network");
    let bers_with_989: [f64; 6] = {
        let mut all = [0.0; 6];
        all[..5].copy_from_slice(&PAPER_BERS);
        all[5] = 1e-5; // pi = 0.989
        all
    };
    let want = [0.313, 0.297, 0.283, 0.263, 0.25, 0.24];
    report.line("pi(up)   U");
    for (&ber, &want_u) in bers_with_989.iter().zip(&want) {
        let link = LinkModel::from_ber(ber, WIRELESSHART_MESSAGE_BITS, 0.9).expect("valid");
        let eval = evaluate_typical(ber, false, ReportingInterval::REGULAR);
        let u = eval.utilization(UtilizationConvention::AsEvaluated);
        report.line(format!("{:.3}    {:.4}", link.availability(), u));
        report.check(Check::new(
            format!("U at pi = {:.3}", link.availability()),
            want_u,
            u,
            3e-3,
        ));
    }
    report.line(
        "(convention: n + i - 1 slots per delivered message, losses not counted — see DESIGN.md)",
    );
    report
}
