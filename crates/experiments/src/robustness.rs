//! Section VI-C experiments: stability and robustness (Fig. 17, Table III)
//! plus the forced-outage ablation.

use crate::report::{series, Check, ExperimentReport};
use whart_channel::{LinkModel, LinkState, WIRELESSHART_MESSAGE_BITS};
use whart_model::failure::{forced_outage_cycles, reachability_with_lost_cycles};
use whart_model::{LinkDynamics, NetworkModel, PathModel};
use whart_net::typical::TypicalNetwork;
use whart_net::{NodeId, ReportingInterval, Superframe};

fn paper_link() -> LinkModel {
    LinkModel::from_ber(2e-4, WIRELESSHART_MESSAGE_BITS, 0.9).expect("valid")
}

/// An n-hop chain model with the typical network's frame (`F_up = 20`).
fn chain(hops: usize, link: LinkModel) -> PathModel {
    let mut b = PathModel::builder();
    for k in 0..hops {
        b.add_hop(LinkDynamics::steady(link), k);
    }
    b.superframe(Superframe::symmetric(20).expect("valid"))
        .interval(ReportingInterval::REGULAR);
    b.build().expect("valid chain")
}

/// Fig. 17: link recovery from a transient failure.
pub fn fig17() -> ExperimentReport {
    let mut report = ExperimentReport::new("fig17", "link recovery from a transient failure");
    for p_fl in [0.184, 0.05] {
        let model = LinkModel::new(p_fl, 0.9).expect("valid");
        let dynamics = LinkDynamics::starting_in(model, LinkState::Down);
        let trajectory = dynamics.up_trajectory(6);
        report.line(series(
            &format!("p_fl = {p_fl}"),
            trajectory.iter().copied(),
        ));
        report.check(Check::new(
            format!("steady state (p_fl = {p_fl})"),
            model.availability(),
            trajectory[6],
            2e-3,
        ));
        // "the link returns to its steady-state almost immediately": within
        // one slot it is at p_rc = 0.9, within two it is within 1% of pi.
        report.check(Check::new(
            format!("P(up) after 1 slot (p_fl = {p_fl})"),
            0.9,
            trajectory[1],
            1e-12,
        ));
        report.check(Check::new(
            format!("within 1% of steady after 2 slots (p_fl = {p_fl})"),
            1.0,
            f64::from(u8::from(
                (trajectory[2] - model.availability()).abs() < 0.01,
            )),
            0.0,
        ));
    }
    report
}

/// Table III: reachability with a link failure lasting one cycle.
pub fn table3() -> ExperimentReport {
    let mut report =
        ExperimentReport::new("table3", "reachability with link e3 failing for one cycle");
    // Affected paths: 3 (1 hop), 7 and 8 (2 hops), 10 (3 hops).
    let rows = [
        ("path 3", 1usize, 99.92, 99.51),
        ("path 7", 2, 99.64, 98.30),
        ("path 8", 2, 99.64, 98.30),
        ("path 10", 3, 99.07, 96.28),
    ];
    report.line("path    hops  R% no failure  R% with failure");
    for (name, hops, want_without, want_with) in rows {
        let model = chain(hops, paper_link());
        let without = model.evaluate().reachability() * 100.0;
        let with = reachability_with_lost_cycles(&model, 1).expect("valid") * 100.0;
        report.line(format!(
            "{name:<7} {hops:>4}  {without:>12.2}  {with:>14.2}"
        ));
        report.check(Check::new(
            format!("{name} without failure"),
            want_without,
            without,
            0.011,
        ));
        report.check(Check::new(
            format!("{name} with failure"),
            want_with,
            with,
            0.011,
        ));
    }
    report.line("(convention: the affected paths lose the entire failure cycle — see DESIGN.md)");
    report
}

/// Ablation: Table III's lost-cycle convention vs the finer forced-DOWN
/// link window (upstream hops still progress during the outage).
pub fn table3_ablation() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "table3-ablation",
        "lost-cycle convention vs forced-DOWN e3 window",
    );
    let net = TypicalNetwork::new(paper_link());
    let mut model =
        NetworkModel::from_typical(&net, net.schedule_eta_a(), ReportingInterval::REGULAR)
            .expect("valid");
    let outage = forced_outage_cycles(net.superframe, 0, 1);
    let e3 = net
        .topology
        .link(NodeId::field(3), NodeId::Gateway)
        .expect("e3 exists");
    model
        .override_link_dynamics(
            NodeId::field(3),
            NodeId::Gateway,
            LinkDynamics::steady(e3).with_outage(outage),
        )
        .expect("e3 exists");
    let fine = model.evaluate().expect("valid");
    report.line("path    lost-cycle R%   forced-DOWN R%   baseline R%");
    for (index, hops) in [(2usize, 1usize), (6, 2), (7, 2), (9, 3)] {
        let chain_model = chain(hops, paper_link());
        let coarse = reachability_with_lost_cycles(&chain_model, 1).expect("valid") * 100.0;
        let fine_r = fine.reports()[index].evaluation.reachability() * 100.0;
        let baseline = chain_model.evaluate().reachability() * 100.0;
        report.line(format!(
            "path {:<3} {:>12.2}   {:>13.2}   {:>10.2}",
            index + 1,
            coarse,
            fine_r,
            baseline
        ));
        // The fine mechanism is sandwiched between the published convention
        // and the no-failure baseline.
        report.check(Check::new(
            format!("path {} ordering coarse <= fine <= baseline", index + 1),
            1.0,
            f64::from(u8::from(
                coarse <= fine_r + 1e-9 && fine_r <= baseline + 1e-9,
            )),
            0.0,
        ));
    }
    // Paths that do not cross e3 are untouched.
    let untouched = fine.reports()[0].evaluation.reachability() * 100.0;
    let baseline1 = chain(1, paper_link()).evaluate().reachability() * 100.0;
    report.check(Check::new("path 1 unaffected", baseline1, untouched, 1e-9));
    report
}
