//! Section VI-E experiment: performance prediction by path composition
//! (Table IV) and the routing decision of Fig. 20.

use crate::report::{series, Check, ExperimentReport};
use whart_channel::{EbN0, LinkModel, Modulation, WIRELESSHART_MESSAGE_BITS};
use whart_model::compose::{peer_cycle_probabilities, predict_composition, rank_candidates};
use whart_model::{LinkDynamics, PathModel};
use whart_net::{ReportingInterval, Superframe};

/// The existing paths of the scenario: path 1 has two hops, path 2 one,
/// all links at `pi = 0.83`.
fn existing(hops: usize) -> whart_model::PathEvaluation {
    let link = LinkModel::from_availability(0.83, 0.9).expect("valid");
    let mut b = PathModel::builder();
    for k in 0..hops {
        b.add_hop(LinkDynamics::steady(link), k);
    }
    b.superframe(Superframe::symmetric(20).expect("valid"))
        .interval(ReportingInterval::REGULAR);
    b.build().expect("valid").evaluate()
}

/// Table IV: the two candidate attachments for the joining node 5.
pub fn table4() -> ExperimentReport {
    let mut report =
        ExperimentReport::new("table4", "performance prediction by path compositionality");
    // Peer links from measured SNR: Eb/N0 = 7 towards node 3, 6 towards
    // node 4.
    let peer3 = LinkModel::from_snr(
        Modulation::Oqpsk,
        EbN0::from_linear(7.0),
        WIRELESSHART_MESSAGE_BITS,
        0.9,
    )
    .expect("valid");
    let peer4 = LinkModel::from_snr(
        Modulation::Oqpsk,
        EbN0::from_linear(6.0),
        WIRELESSHART_MESSAGE_BITS,
        0.9,
    )
    .expect("valid");
    report.check(Check::new(
        "BER3 (1e-5)",
        9.14,
        Modulation::Oqpsk.ber(EbN0::from_linear(7.0)) * 1e5,
        0.01,
    ));
    report.check(Check::new(
        "BER4 (1e-4)",
        2.66,
        Modulation::Oqpsk.ber(EbN0::from_linear(6.0)) * 1e4,
        0.01,
    ));
    report.check(Check::new("p_fl3", 0.089, peer3.p_fl(), 5e-4));
    report.check(Check::new("p_fl4", 0.237, peer4.p_fl(), 5e-4));

    let interval = ReportingInterval::REGULAR;
    let alpha = predict_composition(&peer_cycle_probabilities(peer3, interval), 1, &existing(2))
        .expect("valid");
    let beta = predict_composition(&peer_cycle_probabilities(peer4, interval), 1, &existing(1))
        .expect("valid");

    report.line(series(
        "g_alpha",
        alpha.cycle_probabilities.as_slice().iter().copied(),
    ));
    report.line(series(
        "g_beta ",
        beta.cycle_probabilities.as_slice().iter().copied(),
    ));
    let want_alpha = [0.6274, 0.2694, 0.0784, 0.0193];
    let want_beta = [0.6573, 0.2485, 0.0707, 0.0180];
    for (i, (&wa, &wb)) in want_alpha.iter().zip(&want_beta).enumerate() {
        report.check(Check::new(
            format!("g_alpha({})", i + 1),
            wa,
            alpha.cycle_probabilities.get(i),
            1.5e-3,
        ));
        report.check(Check::new(
            format!("g_beta({})", i + 1),
            wb,
            beta.cycle_probabilities.get(i),
            1.5e-3,
        ));
    }
    report.check(Check::new(
        "R_alpha (%)",
        99.46,
        alpha.reachability * 100.0,
        0.1,
    ));
    report.check(Check::new(
        "R_beta (%)",
        99.45,
        beta.reachability * 100.0,
        0.1,
    ));

    // The routing decision: reachabilities tie, so the 2-hop beta wins
    // (one fewer schedule slot, ~10 ms shorter expected delay).
    let order = rank_candidates(&[alpha.clone(), beta.clone()], 0.001);
    report.line(format!(
        "decision: path {} preferred (hops: alpha = {}, beta = {})",
        if order[0] == 1 { "beta" } else { "alpha" },
        alpha.hop_count,
        beta.hop_count
    ));
    report.check(Check::new(
        "beta preferred",
        1.0,
        f64::from(u8::from(order[0] == 1)),
        0.0,
    ));
    report
}
