//! Section VI-D experiments: fast control (Figs. 18-19).

use crate::network::evaluate_typical;
use crate::report::{series, Check, ExperimentReport};
use whart_model::sweeps::{chain_model, sweep_interval};
use whart_net::ReportingInterval;

/// Fig. 18: one-hop deliveries within a 4-cycle window for
/// `Is in {1, 2, 4}` at `pi = 0.903`.
pub fn fig18() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig18",
        "messages delivered per window vs reporting interval",
    );
    let pi = 0.903;
    let window = 4u32;
    for is in [1u32, 2, 4] {
        let r = chain_model(1, pi, ReportingInterval::new(is).expect("positive"))
            .expect("valid")
            .evaluate()
            .reachability();
        let messages = window / is;
        report.line(format!(
            "Is = {is}: {messages} message(s) per {window}-cycle window, each delivered with R = {r:.4}"
        ));
        match is {
            1 => report.check(Check::new("R per message at Is = 1", 0.903, r, 1e-3)),
            2 => report.check(Check::new("R per message at Is = 2", 0.99, r, 1e-3)),
            _ => report.check(Check::new("R per message at Is = 4", 0.999, r, 1e-3)),
        };
    }
    // Longer intervals: fewer messages, each more reliable.
    let sweep = sweep_interval(&[1, 2, 4], |is| chain_model(1, pi, is)).expect("valid");
    report.check(Check::new(
        "R monotone in Is",
        1.0,
        f64::from(u8::from(sweep.windows(2).all(|w| w[1].1 > w[0].1))),
        0.0,
    ));
    report
}

/// Fig. 19: per-path reachability of the typical network under fast
/// (`Is = 2`) vs regular (`Is = 4`) control across availabilities.
pub fn fig19() -> ExperimentReport {
    let mut report = ExperimentReport::new("fig19", "per-path reachability, Is = 2 vs Is = 4");
    let points = [(1e-4, 0.903), (2e-4, 0.83), (3e-4, 0.774), (5e-4, 0.693)];
    for (ber, pi) in points {
        let fast = evaluate_typical(ber, false, ReportingInterval::FAST);
        let regular = evaluate_typical(ber, false, ReportingInterval::REGULAR);
        let rf = fast.reachabilities();
        let rr = regular.reachabilities();
        report.line(series(&format!("pi = {pi:.3}, Is = 2"), rf.iter().copied()));
        report.line(series(&format!("pi = {pi:.3}, Is = 4"), rr.iter().copied()));
        // Fast control is uniformly below regular control.
        let below = rf.iter().zip(&rr).all(|(f, r)| f <= r);
        report.check(Check::new(
            format!("Is=2 <= Is=4 on every path (pi = {pi})"),
            1.0,
            f64::from(u8::from(below)),
            0.0,
        ));
        // The gap grows with hop count: largest on the 3-hop paths.
        let gap1 = rr[0] - rf[0];
        let gap3 = rr[9] - rf[9];
        report.check(Check::new(
            format!("gap larger on 3-hop paths (pi = {pi})"),
            1.0,
            f64::from(u8::from(gap3 > gap1)),
            0.0,
        ));
    }
    // The gap also grows as availability decreases (paper: "the difference
    // ... increases with decreasing link availabilities").
    let gap_at = |ber: f64| {
        let fast = evaluate_typical(ber, false, ReportingInterval::FAST);
        let regular = evaluate_typical(ber, false, ReportingInterval::REGULAR);
        regular.reachabilities()[9] - fast.reachabilities()[9]
    };
    report.check(Check::new(
        "gap grows as pi drops (3-hop path)",
        1.0,
        f64::from(u8::from(gap_at(5e-4) > gap_at(1e-4))),
        0.0,
    ));
    report
}
