//! Beyond-the-paper experiments: Monte-Carlo validation of the analytical
//! model and the closed-loop control study the paper lists as future work.

use crate::report::{Check, ExperimentReport};
use rand::rngs::StdRng;
use rand::SeedableRng;
use whart_channel::{LinkModel, WIRELESSHART_MESSAGE_BITS};
use whart_control::{
    metrics, run_loop, FirstOrderPlant, LoopConfig, ModelDelivery, Pid, PidConfig,
};
use whart_model::{DelayConvention, LinkDynamics, NetworkModel, PathModel, UtilizationConvention};
use whart_net::typical::TypicalNetwork;
use whart_net::{ReportingInterval, Superframe};
use whart_sim::{wilson_interval, PhyMode, Simulator};

/// Simulation cross-check: the slot-level Monte-Carlo simulator must agree
/// with the analytical DTMC on the typical network.
pub fn sim_validation(intervals: u64) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "sim-validation",
        "Monte-Carlo simulator vs analytical model (typical network, pi = 0.83)",
    );
    let link = LinkModel::from_ber(2e-4, WIRELESSHART_MESSAGE_BITS, 0.9).expect("valid");
    let net = TypicalNetwork::new(link);
    let model = NetworkModel::from_typical(&net, net.schedule_eta_a(), ReportingInterval::REGULAR)
        .expect("valid");
    let analytic = model.evaluate().expect("valid");
    let sim = Simulator::from_typical(
        &net,
        net.schedule_eta_a(),
        ReportingInterval::REGULAR,
        PhyMode::Gilbert,
    )
    .expect("valid");
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let observed = sim.run_parallel(20260706, intervals, workers);
    report.line(format!("{intervals} reporting intervals simulated"));
    report.line("path  analytic R  simulated R  within 99.9% CI");
    let mut misses = 0u32;
    for (i, r) in analytic.reports().iter().enumerate() {
        let stats = &observed.paths[i];
        let delivered = stats.messages() - stats.lost;
        let (lo, hi) = wilson_interval(delivered, stats.messages(), 3.29);
        let a = r.evaluation.reachability();
        let inside = (lo..=hi).contains(&a);
        misses += u32::from(!inside);
        report.line(format!(
            "{:>4}  {:>10.6}  {:>11.6}  {}",
            i + 1,
            a,
            stats.reachability(),
            if inside { "yes" } else { "NO" }
        ));
    }
    // Ten simultaneous interval checks need wide intervals plus one
    // allowed marginal miss to be a sound (non-flaky) assertion; the
    // headline aggregates are compared tightly instead.
    report.check(Check::new(
        "simulated mean delay vs E[Gamma]",
        analytic
            .mean_delay_ms(DelayConvention::Absolute)
            .expect("reachable"),
        observed.mean_delay_ms().expect("messages delivered"),
        3.0,
    ));
    report.check(Check::new(
        "simulated utilization vs U",
        analytic.utilization(UtilizationConvention::AsEvaluated),
        observed.network_utilization(),
        0.003,
    ));
    report.check(Check::new(
        "paths outside their 99.9% CI (at most 1)",
        0.0,
        f64::from(misses),
        1.0,
    ));
    report
}

/// Closed-loop control study (the paper's future work): the same PID/plant
/// pair under networks of decreasing availability.
pub fn control_loop() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "control-loop",
        "closed-loop PID performance vs link availability (extension)",
    );
    let evaluate = |pi: f64| {
        let link = LinkModel::from_availability(pi, 0.9).expect("valid");
        let mut b = PathModel::builder();
        b.add_hop(LinkDynamics::steady(link), 2)
            .add_hop(LinkDynamics::steady(link), 5)
            .add_hop(LinkDynamics::steady(link), 6);
        b.superframe(Superframe::symmetric(7).expect("valid"))
            .interval(ReportingInterval::REGULAR);
        b.build().expect("valid").evaluate()
    };
    let config = LoopConfig {
        setpoint: 1.0,
        duration_ms: 120_000,
        reporting_interval_ms: 560,
        symmetric_downlink: true,
    };
    let mut ises = Vec::new();
    for pi in [0.948, 0.83, 0.693] {
        let mut ise_total = 0.0;
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..20 {
            let mut plant = FirstOrderPlant::new(1.0, 2.0, 0.0);
            let mut pid = Pid::new(PidConfig {
                kp: 2.0,
                ki: 1.0,
                kd: 0.0,
                output_min: -10.0,
                output_max: 10.0,
            });
            let trace = run_loop(
                &mut plant,
                &mut pid,
                &ModelDelivery::new(evaluate(pi)),
                config,
                &mut rng,
            );
            ise_total += metrics::integral_squared_error(&trace, 1.0);
        }
        let ise = ise_total / 20.0;
        report.line(format!("pi = {pi:.3}: mean ISE over 20 runs = {ise:.3}"));
        ises.push(ise);
    }
    report.check(Check::new(
        "control error grows as availability drops",
        1.0,
        f64::from(u8::from(ises.windows(2).all(|w| w[1] >= w[0]))),
        0.0,
    ));
    report
}
