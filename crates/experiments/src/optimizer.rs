//! Optimizer study (extension): the what-if route/schedule search on a
//! ~30-node random mesh — objective trajectory and path-cache hit ratio
//! per local-search round, plus determinism and slot-budget checks.

use crate::report::{series, Check, ExperimentReport};
use whart_engine::Engine;
use whart_opt::{generate, optimize, GeneratorConfig, Objective, SearchConfig};

fn run_search() -> (whart_opt::GeneratedNetwork, whart_opt::Optimized) {
    let net = generate(&GeneratorConfig {
        seed: 42,
        nodes: 30,
        max_degree: 5,
        extra_links: 12,
        availability: (0.75, 0.99),
        ..GeneratorConfig::default()
    })
    .expect("valid generator config");
    let mut engine = Engine::new(2);
    let result = optimize(
        &mut engine,
        &net,
        &SearchConfig {
            objective: Objective::MaxReachability,
            max_rounds: 6,
        },
    )
    .expect("search runs");
    (net, result)
}

/// The `optimizer` experiment: objective value and cumulative cache hit
/// ratio per round of the Eq. 12-guided local search.
pub fn optimizer() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "optimizer",
        "What-if route/schedule search on a 30-node mesh (extension)",
    );
    let (net, result) = run_search();
    report.line(format!(
        "{} devices, {} links, {} of {} uplink slots used, {} candidates over {} round(s)",
        net.config.nodes,
        net.topology.link_count(),
        result.total_hops,
        result.uplink_slots,
        result.candidates_evaluated,
        result.rounds.len(),
    ));
    report.line(series(
        "mean reachability per round (round 0 = greedy tree)",
        std::iter::once(result.initial_objective)
            .chain(result.rounds.iter().map(|r| r.objective_value)),
    ));
    report.line(series(
        "cumulative path-cache hit ratio per round",
        result
            .rounds
            .iter()
            .map(|r| r.cache_hit_ratio.unwrap_or(0.0)),
    ));
    report.check(Check::new(
        "search improves or ties the greedy tree",
        1.0,
        f64::from(u8::from(result.improved_or_tied())),
        0.0,
    ));
    report.check(Check::new(
        "optimized tree respects the slot budget",
        1.0,
        f64::from(u8::from(result.total_hops <= result.uplink_slots as usize)),
        0.0,
    ));
    let ratio = result.cache_hit_ratio.unwrap_or(0.0);
    report.check(
        Check::new("path cache stays hot across candidates", 1.0, ratio, 0.2)
            .with_note("unchanged routes answer from memo; ratio must exceed 0.8"),
    );
    let (_, again) = run_search();
    report.check(Check::new(
        "same seed reproduces the final objective",
        result.final_objective,
        again.final_objective,
        0.0,
    ));
    report
}
