//! Parity between the optimizer's Eq. 12 composed objective and full
//! end-to-end evaluation: on random generated topologies, convolving the
//! per-hop geometric cycle functions (what the greedy construction and
//! the composed objective use) must agree with solving each route's
//! unrolled DTMC through the [`ExplicitSolver`] — exactly, because every
//! link is steady and canonical slots serve the hops in order within one
//! frame.

use std::sync::Arc;
use whart_engine::{Engine, Scenario};
use whart_model::compose::{compose_cycle_probabilities, peer_cycle_probabilities};
use whart_model::{DelayConvention, ExplicitSolver, LinkDynamics, PathModel};
use whart_opt::{generate, greedy_tree, GeneratorConfig};

#[test]
fn composed_objective_matches_explicit_solver_on_random_topologies() {
    for seed in 0..20 {
        let net = generate(&GeneratorConfig {
            seed,
            nodes: 8,
            extra_links: 4,
            availability: (0.6, 0.99),
            ..GeneratorConfig::default()
        })
        .unwrap();
        let tree = greedy_tree(&net).unwrap();

        // The composed side: fold per-hop geometric cycle functions with
        // the Eq. 12 convolution, gateway-side first.
        let mut composed = Vec::new();
        for route in tree.routes() {
            let mut pmf = None;
            for pair in route.windows(2).rev() {
                let link = net.topology.link(pair[0], pair[1]).unwrap();
                let peer = peer_cycle_probabilities(link, net.interval);
                pmf = Some(match pmf {
                    None => peer,
                    Some(existing) => compose_cycle_probabilities(&peer, &existing, net.interval),
                });
            }
            composed.push(pmf.expect("routes have at least one hop"));
        }

        // The end-to-end side: each route as a canonical-slot path model
        // solved by the explicit unrolled DTMC.
        let mut engine = Engine::with_solver(1, Arc::new(ExplicitSolver));
        let models: Vec<PathModel> = tree
            .routes()
            .iter()
            .map(|route| {
                let mut builder = PathModel::builder();
                for (slot, pair) in route.windows(2).enumerate() {
                    let link = net.topology.link(pair[0], pair[1]).unwrap();
                    builder.add_hop(LinkDynamics::steady(link), slot);
                }
                builder.superframe(net.superframe).interval(net.interval);
                builder.build().unwrap()
            })
            .collect();
        engine.submit(Scenario::paths(format!("parity-{seed}"), models));
        let results = engine.drain().unwrap();
        let evals = results[0].path_evaluations();

        assert_eq!(evals.len(), composed.len());
        for (i, (eval, pmf)) in evals.iter().zip(&composed).enumerate() {
            assert!(
                (eval.reachability() - pmf.total_mass()).abs() < 1e-12,
                "seed {seed} path {i}: explicit {} vs composed {}",
                eval.reachability(),
                pmf.total_mass()
            );
            for cycle in 0..net.interval.cycles() as usize {
                assert!(
                    (eval.cycle_probabilities().get(cycle) - pmf.get(cycle)).abs() < 1e-12,
                    "seed {seed} path {i} cycle {cycle}"
                );
            }
            // The delay measure follows from the same function, so it
            // must be available whenever any mass arrives.
            assert_eq!(
                eval.expected_delay_ms(DelayConvention::Absolute).is_some(),
                pmf.total_mass() > 0.0
            );
        }
    }
}
