//! Property tests for the random topology generator: per-seed
//! determinism, connectivity and slot feasibility hold for arbitrary
//! parameter combinations.

use proptest::prelude::*;
use whart_opt::{generate, greedy_tree, GeneratorConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generated_topologies_are_deterministic_connected_and_slot_feasible(
        seed in 0u64..10_000,
        nodes in 1u32..40,
        max_degree in 2usize..8,
        max_depth in 1usize..6,
        extra_links in 0u32..15,
        lo in 0.6f64..0.9,
        spread in 0.0f64..0.09,
        slot_slack in 0u32..10,
    ) {
        let config = GeneratorConfig {
            seed,
            nodes,
            max_degree,
            max_depth,
            extra_links,
            availability: (lo, lo + spread),
            slot_slack,
            ..GeneratorConfig::default()
        };
        let net = generate(&config).unwrap();

        // Determinism: the same seed and config reproduce the network.
        let again = generate(&config).unwrap();
        prop_assert_eq!(&net.topology, &again.topology);
        prop_assert_eq!(net.superframe, again.superframe);

        // Connectivity: every device reaches the gateway.
        prop_assert!(net.topology.is_connected());
        prop_assert_eq!(net.topology.node_count(), nodes as usize + 1);

        // Slot feasibility: the greedy routing tree fits the uplink
        // half, so the emitted sequential schedule always builds.
        let tree = greedy_tree(&net).unwrap();
        prop_assert!(
            tree.total_hops() <= net.superframe.uplink_slots() as usize,
            "tree needs {} of {} slots",
            tree.total_hops(),
            net.superframe.uplink_slots()
        );
    }
}
