//! End-to-end acceptance tests for the what-if optimizer: determinism
//! per seed on a ~30-node mesh, improvement (or tie) over the greedy
//! initial tree, and a warm path cache (> 0.8 hit ratio) surfaced in the
//! metrics snapshot.

use whart_engine::Engine;
use whart_obs::Metrics;
use whart_opt::{generate, optimize, GeneratorConfig, Objective, SearchConfig};

fn mesh_config(seed: u64) -> GeneratorConfig {
    GeneratorConfig {
        seed,
        nodes: 30,
        max_degree: 5,
        extra_links: 12,
        availability: (0.75, 0.99),
        ..GeneratorConfig::default()
    }
}

fn run(seed: u64, objective: Objective) -> (whart_opt::Optimized, Metrics) {
    let net = generate(&mesh_config(seed)).unwrap();
    let metrics = Metrics::new();
    let mut engine = Engine::new(2);
    engine.set_metrics(metrics.clone());
    let config = SearchConfig {
        objective,
        max_rounds: 6,
    };
    (optimize(&mut engine, &net, &config).unwrap(), metrics)
}

#[test]
fn thirty_node_search_is_deterministic_per_seed() {
    let (a, _) = run(42, Objective::MaxReachability);
    let (b, _) = run(42, Objective::MaxReachability);
    assert_eq!(a, b, "same seed must reproduce the whole search");
    let (c, _) = run(43, Objective::MaxReachability);
    assert_ne!(
        a.routes, c.routes,
        "different seeds should explore different networks"
    );
}

#[test]
fn search_improves_or_ties_the_greedy_tree() {
    for objective in [Objective::MaxReachability, Objective::MinDelay] {
        let (result, _) = run(42, objective);
        assert!(
            result.improved_or_tied(),
            "{objective:?}: {} -> {}",
            result.initial_objective,
            result.final_objective
        );
        assert!(result.total_hops <= result.uplink_slots as usize);
        assert_eq!(result.paths.len(), 30);
    }
}

#[test]
fn search_runs_hot_through_the_path_cache() {
    let (result, metrics) = run(42, Objective::MaxReachability);
    let ratio = result
        .cache_hit_ratio
        .expect("the search performs path lookups");
    assert!(ratio > 0.8, "path cache hit ratio {ratio} should be > 0.8");

    // The same ratio is visible in the metrics snapshot (gauge in parts
    // per million), together with the search counters.
    let snapshot = metrics.snapshot();
    let ppm = snapshot
        .gauge("opt.cache_hit_ratio")
        .expect("opt.cache_hit_ratio gauge");
    assert!(ppm > 800_000, "snapshot ratio {ppm} ppm should be > 0.8");
    assert_eq!(
        snapshot.counter("opt.candidates_evaluated"),
        Some(result.candidates_evaluated)
    );
    assert_eq!(
        snapshot.counter("opt.accepted_moves"),
        Some(result.accepted_moves)
    );
    assert!(snapshot.gauge("opt.best_objective").unwrap() > 0);
}

#[test]
fn report_and_spec_json_are_well_formed() {
    let net = generate(&mesh_config(7)).unwrap();
    let mut engine = Engine::new(2);
    let config = SearchConfig {
        objective: Objective::MinDelay,
        max_rounds: 3,
    };
    let result = optimize(&mut engine, &net, &config).unwrap();

    let report = result.to_json();
    assert_eq!(report["objective"].as_str(), Some("delay"));
    assert!(report["final_objective"].as_f64().unwrap() > 0.0);
    assert!(!report["rounds"].as_array().unwrap().is_empty());

    let spec = result.spec_json(&net);
    assert_eq!(spec["nodes"].as_array().unwrap().len(), 30);
    assert_eq!(spec["paths"].as_array().unwrap().len(), 30);
    for route in spec["paths"].as_array().unwrap() {
        let nodes = route.as_array().unwrap();
        assert_eq!(nodes.last().unwrap().as_u64(), Some(0), "routes end at G");
    }
    assert_eq!(
        spec["schedule"]["order"].as_array().unwrap().len(),
        30,
        "sequential order covers every path"
    );
}
