//! What-if search over uplink routing trees and slot schedules.
//!
//! The optimizer builds an initial routing tree greedily — each device
//! attaches through the neighbor whose Eq. 12 composed cycle function
//! promises the best reachability (the paper's Section VI-E attachment
//! rule, applied network-wide) — and then hill-climbs with local moves:
//! reparenting a device (and with it its whole subtree) onto another
//! neighbor, and swapping adjacent positions of the sequential schedule
//! order. Candidates are priced through the shared [`Engine`]: every
//! route is evaluated at canonical slots `0..h-1`, which makes the
//! path-cache signature depend only on the link chain, so candidates
//! that share unchanged routes are answered from cache. The real
//! sequential-schedule arrival slot is re-attached afterwards with
//! [`whart_model::compose::evaluation_at_slot`] — valid because for
//! steady links served in increasing slot order the cycle function is
//! independent of slot placement.

use crate::error::{OptError, Result};
use crate::generate::GeneratedNetwork;
use std::collections::BTreeMap;
use whart_dtmc::Pmf;
use whart_engine::{Engine, EngineStats, Scenario};
use whart_json::Json;
use whart_model::compose::{
    compose_cycle_probabilities, evaluation_at_slot, peer_cycle_probabilities,
};
use whart_model::{DelayConvention, LinkDynamics, PathEvaluation, PathModel};
use whart_net::{NodeId, ReportingInterval, Superframe};

/// Two objectives strictly better when larger (reachability) or smaller
/// (delay); internally the search maximizes a signed score.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Maximize the mean composed reachability over all uplink paths.
    MaxReachability,
    /// Minimize the mean expected end-to-end delay (Eqs. 7-9) under the
    /// sequential schedule order.
    MinDelay,
}

impl Objective {
    /// Parses `"reachability"` or `"delay"`.
    pub fn parse(text: &str) -> Option<Objective> {
        match text {
            "reachability" => Some(Objective::MaxReachability),
            "delay" => Some(Objective::MinDelay),
            _ => None,
        }
    }

    /// The flag/report name of the objective.
    pub fn name(self) -> &'static str {
        match self {
            Objective::MaxReachability => "reachability",
            Objective::MinDelay => "delay",
        }
    }

    /// Whether a larger objective value is better.
    pub fn higher_is_better(self) -> bool {
        matches!(self, Objective::MaxReachability)
    }
}

/// Search parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchConfig {
    /// What to optimize.
    pub objective: Objective,
    /// Upper bound on hill-climbing rounds (one accepted move per round).
    pub max_rounds: usize,
}

impl Default for SearchConfig {
    fn default() -> SearchConfig {
        SearchConfig {
            objective: Objective::MaxReachability,
            max_rounds: 12,
        }
    }
}

/// An uplink routing tree: every field device's parent towards the
/// gateway.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingTree {
    parent: BTreeMap<NodeId, NodeId>,
}

impl RoutingTree {
    /// The parent of a device, if the device is in the tree.
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.parent.get(&node).copied()
    }

    /// The route from `node` to the gateway (inclusive on both ends).
    pub fn route(&self, node: NodeId) -> Vec<NodeId> {
        let mut route = vec![node];
        let mut at = node;
        while let Some(&next) = self.parent.get(&at) {
            route.push(next);
            at = next;
        }
        route
    }

    /// All routes in ascending device-id order.
    pub fn routes(&self) -> Vec<Vec<NodeId>> {
        self.parent.keys().map(|&n| self.route(n)).collect()
    }

    /// Total hop count over all routes — the slot budget consumption of
    /// the sequential schedule.
    pub fn total_hops(&self) -> usize {
        self.parent.keys().map(|&n| self.route(n).len() - 1).sum()
    }

    /// Whether `node` lies on the subtree rooted at `root` (i.e. routes
    /// through it, or is it).
    fn in_subtree(&self, root: NodeId, node: NodeId) -> bool {
        self.route(node).contains(&root)
    }

    /// A copy with `node` reparented onto `new_parent`.
    fn reparented(&self, node: NodeId, new_parent: NodeId) -> RoutingTree {
        let mut parent = self.parent.clone();
        parent.insert(node, new_parent);
        RoutingTree { parent }
    }

    pub(crate) fn from_parents(parent: BTreeMap<NodeId, NodeId>) -> RoutingTree {
        RoutingTree { parent }
    }
}

const REACHABILITY_TIE: f64 = 1e-12;

/// Builds the initial routing tree greedily: starting from the gateway,
/// repeatedly attach the (device, neighbor) pair whose Eq. 12 composed
/// cycle function has the highest reachability, breaking ties towards
/// fewer hops and then smaller ids.
///
/// # Errors
///
/// Returns [`OptError::Infeasible`] if the topology is disconnected.
pub fn greedy_tree(net: &GeneratedNetwork) -> Result<RoutingTree> {
    Ok(RoutingTree {
        parent: greedy_parent_map(&net.topology, net.interval)?,
    })
}

pub(crate) fn greedy_parent_map(
    topology: &whart_net::Topology,
    interval: ReportingInterval,
) -> Result<BTreeMap<NodeId, NodeId>> {
    // Attached devices with their composed cycle function and hop count.
    let mut attached: BTreeMap<NodeId, (Pmf, usize)> = BTreeMap::new();
    let mut parent: BTreeMap<NodeId, NodeId> = BTreeMap::new();
    let devices: Vec<NodeId> = topology.field_devices().collect();

    while parent.len() < devices.len() {
        let mut best: Option<(f64, usize, NodeId, NodeId, Pmf)> = None;
        for &v in &devices {
            if parent.contains_key(&v) {
                continue;
            }
            for u in topology.neighbors(v) {
                let candidate = if u.is_gateway() {
                    let link = topology.link(v, u).expect("neighbor has a link");
                    Some((peer_cycle_probabilities(link, interval), 1))
                } else {
                    attached.get(&u).map(|(pmf, hops)| {
                        let link = topology.link(v, u).expect("neighbor has a link");
                        let peer = peer_cycle_probabilities(link, interval);
                        (compose_cycle_probabilities(&peer, pmf, interval), hops + 1)
                    })
                };
                let Some((pmf, hops)) = candidate else {
                    continue;
                };
                let reach = pmf.total_mass();
                let better = match &best {
                    None => true,
                    Some((br, bh, ..)) => {
                        reach > br + REACHABILITY_TIE
                            || ((reach - br).abs() <= REACHABILITY_TIE && hops < *bh)
                    }
                };
                if better {
                    best = Some((reach, hops, v, u, pmf));
                }
            }
        }
        let Some((_, hops, v, u, pmf)) = best else {
            return Err(OptError::Infeasible {
                reason: "topology is disconnected: some device cannot reach the gateway".into(),
            });
        };
        parent.insert(v, u);
        attached.insert(v, (pmf, hops));
    }
    Ok(parent)
}

/// One local-search move.
#[derive(Debug, Clone, PartialEq)]
enum Move {
    /// Reparent `node` (and its subtree) onto `parent`.
    Reparent { node: NodeId, parent: NodeId },
    /// Swap schedule-order positions `position` and `position + 1`.
    SwapOrder { position: usize },
}

/// A candidate state: routing tree plus sequential schedule order.
#[derive(Debug, Clone, PartialEq)]
struct State {
    tree: RoutingTree,
    order: Vec<usize>,
}

/// Canonical-slot path models for every route of a tree. Slot placement
/// `0..h-1` keeps the engine's path-cache signature a function of the
/// link chain alone, so unchanged routes are cache hits across the whole
/// search.
fn route_models(net: &GeneratedNetwork, tree: &RoutingTree) -> Result<Vec<PathModel>> {
    tree.routes()
        .iter()
        .map(|route| {
            let mut builder = PathModel::builder();
            for (slot, pair) in route.windows(2).enumerate() {
                let link =
                    net.topology
                        .link(pair[0], pair[1])
                        .ok_or_else(|| OptError::Infeasible {
                            reason: format!("route uses a missing link {} -- {}", pair[0], pair[1]),
                        })?;
                builder.add_hop(LinkDynamics::steady(link), slot);
            }
            builder.superframe(net.superframe).interval(net.interval);
            builder.build().map_err(OptError::from)
        })
        .collect()
}

/// Scores a candidate's canonical-slot evaluations under an objective;
/// returns `(signed score, natural objective value, per-path expected
/// delays at the real schedule slots)`. Unreachable paths (zero mass)
/// are charged the full reporting-interval duration.
fn score(
    objective: Objective,
    evals: &[PathEvaluation],
    order: &[usize],
    superframe: Superframe,
    interval: ReportingInterval,
) -> Result<(f64, f64, Vec<Option<f64>>)> {
    let n = evals.len().max(1) as f64;
    let mut delays: Vec<Option<f64>> = vec![None; evals.len()];
    let mut cumulative = 0u32;
    for &index in order {
        let eval = &evals[index];
        let hops = u32::try_from(eval.hop_count()).expect("hop counts are small");
        let arrival = cumulative + hops;
        cumulative += hops;
        let at_slot = evaluation_at_slot(
            eval.cycle_probabilities().clone(),
            arrival,
            eval.hop_count(),
            superframe,
            interval,
        )?;
        delays[index] = at_slot.expected_delay_ms(DelayConvention::Absolute);
    }
    match objective {
        Objective::MaxReachability => {
            let mean = evals.iter().map(PathEvaluation::reachability).sum::<f64>() / n;
            Ok((mean, mean, delays))
        }
        Objective::MinDelay => {
            let worst = f64::from(interval.duration_ms(superframe));
            let mean = delays.iter().map(|d| d.unwrap_or(worst)).sum::<f64>() / n;
            Ok((-mean, mean, delays))
        }
    }
}

/// Enumerates every feasible move from a state, in a deterministic
/// order. Schedule swaps only matter for the delay objective (for steady
/// links the composed reachability is slot-independent), so they are
/// only generated there.
fn enumerate_moves(
    net: &GeneratedNetwork,
    state: &State,
    objective: Objective,
) -> Vec<(Move, State)> {
    let budget = net.superframe.uplink_slots() as usize;
    let mut moves = Vec::new();
    let devices: Vec<NodeId> = net.topology.field_devices().collect();
    for &v in &devices {
        let current = state.tree.parent(v).expect("every device is routed");
        for u in net.topology.neighbors(v) {
            if u == current || (!u.is_gateway() && state.tree.in_subtree(v, u)) {
                continue;
            }
            let tree = state.tree.reparented(v, u);
            if tree.total_hops() > budget {
                continue;
            }
            moves.push((
                Move::Reparent { node: v, parent: u },
                State {
                    tree,
                    order: state.order.clone(),
                },
            ));
        }
    }
    if objective == Objective::MinDelay {
        for position in 0..state.order.len().saturating_sub(1) {
            let mut order = state.order.clone();
            order.swap(position, position + 1);
            moves.push((
                Move::SwapOrder { position },
                State {
                    tree: state.tree.clone(),
                    order,
                },
            ));
        }
    }
    moves
}

/// One hill-climbing round in the trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// 1-based round number (round 0 is the greedy baseline).
    pub round: usize,
    /// Candidates evaluated this round.
    pub candidates: usize,
    /// Whether a move was accepted.
    pub accepted: bool,
    /// Best objective value after the round, in natural units
    /// (reachability, or mean delay in milliseconds).
    pub objective_value: f64,
    /// Path-cache hit ratio accumulated over the search so far (`None`
    /// until the first lookup).
    pub cache_hit_ratio: Option<f64>,
}

/// Final per-path outcome at the optimized routes and schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct PathOutcome {
    /// Source device number.
    pub device: u32,
    /// Route as numeric node ids ending at the gateway (`0`).
    pub route: Vec<u32>,
    /// Hop count.
    pub hop_count: usize,
    /// Composed reachability.
    pub reachability: f64,
    /// Expected end-to-end delay at the real schedule slot, if reachable.
    pub expected_delay_ms: Option<f64>,
}

/// The result of a what-if search.
#[derive(Debug, Clone, PartialEq)]
pub struct Optimized {
    /// The objective that was optimized.
    pub objective: Objective,
    /// Objective value of the greedy initial tree.
    pub initial_objective: f64,
    /// Objective value of the final state.
    pub final_objective: f64,
    /// Total candidate states priced through the engine (baseline
    /// included).
    pub candidates_evaluated: u64,
    /// Accepted hill-climbing moves.
    pub accepted_moves: u64,
    /// Per-round trajectory.
    pub rounds: Vec<RoundRecord>,
    /// Path-cache hit ratio over the whole search (`None` if the search
    /// performed no path lookups).
    pub cache_hit_ratio: Option<f64>,
    /// Final routes as numeric node ids ending at the gateway.
    pub routes: Vec<Vec<u32>>,
    /// Final sequential schedule order (indices into `routes`).
    pub order: Vec<usize>,
    /// Final per-path outcomes.
    pub paths: Vec<PathOutcome>,
    /// The slot budget the search ran under.
    pub uplink_slots: u32,
    /// Slots the final schedule consumes.
    pub total_hops: usize,
}

fn numeric(node: NodeId) -> u32 {
    match node {
        NodeId::Gateway => 0,
        NodeId::Field(n) => n,
    }
}

impl Optimized {
    /// Whether the final objective is at least as good as the greedy
    /// initial tree's (the hill climber only accepts strict
    /// improvements, so this always holds; CI asserts it end to end).
    pub fn improved_or_tied(&self) -> bool {
        if self.objective.higher_is_better() {
            self.final_objective >= self.initial_objective - 1e-12
        } else {
            self.final_objective <= self.initial_objective + 1e-12
        }
    }

    /// Encodes the search result as JSON. Ratios that never had a lookup
    /// are `null`, never `NaN`.
    pub fn to_json(&self) -> Json {
        let ratio = |r: Option<f64>| r.map_or(Json::Null, Json::from);
        Json::object([
            ("objective", Json::from(self.objective.name())),
            ("initial_objective", Json::from(self.initial_objective)),
            ("final_objective", Json::from(self.final_objective)),
            (
                "candidates_evaluated",
                Json::from(self.candidates_evaluated),
            ),
            ("accepted_moves", Json::from(self.accepted_moves)),
            ("cache_hit_ratio", ratio(self.cache_hit_ratio)),
            ("uplink_slots", Json::from(self.uplink_slots)),
            ("total_hops", Json::from(self.total_hops)),
            (
                "rounds",
                Json::Array(
                    self.rounds
                        .iter()
                        .map(|r| {
                            Json::object([
                                ("round", Json::from(r.round)),
                                ("candidates", Json::from(r.candidates)),
                                ("accepted", Json::from(r.accepted)),
                                ("objective_value", Json::from(r.objective_value)),
                                ("cache_hit_ratio", ratio(r.cache_hit_ratio)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "order",
                Json::array(self.order.iter().map(|&i| Json::from(i))),
            ),
            (
                "paths",
                Json::Array(
                    self.paths
                        .iter()
                        .map(|p| {
                            Json::object([
                                ("device", Json::from(p.device)),
                                ("route", Json::array(p.route.iter().map(|&n| Json::from(n)))),
                                ("hop_count", Json::from(p.hop_count)),
                                ("reachability", Json::from(p.reachability)),
                                (
                                    "expected_delay_ms",
                                    p.expected_delay_ms.map_or(Json::Null, Json::from),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Emits the optimized network as a spec JSON value in the exact
    /// shape `whart analyze` / `whart batch` consume: inline-quality
    /// links, numeric routes and a sequential schedule order.
    pub fn spec_json(&self, net: &GeneratedNetwork) -> Json {
        let links = net
            .topology
            .links()
            .map(|((a, b), link)| {
                Json::object([
                    ("a", Json::from(numeric(a))),
                    ("b", Json::from(numeric(b))),
                    ("availability", Json::from(link.availability())),
                    ("p_rc", Json::from(link.p_rc())),
                ])
            })
            .collect();
        Json::object([
            ("uplink_slots", Json::from(net.superframe.uplink_slots())),
            (
                "downlink_slots",
                Json::from(net.superframe.downlink_slots()),
            ),
            ("reporting_interval", Json::from(net.interval.cycles())),
            ("nodes", Json::array((1..=net.config.nodes).map(Json::from))),
            ("links", Json::Array(links)),
            (
                "paths",
                Json::Array(
                    self.routes
                        .iter()
                        .map(|route| Json::array(route.iter().map(|&n| Json::from(n))))
                        .collect(),
                ),
            ),
            (
                "schedule",
                Json::object([(
                    "order",
                    Json::array(self.order.iter().map(|&i| Json::from(i))),
                )]),
            ),
        ])
    }
}

fn hit_ratio_delta(base: &EngineStats, now: &EngineStats) -> Option<f64> {
    let hits = now.path_cache_hits - base.path_cache_hits;
    let total = hits + (now.path_cache_misses - base.path_cache_misses);
    if total == 0 {
        return None;
    }
    Some(hits as f64 / total as f64)
}

/// Scales an objective value to the micro-unit integer the
/// `opt.best_objective` gauge stores (gauges are `u64`).
fn micro_units(value: f64) -> u64 {
    (value.max(0.0) * 1e6).round() as u64
}

struct Evaluated {
    evals: Vec<PathEvaluation>,
    score: f64,
    value: f64,
    delays: Vec<Option<f64>>,
}

/// Prices a batch of candidate states through the engine in one drain.
fn evaluate_batch(
    engine: &mut Engine,
    net: &GeneratedNetwork,
    states: &[&State],
    objective: Objective,
    label_prefix: &str,
) -> Result<Vec<Evaluated>> {
    for (i, state) in states.iter().enumerate() {
        let models = route_models(net, &state.tree)?;
        engine.submit(Scenario::paths(format!("{label_prefix}-{i}"), models));
    }
    let results = engine.drain()?;
    results
        .iter()
        .zip(states)
        .map(|(result, state)| {
            let evals: Vec<PathEvaluation> =
                result.path_evaluations().into_iter().cloned().collect();
            let (score, value, delays) = score(
                objective,
                &evals,
                &state.order,
                net.superframe,
                net.interval,
            )?;
            Ok(Evaluated {
                evals,
                score,
                value,
                delays,
            })
        })
        .collect()
}

/// Runs the what-if search on a generated network through a shared
/// engine. Metrics (`opt.candidates_evaluated`, `opt.accepted_moves`,
/// the `opt.best_objective` gauge in micro-units and the
/// `opt.cache_hit_ratio` gauge in parts per million) are recorded into
/// the engine's metrics handle; one `opt.round` span per round goes to
/// its trace handle, and each round publishes an `opt.round` activity
/// frame on the engine's profiler so sampling captures attribute search
/// time round-by-round.
///
/// # Errors
///
/// Returns [`OptError::Infeasible`] when the initial greedy tree exceeds
/// the slot budget or the topology is disconnected, and propagates
/// model-layer failures.
pub fn optimize(
    engine: &mut Engine,
    net: &GeneratedNetwork,
    config: &SearchConfig,
) -> Result<Optimized> {
    if config.max_rounds == 0 {
        return Err(OptError::InvalidConfig {
            reason: "max_rounds must be at least 1".into(),
        });
    }
    let metrics = engine.metrics().clone();
    let trace = engine.trace().clone();
    let profiler = engine.profiler().clone();
    let round_frame = profiler.frame("opt.round");
    let candidates_counter = metrics.counter("opt.candidates_evaluated");
    let accepted_counter = metrics.counter("opt.accepted_moves");
    let best_gauge = metrics.gauge("opt.best_objective");
    let ratio_gauge = metrics.gauge("opt.cache_hit_ratio");
    let base_stats = engine.stats();

    let tree = greedy_tree(net)?;
    let budget = net.superframe.uplink_slots() as usize;
    if tree.total_hops() > budget {
        return Err(OptError::Infeasible {
            reason: format!(
                "greedy tree needs {} slots but the uplink half only has {budget}",
                tree.total_hops()
            ),
        });
    }
    let order: Vec<usize> = (0..tree.routes().len()).collect();
    let mut state = State { tree, order };

    let baseline = evaluate_batch(engine, net, &[&state], config.objective, "opt-baseline")?
        .pop()
        .expect("one baseline candidate");
    let mut candidates_evaluated = 1u64;
    let mut accepted_moves = 0u64;
    candidates_counter.increment();
    best_gauge.set(micro_units(baseline.value));
    let initial_objective = baseline.value;
    let mut current = baseline;
    let mut rounds = Vec::new();

    for round in 1..=config.max_rounds {
        let _round_guard = profiler.enter(round_frame);
        let mut span = trace.span("opt.round", "opt");
        span.arg("round", round);
        let moves = enumerate_moves(net, &state, config.objective);
        if moves.is_empty() {
            span.arg("candidates", 0usize);
            break;
        }
        let move_count = moves.len();
        let evaluated = {
            let states: Vec<&State> = moves.iter().map(|(_, s)| s).collect();
            evaluate_batch(
                engine,
                net,
                &states,
                config.objective,
                &format!("opt-round-{round}"),
            )?
        };
        candidates_counter.add(evaluated.len() as u64);
        candidates_evaluated += evaluated.len() as u64;

        // First strictly-better candidate wins ties, keeping the search
        // deterministic.
        let mut best: Option<usize> = None;
        for (i, candidate) in evaluated.iter().enumerate() {
            if candidate.score <= current.score + 1e-12 {
                continue;
            }
            match best {
                Some(b) if candidate.score <= evaluated[b].score + 1e-12 => {}
                _ => best = Some(i),
            }
        }
        let stats = engine.stats();
        let ratio = hit_ratio_delta(&base_stats, &stats);
        if let Some(r) = ratio {
            ratio_gauge.set((r * 1e6).round() as u64);
        }
        span.arg("candidates", move_count);
        span.arg("accepted", best.is_some());
        let accepted = best.is_some();
        if let Some(index) = best {
            current = evaluated.into_iter().nth(index).expect("index in range");
            state = moves.into_iter().nth(index).expect("index in range").1;
            accepted_moves += 1;
            accepted_counter.increment();
            best_gauge.set(micro_units(current.value));
        }
        span.arg("objective_value", current.value);
        rounds.push(RoundRecord {
            round,
            candidates: move_count,
            accepted,
            objective_value: current.value,
            cache_hit_ratio: ratio,
        });
        if !accepted {
            break;
        }
    }

    let final_stats = engine.stats();
    let cache_hit_ratio = hit_ratio_delta(&base_stats, &final_stats);
    if let Some(r) = cache_hit_ratio {
        ratio_gauge.set((r * 1e6).round() as u64);
    }

    let routes_ids = state.tree.routes();
    let routes: Vec<Vec<u32>> = routes_ids
        .iter()
        .map(|route| route.iter().map(|&n| numeric(n)).collect())
        .collect();
    let paths = routes_ids
        .iter()
        .enumerate()
        .map(|(i, route)| PathOutcome {
            device: numeric(route[0]),
            route: routes[i].clone(),
            hop_count: route.len() - 1,
            reachability: current.evals[i].reachability(),
            expected_delay_ms: current.delays[i],
        })
        .collect();
    Ok(Optimized {
        objective: config.objective,
        initial_objective,
        final_objective: current.value,
        candidates_evaluated,
        accepted_moves,
        rounds,
        cache_hit_ratio,
        total_hops: state.tree.total_hops(),
        uplink_slots: net.superframe.uplink_slots(),
        routes,
        order: state.order,
        paths,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, GeneratorConfig};

    fn small_net(seed: u64) -> GeneratedNetwork {
        generate(&GeneratorConfig {
            seed,
            nodes: 8,
            extra_links: 4,
            availability: (0.7, 0.98),
            ..GeneratorConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn greedy_tree_routes_every_device() {
        let net = small_net(3);
        let tree = greedy_tree(&net).unwrap();
        assert_eq!(tree.routes().len(), 8);
        for route in tree.routes() {
            assert!(route.last().unwrap().is_gateway());
            for pair in route.windows(2) {
                assert!(net.topology.link(pair[0], pair[1]).is_some());
            }
        }
    }

    #[test]
    fn objective_parsing_round_trips() {
        for objective in [Objective::MaxReachability, Objective::MinDelay] {
            assert_eq!(Objective::parse(objective.name()), Some(objective));
        }
        assert_eq!(Objective::parse("latency"), None);
    }

    #[test]
    fn optimize_improves_or_ties_both_objectives() {
        for objective in [Objective::MaxReachability, Objective::MinDelay] {
            let net = small_net(7);
            let mut engine = Engine::new(2);
            let result = optimize(
                &mut engine,
                &net,
                &SearchConfig {
                    objective,
                    max_rounds: 4,
                },
            )
            .unwrap();
            assert!(result.improved_or_tied(), "{objective:?}");
            assert!(result.total_hops <= result.uplink_slots as usize);
            assert_eq!(result.paths.len(), 8);
        }
    }

    #[test]
    fn reparent_moves_respect_subtrees_and_budget() {
        let net = small_net(11);
        let tree = greedy_tree(&net).unwrap();
        let order: Vec<usize> = (0..tree.routes().len()).collect();
        let state = State { tree, order };
        for (mv, candidate) in enumerate_moves(&net, &state, Objective::MaxReachability) {
            let Move::Reparent { node, parent } = mv else {
                panic!("reachability objective must not generate swaps");
            };
            assert_eq!(candidate.tree.parent(node), Some(parent));
            // The new parent's route must not pass through the moved node.
            assert!(!candidate.tree.route(parent).contains(&node) || parent.is_gateway());
            assert!(candidate.tree.total_hops() <= net.superframe.uplink_slots() as usize);
        }
    }

    #[test]
    fn zero_rounds_is_rejected() {
        let net = small_net(1);
        let mut engine = Engine::new(1);
        let config = SearchConfig {
            objective: Objective::MaxReachability,
            max_rounds: 0,
        };
        assert!(matches!(
            optimize(&mut engine, &net, &config),
            Err(OptError::InvalidConfig { .. })
        ));
    }
}
