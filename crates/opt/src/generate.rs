//! Seeded random mesh topology generation.
//!
//! Generalizes the paper's Fig. 12 "typical network": field devices
//! attach one by one to an already-connected node (so the graph is
//! connected by construction), then extra mesh links are sprinkled in to
//! give the route optimizer alternatives. Every draw comes from one
//! seeded [`StdRng`], so a `(seed, config)` pair always produces the
//! same network.

use crate::error::{OptError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use whart_channel::LinkModel;
use whart_net::{NodeId, ReportingInterval, Superframe, Topology};

/// Parameters of the random topology generator.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// RNG seed; equal seeds (with equal configs) give equal networks.
    pub seed: u64,
    /// Number of field devices (the gateway is implicit).
    pub nodes: u32,
    /// Maximum links per node (gateway included), best effort: the
    /// attachment step relaxes the cap rather than disconnect a node.
    pub max_degree: usize,
    /// Maximum attachment depth in hops from the gateway.
    pub max_depth: usize,
    /// Extra mesh links beyond the spanning attachment tree; these are
    /// the alternative routes the optimizer can switch to.
    pub extra_links: u32,
    /// Link availabilities are drawn uniformly from this inclusive range.
    pub availability: (f64, f64),
    /// Per-slot recovery probability shared by every link.
    pub recovery: f64,
    /// Spare uplink slots beyond the initial shortest-path total — the
    /// optimizer's room to reroute onto longer trees.
    pub slot_slack: u32,
    /// Reporting interval `Is` in cycles.
    pub reporting_interval: u32,
}

impl Default for GeneratorConfig {
    fn default() -> GeneratorConfig {
        GeneratorConfig {
            seed: 1,
            nodes: 10,
            max_degree: 4,
            max_depth: 4,
            extra_links: 5,
            availability: (0.85, 0.99),
            recovery: LinkModel::DEFAULT_RECOVERY,
            slot_slack: 8,
            reporting_interval: 4,
        }
    }
}

impl GeneratorConfig {
    fn validate(&self) -> Result<()> {
        let fail = |reason: String| Err(OptError::InvalidConfig { reason });
        if self.nodes == 0 {
            return fail("need at least one field device".into());
        }
        if self.max_degree < 2 {
            return fail("max_degree must be at least 2 (a relay needs two links)".into());
        }
        if self.max_depth == 0 {
            return fail("max_depth must be at least 1".into());
        }
        let (lo, hi) = self.availability;
        if !(lo > 0.0 && lo <= hi && hi < 1.0) {
            return fail(format!(
                "availability range ({lo}, {hi}) must satisfy 0 < lo <= hi < 1"
            ));
        }
        if !(self.recovery > 0.0 && self.recovery <= 1.0) {
            return fail(format!("recovery {} must be in (0, 1]", self.recovery));
        }
        if self.reporting_interval == 0 {
            return fail("reporting interval must span at least one cycle".into());
        }
        Ok(())
    }
}

/// A generated network: connected topology plus the super-frame and
/// reporting interval the optimizer evaluates it under.
#[derive(Debug, Clone)]
pub struct GeneratedNetwork {
    /// The connectivity graph (gateway plus `config.nodes` devices).
    pub topology: Topology,
    /// Symmetric super-frame; its uplink half is the slot budget.
    pub superframe: Superframe,
    /// Reporting interval.
    pub interval: ReportingInterval,
    /// The configuration that produced this network.
    pub config: GeneratorConfig,
}

/// Shortest-path hop distance from every node to the gateway (BFS over
/// sorted neighbor lists, so the result is deterministic).
pub(crate) fn gateway_distances(topology: &Topology) -> Vec<(NodeId, usize)> {
    let mut dist = vec![(NodeId::Gateway, 0usize)];
    let mut frontier = vec![NodeId::Gateway];
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &node in &frontier {
            let d = dist.iter().find(|(n, _)| *n == node).expect("visited").1;
            for neighbor in topology.neighbors(node) {
                if !dist.iter().any(|(n, _)| *n == neighbor) {
                    dist.push((neighbor, d + 1));
                    next.push(neighbor);
                }
            }
        }
        frontier = next;
    }
    dist
}

/// Generates a random connected mesh.
///
/// The attachment pass adds device `i` (for `i = 1..=nodes`) with a link
/// to a uniformly chosen already-present node whose depth is below
/// `max_depth` and whose degree is below `max_degree`; if no such node
/// exists the degree cap is relaxed (the gateway, at depth 0, always
/// qualifies then). The mesh pass then tries to add `extra_links`
/// additional links between random non-adjacent pairs within the degree
/// cap. The uplink half of the super-frame is sized to the larger of the
/// shortest-path and greedy-tree hop totals plus `slot_slack`, so the
/// generated network is always slot-feasible for both its shortest-path
/// routing and the optimizer's initial tree.
///
/// # Errors
///
/// Returns [`OptError::InvalidConfig`] for out-of-range parameters.
pub fn generate(config: &GeneratorConfig) -> Result<GeneratedNetwork> {
    config.validate()?;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut topology = Topology::new();
    let mut depth: Vec<(NodeId, usize)> = vec![(NodeId::Gateway, 0)];
    let (lo, hi) = config.availability;
    let sample_link = |rng: &mut StdRng| -> Result<LinkModel> {
        let availability = lo + rng.gen::<f64>() * (hi - lo);
        LinkModel::from_availability(availability, config.recovery).map_err(OptError::from)
    };

    for i in 1..=config.nodes {
        let node = NodeId::field(i);
        topology.add_node(node)?;
        let degree_of = |t: &Topology, n: NodeId| t.neighbors(n).len();
        let within_depth: Vec<NodeId> = depth
            .iter()
            .filter(|&&(_, d)| d < config.max_depth)
            .map(|&(n, _)| n)
            .collect();
        let mut candidates: Vec<NodeId> = within_depth
            .iter()
            .copied()
            .filter(|&n| degree_of(&topology, n) < config.max_degree)
            .collect();
        if candidates.is_empty() {
            // Relax the degree cap rather than strand the node; the
            // gateway (depth 0) guarantees this list is never empty.
            candidates = within_depth;
        }
        let parent = candidates[(rng.gen::<u64>() % candidates.len() as u64) as usize];
        topology.connect(node, parent, sample_link(&mut rng)?)?;
        let parent_depth = depth
            .iter()
            .find(|(n, _)| *n == parent)
            .expect("parent was drawn from the depth table")
            .1;
        depth.push((node, parent_depth + 1));
    }

    // Mesh pass: bounded random trials so degenerate configs (everything
    // saturated) terminate instead of spinning.
    let all_nodes: Vec<NodeId> = std::iter::once(NodeId::Gateway)
        .chain((1..=config.nodes).map(NodeId::field))
        .collect();
    let mut added = 0;
    for _ in 0..config.extra_links.saturating_mul(8) {
        if added >= config.extra_links {
            break;
        }
        let a = all_nodes[(rng.gen::<u64>() % all_nodes.len() as u64) as usize];
        let b = all_nodes[(rng.gen::<u64>() % all_nodes.len() as u64) as usize];
        if a == b
            || topology.link(a, b).is_some()
            || topology.neighbors(a).len() >= config.max_degree
            || topology.neighbors(b).len() >= config.max_degree
        {
            continue;
        }
        topology.connect(a, b, sample_link(&mut rng)?)?;
        added += 1;
    }

    // The uplink half must fit both the shortest-path routing the spec
    // carries and the optimizer's greedy Eq. 12 tree (which may trade
    // extra hops for better composed reachability); the slack on top is
    // the optimizer's room to reroute further.
    let interval = ReportingInterval::new(config.reporting_interval)?;
    let shortest_total: usize = gateway_distances(&topology).iter().map(|&(_, d)| d).sum();
    let greedy_total = crate::search::RoutingTree::from_parents(crate::search::greedy_parent_map(
        &topology, interval,
    )?)
    .total_hops();
    let total_hops = shortest_total.max(greedy_total);
    let uplink_slots = u32::try_from(total_hops).map_err(|_| OptError::InvalidConfig {
        reason: "routing hop total overflows the slot budget".into(),
    })? + config.slot_slack;
    let superframe = Superframe::symmetric(uplink_slots.max(1))?;
    Ok(GeneratedNetwork {
        topology,
        superframe,
        interval,
        config: config.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = GeneratorConfig {
            nodes: 20,
            ..GeneratorConfig::default()
        };
        let a = generate(&config).unwrap();
        let b = generate(&config).unwrap();
        assert_eq!(a.topology, b.topology);
        assert_eq!(a.superframe, b.superframe);
        let other = generate(&GeneratorConfig { seed: 2, ..config }).unwrap();
        assert_ne!(a.topology, other.topology, "seeds must decorrelate");
    }

    #[test]
    fn generated_networks_are_connected_and_depth_bounded() {
        for seed in 0..20 {
            let config = GeneratorConfig {
                seed,
                nodes: 15,
                max_depth: 3,
                ..GeneratorConfig::default()
            };
            let net = generate(&config).unwrap();
            assert!(net.topology.is_connected(), "seed {seed}");
            assert_eq!(net.topology.node_count(), 16);
            for (node, d) in gateway_distances(&net.topology) {
                assert!(d <= config.max_depth, "{node} at depth {d} (seed {seed})");
            }
        }
    }

    #[test]
    fn bad_configs_are_rejected() {
        let bad = [
            GeneratorConfig {
                nodes: 0,
                ..GeneratorConfig::default()
            },
            GeneratorConfig {
                max_degree: 1,
                ..GeneratorConfig::default()
            },
            GeneratorConfig {
                max_depth: 0,
                ..GeneratorConfig::default()
            },
            GeneratorConfig {
                availability: (0.9, 0.2),
                ..GeneratorConfig::default()
            },
            GeneratorConfig {
                availability: (0.5, 1.0),
                ..GeneratorConfig::default()
            },
            GeneratorConfig {
                recovery: 0.0,
                ..GeneratorConfig::default()
            },
            GeneratorConfig {
                reporting_interval: 0,
                ..GeneratorConfig::default()
            },
        ];
        for config in bad {
            assert!(generate(&config).is_err(), "{config:?}");
        }
    }
}
