//! whart-opt: random mesh topology generation and Eq. 12-powered
//! what-if route/schedule optimization.
//!
//! The paper evaluates *given* networks; this crate turns the model into
//! a design tool. It has three parts:
//!
//! * [`generate`] — a seeded random-topology generator generalizing the
//!   Fig. 12 typical network (node count, degree/depth caps, link
//!   quality distribution), emitting networks that the rest of the
//!   workspace — and the `whart analyze` / `whart batch` spec JSON —
//!   can consume;
//! * [`greedy_tree`] / [`optimize`] — a search layer over uplink
//!   routing trees and sequential slot schedules: greedy Eq. 12
//!   construction followed by hill climbing with reparent
//!   (subtree-reroute / swap-parent) and slot-reassignment moves,
//!   under the super-frame's uplink slot budget, for a pluggable
//!   [`Objective`] (max composed reachability or min expected delay);
//! * engine-backed candidate pricing — every candidate fleet goes
//!   through one shared [`whart_engine::Engine`], and because routes
//!   are priced at canonical slots `0..h-1` the path-cache signature
//!   depends only on the link chain: local moves re-solve only the
//!   routes they touch, everything else is a cache hit. The search
//!   records `opt.*` metrics and per-round trace spans through the
//!   engine's observability handles.
//!
//! ```
//! use whart_engine::Engine;
//! use whart_opt::{generate, optimize, GeneratorConfig, SearchConfig};
//!
//! # fn main() -> Result<(), whart_opt::OptError> {
//! let net = generate(&GeneratorConfig { seed: 7, nodes: 12, ..GeneratorConfig::default() })?;
//! let mut engine = Engine::new(2);
//! let result = optimize(&mut engine, &net, &SearchConfig::default())?;
//! assert!(result.improved_or_tied());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod generate;
mod search;

pub use error::{OptError, Result};
pub use generate::{generate, GeneratedNetwork, GeneratorConfig};
pub use search::{
    greedy_tree, optimize, Objective, Optimized, PathOutcome, RoundRecord, RoutingTree,
    SearchConfig,
};
