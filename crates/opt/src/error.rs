//! Error type of the generator and optimizer.

use std::fmt;
use whart_channel::ChannelError;
use whart_model::ModelError;
use whart_net::NetError;

/// Everything that can go wrong while generating a topology or searching
/// over routing trees.
#[derive(Debug, Clone, PartialEq)]
pub enum OptError {
    /// A generator or search parameter is out of range.
    InvalidConfig {
        /// What is wrong with the configuration.
        reason: String,
    },
    /// The topology and slot budget admit no feasible routing tree.
    Infeasible {
        /// Why no candidate satisfies the constraints.
        reason: String,
    },
    /// A model-layer failure while building or evaluating a candidate.
    Model(ModelError),
    /// A network-layer failure while assembling the topology.
    Net(NetError),
    /// A channel-layer failure while deriving a link model.
    Channel(ChannelError),
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            OptError::Infeasible { reason } => write!(f, "infeasible search: {reason}"),
            OptError::Model(e) => write!(f, "model error: {e}"),
            OptError::Net(e) => write!(f, "network error: {e}"),
            OptError::Channel(e) => write!(f, "channel error: {e}"),
        }
    }
}

impl std::error::Error for OptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OptError::Model(e) => Some(e),
            OptError::Net(e) => Some(e),
            OptError::Channel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ChannelError> for OptError {
    fn from(e: ChannelError) -> OptError {
        OptError::Channel(e)
    }
}

impl From<ModelError> for OptError {
    fn from(e: ModelError) -> OptError {
        OptError::Model(e)
    }
}

impl From<NetError> for OptError {
    fn from(e: NetError) -> OptError {
        OptError::Net(e)
    }
}

/// Crate-wide result alias.
pub type Result<T, E = OptError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = OptError::InvalidConfig {
            reason: "zero nodes".into(),
        };
        assert!(e.to_string().contains("zero nodes"));
        let e = OptError::Infeasible {
            reason: "budget".into(),
        };
        assert!(e.to_string().contains("budget"));
    }
}
