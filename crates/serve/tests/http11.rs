//! HTTP/1.1 conformance tests for the persistent-connection server:
//! pipelining, keep-alive lifecycle, admission control, drain behavior,
//! and chunked response framing, all exercised over real sockets.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;
use whart_serve::{Flag, Response, Router, Server, ServerConfig};

/// A parsed response off a persistent connection.
#[derive(Debug)]
struct Reply {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Reply {
    fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    fn body_text(&self) -> &str {
        std::str::from_utf8(&self.body).unwrap()
    }
}

/// Reads one framed response (Content-Length or chunked) without
/// relying on the server closing the connection.
fn read_reply(reader: &mut BufReader<TcpStream>) -> Reply {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"))
        .parse()
        .unwrap();
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let (name, value) = line.split_once(':').unwrap();
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let mut body = Vec::new();
    if chunked {
        loop {
            let mut size_line = String::new();
            reader.read_line(&mut size_line).unwrap();
            let size = usize::from_str_radix(size_line.trim(), 16).unwrap();
            let mut chunk = vec![0u8; size + 2]; // payload + trailing CRLF
            reader.read_exact(&mut chunk).unwrap();
            if size == 0 {
                break;
            }
            body.extend_from_slice(&chunk[..size]);
        }
    } else {
        let length: usize = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .map(|(_, v)| v.parse().unwrap())
            .unwrap_or(0);
        let mut buf = vec![0u8; length];
        reader.read_exact(&mut buf).unwrap();
        body = buf;
    }
    Reply {
        status,
        headers,
        body,
    }
}

fn start(config: ServerConfig, router: Router) -> (SocketAddr, Flag, std::thread::JoinHandle<()>) {
    let mut server = Server::bind(&config).unwrap();
    server.set_router(router);
    let addr = server.local_addr().unwrap();
    let shutdown = server.shutdown();
    let handle = std::thread::spawn(move || server.serve().unwrap());
    (addr, shutdown, handle)
}

fn echo_router() -> Router {
    Router::new()
        .route("GET", "/ping", |_| Response::text(200, "pong\n"))
        .route("POST", "/echo", |req| {
            Response::text(200, req.body_text().unwrap_or("?").to_string())
        })
}

fn connect(addr: SocketAddr) -> BufReader<TcpStream> {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    BufReader::new(stream)
}

#[test]
fn pipelined_requests_on_one_socket_answer_in_order() {
    let (addr, shutdown, handle) = start(ServerConfig::default(), echo_router());
    let mut reader = connect(addr);
    // Three requests in a single write; responses must come back in
    // order on the same connection.
    reader
        .get_mut()
        .write_all(
            b"GET /ping HTTP/1.1\r\nHost: t\r\n\r\n\
              POST /echo HTTP/1.1\r\nHost: t\r\nContent-Length: 5\r\n\r\nhello\
              GET /ping HTTP/1.1\r\nHost: t\r\n\r\n",
        )
        .unwrap();
    let first = read_reply(&mut reader);
    assert_eq!((first.status, first.body_text()), (200, "pong\n"));
    assert_eq!(first.header("connection"), Some("keep-alive"));
    let second = read_reply(&mut reader);
    assert_eq!((second.status, second.body_text()), (200, "hello"));
    let third = read_reply(&mut reader);
    assert_eq!(third.status, 200);
    shutdown.set();
    handle.join().unwrap();
}

#[test]
fn keep_alive_connection_serves_sequential_requests() {
    let (addr, shutdown, handle) = start(ServerConfig::default(), echo_router());
    let mut reader = connect(addr);
    for i in 0..5 {
        write!(reader.get_mut(), "GET /ping HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let reply = read_reply(&mut reader);
        assert_eq!(reply.status, 200, "request {i} on the same socket");
        assert_eq!(reply.header("connection"), Some("keep-alive"));
    }
    shutdown.set();
    handle.join().unwrap();
}

#[test]
fn connection_close_is_honored() {
    let (addr, shutdown, handle) = start(ServerConfig::default(), echo_router());
    let mut reader = connect(addr);
    write!(
        reader.get_mut(),
        "GET /ping HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let reply = read_reply(&mut reader);
    assert_eq!(reply.status, 200);
    assert_eq!(reply.header("connection"), Some("close"));
    // The server must actually close: the next read sees EOF.
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "no bytes after a closed response");
    shutdown.set();
    handle.join().unwrap();
}

#[test]
fn http10_defaults_to_close() {
    let (addr, shutdown, handle) = start(ServerConfig::default(), echo_router());
    let mut reader = connect(addr);
    write!(reader.get_mut(), "GET /ping HTTP/1.0\r\nHost: t\r\n\r\n").unwrap();
    let reply = read_reply(&mut reader);
    assert_eq!(reply.status, 200);
    assert_eq!(reply.header("connection"), Some("close"));
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
    shutdown.set();
    handle.join().unwrap();
}

#[test]
fn idle_connections_are_closed_at_the_keepalive_timeout() {
    let config = ServerConfig {
        keepalive_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    };
    let (addr, shutdown, handle) = start(config, echo_router());
    let mut reader = connect(addr);
    write!(reader.get_mut(), "GET /ping HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    let reply = read_reply(&mut reader);
    assert_eq!(reply.header("connection"), Some("keep-alive"));
    // Go idle past the keep-alive timeout: the server closes its end
    // and the read sees EOF (not a timeout on our side).
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "server closed the idle connection");
    shutdown.set();
    handle.join().unwrap();
}

#[test]
fn oversized_bodies_answer_413_and_close() {
    let (addr, shutdown, handle) = start(ServerConfig::default(), echo_router());
    let mut reader = connect(addr);
    // Declare a body over the 16 MiB cap; the server must reject on the
    // declaration alone, without us sending the payload.
    write!(
        reader.get_mut(),
        "POST /echo HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
        64 * 1024 * 1024
    )
    .unwrap();
    let reply = read_reply(&mut reader);
    assert_eq!(reply.status, 413);
    assert_eq!(reply.header("connection"), Some("close"));
    shutdown.set();
    handle.join().unwrap();
}

#[test]
fn malformed_content_length_is_rejected() {
    for bad in ["abc", "+5", "-1", "1 2", "0x10"] {
        let (addr, shutdown, handle) = start(ServerConfig::default(), echo_router());
        let mut reader = connect(addr);
        write!(
            reader.get_mut(),
            "POST /echo HTTP/1.1\r\nHost: t\r\nContent-Length: {bad}\r\n\r\n"
        )
        .unwrap();
        let reply = read_reply(&mut reader);
        assert_eq!(reply.status, 400, "content-length {bad:?}");
        shutdown.set();
        handle.join().unwrap();
    }
}

#[test]
fn conflicting_content_lengths_are_rejected() {
    let (addr, shutdown, handle) = start(ServerConfig::default(), echo_router());
    let mut reader = connect(addr);
    reader
        .get_mut()
        .write_all(
            b"POST /echo HTTP/1.1\r\nHost: t\r\nContent-Length: 3\r\nContent-Length: 4\r\n\r\nabcd",
        )
        .unwrap();
    let reply = read_reply(&mut reader);
    assert_eq!(reply.status, 400);
    shutdown.set();
    handle.join().unwrap();
}

#[test]
fn chunked_responses_decode_and_the_connection_stays_reusable() {
    let big = "x".repeat(200 * 1024);
    let payload = big.clone();
    let router = Router::new()
        .route("GET", "/big", move |_| {
            Response::json(200, payload.clone()).with_chunked()
        })
        .route("GET", "/ping", |_| Response::text(200, "pong\n"));
    let (addr, shutdown, handle) = start(ServerConfig::default(), router);
    let mut reader = connect(addr);
    write!(reader.get_mut(), "GET /big HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    let reply = read_reply(&mut reader);
    assert_eq!(reply.status, 200);
    assert_eq!(
        reply.header("transfer-encoding"),
        Some("chunked"),
        "large body streams chunked"
    );
    assert_eq!(reply.header("content-length"), None);
    assert_eq!(reply.body, big.as_bytes(), "chunks reassemble exactly");
    // Framing intact: the same connection serves another request.
    write!(reader.get_mut(), "GET /ping HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    let reply = read_reply(&mut reader);
    assert_eq!((reply.status, reply.body_text()), (200, "pong\n"));
    shutdown.set();
    handle.join().unwrap();
}

#[test]
fn chunked_responses_fall_back_to_content_length_for_http10() {
    let router = Router::new().route("GET", "/big", |_| {
        Response::json(200, "y".repeat(100 * 1024)).with_chunked()
    });
    let (addr, shutdown, handle) = start(ServerConfig::default(), router);
    let mut reader = connect(addr);
    write!(reader.get_mut(), "GET /big HTTP/1.0\r\nHost: t\r\n\r\n").unwrap();
    let reply = read_reply(&mut reader);
    assert_eq!(reply.status, 200);
    assert_eq!(reply.header("transfer-encoding"), None);
    assert_eq!(reply.header("content-length"), Some("102400"));
    assert_eq!(reply.body.len(), 100 * 1024);
    shutdown.set();
    handle.join().unwrap();
}

#[test]
fn saturated_queue_rejects_with_503_and_retry_after() {
    // One worker, zero queue slots: while the worker is busy, any other
    // readable connection must be rejected immediately, not buffered.
    let router = Router::new()
        .route("GET", "/slow", |_| {
            std::thread::sleep(Duration::from_millis(600));
            Response::text(200, "done\n")
        })
        .route("GET", "/ping", |_| Response::text(200, "pong\n"));
    let config = ServerConfig {
        threads: 1,
        max_queue: 0,
        ..ServerConfig::default()
    };
    let (addr, shutdown, handle) = start(config, router);
    let mut slow = connect(addr);
    write!(slow.get_mut(), "GET /slow HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    // Give the event loop time to dispatch /slow into the lone worker.
    std::thread::sleep(Duration::from_millis(150));
    let mut rejected = connect(addr);
    write!(rejected.get_mut(), "GET /ping HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    let reply = read_reply(&mut rejected);
    assert_eq!(reply.status, 503, "admission control rejects");
    assert_eq!(reply.header("retry-after"), Some("1"));
    assert_eq!(reply.header("connection"), Some("close"));
    // The in-flight slow request still completes normally.
    let reply = read_reply(&mut slow);
    assert_eq!((reply.status, reply.body_text()), (200, "done\n"));
    shutdown.set();
    handle.join().unwrap();
}

#[test]
fn healthz_flips_to_503_once_drain_begins() {
    // One worker. Connection A occupies it with a slow request;
    // connection B's health probe gets queued behind A; drain begins
    // while both are outstanding. B's probe is served mid-drain and
    // must report 503 so load balancers stop routing here.
    let router = Router::new().route("GET", "/slow", |_| {
        std::thread::sleep(Duration::from_millis(400));
        Response::text(200, "done\n")
    });
    let config = ServerConfig {
        threads: 1,
        ..ServerConfig::default()
    };
    let (addr, shutdown, handle) = start(config, router);

    // Pre-drain baseline on its own connection.
    let mut probe = connect(addr);
    write!(probe.get_mut(), "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    let reply = read_reply(&mut probe);
    assert_eq!((reply.status, reply.body_text()), (200, "ok\n"));
    drop(probe);

    let mut slow = connect(addr);
    write!(slow.get_mut(), "GET /slow HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    std::thread::sleep(Duration::from_millis(100));
    let mut queued = connect(addr);
    write!(queued.get_mut(), "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    std::thread::sleep(Duration::from_millis(100));
    shutdown.set();

    let reply = read_reply(&mut slow);
    assert_eq!(reply.status, 200, "in-flight request drains normally");
    assert_eq!(reply.header("connection"), Some("close"), "drain closes");
    let reply = read_reply(&mut queued);
    assert_eq!(
        (reply.status, reply.body_text()),
        (503, "draining\n"),
        "a draining server must stop reporting healthy"
    );
    handle.join().unwrap();
}

#[test]
fn trickling_clients_time_out_with_408() {
    let config = ServerConfig {
        read_timeout: Duration::from_millis(150),
        ..ServerConfig::default()
    };
    let (addr, shutdown, handle) = start(config, echo_router());
    let mut reader = connect(addr);
    // Start a request but never finish the head.
    reader
        .get_mut()
        .write_all(b"GET /ping HTTP/1.1\r\nHos")
        .unwrap();
    let reply = read_reply(&mut reader);
    assert_eq!(reply.status, 408);
    assert_eq!(reply.header("connection"), Some("close"));
    shutdown.set();
    handle.join().unwrap();
}
