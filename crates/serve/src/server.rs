//! The worker-pool HTTP server: nonblocking accept loop, graceful
//! drain, built-in health/readiness probes, and per-request metrics and
//! tracing middleware.
//!
//! ## Threading model
//!
//! One accept loop (the thread calling [`Server::serve`]) polls a
//! nonblocking listener and hands accepted connections to a fixed pool
//! of worker threads over an mpsc channel. Each connection carries one
//! request (`Connection: close`), so a worker is busy for exactly one
//! request at a time and the channel bounds nothing — backpressure is
//! the OS accept queue.
//!
//! ## Shutdown and drain
//!
//! [`Server::shutdown`] returns a [`Flag`]; setting it (or a SIGINT
//! observed via [`crate::signal`]) makes the accept loop stop accepting,
//! close the channel, and join the workers. Workers finish every
//! already-accepted connection — queued or mid-solve — before exiting,
//! so in-flight requests are never reset. [`Server::serve`] then
//! returns and the caller writes its final artifacts.
//!
//! ## Observability
//!
//! Every request increments `http.requests_total{route,code}`, records
//! into the per-route latency histogram `http.request_ns{route}`,
//! tracks the `http.in_flight` gauge, and emits one `http_request`
//! trace span carrying the route, status code, and any
//! [`Response::trace_args`] the handler attached.

use crate::http::{read_request, Response};
use crate::router::Router;
use crate::signal;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use whart_obs::Metrics;
use whart_trace::Trace;

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(15);

/// A cloneable one-way boolean latch (readiness, shutdown).
#[derive(Clone, Default)]
pub struct Flag(Arc<AtomicBool>);

impl Flag {
    /// A fresh, unset flag.
    pub fn new() -> Flag {
        Flag::default()
    }

    /// Latches the flag on.
    pub fn set(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether the flag has been set.
    pub fn is_set(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

impl std::fmt::Debug for Flag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Flag").field(&self.is_set()).finish()
    }
}

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:9090` (`:0` picks a free port).
    pub addr: String,
    /// Worker thread count (minimum 1).
    pub threads: usize,
    /// Per-connection read timeout, so a silent client cannot pin a
    /// worker forever.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 4,
            read_timeout: Duration::from_secs(10),
        }
    }
}

/// Shared per-worker context.
struct Ctx {
    router: Router,
    metrics: Metrics,
    trace: Trace,
    ready: Flag,
    in_flight: AtomicU64,
    read_timeout: Duration,
}

/// A bound HTTP server, not yet serving.
pub struct Server {
    listener: TcpListener,
    router: Router,
    metrics: Metrics,
    trace: Trace,
    ready: Flag,
    shutdown: Flag,
    threads: usize,
    read_timeout: Duration,
}

impl Server {
    /// Binds the listener and prepares the pool. Routes start empty so
    /// handlers can capture the server's [`Server::shutdown`] /
    /// [`Server::ready`] flags; install them with [`Server::set_router`].
    ///
    /// # Errors
    ///
    /// When the address cannot be bound.
    pub fn bind(config: &ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Server {
            listener,
            router: Router::new(),
            metrics: Metrics::disabled(),
            trace: Trace::disabled(),
            ready: Flag::new(),
            shutdown: Flag::new(),
            threads: config.threads.max(1),
            read_timeout: config.read_timeout,
        })
    }

    /// Installs the route table.
    pub fn set_router(&mut self, router: Router) {
        self.router = router;
    }

    /// Points request middleware at a metrics registry.
    pub fn set_metrics(&mut self, metrics: Metrics) {
        self.metrics = metrics;
    }

    /// Points request middleware at a trace journal.
    pub fn set_trace(&mut self, trace: Trace) {
        self.trace = trace;
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// When the socket address cannot be read back.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The readiness latch behind `GET /readyz`: the endpoint answers
    /// 503 until this is set (typically by a self-check solve).
    pub fn ready(&self) -> Flag {
        self.ready.clone()
    }

    /// The shutdown latch: setting it makes [`Server::serve`] stop
    /// accepting, drain, and return.
    pub fn shutdown(&self) -> Flag {
        self.shutdown.clone()
    }

    /// Runs the accept loop until shutdown (flag or SIGINT), then drains
    /// the workers and returns.
    ///
    /// # Errors
    ///
    /// When the listener cannot be switched to nonblocking mode.
    pub fn serve(mut self) -> io::Result<()> {
        signal::install();
        self.listener.set_nonblocking(true)?;
        let ctx = Arc::new(Ctx {
            router: std::mem::take(&mut self.router),
            metrics: self.metrics.clone(),
            trace: self.trace.clone(),
            ready: self.ready.clone(),
            in_flight: AtomicU64::new(0),
            read_timeout: self.read_timeout,
        });
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<_> = (0..self.threads)
            .map(|i| {
                let ctx = Arc::clone(&ctx);
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("whart-serve-{i}"))
                    .spawn(move || worker_loop(&ctx, &rx))
                    .expect("spawn worker")
            })
            .collect();
        while !self.shutdown.is_set() && !signal::interrupted() {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    // A send can only fail after the workers exited,
                    // which only happens once tx is dropped below.
                    let _ = tx.send(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => std::thread::sleep(ACCEPT_POLL),
            }
        }
        // Stop accepting; close the queue. Workers finish every accepted
        // connection (queued or in-flight), then see the closed channel
        // and exit.
        drop(tx);
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.listener.local_addr().ok())
            .field("threads", &self.threads)
            .finish()
    }
}

fn worker_loop(ctx: &Ctx, rx: &Mutex<mpsc::Receiver<TcpStream>>) {
    loop {
        // Hold the lock only for the handoff, not while serving.
        let stream = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        match stream {
            Ok(stream) => handle_connection(ctx, stream),
            Err(_) => return, // channel closed: drain complete
        }
    }
}

/// Built-in probe routes, answered before the router.
fn builtin(ctx: &Ctx, method: &str, path: &str) -> Option<(&'static str, Response)> {
    match (method, path) {
        ("GET", "/healthz") => Some(("/healthz", Response::text(200, "ok\n"))),
        ("GET", "/readyz") => Some((
            "/readyz",
            if ctx.ready.is_set() {
                Response::text(200, "ready\n")
            } else {
                Response::text(503, "starting\n")
            },
        )),
        _ => None,
    }
}

fn handle_connection(ctx: &Ctx, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(ctx.read_timeout));
    let flight = ctx.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
    let gauge = ctx.metrics.gauge("http.in_flight");
    gauge.set(flight);
    let started = Instant::now();
    let (label, response) = match read_request(&mut stream) {
        Ok(request) => match builtin(ctx, &request.method, &request.path) {
            Some(hit) => hit,
            None => ctx.router.dispatch(&request),
        },
        Err(error) => ("malformed", Response::text(400, format!("{error}\n"))),
    };
    let _ = response.write_to(&mut stream);
    let elapsed = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    ctx.metrics
        .counter(&format!(
            "http.requests_total{{route={label},code={}}}",
            response.status
        ))
        .increment();
    ctx.metrics
        .histogram(&format!("http.request_ns{{route={label}}}"))
        .record(elapsed);
    let mut span = ctx.trace.span("http_request", "http");
    span.arg("route", label);
    span.arg("code", u64::from(response.status));
    for (key, value) in response.trace_args {
        span.arg(key, value);
    }
    span.finish();
    // Workers are long-lived, so publish this thread's buffered events
    // now: a `GET /v1/trace` drain from another worker must observe
    // every request that already completed.
    ctx.trace.flush();
    let remaining = ctx.in_flight.fetch_sub(1, Ordering::SeqCst) - 1;
    gauge.set(remaining);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    fn get(addr: SocketAddr, target: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {target} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let status: u16 = raw.split_whitespace().nth(1).unwrap().parse().unwrap();
        let body = raw.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
        (status, body)
    }

    fn start(router: Router) -> (SocketAddr, Flag, Flag, Metrics, std::thread::JoinHandle<()>) {
        let config = ServerConfig {
            threads: 2,
            ..ServerConfig::default()
        };
        let mut server = Server::bind(&config).unwrap();
        server.set_router(router);
        let metrics = Metrics::new();
        server.set_metrics(metrics.clone());
        let addr = server.local_addr().unwrap();
        let ready = server.ready();
        let shutdown = server.shutdown();
        let handle = std::thread::spawn(move || server.serve().unwrap());
        (addr, ready, shutdown, metrics, handle)
    }

    #[test]
    fn probes_flip_with_the_readiness_flag() {
        let (addr, ready, shutdown, _metrics, handle) = start(Router::new());
        assert_eq!(get(addr, "/healthz"), (200, "ok\n".into()));
        assert_eq!(get(addr, "/readyz").0, 503, "not ready before the flag");
        ready.set();
        assert_eq!(get(addr, "/readyz"), (200, "ready\n".into()));
        shutdown.set();
        handle.join().unwrap();
    }

    #[test]
    fn requests_route_and_record_metrics() {
        let router = Router::new().route("GET", "/hello", |req| {
            let name = req.query_param("name").unwrap_or("world");
            Response::text(200, format!("hi {name}\n")).with_trace_arg("greeted", true)
        });
        let (addr, _ready, shutdown, metrics, handle) = start(router);
        assert_eq!(get(addr, "/hello?name=x"), (200, "hi x\n".into()));
        assert_eq!(get(addr, "/nope").0, 404);
        shutdown.set();
        handle.join().unwrap();
        let snapshot = metrics.snapshot();
        assert_eq!(
            snapshot.counter("http.requests_total{route=/hello,code=200}"),
            Some(1)
        );
        assert_eq!(
            snapshot.counter("http.requests_total{route=unmatched,code=404}"),
            Some(1)
        );
        let latency = snapshot
            .histogram("http.request_ns{route=/hello}")
            .expect("per-route latency histogram");
        assert_eq!(latency.count, 1);
        assert_eq!(snapshot.gauge("http.in_flight"), Some(0), "drained");
    }

    #[test]
    fn malformed_requests_answer_400() {
        let (addr, _ready, shutdown, metrics, handle) = start(Router::new());
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");
        shutdown.set();
        handle.join().unwrap();
        let snapshot = metrics.snapshot();
        assert_eq!(
            snapshot.counter("http.requests_total{route=malformed,code=400}"),
            Some(1)
        );
    }

    #[test]
    fn shutdown_drains_queued_and_in_flight_requests() {
        // One worker, a slow handler: the second connection queues
        // behind the first. Shutdown fires while both are outstanding;
        // both must still complete without a reset.
        let router = Router::new().route("GET", "/slow", |_| {
            std::thread::sleep(Duration::from_millis(120));
            Response::text(200, "done\n")
        });
        let config = ServerConfig {
            threads: 1,
            ..ServerConfig::default()
        };
        let mut server = Server::bind(&config).unwrap();
        server.set_router(router);
        let addr = server.local_addr().unwrap();
        let shutdown = server.shutdown();
        let handle = std::thread::spawn(move || server.serve().unwrap());
        let clients: Vec<_> = (0..2)
            .map(|_| std::thread::spawn(move || get(addr, "/slow")))
            .collect();
        // Let both connections land, then shut down mid-flight.
        std::thread::sleep(Duration::from_millis(60));
        shutdown.set();
        for client in clients {
            let (status, body) = client.join().unwrap();
            assert_eq!((status, body.as_str()), (200, "done\n"));
        }
        handle.join().unwrap();
        // The listener is gone: new connections are refused.
        assert!(
            TcpStream::connect(addr).is_err() || {
                // Accepted-but-dead sockets can linger briefly; a write+read
                // must fail either way.
                let mut s = TcpStream::connect(addr).unwrap();
                s.set_read_timeout(Some(Duration::from_millis(200)))
                    .unwrap();
                let _ = write!(s, "GET /healthz HTTP/1.1\r\n\r\n");
                let mut buf = [0u8; 1];
                matches!(s.read(&mut buf), Ok(0) | Err(_))
            }
        );
    }
}
