//! The readiness-loop HTTP server: keep-alive connections, a bounded
//! request queue with admission control, graceful drain, built-in
//! health/readiness probes, and per-request metrics and tracing
//! middleware.
//!
//! ## Threading model (Unix)
//!
//! One event loop (the thread calling [`Server::serve`]) owns a poll
//! set holding the nonblocking listener, a wake pipe, and every idle
//! keep-alive connection. When a parked connection turns readable it is
//! dispatched to a fixed pool of worker threads over a **bounded**
//! channel of capacity [`ServerConfig::max_queue`]; a full queue is
//! answered immediately with `503` + `Retry-After` instead of buffering
//! without bound (finite-queue admission, the degradation mode the
//! finite-queue mesh models in the related work prescribe). A worker
//! serves requests back-to-back while more are buffered or in flight on
//! the socket (pipelining), then hands the connection back to the event
//! loop for parking and wakes its poll via the wake pipe. Idle
//! connections past [`ServerConfig::keepalive_timeout`] are closed by
//! the event loop.
//!
//! On non-Unix targets there is no poller: workers own connections for
//! their whole lifetime and idle keep-alive waits consume a worker (a
//! documented fallback, not the production path).
//!
//! ## Shutdown and drain
//!
//! [`Server::shutdown`] returns a [`Flag`]; setting it (or a SIGINT
//! observed via [`crate::signal`]) makes the event loop stop accepting,
//! close idle connections, close the work queue, and join the workers.
//! Workers finish every dispatched connection — queued or mid-solve —
//! and serve already-buffered pipelined requests, but answer with
//! `Connection: close` and stop parking, so the drain converges.
//! `GET /healthz` answers `503 draining` the moment drain begins, so a
//! load balancer stops routing to the instance while in-flight work
//! completes.
//!
//! ## Observability
//!
//! Per request: `http.requests_total{route,code}`, the per-route
//! latency histogram `http.request_ns{route}`, the `http.in_flight`
//! gauge, and one `http_request` trace span. Per connection:
//! `http.connections_open` (gauge), `http.keepalive.reuses_total`,
//! `http.keepalive.expired_total`, and the admission-control pair
//! `http.queue_depth` (gauge) / `http.rejected_total{reason=queue_full}`.

use crate::conn::{After, Conn};
use crate::flight::{FlightEntry, FlightRecorder};
use crate::http::{Request, RequestError, Response};
use crate::router::Router;
use crate::signal;
use crate::windows::HttpWindows;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};
use whart_log::{Level, Logger};
use whart_obs::Metrics;
use whart_trace::{Phase, Trace, TraceEvent};

#[cfg(unix)]
use crate::poll;
#[cfg(unix)]
use std::os::unix::io::AsRawFd;

/// Event-loop tick: the upper bound on how long a poll sleeps, so
/// shutdown flags and idle expiry are observed promptly.
const TICK: Duration = Duration::from_millis(250);

/// How long the non-Unix accept loop sleeps when nothing is pending.
#[cfg(not(unix))]
const ACCEPT_POLL: Duration = Duration::from_millis(15);

/// How long the event loop spends writing a queue-full rejection.
const REJECT_WRITE_TIMEOUT: Duration = Duration::from_millis(500);

/// Longest client-supplied `X-Request-Id` the server will propagate
/// (anything longer, empty, or non-printable is replaced).
const MAX_REQUEST_ID: usize = 128;

/// Monotonic per-process request-id sequence.
static NEXT_REQUEST_SEQ: AtomicU64 = AtomicU64::new(1);

/// Process-lifetime id prefix, so ids from different server runs do not
/// collide in aggregated logs.
fn request_id_prefix() -> u32 {
    static PREFIX: OnceLock<u32> = OnceLock::new();
    *PREFIX.get_or_init(|| {
        let nanos = SystemTime::now().duration_since(UNIX_EPOCH).map_or(0, |d| {
            d.subsec_nanos() as u128 | (d.as_secs() as u128) << 32
        });
        let pid = std::process::id();
        (nanos as u32) ^ (nanos >> 32) as u32 ^ pid.rotate_left(16)
    })
}

/// A fresh correlation id: `xxxxxxxx-nnnnnn` (process prefix, sequence).
pub fn next_request_id() -> String {
    format!(
        "{:08x}-{:06}",
        request_id_prefix(),
        NEXT_REQUEST_SEQ.fetch_add(1, Ordering::Relaxed)
    )
}

/// Current wall clock, Unix milliseconds.
fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64)
}

/// Nanoseconds since `started`, saturating.
fn elapsed_ns(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// The request's correlation id: the client's `X-Request-Id` when it is
/// present and sane, otherwise a freshly generated one, injected into
/// the request headers so handlers downstream see the same id.
fn effective_request_id(request: &mut Request) -> String {
    let client_ok = request.header("x-request-id").is_some_and(|id| {
        !id.is_empty() && id.len() <= MAX_REQUEST_ID && id.bytes().all(|b| b.is_ascii_graphic())
    });
    if client_ok {
        return request.header("x-request-id").expect("checked").to_owned();
    }
    let id = next_request_id();
    request.headers.retain(|(name, _)| name != "x-request-id");
    request.headers.push(("x-request-id".into(), id.clone()));
    id
}

/// A cloneable one-way boolean latch (readiness, shutdown).
#[derive(Clone, Default)]
pub struct Flag(Arc<AtomicBool>);

impl Flag {
    /// A fresh, unset flag.
    pub fn new() -> Flag {
        Flag::default()
    }

    /// Latches the flag on.
    pub fn set(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether the flag has been set.
    pub fn is_set(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

impl std::fmt::Debug for Flag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Flag").field(&self.is_set()).finish()
    }
}

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:9090` (`:0` picks a free port).
    pub addr: String,
    /// Worker thread count (minimum 1).
    pub threads: usize,
    /// Per-request read deadline once bytes have started arriving, so a
    /// trickling client cannot pin a worker forever (408 on expiry).
    pub read_timeout: Duration,
    /// Per-response write deadline, so a peer that stops reading cannot
    /// pin a worker forever.
    pub write_timeout: Duration,
    /// How long an idle keep-alive connection may sit parked before the
    /// server closes it.
    pub keepalive_timeout: Duration,
    /// Dispatch-queue capacity. Readable connections beyond the free
    /// workers plus this backlog are rejected with `503` +
    /// `Retry-After` instead of queueing unboundedly. `0` means a
    /// request is admitted only when a worker is free right now.
    pub max_queue: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 4,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            keepalive_timeout: Duration::from_secs(60),
            max_queue: 1024,
        }
    }
}

/// Shared per-worker context.
struct Ctx {
    router: Router,
    metrics: Metrics,
    trace: Trace,
    log: Logger,
    flight: FlightRecorder,
    windows: Option<Arc<HttpWindows>>,
    ready: Flag,
    shutdown: Flag,
    in_flight: AtomicU64,
    open: AtomicU64,
    queued: AtomicU64,
    read_timeout: Duration,
    write_timeout: Duration,
    keepalive_timeout: Duration,
}

impl Ctx {
    /// Whether graceful drain has begun (flag or SIGINT).
    fn draining(&self) -> bool {
        self.shutdown.is_set() || signal::interrupted()
    }
}

/// A connection plus the bookkeeping that must run when it dies, no
/// matter which thread drops it.
struct Tracked {
    conn: Conn,
    ctx: Arc<Ctx>,
    /// When the connection entered the dispatch queue (measures queue
    /// wait for the first request a worker serves off it).
    enqueued_at: Option<Instant>,
}

impl Deref for Tracked {
    type Target = Conn;
    fn deref(&self) -> &Conn {
        &self.conn
    }
}

impl DerefMut for Tracked {
    fn deref_mut(&mut self) -> &mut Conn {
        &mut self.conn
    }
}

impl Drop for Tracked {
    fn drop(&mut self) {
        let open = self.ctx.open.fetch_sub(1, Ordering::SeqCst) - 1;
        self.ctx.metrics.gauge("http.connections_open").set(open);
    }
}

/// A bound HTTP server, not yet serving.
pub struct Server {
    listener: TcpListener,
    router: Router,
    metrics: Metrics,
    trace: Trace,
    log: Logger,
    flight: FlightRecorder,
    windows: Option<Arc<HttpWindows>>,
    ready: Flag,
    shutdown: Flag,
    threads: usize,
    read_timeout: Duration,
    write_timeout: Duration,
    keepalive_timeout: Duration,
    max_queue: usize,
}

impl Server {
    /// Binds the listener and prepares the pool. Routes start empty so
    /// handlers can capture the server's [`Server::shutdown`] /
    /// [`Server::ready`] flags; install them with [`Server::set_router`].
    ///
    /// # Errors
    ///
    /// When the address cannot be bound.
    pub fn bind(config: &ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Server {
            listener,
            router: Router::new(),
            metrics: Metrics::disabled(),
            trace: Trace::disabled(),
            log: Logger::disabled(),
            flight: FlightRecorder::disabled(),
            windows: None,
            ready: Flag::new(),
            shutdown: Flag::new(),
            threads: config.threads.max(1),
            read_timeout: config.read_timeout,
            write_timeout: config.write_timeout,
            keepalive_timeout: config.keepalive_timeout,
            max_queue: config.max_queue,
        })
    }

    /// Installs the route table.
    pub fn set_router(&mut self, router: Router) {
        self.router = router;
    }

    /// Points request middleware at a metrics registry.
    pub fn set_metrics(&mut self, metrics: Metrics) {
        self.metrics = metrics;
    }

    /// Points request middleware at a trace journal.
    pub fn set_trace(&mut self, trace: Trace) {
        self.trace = trace;
    }

    /// Points request middleware at a structured logger (one wide
    /// `http_request` event per request).
    pub fn set_log(&mut self, log: Logger) {
        self.log = log;
    }

    /// Points request middleware at a flight recorder.
    pub fn set_flight(&mut self, flight: FlightRecorder) {
        self.flight = flight;
    }

    /// Points request middleware at shared sliding-window statistics.
    pub fn set_windows(&mut self, windows: Arc<HttpWindows>) {
        self.windows = Some(windows);
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// When the socket address cannot be read back.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The readiness latch behind `GET /readyz`: the endpoint answers
    /// 503 until this is set (typically by a self-check solve).
    pub fn ready(&self) -> Flag {
        self.ready.clone()
    }

    /// The shutdown latch: setting it makes [`Server::serve`] stop
    /// accepting, drain, and return.
    pub fn shutdown(&self) -> Flag {
        self.shutdown.clone()
    }

    fn make_ctx(&mut self) -> Arc<Ctx> {
        Arc::new(Ctx {
            router: std::mem::take(&mut self.router),
            metrics: self.metrics.clone(),
            trace: self.trace.clone(),
            log: self.log.clone(),
            flight: self.flight.clone(),
            windows: self.windows.clone(),
            ready: self.ready.clone(),
            shutdown: self.shutdown.clone(),
            in_flight: AtomicU64::new(0),
            open: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            read_timeout: self.read_timeout,
            write_timeout: self.write_timeout,
            keepalive_timeout: self.keepalive_timeout,
        })
    }

    /// Runs the event loop until shutdown (flag or SIGINT), then drains
    /// the workers and returns.
    ///
    /// # Errors
    ///
    /// When the listener cannot be switched to nonblocking mode or the
    /// wake pipe cannot be created.
    #[cfg(unix)]
    pub fn serve(mut self) -> io::Result<()> {
        signal::install();
        self.listener.set_nonblocking(true)?;
        let ctx = self.make_ctx();
        let (work_tx, work_rx) = mpsc::sync_channel::<Tracked>(self.max_queue);
        let work_rx = Arc::new(Mutex::new(work_rx));
        let (park_tx, park_rx) = mpsc::channel::<Tracked>();
        let mut wake = poll::WakePipe::new()?;
        let wakers: Vec<poll::Waker> = (0..self.threads)
            .map(|_| wake.waker())
            .collect::<io::Result<_>>()?;
        let workers: Vec<_> = wakers
            .into_iter()
            .enumerate()
            .map(|(i, mut waker)| {
                let ctx = Arc::clone(&ctx);
                let work_rx = Arc::clone(&work_rx);
                let park_tx = park_tx.clone();
                std::thread::Builder::new()
                    .name(format!("whart-serve-{i}"))
                    .spawn(move || worker_loop(&ctx, &work_rx, &park_tx, &mut waker))
                    .expect("spawn worker")
            })
            .collect();
        drop(park_tx); // the event loop only receives

        let mut idle: Vec<Tracked> = Vec::new();
        while !ctx.draining() {
            // Expire idle keep-alive connections; note the next expiry
            // so the poll timeout does not sleep past it.
            let now = Instant::now();
            let mut next_expiry: Option<Duration> = None;
            let mut i = 0;
            while i < idle.len() {
                let idle_for = now.duration_since(idle[i].idle_since);
                if idle_for >= ctx.keepalive_timeout {
                    drop(idle.swap_remove(i));
                    ctx.metrics
                        .counter("http.keepalive.expired_total")
                        .increment();
                } else {
                    let left = ctx.keepalive_timeout - idle_for;
                    next_expiry = Some(next_expiry.map_or(left, |m| m.min(left)));
                    i += 1;
                }
            }
            let timeout = next_expiry.map_or(TICK, |d| d.min(TICK));

            let mut fds = Vec::with_capacity(idle.len() + 2);
            fds.push(poll::PollFd::new(self.listener.as_raw_fd(), poll::POLLIN));
            fds.push(poll::PollFd::new(wake.fd(), poll::POLLIN));
            for parked in &idle {
                fds.push(poll::PollFd::new(parked.fd(), poll::POLLIN));
            }
            match poll::poll(&mut fds, Some(timeout)) {
                Ok(0) => continue,
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }

            // Readable (or hung-up) parked connections go to the
            // workers; descending order keeps swap_remove indices valid.
            for index in (0..idle.len()).rev() {
                if fds[index + 2].ready() {
                    dispatch(&ctx, idle.swap_remove(index), &work_tx);
                }
            }
            if fds[1].ready() {
                wake.drain();
            }
            // Park connections the workers handed back (the wake byte
            // may still be in flight; collecting every tick is cheap
            // and loses nothing).
            idle.extend(park_rx.try_iter());
            if fds[0].ready() {
                loop {
                    match self.listener.accept() {
                        Ok((stream, _)) => {
                            if let Ok(conn) = Conn::new(stream) {
                                let open = ctx.open.fetch_add(1, Ordering::SeqCst) + 1;
                                ctx.metrics.gauge("http.connections_open").set(open);
                                // Parked until its first bytes arrive;
                                // the next poll dispatches it.
                                idle.push(Tracked {
                                    conn,
                                    ctx: Arc::clone(&ctx),
                                    enqueued_at: None,
                                });
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => break,
                    }
                }
            }
        }

        // Drain: stop accepting, close idle connections, close the work
        // queue. Workers finish every dispatched connection, then see
        // the closed channel and exit. Connections parked during the
        // race are closed after the join.
        drop(work_tx);
        idle.clear();
        for worker in workers {
            let _ = worker.join();
        }
        wake.drain();
        for parked in park_rx.try_iter() {
            drop(parked);
        }
        Ok(())
    }

    /// Fallback accept loop for non-Unix targets: workers own their
    /// connections end-to-end (idle keep-alive waits consume a worker).
    ///
    /// # Errors
    ///
    /// When the listener cannot be switched to nonblocking mode.
    #[cfg(not(unix))]
    pub fn serve(mut self) -> io::Result<()> {
        signal::install();
        self.listener.set_nonblocking(true)?;
        let ctx = self.make_ctx();
        let (work_tx, work_rx) = mpsc::sync_channel::<Tracked>(self.max_queue);
        let work_rx = Arc::new(Mutex::new(work_rx));
        let workers: Vec<_> = (0..self.threads)
            .map(|i| {
                let ctx = Arc::clone(&ctx);
                let work_rx = Arc::clone(&work_rx);
                std::thread::Builder::new()
                    .name(format!("whart-serve-{i}"))
                    .spawn(move || worker_loop_blocking(&ctx, &work_rx))
                    .expect("spawn worker")
            })
            .collect();
        while !ctx.draining() {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if let Ok(conn) = Conn::new(stream) {
                        let open = ctx.open.fetch_add(1, Ordering::SeqCst) + 1;
                        ctx.metrics.gauge("http.connections_open").set(open);
                        dispatch(
                            &ctx,
                            Tracked {
                                conn,
                                ctx: Arc::clone(&ctx),
                                enqueued_at: None,
                            },
                            &work_tx,
                        );
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => std::thread::sleep(ACCEPT_POLL),
            }
        }
        drop(work_tx);
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.listener.local_addr().ok())
            .field("threads", &self.threads)
            .field("max_queue", &self.max_queue)
            .finish()
    }
}

/// Admits a readable connection into the bounded work queue, or rejects
/// it with `503` + `Retry-After` when the queue is full.
fn dispatch(ctx: &Arc<Ctx>, mut tracked: Tracked, work_tx: &mpsc::SyncSender<Tracked>) {
    // Count before sending so a worker's decrement can never observe
    // the queue below zero.
    let depth = ctx.queued.fetch_add(1, Ordering::SeqCst) + 1;
    ctx.metrics.gauge("http.queue_depth").set(depth);
    tracked.enqueued_at = Some(Instant::now());
    match work_tx.try_send(tracked) {
        Ok(()) => {}
        Err(mpsc::TrySendError::Full(mut rejected)) => {
            let depth = ctx.queued.fetch_sub(1, Ordering::SeqCst) - 1;
            ctx.metrics.gauge("http.queue_depth").set(depth);
            ctx.metrics
                .counter("http.rejected_total{reason=queue_full}")
                .increment();
            // No request was parsed, so the overflow gets a fresh
            // correlation id: the rejected client can still quote an id
            // that the server's log line carries.
            let request_id = next_request_id();
            let response = Response::text(503, "server busy: request queue is full\n")
                .with_header("Retry-After", "1")
                .with_header("X-Request-Id", request_id.clone());
            let _ = rejected.write_response(&response, false, false, REJECT_WRITE_TIMEOUT);
            ctx.log
                .event(Level::Warn, "queue_overflow")
                .field("request_id", request_id.as_str())
                .field("code", 503u64)
                .field("queue_depth", depth)
                .emit();
            ctx.log.flush();
        }
        Err(mpsc::TrySendError::Disconnected(_)) => {
            let depth = ctx.queued.fetch_sub(1, Ordering::SeqCst) - 1;
            ctx.metrics.gauge("http.queue_depth").set(depth);
        }
    }
}

/// What a worker should do with a connection after serving it.
enum Disposition {
    /// Hand the connection back to the event loop's idle set.
    #[cfg_attr(not(unix), allow(dead_code))]
    Park,
    /// Drop the connection.
    Close,
}

#[cfg(unix)]
fn worker_loop(
    ctx: &Arc<Ctx>,
    work_rx: &Mutex<mpsc::Receiver<Tracked>>,
    park_tx: &mpsc::Sender<Tracked>,
    waker: &mut poll::Waker,
) {
    loop {
        // Hold the lock only for the handoff, not while serving.
        let tracked = match work_rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        let Ok(mut tracked) = tracked else {
            return; // channel closed: drain complete
        };
        let depth = ctx.queued.fetch_sub(1, Ordering::SeqCst) - 1;
        ctx.metrics.gauge("http.queue_depth").set(depth);
        let queue_ns = tracked.enqueued_at.take().map_or(0, elapsed_ns);
        match serve_conn(ctx, &mut tracked.conn, queue_ns) {
            Disposition::Park => {
                if park_tx.send(tracked).is_ok() {
                    waker.wake();
                }
            }
            Disposition::Close => drop(tracked),
        }
    }
}

#[cfg(not(unix))]
fn worker_loop_blocking(ctx: &Arc<Ctx>, work_rx: &Mutex<mpsc::Receiver<Tracked>>) {
    loop {
        let tracked = match work_rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        let Ok(mut tracked) = tracked else {
            return;
        };
        let depth = ctx.queued.fetch_sub(1, Ordering::SeqCst) - 1;
        ctx.metrics.gauge("http.queue_depth").set(depth);
        let queue_ns = tracked.enqueued_at.take().map_or(0, elapsed_ns);
        // serve_conn never returns Park off-Unix (idle waits loop
        // inside it at the keep-alive timeout).
        let _ = serve_conn(ctx, &mut tracked.conn, queue_ns);
    }
}

/// Built-in probe routes, answered before the router.
fn builtin(ctx: &Ctx, method: &str, path: &str) -> Option<(&'static str, Response)> {
    match (method, path) {
        ("GET", "/healthz") => Some((
            "/healthz",
            // A draining server must stop reporting healthy so load
            // balancers route around it while in-flight work finishes.
            if ctx.draining() {
                Response::text(503, "draining\n")
            } else {
                Response::text(200, "ok\n")
            },
        )),
        ("GET", "/readyz") => Some((
            "/readyz",
            if ctx.ready.is_set() {
                Response::text(200, "ready\n")
            } else {
                Response::text(503, "starting\n")
            },
        )),
        _ => None,
    }
}

/// Everything the middleware knows about one finished request beyond
/// the response itself.
struct RequestRecord<'a> {
    label: &'a str,
    request_id: &'a str,
    method: &'a str,
    /// Wall-clock start, Unix milliseconds.
    started_unix_ms: u64,
    /// Dispatch-queue wait before the worker picked the connection up.
    queue_ns: u64,
    /// Routing + handler time (excludes writing the response).
    handler_ns: u64,
    /// Whether the connection had served earlier requests.
    reused: bool,
    bytes_in: usize,
}

/// Records the request middleware's observability: cumulative metrics,
/// rolling windows, the trace span, the wide log event, and the flight
/// recorder entry — all stamped with the request's correlation id.
fn instrument(ctx: &Ctx, record: &RequestRecord<'_>, response: &Response, started: Instant) {
    let label = record.label;
    let total_ns = elapsed_ns(started);
    ctx.metrics
        .counter(&format!(
            "http.requests_total{{route={label},code={}}}",
            response.status
        ))
        .increment();
    ctx.metrics
        .histogram(&format!("http.request_ns{{route={label}}}"))
        .record(total_ns);
    if let Some(windows) = &ctx.windows {
        windows.record(label, response.status, total_ns);
    }

    let mut span = ctx.trace.span("http_request", "http");
    span.arg("request_id", record.request_id);
    span.arg("route", label);
    span.arg("code", u64::from(response.status));
    for (key, value) in &response.trace_args {
        span.arg(key, value.clone());
    }
    span.finish();

    let mut event = ctx
        .log
        .event(Level::Info, "http_request")
        .field("request_id", record.request_id)
        .field("method", record.method)
        .field("route", label)
        .field("code", u64::from(response.status))
        .field("bytes_in", record.bytes_in as u64)
        .field("bytes_out", response.body.len() as u64)
        .field("queue_ns", record.queue_ns)
        .field("total_ns", total_ns)
        .field("reused_connection", record.reused);
    for (key, value) in &response.trace_args {
        event = event.field(key, value.to_json());
    }
    event.emit();

    if ctx.flight.is_enabled() {
        let id_arg = || ("request_id", record.request_id.into());
        let mut handler_args: Vec<(&'static str, whart_trace::ArgValue)> = vec![id_arg()];
        handler_args.extend(response.trace_args.iter().cloned());
        let write_ns = total_ns.saturating_sub(record.handler_ns);
        ctx.flight.record(FlightEntry {
            id: record.request_id.to_owned(),
            method: record.method.to_owned(),
            route: label.to_owned(),
            status: response.status,
            started_unix_ms: record.started_unix_ms,
            queue_ns: record.queue_ns,
            total_ns,
            reused_connection: record.reused,
            events: vec![
                TraceEvent {
                    name: "queue_wait".into(),
                    cat: "http",
                    ph: Phase::Complete {
                        dur_ns: record.queue_ns,
                    },
                    ts_ns: 0,
                    tid: 0,
                    args: vec![id_arg()],
                },
                TraceEvent {
                    name: "handler".into(),
                    cat: "http",
                    ph: Phase::Complete {
                        dur_ns: record.handler_ns,
                    },
                    ts_ns: record.queue_ns,
                    tid: 0,
                    args: handler_args,
                },
                TraceEvent {
                    name: "write".into(),
                    cat: "http",
                    ph: Phase::Complete { dur_ns: write_ns },
                    ts_ns: record.queue_ns + record.handler_ns,
                    tid: 0,
                    args: vec![id_arg()],
                },
            ],
        });
    }

    // Workers are long-lived, so publish this thread's buffered events
    // now: a `GET /v1/trace` drain (or a log tail) from another worker
    // must observe every request that already completed.
    ctx.trace.flush();
    ctx.log.flush();
}

/// Writes a protocol-error response (the connection closes after it).
/// No request was parsed, so the error gets a fresh correlation id.
fn answer_error(ctx: &Ctx, conn: &mut Conn, label: &'static str, response: Response) {
    let started = Instant::now();
    let started_unix_ms = unix_ms();
    let request_id = next_request_id();
    let response = response.with_header("X-Request-Id", request_id.clone());
    let _ = conn.write_response(&response, false, false, ctx.write_timeout);
    instrument(
        ctx,
        &RequestRecord {
            label,
            request_id: &request_id,
            method: "-",
            started_unix_ms,
            queue_ns: 0,
            handler_ns: 0,
            reused: conn.served > 0,
            bytes_in: 0,
        },
        &response,
        started,
    );
}

/// Serves requests on one connection until it closes, errors, or goes
/// idle (Unix: parked; elsewhere: waits in place up to the keep-alive
/// timeout).
fn serve_conn(ctx: &Ctx, conn: &mut Conn, mut queue_ns: u64) -> Disposition {
    // Whether the connection sits at a clean request boundary waiting
    // for the peer's *next* request (non-Unix in-place idling): a
    // timeout there is normal keep-alive expiry, not a client stall.
    let mut at_boundary = false;
    loop {
        let timeout = if at_boundary {
            ctx.keepalive_timeout
        } else {
            ctx.read_timeout
        };
        let mut request = match conn.next_request(timeout) {
            Ok(request) => request,
            Err(RequestError::Closed) => return Disposition::Close,
            Err(RequestError::TimedOut) => {
                if !at_boundary {
                    answer_error(
                        ctx,
                        conn,
                        "timeout",
                        Response::text(408, "request read timed out\n"),
                    );
                }
                return Disposition::Close;
            }
            Err(RequestError::TooLarge(message)) => {
                answer_error(
                    ctx,
                    conn,
                    "oversized",
                    Response::text(413, format!("{message}\n")),
                );
                return Disposition::Close;
            }
            Err(RequestError::Malformed(message)) => {
                answer_error(
                    ctx,
                    conn,
                    "malformed",
                    Response::text(400, format!("{message}\n")),
                );
                return Disposition::Close;
            }
            Err(RequestError::Io(_)) => return Disposition::Close,
        };
        at_boundary = false;
        let reused = conn.served > 0;
        if reused {
            ctx.metrics
                .counter("http.keepalive.reuses_total")
                .increment();
        }
        // Drain begins between requests too: answer the current request
        // but tell the client the connection is done.
        let keep_alive = request.wants_keep_alive() && !ctx.draining();
        let allow_chunked = request.minor_version >= 1;

        // Assign or propagate the correlation id before routing, so
        // handlers (and the solves they run) see the same id the
        // client gets back.
        let request_id = effective_request_id(&mut request);

        let flight = ctx.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
        let gauge = ctx.metrics.gauge("http.in_flight");
        gauge.set(flight);
        let started = Instant::now();
        let started_unix_ms = unix_ms();
        let (label, mut response) = match builtin(ctx, &request.method, &request.path) {
            Some(hit) => hit,
            None => ctx.router.dispatch(&request),
        };
        let handler_ns = elapsed_ns(started);
        // Every response — success or failure — returns the id the
        // request was served under.
        response.headers.push(("X-Request-Id", request_id.clone()));
        // Drain may have begun while the handler ran: the header the
        // client sees must match what the connection will actually do.
        let keep_alive = keep_alive && !ctx.draining();
        let wrote = conn
            .write_response(&response, keep_alive, allow_chunked, ctx.write_timeout)
            .is_ok();
        instrument(
            ctx,
            &RequestRecord {
                label,
                request_id: &request_id,
                method: &request.method,
                started_unix_ms,
                queue_ns,
                handler_ns,
                reused,
                bytes_in: request.body.len(),
            },
            &response,
            started,
        );
        // Queue wait belongs to the request that was actually waiting;
        // pipelined follow-ups on the same dispatch never queued.
        queue_ns = 0;
        let remaining = ctx.in_flight.fetch_sub(1, Ordering::SeqCst) - 1;
        gauge.set(remaining);

        if !wrote || !keep_alive {
            return Disposition::Close;
        }
        match conn.after_response() {
            After::Buffered => continue,
            After::Closed => return Disposition::Close,
            After::Idle => {
                if ctx.draining() {
                    return Disposition::Close;
                }
                if cfg!(unix) {
                    return Disposition::Park;
                }
                at_boundary = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    /// One request over a fresh connection, `Connection: close` so the
    /// read-to-EOF below terminates under keep-alive defaults.
    fn get(addr: SocketAddr, target: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let status: u16 = raw.split_whitespace().nth(1).unwrap().parse().unwrap();
        let body = raw.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
        (status, body)
    }

    fn start(router: Router) -> (SocketAddr, Flag, Flag, Metrics, std::thread::JoinHandle<()>) {
        let config = ServerConfig {
            threads: 2,
            ..ServerConfig::default()
        };
        let mut server = Server::bind(&config).unwrap();
        server.set_router(router);
        let metrics = Metrics::new();
        server.set_metrics(metrics.clone());
        let addr = server.local_addr().unwrap();
        let ready = server.ready();
        let shutdown = server.shutdown();
        let handle = std::thread::spawn(move || server.serve().unwrap());
        (addr, ready, shutdown, metrics, handle)
    }

    #[test]
    fn probes_flip_with_the_readiness_flag() {
        let (addr, ready, shutdown, _metrics, handle) = start(Router::new());
        assert_eq!(get(addr, "/healthz"), (200, "ok\n".into()));
        assert_eq!(get(addr, "/readyz").0, 503, "not ready before the flag");
        ready.set();
        assert_eq!(get(addr, "/readyz"), (200, "ready\n".into()));
        shutdown.set();
        handle.join().unwrap();
    }

    #[test]
    fn requests_route_and_record_metrics() {
        let router = Router::new().route("GET", "/hello", |req| {
            let name = req.query_param("name").unwrap_or("world");
            Response::text(200, format!("hi {name}\n")).with_trace_arg("greeted", true)
        });
        let (addr, _ready, shutdown, metrics, handle) = start(router);
        assert_eq!(get(addr, "/hello?name=x"), (200, "hi x\n".into()));
        assert_eq!(get(addr, "/nope").0, 404);
        shutdown.set();
        handle.join().unwrap();
        let snapshot = metrics.snapshot();
        assert_eq!(
            snapshot.counter("http.requests_total{route=/hello,code=200}"),
            Some(1)
        );
        assert_eq!(
            snapshot.counter("http.requests_total{route=unmatched,code=404}"),
            Some(1)
        );
        let latency = snapshot
            .histogram("http.request_ns{route=/hello}")
            .expect("per-route latency histogram");
        assert_eq!(latency.count, 1);
        assert_eq!(snapshot.gauge("http.in_flight"), Some(0), "drained");
        assert_eq!(snapshot.gauge("http.connections_open"), Some(0), "closed");
    }

    /// One raw request exchange returning (status, headers+body text).
    fn raw_exchange(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        raw
    }

    fn response_header<'a>(raw: &'a str, name: &str) -> Option<&'a str> {
        raw.split("\r\n\r\n")
            .next()
            .unwrap_or("")
            .lines()
            .find_map(|line| {
                let (k, v) = line.split_once(':')?;
                k.eq_ignore_ascii_case(name).then(|| v.trim())
            })
    }

    #[test]
    fn request_ids_are_assigned_propagated_and_returned() {
        let router = Router::new().route("GET", "/id", |req| {
            // Handlers observe the id the middleware injected.
            Response::text(200, req.request_id().unwrap_or("missing").to_owned())
        });
        let (addr, _ready, shutdown, _metrics, handle) = start(router);

        // Server-assigned: header present, matches what the handler saw.
        let raw = raw_exchange(addr, "GET /id HTTP/1.1\r\nConnection: close\r\n\r\n");
        let id = response_header(&raw, "X-Request-Id")
            .expect("assigned id")
            .to_owned();
        assert!(raw.ends_with(&id), "handler saw the same id: {raw}");
        assert!(id.contains('-') && id.len() >= 10, "{id}");

        // Client-supplied ids are propagated verbatim.
        let raw = raw_exchange(
            addr,
            "GET /id HTTP/1.1\r\nX-Request-Id: client-abc-1\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(response_header(&raw, "X-Request-Id"), Some("client-abc-1"));
        assert!(raw.ends_with("client-abc-1"));

        // Garbage client ids are replaced, not echoed.
        let raw = raw_exchange(
            addr,
            "GET /id HTTP/1.1\r\nX-Request-Id: bad id with spaces\r\nConnection: close\r\n\r\n",
        );
        let id = response_header(&raw, "X-Request-Id").unwrap();
        assert_ne!(id, "bad id with spaces");

        // Errors carry an id too.
        let raw = raw_exchange(addr, "GET /nope HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(response_header(&raw, "X-Request-Id").is_some(), "{raw}");

        shutdown.set();
        handle.join().unwrap();
    }

    #[test]
    fn the_middleware_feeds_windows_and_the_flight_recorder() {
        let router = Router::new().route("GET", "/w", |_| Response::text(200, "ok\n"));
        let config = ServerConfig {
            threads: 2,
            ..ServerConfig::default()
        };
        let mut server = Server::bind(&config).unwrap();
        server.set_router(router);
        let windows = Arc::new(HttpWindows::new(
            Duration::from_secs(30),
            Duration::from_millis(5),
        ));
        server.set_windows(Arc::clone(&windows));
        let flight = FlightRecorder::new(8, 8, u64::MAX);
        server.set_flight(flight.clone());
        let addr = server.local_addr().unwrap();
        let shutdown = server.shutdown();
        let handle = std::thread::spawn(move || server.serve().unwrap());

        let raw = raw_exchange(addr, "GET /w HTTP/1.1\r\nConnection: close\r\n\r\n");
        let id = response_header(&raw, "X-Request-Id").unwrap().to_owned();
        shutdown.set();
        handle.join().unwrap();

        let snapshot = windows.snapshot();
        let route = snapshot.iter().find(|r| r.route == "/w").expect("windowed");
        assert_eq!((route.requests, route.errors), (1, 0));
        assert_eq!(route.latency.count, 1);

        let entry = flight.lookup(&id).expect("flight entry by response id");
        assert_eq!((entry.status, entry.route.as_str()), (200, "/w"));
        let names: Vec<&str> = entry.events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["queue_wait", "handler", "write"]);
        assert!(entry.events[1].arg("request_id").is_some());
    }

    #[test]
    fn malformed_requests_answer_400() {
        let (addr, _ready, shutdown, metrics, handle) = start(Router::new());
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");
        shutdown.set();
        handle.join().unwrap();
        let snapshot = metrics.snapshot();
        assert_eq!(
            snapshot.counter("http.requests_total{route=malformed,code=400}"),
            Some(1)
        );
    }

    #[test]
    fn shutdown_drains_queued_and_in_flight_requests() {
        // One worker, a slow handler: the second connection queues
        // behind the first. Shutdown fires while both are outstanding;
        // both must still complete without a reset.
        let router = Router::new().route("GET", "/slow", |_| {
            std::thread::sleep(Duration::from_millis(120));
            Response::text(200, "done\n")
        });
        let config = ServerConfig {
            threads: 1,
            ..ServerConfig::default()
        };
        let mut server = Server::bind(&config).unwrap();
        server.set_router(router);
        let addr = server.local_addr().unwrap();
        let shutdown = server.shutdown();
        let handle = std::thread::spawn(move || server.serve().unwrap());
        let clients: Vec<_> = (0..2)
            .map(|_| std::thread::spawn(move || get(addr, "/slow")))
            .collect();
        // Let both connections land, then shut down mid-flight.
        std::thread::sleep(Duration::from_millis(60));
        shutdown.set();
        for client in clients {
            let (status, body) = client.join().unwrap();
            assert_eq!((status, body.as_str()), (200, "done\n"));
        }
        handle.join().unwrap();
        // The listener is gone: new connections are refused.
        assert!(
            TcpStream::connect(addr).is_err() || {
                // Accepted-but-dead sockets can linger briefly; a write+read
                // must fail either way.
                let mut s = TcpStream::connect(addr).unwrap();
                s.set_read_timeout(Some(Duration::from_millis(200)))
                    .unwrap();
                let _ = write!(s, "GET /healthz HTTP/1.1\r\n\r\n");
                let mut buf = [0u8; 1];
                matches!(s.read(&mut buf), Ok(0) | Err(_))
            }
        );
    }
}
