//! Minimal HTTP/1.1 request parsing and response writing over a
//! [`std::io::Read`]/[`std::io::Write`] pair.
//!
//! The framework speaks exactly the subset a local evaluation service
//! needs: one request per connection (`Connection: close` on every
//! response), `Content-Length` bodies, query strings with percent
//! decoding. Streaming bodies, chunked encoding and keep-alive are out
//! of scope.

use std::io::{Read, Write};
use whart_trace::ArgValue;

/// Maximum accepted header block, in bytes.
const MAX_HEAD: usize = 16 * 1024;
/// Maximum accepted request body, in bytes.
const MAX_BODY: usize = 16 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Decoded path without the query string (`/v1/analyze`).
    pub path: String,
    /// Decoded query parameters in source order.
    pub query: Vec<(String, String)>,
    /// Header name/value pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// The first query parameter named `key`, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The first header named `key` (case-insensitive), if present.
    pub fn header(&self, key: &str) -> Option<&str> {
        let key = key.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    ///
    /// # Errors
    ///
    /// When the body is not valid UTF-8.
    pub fn body_text(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|_| "request body is not valid UTF-8".into())
    }
}

/// One HTTP response to write back.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (`200`, `404`, ...).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Response body.
    pub body: Vec<u8>,
    /// Extra arguments the request middleware merges into the
    /// per-request trace span (e.g. scenario counts, cache hits).
    pub trace_args: Vec<(&'static str, ArgValue)>,
}

impl Response {
    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8".into(),
            body: body.into().into_bytes(),
            trace_args: Vec::new(),
        }
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json".into(),
            body: body.into().into_bytes(),
            trace_args: Vec::new(),
        }
    }

    /// Attaches a trace-span argument (builder style).
    pub fn with_trace_arg(mut self, key: &'static str, value: impl Into<ArgValue>) -> Response {
        self.trace_args.push((key, value.into()));
        self
    }

    /// The standard reason phrase for the status code.
    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serializes the response (status line, headers, body) to `out`.
    pub fn write_to(&self, out: &mut dyn Write) -> std::io::Result<()> {
        write!(
            out,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        )?;
        out.write_all(&self.body)?;
        out.flush()
    }
}

/// Decodes `%XX` escapes and `+` (as space) in a query component.
fn percent_decode(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|pair| {
                    std::str::from_utf8(pair)
                        .ok()
                        .and_then(|s| u8::from_str_radix(s, 16).ok())
                });
                match hex {
                    Some(byte) => {
                        out.push(byte);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            other => {
                out.push(other);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Splits a raw target into decoded path and query pairs.
fn split_target(target: &str) -> (String, Vec<(String, String)>) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let pairs = query
        .split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect();
    (percent_decode(path), pairs)
}

/// Reads and parses one request from `stream`.
///
/// # Errors
///
/// A human-readable parse/IO failure; the caller answers 400.
pub fn read_request(stream: &mut dyn Read) -> Result<Request, String> {
    // Read until the blank line ending the header block.
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD {
            return Err("header block too large".into());
        }
        match stream.read(&mut byte) {
            Ok(0) => return Err("connection closed mid-request".into()),
            Ok(_) => head.push(byte[0]),
            Err(e) => return Err(format!("read error: {e}")),
        }
    }
    let head = std::str::from_utf8(&head).map_err(|_| "header block is not valid UTF-8")?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or("empty request")?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or("missing method")?.to_ascii_uppercase();
    let target = parts.next().ok_or("missing request target")?;
    let version = parts.next().ok_or("missing HTTP version")?;
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported version {version}"));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or("malformed header line")?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let (path, query) = split_target(target);
    let mut request = Request {
        method,
        path,
        query,
        headers,
        body: Vec::new(),
    };
    if let Some(length) = request.header("content-length") {
        let length: usize = length
            .parse()
            .map_err(|_| format!("bad content-length '{length}'"))?;
        if length > MAX_BODY {
            return Err(format!(
                "body of {length} bytes exceeds the {MAX_BODY} limit"
            ));
        }
        let mut body = vec![0u8; length];
        stream
            .read_exact(&mut body)
            .map_err(|e| format!("short body: {e}"))?;
        request.body = body;
    }
    Ok(request)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &str) -> Result<Request, String> {
        read_request(&mut raw.as_bytes())
    }

    #[test]
    fn parses_a_get_with_query_string() {
        let req =
            parse("GET /v1/trace?format=jsonl&x=a%20b+c HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/trace");
        assert_eq!(req.query_param("format"), Some("jsonl"));
        assert_eq!(req.query_param("x"), Some("a b c"));
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_body_by_content_length() {
        let req =
            parse("POST /v1/analyze HTTP/1.1\r\nContent-Length: 4\r\n\r\n{}\n extra").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{}\n ");
        assert_eq!(req.body_text().unwrap(), "{}\n ");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("GET\r\n\r\n").is_err());
        assert!(parse("GET / SPDY/9\r\n\r\n").is_err());
        assert!(parse("POST / HTTP/1.1\r\nContent-Length: x\r\n\r\n").is_err());
        assert!(parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nab").is_err());
        assert!(parse("GET / HTTP/1.1\r\nbroken header\r\n\r\n").is_err());
    }

    #[test]
    fn responses_serialize_with_length_and_close() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 11\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.ends_with("{\"ok\":true}"), "{text}");
        let mut out = Vec::new();
        Response::text(503, "starting\n")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{text}"
        );
    }

    #[test]
    fn percent_decoding_handles_truncated_escapes() {
        assert_eq!(percent_decode("a%2Fb"), "a/b");
        assert_eq!(percent_decode("a%2"), "a%2");
        assert_eq!(percent_decode("a%zz"), "a%zz");
        assert_eq!(percent_decode("%"), "%");
    }
}
