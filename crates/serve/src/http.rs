//! HTTP/1.1 message parsing and response writing.
//!
//! The framework speaks the subset a high-throughput local evaluation
//! service needs: persistent connections (keep-alive by default on
//! HTTP/1.1, honored `Connection: close`), pipelined requests,
//! `Content-Length` bodies with hardened validation, chunked response
//! streaming for large payloads, and percent-decoded query strings.
//! Head parsing works on a byte buffer (see [`find_head_end`] and
//! [`parse_head`]) so the connection layer can frame pipelined requests
//! out of whatever the socket delivered; chunked *request* bodies are
//! rejected (the service's clients always know their payload size).

use std::io::Write;
use whart_trace::ArgValue;

/// Maximum accepted header block, in bytes.
pub(crate) const MAX_HEAD: usize = 16 * 1024;
/// Maximum accepted request body, in bytes.
pub(crate) const MAX_BODY: usize = 16 * 1024 * 1024;
/// Chunk payload size used when a response opts into chunked streaming.
const CHUNK: usize = 64 * 1024;

/// Why reading the next request off a connection failed.
///
/// The connection layer maps each variant to wire behavior: a clean
/// close for [`RequestError::Closed`], 408 for [`RequestError::TimedOut`]
/// mid-request, 413 for [`RequestError::TooLarge`], 400 for
/// [`RequestError::Malformed`], and a silent drop for I/O errors.
#[derive(Debug)]
pub enum RequestError {
    /// The peer closed the connection at a request boundary (no bytes
    /// of a next request were received). Not an error on keep-alive.
    Closed,
    /// The read deadline passed mid-request.
    TimedOut,
    /// The head or declared body exceeds the server's caps (413).
    TooLarge(String),
    /// The bytes do not parse as an HTTP/1.x request (400).
    Malformed(String),
    /// The socket failed underneath the read.
    Io(String),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Closed => write!(f, "connection closed"),
            RequestError::TimedOut => write!(f, "request read timed out"),
            RequestError::TooLarge(m) | RequestError::Malformed(m) | RequestError::Io(m) => {
                write!(f, "{m}")
            }
        }
    }
}

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Decoded path without the query string (`/v1/analyze`).
    pub path: String,
    /// Decoded query parameters in source order.
    pub query: Vec<(String, String)>,
    /// Header name/value pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Minor HTTP version: 1 for `HTTP/1.1`, 0 for `HTTP/1.0`.
    pub minor_version: u8,
}

impl Request {
    /// The first query parameter named `key`, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The request's correlation id. The server assigns or propagates
    /// one before routing, so by the time a handler runs this is always
    /// present; it is `None` only on a freshly parsed request.
    pub fn request_id(&self) -> Option<&str> {
        self.header("x-request-id")
    }

    /// The first header named `key` (case-insensitive), if present.
    pub fn header(&self, key: &str) -> Option<&str> {
        let key = key.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    ///
    /// # Errors
    ///
    /// When the body is not valid UTF-8.
    pub fn body_text(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|_| "request body is not valid UTF-8".into())
    }

    /// Whether this request asks to keep the connection open: HTTP/1.1
    /// defaults to keep-alive unless `Connection: close`; HTTP/1.0
    /// defaults to close unless `Connection: keep-alive`.
    pub fn wants_keep_alive(&self) -> bool {
        let tokens = self.header("connection").unwrap_or("");
        let has = |token: &str| {
            tokens
                .split(',')
                .any(|t| t.trim().eq_ignore_ascii_case(token))
        };
        if has("close") {
            return false;
        }
        self.minor_version >= 1 || has("keep-alive")
    }
}

/// One HTTP response to write back.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (`200`, `404`, ...).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Response body.
    pub body: Vec<u8>,
    /// Extra headers (`Retry-After`, ...) appended verbatim.
    pub headers: Vec<(&'static str, String)>,
    /// Whether to stream the body with `Transfer-Encoding: chunked`
    /// (large payloads; requires an HTTP/1.1 peer, see
    /// [`Response::write_to`]).
    pub chunked: bool,
    /// Extra arguments the request middleware merges into the
    /// per-request trace span (e.g. scenario counts, cache hits).
    pub trace_args: Vec<(&'static str, ArgValue)>,
}

impl Response {
    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8".into(),
            body: body.into().into_bytes(),
            headers: Vec::new(),
            chunked: false,
            trace_args: Vec::new(),
        }
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            content_type: "application/json".into(),
            ..Response::text(status, body)
        }
    }

    /// Attaches a trace-span argument (builder style).
    pub fn with_trace_arg(mut self, key: &'static str, value: impl Into<ArgValue>) -> Response {
        self.trace_args.push((key, value.into()));
        self
    }

    /// Appends a response header (builder style).
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.headers.push((name, value.into()));
        self
    }

    /// Opts the body into chunked streaming (builder style). Connections
    /// fall back to `Content-Length` framing for HTTP/1.0 peers.
    pub fn with_chunked(mut self) -> Response {
        self.chunked = true;
        self
    }

    /// The standard reason phrase for the status code.
    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serializes the response to `out`.
    ///
    /// `keep_alive` selects the `Connection` header the peer sees; the
    /// caller owns actually closing (or not closing) the socket.
    /// `allow_chunked` is whether the peer speaks HTTP/1.1 — a chunked
    /// response to an HTTP/1.0 client silently falls back to
    /// `Content-Length` framing.
    ///
    /// # Errors
    ///
    /// When writing to `out` fails.
    pub fn write_to(
        &self,
        out: &mut dyn Write,
        keep_alive: bool,
        allow_chunked: bool,
    ) -> std::io::Result<()> {
        let connection = if keep_alive { "keep-alive" } else { "close" };
        write!(
            out,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\n",
            self.status,
            self.reason(),
            self.content_type,
        )?;
        for (name, value) in &self.headers {
            write!(out, "{name}: {value}\r\n")?;
        }
        if self.chunked && allow_chunked {
            write!(
                out,
                "Transfer-Encoding: chunked\r\nConnection: {connection}\r\n\r\n"
            )?;
            for chunk in self.body.chunks(CHUNK) {
                write!(out, "{:x}\r\n", chunk.len())?;
                out.write_all(chunk)?;
                out.write_all(b"\r\n")?;
            }
            out.write_all(b"0\r\n\r\n")?;
        } else {
            write!(
                out,
                "Content-Length: {}\r\nConnection: {connection}\r\n\r\n",
                self.body.len()
            )?;
            out.write_all(&self.body)?;
        }
        out.flush()
    }
}

/// Decodes `%XX` escapes and `+` (as space) in a query component.
fn percent_decode(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|pair| {
                    std::str::from_utf8(pair)
                        .ok()
                        .and_then(|s| u8::from_str_radix(s, 16).ok())
                });
                match hex {
                    Some(byte) => {
                        out.push(byte);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            other => {
                out.push(other);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Splits a raw target into decoded path and query pairs.
fn split_target(target: &str) -> (String, Vec<(String, String)>) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let pairs = query
        .split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect();
    (percent_decode(path), pairs)
}

/// The index one past the `\r\n\r\n` terminating the header block, if
/// `buf` contains a complete head.
///
/// # Errors
///
/// [`RequestError::TooLarge`] once the (possibly still incomplete) head
/// exceeds the cap — the connection layer stops buffering a client that
/// streams headers forever.
pub fn find_head_end(buf: &[u8]) -> Result<Option<usize>, RequestError> {
    if let Some(at) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
        let end = at + 4;
        if end > MAX_HEAD {
            return Err(RequestError::TooLarge(format!(
                "header block of {end} bytes exceeds the {MAX_HEAD} limit"
            )));
        }
        return Ok(Some(end));
    }
    if buf.len() >= MAX_HEAD {
        return Err(RequestError::TooLarge(format!(
            "header block exceeds the {MAX_HEAD} limit"
        )));
    }
    Ok(None)
}

/// Parses a complete header block (request line through the blank line)
/// into a body-less [`Request`].
///
/// # Errors
///
/// [`RequestError::Malformed`] with a human-readable reason.
pub fn parse_head(head: &[u8]) -> Result<Request, RequestError> {
    let malformed = |m: &str| RequestError::Malformed(m.into());
    let head =
        std::str::from_utf8(head).map_err(|_| malformed("header block is not valid UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or_else(|| malformed("empty request"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| malformed("missing method"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| malformed("missing request target"))?;
    let version = parts
        .next()
        .ok_or_else(|| malformed("missing HTTP version"))?;
    let minor_version = match version {
        "HTTP/1.1" => 1,
        "HTTP/1.0" => 0,
        other => {
            return Err(RequestError::Malformed(format!(
                "unsupported version {other}"
            )))
        }
    };
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| malformed("malformed header line"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let (path, query) = split_target(target);
    Ok(Request {
        method,
        path,
        query,
        headers,
        body: Vec::new(),
        minor_version,
    })
}

/// The validated body length a parsed head declares.
///
/// `Content-Length` must be all ASCII digits (no sign, no whitespace,
/// no units); repeated headers must agree; chunked request bodies are
/// not accepted.
///
/// # Errors
///
/// [`RequestError::Malformed`] for invalid or conflicting declarations,
/// [`RequestError::TooLarge`] past the body cap.
pub fn content_length(request: &Request) -> Result<usize, RequestError> {
    if let Some(te) = request.header("transfer-encoding") {
        return Err(RequestError::Malformed(format!(
            "transfer-encoding '{te}' is not supported for request bodies; \
             send a content-length"
        )));
    }
    let mut declared: Option<&str> = None;
    for (name, value) in &request.headers {
        if name != "content-length" {
            continue;
        }
        match declared {
            None => declared = Some(value),
            Some(first) if first == value => {}
            Some(first) => {
                return Err(RequestError::Malformed(format!(
                    "conflicting content-length headers ('{first}' vs '{value}')"
                )))
            }
        }
    }
    let Some(raw) = declared else {
        return Ok(0);
    };
    if raw.is_empty() || !raw.bytes().all(|b| b.is_ascii_digit()) {
        return Err(RequestError::Malformed(format!(
            "bad content-length '{raw}'"
        )));
    }
    let length: usize = raw
        .parse()
        .map_err(|_| RequestError::Malformed(format!("bad content-length '{raw}'")))?;
    if length > MAX_BODY {
        return Err(RequestError::TooLarge(format!(
            "body of {length} bytes exceeds the {MAX_BODY} limit"
        )));
    }
    Ok(length)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Parses one framed request out of a complete byte buffer (the
    /// connection layer does this incrementally over a socket).
    fn parse(raw: &str) -> Result<Request, RequestError> {
        let bytes = raw.as_bytes();
        let head_end = find_head_end(bytes)?.ok_or(RequestError::Closed)?;
        let mut request = parse_head(&bytes[..head_end])?;
        let length = content_length(&request)?;
        let body = bytes
            .get(head_end..head_end + length)
            .ok_or_else(|| RequestError::Malformed("short body".into()))?;
        request.body = body.to_vec();
        Ok(request)
    }

    #[test]
    fn parses_a_get_with_query_string() {
        let req =
            parse("GET /v1/trace?format=jsonl&x=a%20b+c HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/trace");
        assert_eq!(req.query_param("format"), Some("jsonl"));
        assert_eq!(req.query_param("x"), Some("a b c"));
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.minor_version, 1);
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_body_by_content_length() {
        let req =
            parse("POST /v1/analyze HTTP/1.1\r\nContent-Length: 4\r\n\r\n{}\n extra").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{}\n ");
        assert_eq!(req.body_text().unwrap(), "{}\n ");
    }

    #[test]
    fn keep_alive_follows_version_and_connection_header() {
        let req = parse("GET / HTTP/1.1\r\n\r\n").unwrap();
        assert!(req.wants_keep_alive(), "1.1 defaults to keep-alive");
        let req = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!req.wants_keep_alive());
        let req = parse("GET / HTTP/1.1\r\nConnection: Keep-Alive, TE\r\n\r\n").unwrap();
        assert!(req.wants_keep_alive(), "token list, case-insensitive");
        let req = parse("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.wants_keep_alive(), "1.0 defaults to close");
        assert_eq!(req.minor_version, 0);
        let req = parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(req.wants_keep_alive(), "1.0 opt-in");
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(parse(""), Err(RequestError::Closed)));
        assert!(matches!(
            parse("GET\r\n\r\n"),
            Err(RequestError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / SPDY/9\r\n\r\n"),
            Err(RequestError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.2\r\n\r\n"),
            Err(RequestError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nbroken header\r\n\r\n"),
            Err(RequestError::Malformed(_))
        ));
    }

    #[test]
    fn content_length_validation_is_strict() {
        let malformed = [
            "POST / HTTP/1.1\r\nContent-Length: x\r\n\r\n",
            "POST / HTTP/1.1\r\nContent-Length: +10\r\n\r\n",
            "POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n",
            "POST / HTTP/1.1\r\nContent-Length: 1 0\r\n\r\n",
            "POST / HTTP/1.1\r\nContent-Length: 0x10\r\n\r\n",
            "POST / HTTP/1.1\r\nContent-Length:\r\n\r\n",
            "POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 4\r\n\r\nabcd",
            "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        ];
        for raw in malformed {
            assert!(
                matches!(parse(raw), Err(RequestError::Malformed(_))),
                "{raw:?}"
            );
        }
        // Agreeing duplicates are tolerated.
        let req =
            parse("POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nok").unwrap();
        assert_eq!(req.body, b"ok");
        // Oversized bodies are a distinct, 413-worthy failure.
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(parse(&raw), Err(RequestError::TooLarge(_))));
    }

    #[test]
    fn oversized_heads_are_too_large() {
        let raw = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "a".repeat(MAX_HEAD));
        assert!(matches!(parse(&raw), Err(RequestError::TooLarge(_))));
        // Incomplete but already over the cap: same verdict.
        let partial = vec![b'a'; MAX_HEAD + 1];
        assert!(matches!(
            find_head_end(&partial),
            Err(RequestError::TooLarge(_))
        ));
    }

    #[test]
    fn responses_serialize_with_length_and_connection_header() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}")
            .write_to(&mut out, true, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 11\r\n"), "{text}");
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        assert!(text.ends_with("{\"ok\":true}"), "{text}");

        let mut out = Vec::new();
        Response::text(503, "starting\n")
            .with_header("Retry-After", "1")
            .write_to(&mut out, false, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{text}"
        );
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
    }

    #[test]
    fn chunked_responses_frame_the_body_and_fall_back_for_http10() {
        let body = "x".repeat(CHUNK + 10);
        let mut out = Vec::new();
        Response::json(200, body.clone())
            .with_chunked()
            .write_to(&mut out, true, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked\r\n"), "framing");
        assert!(!text.contains("Content-Length"), "no length with chunked");
        assert!(text.contains(&format!("{CHUNK:x}\r\n")), "first chunk size");
        assert!(text.contains("\r\na\r\n"), "second chunk is 10 = 0xa bytes");
        assert!(text.ends_with("0\r\n\r\n"), "terminator");

        // An HTTP/1.0 peer cannot parse chunks: fall back to a length.
        let mut out = Vec::new();
        Response::json(200, body.clone())
            .with_chunked()
            .write_to(&mut out, false, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(!text.contains("Transfer-Encoding"), "{}", &text[..200]);
        assert!(text.contains(&format!("Content-Length: {}\r\n", body.len())));
    }

    #[test]
    fn percent_decoding_handles_truncated_escapes() {
        assert_eq!(percent_decode("a%2Fb"), "a/b");
        assert_eq!(percent_decode("a%2"), "a%2");
        assert_eq!(percent_decode("a%zz"), "a%zz");
        assert_eq!(percent_decode("%"), "%");
    }
}
