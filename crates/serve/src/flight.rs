//! The tail-sampled flight recorder: recent and slow request traces.
//!
//! `GET /v1/trace` drains the global journal — useful, but a single
//! slow request is gone the moment someone drains around it. The flight
//! recorder keeps per-request traces addressable after the fact:
//!
//! * a ring of the **last N** finished requests (whatever they were),
//! * plus a second ring of requests whose total latency exceeded a
//!   threshold — the tail sample, retained even as fast traffic churns
//!   the recent ring (until slow traffic itself overflows it).
//!
//! Each entry carries the request's correlation id, summary fields, and
//! a per-hop [`TraceEvent`] timeline (queue wait, handler, write)
//! rendered with the same JSONL machinery as the trace journal, so one
//! id links the response header, the log line, the journal spans and
//! the flight entry.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use whart_json::Json;
use whart_trace::{TraceEvent, TraceLog};

/// Default size of the recent-requests ring.
pub const DEFAULT_RECENT: usize = 64;
/// Default size of the retained-slow ring.
pub const DEFAULT_SLOW: usize = 64;

/// One finished request's summary and per-hop timeline.
#[derive(Debug, Clone)]
pub struct FlightEntry {
    /// The request's correlation id (`X-Request-Id`).
    pub id: String,
    /// Request method.
    pub method: String,
    /// Route label (the registered path, or an error label).
    pub route: String,
    /// Response status code.
    pub status: u16,
    /// Wall-clock start, Unix milliseconds.
    pub started_unix_ms: u64,
    /// Time spent queued before a worker picked the connection up
    /// (first request after dispatch only; 0 on pipelined follow-ups).
    pub queue_ns: u64,
    /// Total service time, read to written.
    pub total_ns: u64,
    /// Whether the connection had already served earlier requests.
    pub reused_connection: bool,
    /// The per-hop timeline (queue wait, handler, response write),
    /// timestamped on the trace clock.
    pub events: Vec<TraceEvent>,
}

impl FlightEntry {
    /// The one-line summary object for `GET /v1/debug/requests`.
    pub fn summary_json(&self) -> Json {
        Json::object([
            ("id", Json::from(self.id.as_str())),
            ("method", Json::from(self.method.as_str())),
            ("route", Json::from(self.route.as_str())),
            ("status", Json::from(self.status)),
            ("started_unix_ms", Json::from(self.started_unix_ms)),
            ("queue_ns", Json::from(self.queue_ns)),
            ("total_ns", Json::from(self.total_ns)),
            ("reused_connection", Json::from(self.reused_connection)),
        ])
    }

    /// The full trace for `GET /v1/debug/requests/<id>`: the summary
    /// plus the per-hop timeline as trace-journal JSONL.
    pub fn detail_jsonl(&self) -> String {
        let mut out = self.summary_json().to_compact();
        out.push('\n');
        let log = TraceLog {
            events: self.events.clone(),
            dropped: 0,
        };
        out.push_str(&log.to_jsonl());
        out
    }
}

struct Shared {
    recent_capacity: usize,
    slow_capacity: usize,
    threshold_ns: u64,
    recent: Mutex<VecDeque<FlightEntry>>,
    slow: Mutex<VecDeque<FlightEntry>>,
}

/// A cloneable handle to the two rings. The default handle is disabled
/// (a service that wants no recorder pays one branch per request).
#[derive(Clone, Default)]
pub struct FlightRecorder {
    shared: Option<Arc<Shared>>,
}

impl FlightRecorder {
    /// A recorder keeping the last `recent_capacity` requests plus up
    /// to `slow_capacity` requests slower than `threshold_ns`.
    pub fn new(recent_capacity: usize, slow_capacity: usize, threshold_ns: u64) -> FlightRecorder {
        FlightRecorder {
            shared: Some(Arc::new(Shared {
                recent_capacity: recent_capacity.max(1),
                slow_capacity: slow_capacity.max(1),
                threshold_ns,
                recent: Mutex::new(VecDeque::new()),
                slow: Mutex::new(VecDeque::new()),
            })),
        }
    }

    /// The no-op handle.
    pub fn disabled() -> FlightRecorder {
        FlightRecorder { shared: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// The tail-sampling latency threshold (`None` when disabled).
    pub fn threshold_ns(&self) -> Option<u64> {
        self.shared.as_ref().map(|s| s.threshold_ns)
    }

    /// Records one finished request: always into the recent ring, and
    /// into the retained-slow ring when it exceeded the threshold.
    pub fn record(&self, entry: FlightEntry) {
        let Some(shared) = &self.shared else {
            return;
        };
        if entry.total_ns > shared.threshold_ns {
            let mut slow = shared.slow.lock().expect("flight slow ring");
            if slow.len() == shared.slow_capacity {
                slow.pop_front();
            }
            slow.push_back(entry.clone());
        }
        let mut recent = shared.recent.lock().expect("flight recent ring");
        if recent.len() == shared.recent_capacity {
            recent.pop_front();
        }
        recent.push_back(entry);
    }

    /// Summaries of everything currently held, newest first, slow
    /// retentions before recent ones, deduplicated by id.
    pub fn summaries(&self) -> Vec<FlightEntry> {
        let Some(shared) = &self.shared else {
            return Vec::new();
        };
        let mut out: Vec<FlightEntry> = Vec::new();
        {
            let slow = shared.slow.lock().expect("flight slow ring");
            out.extend(slow.iter().rev().cloned());
        }
        let recent = shared.recent.lock().expect("flight recent ring");
        for entry in recent.iter().rev() {
            if !out.iter().any(|e| e.id == entry.id) {
                out.push(entry.clone());
            }
        }
        out
    }

    /// The full entry for `id`, if either ring still holds it.
    pub fn lookup(&self, id: &str) -> Option<FlightEntry> {
        let shared = self.shared.as_ref()?;
        {
            let slow = shared.slow.lock().expect("flight slow ring");
            if let Some(entry) = slow.iter().rev().find(|e| e.id == id) {
                return Some(entry.clone());
            }
        }
        let recent = shared.recent.lock().expect("flight recent ring");
        recent.iter().rev().find(|e| e.id == id).cloned()
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("enabled", &self.is_enabled())
            .field("threshold_ns", &self.threshold_ns())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: &str, total_ns: u64) -> FlightEntry {
        FlightEntry {
            id: id.into(),
            method: "POST".into(),
            route: "/v1/analyze".into(),
            status: 200,
            started_unix_ms: 1_700_000_000_000,
            queue_ns: 1_000,
            total_ns,
            reused_connection: false,
            events: vec![TraceEvent {
                name: "http_request".into(),
                cat: "http",
                ph: whart_trace::Phase::Complete { dur_ns: total_ns },
                ts_ns: 5,
                tid: 0,
                args: vec![("request_id", id.into())],
            }],
        }
    }

    #[test]
    fn recent_ring_evicts_but_slow_requests_are_retained() {
        let recorder = FlightRecorder::new(2, 4, 1_000_000);
        recorder.record(entry("fast-1", 10));
        recorder.record(entry("slow-1", 5_000_000));
        recorder.record(entry("fast-2", 20));
        recorder.record(entry("fast-3", 30));
        // fast-1 and slow-1 have been pushed out of the recent ring...
        assert!(recorder.lookup("fast-1").is_none());
        // ...but slow-1 survives via the tail sample.
        let slow = recorder.lookup("slow-1").expect("tail-sampled");
        assert_eq!(slow.total_ns, 5_000_000);
        assert_eq!(recorder.lookup("fast-3").unwrap().id, "fast-3");

        let ids: Vec<String> = recorder.summaries().into_iter().map(|e| e.id).collect();
        assert_eq!(
            ids,
            vec!["slow-1", "fast-3", "fast-2"],
            "dedup, newest first"
        );
    }

    #[test]
    fn slow_ring_is_bounded_too() {
        let recorder = FlightRecorder::new(1, 2, 0);
        for i in 0..5u64 {
            recorder.record(entry(&format!("slow-{i}"), 100 + i));
        }
        assert!(recorder.lookup("slow-0").is_none());
        assert!(recorder.lookup("slow-4").is_some());
    }

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let recorder = FlightRecorder::disabled();
        recorder.record(entry("x", 10));
        assert!(recorder.summaries().is_empty());
        assert!(recorder.lookup("x").is_none());
        assert_eq!(recorder.threshold_ns(), None);
        assert!(!FlightRecorder::default().is_enabled());
    }

    #[test]
    fn detail_jsonl_carries_the_summary_and_the_timeline() {
        let recorder = FlightRecorder::new(4, 4, u64::MAX);
        recorder.record(entry("req-1", 42));
        let detail = recorder.lookup("req-1").unwrap().detail_jsonl();
        let lines: Vec<&str> = detail.lines().collect();
        assert_eq!(lines.len(), 2);
        let summary = Json::parse(lines[0]).unwrap();
        assert_eq!(summary["id"].as_str(), Some("req-1"));
        assert_eq!(summary["total_ns"].as_u64(), Some(42));
        let hop = Json::parse(lines[1]).unwrap();
        assert_eq!(hop["name"].as_str(), Some("http_request"));
        assert_eq!(hop["args"]["request_id"].as_str(), Some("req-1"));
    }
}
