//! Per-route sliding-window rollups for the live SLO view.
//!
//! The cumulative `http.*` metrics only ever grow; a live `/statusz`
//! page and the `http.*.window30s` Prometheus gauges need "the last 30
//! seconds". [`HttpWindows`] keeps one [`RollingHistogram`] (latency)
//! and three [`RollingCounter`]s (requests, errors, SLO misses) per
//! route label, all sharing one monotonic clock anchored at
//! construction, and snapshots them on demand as [`RouteWindow`]
//! values. Recording happens in the request middleware, so every route
//! that has served traffic recently shows up; labels are the router's
//! stable route labels, so cardinality stays bounded.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use whart_obs::{HistogramSnapshot, RollingCounter, RollingHistogram, DEFAULT_SUB_WINDOWS};

/// Default rolling-window span.
pub const DEFAULT_WINDOW: Duration = Duration::from_secs(30);

/// One route's rolling instruments.
struct RouteInstruments {
    latency: RollingHistogram,
    requests: RollingCounter,
    errors: RollingCounter,
    slo_misses: RollingCounter,
}

impl RouteInstruments {
    fn new(window: Duration) -> RouteInstruments {
        RouteInstruments {
            latency: RollingHistogram::new(window, DEFAULT_SUB_WINDOWS),
            requests: RollingCounter::new(window, DEFAULT_SUB_WINDOWS),
            errors: RollingCounter::new(window, DEFAULT_SUB_WINDOWS),
            slo_misses: RollingCounter::new(window, DEFAULT_SUB_WINDOWS),
        }
    }
}

/// A read-time snapshot of one route's last window of traffic.
#[derive(Debug, Clone)]
pub struct RouteWindow {
    /// The route label (the registered path, or an error label).
    pub route: String,
    /// Requests finished inside the window.
    pub requests: u64,
    /// Responses with status >= 500 inside the window.
    pub errors: u64,
    /// Requests whose latency exceeded the SLO target.
    pub slo_misses: u64,
    /// Merged latency snapshot (quantiles, mean) for the window.
    pub latency: HistogramSnapshot,
}

impl RouteWindow {
    /// Errors as a fraction of windowed requests (0 when idle).
    pub fn error_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.errors as f64 / self.requests as f64
        }
    }

    /// Error-budget burn rate against a 99% latency SLO: the fraction
    /// of windowed requests over the target, divided by the 1% budget.
    /// `1.0` means burning the budget exactly as fast as it accrues;
    /// above 1.0 the SLO is being violated.
    pub fn slo_burn_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            (self.slo_misses as f64 / self.requests as f64) / 0.01
        }
    }
}

/// Sliding-window per-route statistics plus the SLO latency target they
/// are judged against. One instance is shared by the request middleware
/// (writes) and the `/statusz` / `/metrics` handlers (reads).
pub struct HttpWindows {
    start: Instant,
    window: Duration,
    slo_target_ns: u64,
    routes: Mutex<BTreeMap<String, Arc<RouteInstruments>>>,
}

impl HttpWindows {
    /// Windows of `window` span judging latency against `slo_target`.
    pub fn new(window: Duration, slo_target: Duration) -> HttpWindows {
        HttpWindows {
            start: Instant::now(),
            window,
            slo_target_ns: u64::try_from(slo_target.as_nanos()).unwrap_or(u64::MAX),
            routes: Mutex::new(BTreeMap::new()),
        }
    }

    /// The configured window span.
    pub fn window(&self) -> Duration {
        self.window
    }

    /// The latency target requests are judged against.
    pub fn slo_target_ns(&self) -> u64 {
        self.slo_target_ns
    }

    /// Nanoseconds on this instance's private monotonic clock. Exposed
    /// so tests and read paths can reuse one clock read.
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn instruments(&self, route: &str) -> Arc<RouteInstruments> {
        let mut routes = self.routes.lock().expect("windows lock");
        Arc::clone(
            routes
                .entry(route.to_owned())
                .or_insert_with(|| Arc::new(RouteInstruments::new(self.window))),
        )
    }

    /// Records one finished request at the current time.
    pub fn record(&self, route: &str, status: u16, latency_ns: u64) {
        self.record_at(self.now_ns(), route, status, latency_ns);
    }

    /// Records one finished request at an explicit clock reading
    /// (deterministic tests).
    pub fn record_at(&self, now_ns: u64, route: &str, status: u16, latency_ns: u64) {
        let instruments = self.instruments(route);
        instruments.latency.record_at(now_ns, latency_ns);
        instruments.requests.add_at(now_ns, 1);
        if status >= 500 {
            instruments.errors.add_at(now_ns, 1);
        }
        if latency_ns > self.slo_target_ns {
            instruments.slo_misses.add_at(now_ns, 1);
        }
    }

    /// Snapshots every route's current window, in label order. Routes
    /// whose entire window has expired report zero counts.
    pub fn snapshot(&self) -> Vec<RouteWindow> {
        let now_ns = self.now_ns();
        let routes = self.routes.lock().expect("windows lock");
        routes
            .iter()
            .map(|(route, instruments)| RouteWindow {
                route: route.clone(),
                requests: instruments.requests.value_at(now_ns),
                errors: instruments.errors.value_at(now_ns),
                slo_misses: instruments.slo_misses.value_at(now_ns),
                latency: instruments.latency.snapshot_at(now_ns),
            })
            .collect()
    }
}

impl std::fmt::Debug for HttpWindows {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpWindows")
            .field("window", &self.window)
            .field("slo_target_ns", &self.slo_target_ns)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_accumulate_and_expire_independently() {
        let windows = HttpWindows::new(Duration::from_secs(30), Duration::from_millis(5));
        let now = windows.now_ns();
        windows.record_at(now, "/v1/analyze", 200, 1_000_000);
        windows.record_at(now, "/v1/analyze", 200, 2_000_000);
        windows.record_at(now, "/v1/analyze", 500, 80_000_000);
        windows.record_at(now, "/v1/batch", 200, 3_000_000);

        let snapshot = windows.snapshot();
        assert_eq!(snapshot.len(), 2);
        let analyze = &snapshot[0];
        assert_eq!(analyze.route, "/v1/analyze");
        assert_eq!(
            (analyze.requests, analyze.errors, analyze.slo_misses),
            (3, 1, 1)
        );
        assert!(analyze.error_rate() > 0.33 && analyze.error_rate() < 0.34);
        // 1 of 3 over target burns the 1% budget ~33x.
        assert!((analyze.slo_burn_rate() - 100.0 / 3.0).abs() < 1e-9);
        assert_eq!(analyze.latency.count, 3);
        assert!(analyze.latency.quantile(0.5).unwrap() >= 1_000_000.0);
        let batch = &snapshot[1];
        assert_eq!((batch.requests, batch.errors, batch.slo_misses), (1, 0, 0));
        assert_eq!(batch.slo_burn_rate(), 0.0);
    }

    #[test]
    fn statuses_below_500_are_not_errors() {
        let windows = HttpWindows::new(Duration::from_secs(30), Duration::from_secs(1));
        let now = windows.now_ns();
        windows.record_at(now, "unmatched", 404, 10_000);
        windows.record_at(now, "/v1/analyze", 400, 10_000);
        for route in windows.snapshot() {
            assert_eq!(route.errors, 0, "{}", route.route);
        }
    }
}
