//! whart-serve: a dependency-free HTTP/1.1 service framework for the
//! WirelessHART workspace.
//!
//! The `whart serve` subcommand wraps this crate around the evaluation
//! engine to form a long-running service whose caches stay warm across
//! requests. The framework itself knows nothing about network specs —
//! it provides the machinery a small internal service needs, on `std`
//! alone (`TcpListener` + a worker thread pool, consistent with the
//! workspace's offline/vendored dependency policy):
//!
//! * [`http`] — HTTP/1.1 request parsing and response writing
//!   (`Content-Length` bodies, query strings, `Connection: close`).
//! * [`router`] — exact-path routing with stable route labels for
//!   metric cardinality control.
//! * [`server`] — the accept loop and worker pool: built-in
//!   `GET /healthz` / `GET /readyz` probes, per-request metrics
//!   (`http.requests_total{route,code}`, per-route latency histograms,
//!   in-flight gauge) and one trace span per request on the shared
//!   [`whart_obs::Metrics`] / [`whart_trace::Trace`] facades, and
//!   graceful shutdown that drains every accepted connection before
//!   [`server::Server::serve`] returns.
//! * [`signal`] — SIGINT observation (no libc dependency) so Ctrl-C
//!   triggers the same drain as `POST /admin/shutdown`.
//!
//! ```no_run
//! use whart_serve::{Response, Router, Server, ServerConfig};
//!
//! let mut server = Server::bind(&ServerConfig::default()).unwrap();
//! let shutdown = server.shutdown();
//! server.set_router(Router::new().route("POST", "/admin/shutdown", move |_req| {
//!     shutdown.set();
//!     Response::text(202, "draining\n")
//! }));
//! server.ready().set(); // readiness usually flips after a self-check
//! server.serve().unwrap();
//! ```

#![deny(unsafe_code)] // `signal` opts out locally for the SIGINT shim.
#![warn(missing_docs)]

pub mod http;
pub mod router;
pub mod server;
pub mod signal;

pub use http::{Request, Response};
pub use router::{Handler, Router};
pub use server::{Flag, Server, ServerConfig};
