//! whart-serve: a dependency-free HTTP/1.1 service framework for the
//! WirelessHART workspace.
//!
//! The `whart serve` subcommand wraps this crate around the evaluation
//! engine to form a long-running service whose caches stay warm across
//! requests. The framework itself knows nothing about network specs —
//! it provides the machinery a production-traffic internal service
//! needs, on `std` alone (consistent with the workspace's
//! offline/vendored dependency policy):
//!
//! * [`http`] — HTTP/1.1 request parsing and response writing:
//!   keep-alive/`Connection` semantics, hardened `Content-Length`
//!   validation, query strings, and chunked streaming for large
//!   response bodies.
//! * [`conn`] — persistent-connection framing: a cross-request receive
//!   buffer (pipelining) and deadline-bounded reads and writes.
//! * [`poll`] (Unix) — readiness polling via a thin libc-free
//!   `poll(2)` shim, plus the wake pipe workers use to interrupt the
//!   event loop.
//! * [`router`] — exact-path routing with stable route labels for
//!   metric cardinality control.
//! * [`server`] — the event loop and worker pool: parked keep-alive
//!   connections, a bounded dispatch queue with `503` + `Retry-After`
//!   admission control, built-in `GET /healthz` / `GET /readyz` probes
//!   (health flips to 503 once drain begins), per-request metrics and
//!   trace spans on the shared [`whart_obs::Metrics`] /
//!   [`whart_trace::Trace`] facades, and graceful shutdown that drains
//!   every dispatched connection before [`server::Server::serve`]
//!   returns.
//! * [`signal`] — SIGINT observation (no libc dependency) so Ctrl-C
//!   triggers the same drain as `POST /admin/shutdown`.
//! * [`flight`] — the tail-sampled flight recorder: per-request hop
//!   timelines for the last N requests plus retained-slow outliers,
//!   addressable by correlation id.
//! * [`windows`] — per-route sliding-window rollups (requests, errors,
//!   latency quantiles, SLO misses) for `/statusz` and the
//!   `http.*.window30s` gauges.
//!
//! Every request is assigned (or propagates) an `X-Request-Id`
//! correlation id, returned on all responses — including protocol
//! errors and `503` queue-overflow rejections — and stamped on the
//! request's trace span, its structured log event, and its flight
//! recorder entry.
//!
//! ```no_run
//! use whart_serve::{Response, Router, Server, ServerConfig};
//!
//! let mut server = Server::bind(&ServerConfig::default()).unwrap();
//! let shutdown = server.shutdown();
//! server.set_router(Router::new().route("POST", "/admin/shutdown", move |_req| {
//!     shutdown.set();
//!     Response::text(202, "draining\n")
//! }));
//! server.ready().set(); // readiness usually flips after a self-check
//! server.serve().unwrap();
//! ```

#![deny(unsafe_code)] // `signal` and `poll` opt out locally for their shims.
#![warn(missing_docs)]

pub mod conn;
pub mod flight;
pub mod http;
#[cfg(unix)]
pub mod poll;
pub mod router;
pub mod server;
pub mod signal;
pub mod windows;

pub use flight::{FlightEntry, FlightRecorder};
pub use http::{Request, RequestError, Response};
pub use router::{Handler, Router};
pub use server::{next_request_id, Flag, Server, ServerConfig};
pub use windows::{HttpWindows, RouteWindow};
