//! Readiness polling over nonblocking sockets without a libc crate.
//!
//! The accept loop needs exactly one OS facility: "which of these file
//! descriptors is readable, or has `timeout` elapsed?". On Unix that is
//! `poll(2)`, declared here directly (the workspace vendors no FFI
//! crate, mirroring [`crate::signal`]). The module also provides
//! [`WakePipe`], a loopback socket pair the worker threads write one
//! byte into to interrupt a sleeping `poll` — the std-only stand-in for
//! a self-pipe — so a connection handed back for parking is observed
//! immediately instead of on the next timeout tick.
//!
//! On non-Unix targets this module is absent; the server falls back to
//! a blocking worker-per-connection mode (see `server.rs`).

#![cfg(unix)]

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::time::Duration;

/// `POLLIN`: data is readable (or a peer close is observable).
pub const POLLIN: i16 = 0x001;
/// `POLLOUT`: a write would not block.
pub const POLLOUT: i16 = 0x004;
/// `POLLERR`: an error condition is pending (revents only).
pub const POLLERR: i16 = 0x008;
/// `POLLHUP`: the peer hung up (revents only).
pub const POLLHUP: i16 = 0x010;

/// One `pollfd` entry, layout-compatible with the C struct.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

impl PollFd {
    /// An entry watching `fd` for `events` (e.g. [`POLLIN`]).
    pub fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Whether the kernel reported readability.
    pub fn readable(&self) -> bool {
        self.revents & POLLIN != 0
    }

    /// Whether the kernel reported an error or hangup. Readability may
    /// accompany it (buffered data before a FIN is still readable).
    pub fn hangup(&self) -> bool {
        self.revents & (POLLERR | POLLHUP) != 0
    }

    /// Whether any watched or error condition fired.
    pub fn ready(&self) -> bool {
        self.revents != 0
    }
}

#[allow(unsafe_code)]
mod sys {
    use super::PollFd;
    use std::os::raw::{c_int, c_ulong};

    extern "C" {
        /// POSIX `poll(2)`. `nfds_t` is `unsigned long` on the targets
        /// this workspace builds for.
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    pub fn poll_raw(fds: &mut [PollFd], timeout_ms: c_int) -> c_int {
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // #[repr(C)] pollfd entries; the kernel writes only `revents`.
        unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) }
    }
}

/// Waits until at least one entry is ready or `timeout` elapses.
/// Returns the number of ready entries (0 on timeout).
///
/// # Errors
///
/// The OS error, including [`io::ErrorKind::Interrupted`] when a signal
/// (e.g. the SIGINT the drain path watches) cut the wait short.
pub fn poll(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    let timeout_ms: i32 = match timeout {
        None => -1,
        Some(t) => i32::try_from(t.as_millis().max(1)).unwrap_or(i32::MAX),
    };
    match sys::poll_raw(fds, timeout_ms) {
        -1 => Err(io::Error::last_os_error()),
        n => Ok(n as usize),
    }
}

/// Waits for `events` on a single descriptor. Returns `false` on
/// timeout. Retries interrupted waits internally.
///
/// # Errors
///
/// Any OS error other than `EINTR`.
pub fn wait_fd(fd: RawFd, events: i16, timeout: Option<Duration>) -> io::Result<bool> {
    let deadline = timeout.map(|t| std::time::Instant::now() + t);
    loop {
        let remaining = match deadline {
            None => None,
            Some(d) => {
                let left = d.saturating_duration_since(std::time::Instant::now());
                if left.is_zero() {
                    return Ok(false);
                }
                Some(left)
            }
        };
        let mut entry = [PollFd::new(fd, events)];
        match poll(&mut entry, remaining) {
            Ok(0) => {
                if deadline.is_none() {
                    continue;
                }
                return Ok(false);
            }
            Ok(_) => return Ok(true),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// A loopback socket pair used to interrupt a sleeping [`poll`].
///
/// Workers hold cloned write ends; writing one byte makes the read end
/// readable and wakes the event loop. The read end is nonblocking so
/// draining accumulated wake bytes never stalls the loop.
pub struct WakePipe {
    reader: TcpStream,
    writer: TcpStream,
}

impl WakePipe {
    /// Builds the pair from an ephemeral loopback listener. The accept
    /// is matched against the connecting end's address so an unrelated
    /// process racing for the port cannot slip in.
    ///
    /// # Errors
    ///
    /// When the loopback sockets cannot be created.
    pub fn new() -> io::Result<WakePipe> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let writer = TcpStream::connect(listener.local_addr()?)?;
        writer.set_nodelay(true)?;
        let ours = writer.local_addr()?;
        let reader = loop {
            let (stream, peer) = listener.accept()?;
            if peer == ours {
                break stream;
            }
            // A stranger connected to the ephemeral port: drop it and
            // keep waiting for our own end.
        };
        reader.set_nonblocking(true)?;
        Ok(WakePipe { reader, writer })
    }

    /// The descriptor the event loop adds to its poll set.
    pub fn fd(&self) -> RawFd {
        self.reader.as_raw_fd()
    }

    /// A cloned write end for a worker thread.
    ///
    /// # Errors
    ///
    /// When the descriptor cannot be duplicated.
    pub fn waker(&self) -> io::Result<Waker> {
        Ok(Waker {
            stream: self.writer.try_clone()?,
        })
    }

    /// Consumes every pending wake byte.
    pub fn drain(&mut self) {
        let mut buf = [0u8; 64];
        while matches!(self.reader.read(&mut buf), Ok(n) if n > 0) {}
    }
}

/// A worker-side handle that interrupts the event loop's poll.
pub struct Waker {
    stream: TcpStream,
}

impl Waker {
    /// Wakes the event loop (best-effort: a full socket buffer already
    /// guarantees a pending wakeup).
    pub fn wake(&mut self) {
        let _ = self.stream.write(&[1]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn poll_times_out_and_sees_readable_data() {
        let mut pipe = WakePipe::new().unwrap();
        let mut fds = [PollFd::new(pipe.fd(), POLLIN)];
        let started = Instant::now();
        let n = poll(&mut fds, Some(Duration::from_millis(30))).unwrap();
        assert_eq!(n, 0, "nothing written yet");
        assert!(started.elapsed() >= Duration::from_millis(25));

        pipe.waker().unwrap().wake();
        let mut fds = [PollFd::new(pipe.fd(), POLLIN)];
        let n = poll(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable());
        pipe.drain();

        // Drained: back to timing out.
        let mut fds = [PollFd::new(pipe.fd(), POLLIN)];
        assert_eq!(poll(&mut fds, Some(Duration::from_millis(10))).unwrap(), 0);
    }

    #[test]
    fn wait_fd_reports_readability() {
        let mut pipe = WakePipe::new().unwrap();
        assert!(!wait_fd(pipe.fd(), POLLIN, Some(Duration::from_millis(10))).unwrap());
        pipe.waker().unwrap().wake();
        assert!(wait_fd(pipe.fd(), POLLIN, Some(Duration::from_secs(5))).unwrap());
        pipe.drain();
    }
}
