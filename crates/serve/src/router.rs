//! Exact-path request routing with stable route labels.
//!
//! Routes are `(method, path)` pairs; the registered path doubles as the
//! route label on `http.requests{route,code}` and the per-route latency
//! histogram. Unmatched paths share the single label `unmatched` so a
//! scanner cannot explode metric cardinality.

use crate::http::{Request, Response};
use std::sync::Arc;

/// A request handler.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

struct Route {
    method: &'static str,
    path: &'static str,
    handler: Handler,
}

struct PrefixRoute {
    method: &'static str,
    prefix: &'static str,
    label: &'static str,
    handler: Handler,
}

/// An exact-path router.
#[derive(Default)]
pub struct Router {
    routes: Vec<Route>,
    prefix_routes: Vec<PrefixRoute>,
}

impl Router {
    /// An empty router.
    pub fn new() -> Router {
        Router::default()
    }

    /// Registers `handler` for `method` on the exact path `path`
    /// (builder style).
    pub fn route(
        mut self,
        method: &'static str,
        path: &'static str,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> Router {
        self.routes.push(Route {
            method,
            path,
            handler: Arc::new(handler),
        });
        self
    }

    /// Registers `handler` for paths strictly longer than `prefix` that
    /// start with it (builder style) — `/v1/debug/requests/<id>` and
    /// the like. The handler extracts the remainder from the request
    /// path itself; `label` is the stable route label every match
    /// reports, so a scanner probing ids cannot explode metric
    /// cardinality. Exact routes win over prefix routes.
    pub fn prefix_route(
        mut self,
        method: &'static str,
        prefix: &'static str,
        label: &'static str,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> Router {
        self.prefix_routes.push(PrefixRoute {
            method,
            prefix,
            label,
            handler: Arc::new(handler),
        });
        self
    }

    /// Dispatches `request`, returning the route label (the registered
    /// path, or `unmatched`) and the response: the handler's on a match,
    /// 405 when the path exists under a different method, 404 otherwise.
    pub fn dispatch(&self, request: &Request) -> (&'static str, Response) {
        let mut path_seen = false;
        for route in &self.routes {
            if route.path != request.path {
                continue;
            }
            if route.method == request.method {
                return (route.path, (route.handler)(request));
            }
            path_seen = true;
        }
        for route in &self.prefix_routes {
            let matches =
                request.path.len() > route.prefix.len() && request.path.starts_with(route.prefix);
            if !matches {
                continue;
            }
            if route.method == request.method {
                return (route.label, (route.handler)(request));
            }
            path_seen = true;
        }
        if path_seen {
            // Report the label of the real path: the client got the
            // method wrong, not the route.
            let label = self
                .routes
                .iter()
                .find(|r| r.path == request.path)
                .map(|r| r.path)
                .or_else(|| {
                    self.prefix_routes
                        .iter()
                        .find(|r| request.path.starts_with(r.prefix))
                        .map(|r| r.label)
                })
                .unwrap_or("unmatched");
            return (label, Response::text(405, "method not allowed\n"));
        }
        ("unmatched", Response::text(404, "not found\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(method: &str, path: &str) -> Request {
        Request {
            method: method.into(),
            path: path.into(),
            query: Vec::new(),
            headers: Vec::new(),
            body: Vec::new(),
            minor_version: 1,
        }
    }

    #[test]
    fn routes_by_method_and_exact_path() {
        let router = Router::new()
            .route("GET", "/a", |_| Response::text(200, "get-a"))
            .route("POST", "/a", |_| Response::text(200, "post-a"))
            .route("GET", "/b", |_| Response::text(200, "get-b"));
        let (label, response) = router.dispatch(&request("GET", "/a"));
        assert_eq!(
            (label, response.body.as_slice()),
            ("/a", b"get-a".as_slice())
        );
        let (_, response) = router.dispatch(&request("POST", "/a"));
        assert_eq!(response.body, b"post-a");
        let (label, response) = router.dispatch(&request("DELETE", "/b"));
        assert_eq!((label, response.status), ("/b", 405));
        let (label, response) = router.dispatch(&request("GET", "/nope"));
        assert_eq!((label, response.status), ("unmatched", 404));
        let (_, response) = router.dispatch(&request("GET", "/a/"));
        assert_eq!(response.status, 404, "exact match only");
    }

    #[test]
    fn prefix_routes_match_under_one_stable_label() {
        let router = Router::new()
            .route("GET", "/v1/debug/requests", |_| Response::text(200, "list"))
            .prefix_route(
                "GET",
                "/v1/debug/requests/",
                "/v1/debug/requests/:id",
                |req| {
                    let id = req.path.rsplit('/').next().unwrap_or("");
                    Response::text(200, format!("detail {id}"))
                },
            );
        // The exact route still owns the bare path.
        let (label, response) = router.dispatch(&request("GET", "/v1/debug/requests"));
        assert_eq!(
            (label, response.body.as_slice()),
            ("/v1/debug/requests", b"list".as_slice())
        );
        // Any id maps to the one registered label.
        let (label, response) = router.dispatch(&request("GET", "/v1/debug/requests/abc-123"));
        assert_eq!(label, "/v1/debug/requests/:id");
        assert_eq!(response.body, b"detail abc-123");
        // The bare prefix itself (empty remainder) is not a match.
        let (label, response) = router.dispatch(&request("GET", "/v1/debug/requests/"));
        assert_eq!((label, response.status), ("unmatched", 404));
        // Wrong method reports the prefix label with a 405.
        let (label, response) = router.dispatch(&request("POST", "/v1/debug/requests/abc"));
        assert_eq!((label, response.status), ("/v1/debug/requests/:id", 405));
    }
}
