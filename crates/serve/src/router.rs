//! Exact-path request routing with stable route labels.
//!
//! Routes are `(method, path)` pairs; the registered path doubles as the
//! route label on `http.requests{route,code}` and the per-route latency
//! histogram. Unmatched paths share the single label `unmatched` so a
//! scanner cannot explode metric cardinality.

use crate::http::{Request, Response};
use std::sync::Arc;

/// A request handler.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

struct Route {
    method: &'static str,
    path: &'static str,
    handler: Handler,
}

/// An exact-path router.
#[derive(Default)]
pub struct Router {
    routes: Vec<Route>,
}

impl Router {
    /// An empty router.
    pub fn new() -> Router {
        Router::default()
    }

    /// Registers `handler` for `method` on the exact path `path`
    /// (builder style).
    pub fn route(
        mut self,
        method: &'static str,
        path: &'static str,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> Router {
        self.routes.push(Route {
            method,
            path,
            handler: Arc::new(handler),
        });
        self
    }

    /// Dispatches `request`, returning the route label (the registered
    /// path, or `unmatched`) and the response: the handler's on a match,
    /// 405 when the path exists under a different method, 404 otherwise.
    pub fn dispatch(&self, request: &Request) -> (&'static str, Response) {
        let mut path_seen = false;
        for route in &self.routes {
            if route.path != request.path {
                continue;
            }
            if route.method == request.method {
                return (route.path, (route.handler)(request));
            }
            path_seen = true;
        }
        if path_seen {
            // Report the label of the real path: the client got the
            // method wrong, not the route.
            let label = self
                .routes
                .iter()
                .find(|r| r.path == request.path)
                .map(|r| r.path)
                .unwrap_or("unmatched");
            return (label, Response::text(405, "method not allowed\n"));
        }
        ("unmatched", Response::text(404, "not found\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(method: &str, path: &str) -> Request {
        Request {
            method: method.into(),
            path: path.into(),
            query: Vec::new(),
            headers: Vec::new(),
            body: Vec::new(),
            minor_version: 1,
        }
    }

    #[test]
    fn routes_by_method_and_exact_path() {
        let router = Router::new()
            .route("GET", "/a", |_| Response::text(200, "get-a"))
            .route("POST", "/a", |_| Response::text(200, "post-a"))
            .route("GET", "/b", |_| Response::text(200, "get-b"));
        let (label, response) = router.dispatch(&request("GET", "/a"));
        assert_eq!(
            (label, response.body.as_slice()),
            ("/a", b"get-a".as_slice())
        );
        let (_, response) = router.dispatch(&request("POST", "/a"));
        assert_eq!(response.body, b"post-a");
        let (label, response) = router.dispatch(&request("DELETE", "/b"));
        assert_eq!((label, response.status), ("/b", 405));
        let (label, response) = router.dispatch(&request("GET", "/nope"));
        assert_eq!((label, response.status), ("unmatched", 404));
        let (_, response) = router.dispatch(&request("GET", "/a/"));
        assert_eq!(response.status, 404, "exact match only");
    }
}
