//! Persistent-connection framing: buffered, pipelined request reads and
//! deadline-bounded response writes over one [`TcpStream`].
//!
//! A [`Conn`] owns the socket and a receive buffer that survives across
//! requests, so bytes of a pipelined second request read together with
//! the first are not lost. On Unix the socket is nonblocking and reads
//! and writes park in [`crate::poll::wait_fd`] under an explicit
//! deadline; elsewhere the std blocking timeouts are used and the
//! server falls back to worker-owned connections (no parking).

use crate::http::{self, Request, RequestError, Response};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

#[cfg(unix)]
use crate::poll;
#[cfg(unix)]
use std::os::unix::io::{AsRawFd, RawFd};

/// What a connection should do after a response was written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum After {
    /// More request bytes are already buffered (pipelining): serve the
    /// next request immediately, without going back through the poller.
    Buffered,
    /// Nothing buffered and no data pending: park the connection in the
    /// event loop's idle set until it turns readable or times out.
    Idle,
    /// The peer closed (or the socket failed): drop the connection.
    Closed,
}

/// One client connection with its cross-request receive buffer.
pub struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
    /// Requests served on this connection so far (maintained by the
    /// server; `> 0` means the connection was reused).
    pub served: u64,
    /// When the connection last finished a request (or was accepted);
    /// the event loop expires idle connections against this.
    pub idle_since: Instant,
}

impl Conn {
    /// Wraps an accepted stream: disables Nagle, and on Unix switches
    /// the socket to nonblocking mode for readiness-driven I/O.
    ///
    /// # Errors
    ///
    /// When the socket options cannot be set.
    pub fn new(stream: TcpStream) -> io::Result<Conn> {
        stream.set_nodelay(true)?;
        #[cfg(unix)]
        stream.set_nonblocking(true)?;
        Ok(Conn {
            stream,
            buf: Vec::new(),
            served: 0,
            idle_since: Instant::now(),
        })
    }

    /// The raw descriptor, for the event loop's poll set.
    #[cfg(unix)]
    pub fn fd(&self) -> RawFd {
        self.stream.as_raw_fd()
    }

    /// Reads and frames the next request, completing within `timeout`.
    ///
    /// Consumes exactly one request's bytes from the buffer; bytes of a
    /// pipelined successor stay buffered for the next call.
    ///
    /// # Errors
    ///
    /// [`RequestError::Closed`] on a clean close at a request boundary,
    /// [`RequestError::TimedOut`] when the deadline passes, and the
    /// parse-level `TooLarge`/`Malformed` errors from [`http`].
    pub fn next_request(&mut self, timeout: Duration) -> Result<Request, RequestError> {
        let deadline = Instant::now() + timeout;
        // Head: buffer until the blank line (or the size cap trips).
        let head_end = loop {
            match http::find_head_end(&self.buf)? {
                Some(end) => break end,
                None => self.fill(deadline)?,
            }
        };
        let mut request = http::parse_head(&self.buf[..head_end])?;
        let length = http::content_length(&request)?;
        while self.buf.len() < head_end + length {
            self.fill(deadline).map_err(|e| match e {
                // EOF mid-body is a protocol violation, not a clean close.
                RequestError::Closed => {
                    RequestError::Malformed("connection closed mid-body".into())
                }
                other => other,
            })?;
        }
        request.body = self.buf[head_end..head_end + length].to_vec();
        self.buf.drain(..head_end + length);
        Ok(request)
    }

    /// Serializes and writes `response`, bounded by `timeout`.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::TimedOut`] when the peer stops reading, or any
    /// underlying socket error.
    pub fn write_response(
        &mut self,
        response: &Response,
        keep_alive: bool,
        allow_chunked: bool,
        timeout: Duration,
    ) -> io::Result<()> {
        let mut out = Vec::with_capacity(response.body.len() + 256);
        response.write_to(&mut out, keep_alive, allow_chunked)?;
        self.write_all_deadline(&out, Instant::now() + timeout)
    }

    /// What to do with the connection after a keep-alive response.
    pub fn after_response(&mut self) -> After {
        self.served += 1;
        self.idle_since = Instant::now();
        if !self.buf.is_empty() {
            return After::Buffered;
        }
        // Probe without blocking: data already in the socket buffer is
        // a pipelined request we should serve now; EOF is a close.
        #[cfg(unix)]
        {
            let mut probe = [0u8; 4096];
            match self.stream.read(&mut probe) {
                Ok(0) => After::Closed,
                Ok(n) => {
                    self.buf.extend_from_slice(&probe[..n]);
                    After::Buffered
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => After::Idle,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => After::Idle,
                Err(_) => After::Closed,
            }
        }
        #[cfg(not(unix))]
        After::Idle
    }

    /// Reads at least one more byte into the buffer, waiting for
    /// readiness up to `deadline`.
    fn fill(&mut self, deadline: Instant) -> Result<(), RequestError> {
        let mut chunk = [0u8; 8192];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(if self.buf.is_empty() {
                        RequestError::Closed
                    } else {
                        RequestError::Malformed("connection closed mid-request".into())
                    })
                }
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    return Ok(());
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.wait_readable(deadline)?;
                }
                Err(e) if e.kind() == io::ErrorKind::TimedOut => {
                    return Err(RequestError::TimedOut)
                }
                Err(e) => return Err(RequestError::Io(e.to_string())),
            }
        }
    }

    #[cfg(unix)]
    fn wait_readable(&mut self, deadline: Instant) -> Result<(), RequestError> {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(RequestError::TimedOut);
        }
        match poll::wait_fd(self.fd(), poll::POLLIN, Some(remaining)) {
            Ok(true) => Ok(()),
            Ok(false) => Err(RequestError::TimedOut),
            Err(e) => Err(RequestError::Io(e.to_string())),
        }
    }

    #[cfg(not(unix))]
    fn wait_readable(&mut self, deadline: Instant) -> Result<(), RequestError> {
        // Blocking sockets elsewhere: arm the std read timeout and let
        // the next read() either deliver data or report the timeout.
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(RequestError::TimedOut);
        }
        self.stream
            .set_read_timeout(Some(remaining))
            .map_err(|e| RequestError::Io(e.to_string()))?;
        Ok(())
    }

    fn write_all_deadline(&mut self, bytes: &[u8], deadline: Instant) -> io::Result<()> {
        let mut written = 0;
        while written < bytes.len() {
            match self.stream.write(&bytes[written..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => written += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        return Err(io::ErrorKind::TimedOut.into());
                    }
                    #[cfg(unix)]
                    if !poll::wait_fd(self.fd(), poll::POLLOUT, Some(remaining))? {
                        return Err(io::ErrorKind::TimedOut.into());
                    }
                    #[cfg(not(unix))]
                    self.stream.set_write_timeout(Some(remaining))?;
                }
                Err(e) => return Err(e),
            }
        }
        self.stream.flush()
    }
}

impl std::fmt::Debug for Conn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Conn")
            .field("peer", &self.stream.peer_addr().ok())
            .field("buffered", &self.buf.len())
            .field("served", &self.served)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, Conn) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        (client, Conn::new(accepted).unwrap())
    }

    #[test]
    fn frames_two_pipelined_requests_from_one_write() {
        let (mut client, mut conn) = pair();
        client
            .write_all(
                b"POST /a HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi\
                  GET /b HTTP/1.1\r\nHost: t\r\n\r\n",
            )
            .unwrap();
        let first = conn.next_request(Duration::from_secs(5)).unwrap();
        assert_eq!((first.method.as_str(), first.path.as_str()), ("POST", "/a"));
        assert_eq!(first.body, b"hi");
        assert_eq!(conn.after_response(), After::Buffered, "pipelined bytes");
        let second = conn.next_request(Duration::from_secs(5)).unwrap();
        assert_eq!(second.path, "/b");
        assert!(second.body.is_empty());
    }

    #[test]
    fn read_deadline_and_clean_close_are_distinguished() {
        let (client, mut conn) = pair();
        assert!(matches!(
            conn.next_request(Duration::from_millis(40)),
            Err(RequestError::TimedOut)
        ));
        drop(client);
        assert!(matches!(
            conn.next_request(Duration::from_secs(5)),
            Err(RequestError::Closed)
        ));
    }

    #[test]
    fn eof_mid_request_is_malformed_not_closed() {
        let (mut client, mut conn) = pair();
        client.write_all(b"POST /a HTTP/1.1\r\nConte").unwrap();
        drop(client);
        assert!(matches!(
            conn.next_request(Duration::from_secs(5)),
            Err(RequestError::Malformed(_))
        ));
    }

    #[test]
    fn responses_round_trip_through_the_deadline_writer() {
        let (mut client, mut conn) = pair();
        let response = Response::text(200, "pong\n");
        conn.write_response(&response, false, true, Duration::from_secs(5))
            .unwrap();
        drop(conn);
        let mut raw = String::new();
        client.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 200 OK\r\n"), "{raw}");
        assert!(raw.contains("Connection: close\r\n"), "{raw}");
        assert!(raw.ends_with("pong\n"), "{raw}");
    }
}
