//! SIGINT (Ctrl-C) observation without a libc dependency.
//!
//! The workspace vendors no FFI crate, so on Unix this module declares
//! the two C symbols it needs (`signal(2)` registration) directly. The
//! handler only performs an atomic store — the single async-signal-safe
//! operation the accept loop needs to observe a Ctrl-C on its next
//! poll. On non-Unix targets installation is a no-op and the flag never
//! fires (the `/admin/shutdown` endpoint still works).

use std::sync::atomic::{AtomicBool, Ordering};

static INTERRUPTED: AtomicBool = AtomicBool::new(false);

/// Whether SIGINT has been received since [`install`].
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::Relaxed)
}

/// Clears the flag (test isolation).
#[cfg(test)]
pub(crate) fn reset() {
    INTERRUPTED.store(false, Ordering::Relaxed);
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod sys {
    use super::{AtomicBool, Ordering, INTERRUPTED};

    const SIGINT: i32 = 2;
    /// `SIG_ERR` return of `signal(2)`.
    const SIG_ERR: usize = usize::MAX;

    extern "C" {
        /// POSIX `signal(2)`; handler passed/returned as a raw address.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigint(_signum: i32) {
        // Async-signal-safe: a single atomic store.
        INTERRUPTED.store(true, Ordering::Relaxed);
    }

    /// Tracks whether the handler is already installed.
    static INSTALLED: AtomicBool = AtomicBool::new(false);

    pub fn install() -> bool {
        if INSTALLED.swap(true, Ordering::SeqCst) {
            return true;
        }
        // SAFETY: `signal` is the POSIX registration call; the handler
        // address stays valid for the process lifetime (it is a static
        // function) and performs only an atomic store.
        let previous = unsafe { signal(SIGINT, on_sigint as *const () as usize) };
        previous != SIG_ERR
    }
}

#[cfg(not(unix))]
mod sys {
    pub fn install() -> bool {
        false
    }
}

/// Installs the SIGINT handler (idempotent). Returns whether a handler
/// is active; on unsupported platforms this is `false` and shutdown
/// relies on `/admin/shutdown`.
pub fn install() -> bool {
    sys::install()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear_and_install_is_idempotent() {
        reset();
        assert!(!interrupted());
        if cfg!(unix) {
            assert!(install());
            assert!(install(), "second install is a no-op");
            assert!(!interrupted(), "installation alone does not fire");
        } else {
            assert!(!install());
        }
    }
}
