//! Property-based tests for the network substrate.

use proptest::prelude::*;
use whart_channel::LinkModel;
use whart_net::typical::chain_path;
use whart_net::{shortest_path, uplink_paths, NodeId, Path, Schedule, Superframe, Topology};

fn link() -> LinkModel {
    LinkModel::from_availability(0.83, 0.9).unwrap()
}

/// Builds a random connected topology: node i attaches to a uniformly chosen
/// earlier node (or the gateway), yielding a random tree.
fn random_tree(attach: &[usize]) -> Topology {
    let mut t = Topology::new();
    for (i, &a) in attach.iter().enumerate() {
        let node = NodeId::field(i as u32 + 1);
        t.add_node(node).unwrap();
        // Attach to the gateway (index 0) or one of the i already-added nodes.
        let parent = match a % (i + 1) {
            0 => NodeId::Gateway,
            k => NodeId::field(k as u32),
        };
        t.connect(node, parent, link()).unwrap();
    }
    t
}

proptest! {
    #[test]
    fn random_trees_are_connected(attach in proptest::collection::vec(0usize..100, 1..30)) {
        let t = random_tree(&attach);
        prop_assert!(t.is_connected());
        prop_assert_eq!(t.link_count(), attach.len());
    }

    #[test]
    fn every_device_routes_to_gateway(attach in proptest::collection::vec(0usize..100, 1..25)) {
        let t = random_tree(&attach);
        let paths = uplink_paths(&t).unwrap();
        prop_assert_eq!(paths.len(), attach.len());
        for p in &paths {
            prop_assert!(p.is_uplink());
            prop_assert!(p.hop_count() >= 1);
            // BFS paths through a tree are the unique simple paths.
            for hop in p.hops() {
                prop_assert!(t.link(hop.from, hop.to).is_some());
            }
        }
    }

    #[test]
    fn shortest_path_is_minimal(attach in proptest::collection::vec(0usize..100, 2..20)) {
        let t = random_tree(&attach);
        // In a tree the BFS path length from any node equals its parent
        // chain length; re-deriving it by stepping parents must agree.
        for device in t.field_devices() {
            let p = shortest_path(&t, device, NodeId::Gateway).unwrap();
            // Walk up: each hop must strictly reduce the remaining distance.
            let mut remaining = p.hop_count();
            for hop in p.hops() {
                if hop.to == NodeId::Gateway {
                    remaining -= 1;
                    break;
                }
                let rest = shortest_path(&t, hop.to, NodeId::Gateway).unwrap();
                prop_assert_eq!(rest.hop_count(), remaining - 1);
                remaining -= 1;
            }
        }
    }

    #[test]
    fn sequential_schedules_validate(
        attach in proptest::collection::vec(0usize..100, 1..12),
        seed in 0u64..1000,
    ) {
        let t = random_tree(&attach);
        let paths = uplink_paths(&t).unwrap();
        // A deterministic pseudo-random permutation derived from the seed.
        let mut order: Vec<usize> = (0..paths.len()).collect();
        let mut s = seed;
        for i in (1..order.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }
        let schedule = Schedule::sequential(&paths, &order).unwrap();
        schedule.validate(&t, &paths).unwrap();
        let total: usize = paths.iter().map(Path::hop_count).sum();
        prop_assert_eq!(schedule.len(), total);
        prop_assert_eq!(schedule.transmissions().count(), total);
    }

    #[test]
    fn padding_preserves_transmissions(
        attach in proptest::collection::vec(0usize..100, 1..8),
        pad in 0usize..10,
    ) {
        let t = random_tree(&attach);
        let paths = uplink_paths(&t).unwrap();
        let order: Vec<usize> = (0..paths.len()).collect();
        let schedule = Schedule::sequential(&paths, &order).unwrap();
        let before = schedule.transmissions().count();
        let target = schedule.len() + pad;
        let padded = schedule.padded(target);
        prop_assert_eq!(padded.len(), target);
        prop_assert_eq!(padded.transmissions().count(), before);
        padded.validate(&t, &paths).unwrap();
    }

    #[test]
    fn chain_paths_have_exact_hops(hops in 1u32..10) {
        let (t, path, schedule) = chain_path(hops, link()).unwrap();
        prop_assert_eq!(path.hop_count(), hops as usize);
        schedule.validate(&t, std::slice::from_ref(&path)).unwrap();
    }

    #[test]
    fn delay_is_monotone_in_cycle_and_slot(
        f_up in 1u32..40,
        cycle in 1u32..8,
        slot in 1u32..40,
    ) {
        prop_assume!(slot <= f_up);
        let frame = Superframe::symmetric(f_up).unwrap();
        let d = frame.delay_ms(cycle, slot);
        prop_assert_eq!(frame.delay_ms(cycle + 1, slot), d + frame.cycle_ms());
        if slot < f_up {
            prop_assert_eq!(frame.delay_ms(cycle, slot + 1), d + 10);
        }
    }

    #[test]
    fn path_display_round_trips_node_count(n in 2usize..8) {
        let mut nodes: Vec<NodeId> = (1..n as u32).map(NodeId::field).collect();
        nodes.push(NodeId::Gateway);
        let p = Path::new(nodes).unwrap();
        prop_assert_eq!(p.to_string().matches("->").count(), p.hop_count());
    }
}
