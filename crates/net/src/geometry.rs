//! Plant-floor geometry: build topologies from node positions and a radio
//! propagation model.
//!
//! The paper assumes the connectivity graph and per-link SNRs as inputs;
//! this module generates them from first principles: place the gateway and
//! field devices on a floor plan, derive each feasible link's
//! [`LinkModel`] from the distance via a [`PropagationModel`], and keep
//! links whose stationary availability clears a deployment threshold.

use crate::error::{NetError, Result};
use crate::ids::NodeId;
use crate::route::{uplink_paths, Path};
use crate::topology::Topology;
use whart_channel::{LinkModel, PropagationModel, WIRELESSHART_MESSAGE_BITS};

/// A point on the plant floor, in meters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Position {
    /// X coordinate (m).
    pub x: f64,
    /// Y coordinate (m).
    pub y: f64,
}

impl Position {
    /// Creates a position.
    pub const fn new(x: f64, y: f64) -> Position {
        Position { x, y }
    }

    /// Euclidean distance to another position.
    pub fn distance_to(self, other: Position) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }
}

/// A physical deployment: the gateway plus positioned field devices.
#[derive(Debug, Clone, PartialEq)]
pub struct Deployment {
    gateway: Position,
    devices: Vec<(NodeId, Position)>,
    propagation: PropagationModel,
    min_availability: f64,
    recovery: f64,
}

impl Deployment {
    /// Starts a deployment with the gateway at `gateway` under the given
    /// radio environment. Links are kept if their predicted stationary
    /// availability reaches `min_availability` (with recovery `p_rc = 0.9`
    /// unless overridden by [`Deployment::recovery`]).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidPath`] for a non-probability threshold.
    pub fn new(
        gateway: Position,
        propagation: PropagationModel,
        min_availability: f64,
    ) -> Result<Deployment> {
        if !(0.0..=1.0).contains(&min_availability) || !min_availability.is_finite() {
            return Err(NetError::InvalidPath {
                reason: format!("min availability {min_availability} is not a probability"),
            });
        }
        Ok(Deployment {
            gateway,
            devices: Vec::new(),
            propagation,
            min_availability,
            recovery: LinkModel::DEFAULT_RECOVERY,
        })
    }

    /// Overrides the per-slot recovery probability used for link models.
    pub fn recovery(mut self, p_rc: f64) -> Deployment {
        self.recovery = p_rc;
        self
    }

    /// Places a field device.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::DuplicateNode`] if the device number repeats.
    pub fn place(&mut self, device: u32, position: Position) -> Result<&mut Deployment> {
        let node = NodeId::field(device);
        if self.devices.iter().any(|(n, _)| *n == node) {
            return Err(NetError::DuplicateNode { node });
        }
        self.devices.push((node, position));
        Ok(self)
    }

    /// The position of a node (gateway included).
    pub fn position(&self, node: NodeId) -> Option<Position> {
        if node.is_gateway() {
            return Some(self.gateway);
        }
        self.devices
            .iter()
            .find(|(n, _)| *n == node)
            .map(|(_, p)| *p)
    }

    /// The predicted link model between two placed nodes, regardless of the
    /// availability threshold.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownNode`] for unplaced nodes.
    pub fn predicted_link(&self, a: NodeId, b: NodeId) -> Result<LinkModel> {
        let pa = self.position(a).ok_or(NetError::UnknownNode { node: a })?;
        let pb = self.position(b).ok_or(NetError::UnknownNode { node: b })?;
        self.propagation
            .link_model(
                pa.distance_to(pb).max(0.1),
                WIRELESSHART_MESSAGE_BITS,
                self.recovery,
            )
            .map_err(|e| NetError::InvalidPath {
                reason: e.to_string(),
            })
    }

    /// Builds the connectivity graph: every pair of nodes whose predicted
    /// availability clears the threshold gets a bidirectional link carrying
    /// its predicted [`LinkModel`].
    ///
    /// # Errors
    ///
    /// Propagates construction failures (none occur for placed nodes).
    pub fn build_topology(&self) -> Result<Topology> {
        let mut topology = Topology::new();
        for (node, _) in &self.devices {
            topology.add_node(*node)?;
        }
        let mut all: Vec<NodeId> = vec![NodeId::Gateway];
        all.extend(self.devices.iter().map(|(n, _)| *n));
        for (i, &a) in all.iter().enumerate() {
            for &b in &all[i + 1..] {
                let link = self.predicted_link(a, b)?;
                if link.availability() >= self.min_availability {
                    topology.connect(a, b, link)?;
                }
            }
        }
        Ok(topology)
    }

    /// Builds the topology and routes every device to the gateway,
    /// enforcing the WirelessHART hop guideline.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NoRoute`] if a device is out of mesh range and
    /// [`NetError::TooManyHops`] if some route exceeds `max_hops`.
    pub fn build_routed(&self, max_hops: usize) -> Result<(Topology, Vec<Path>)> {
        let topology = self.build_topology()?;
        let paths = uplink_paths(&topology)?;
        for path in &paths {
            path.check_hop_guideline(max_hops)?;
        }
        Ok((topology, paths))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::MAX_HOPS_GUIDELINE;

    fn line_deployment(spacing: f64, count: u32) -> Deployment {
        let mut d =
            Deployment::new(Position::new(0.0, 0.0), PropagationModel::industrial(), 0.9).unwrap();
        for i in 1..=count {
            d.place(i, Position::new(spacing * f64::from(i), 0.0))
                .unwrap();
        }
        d
    }

    #[test]
    fn distance_math() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(3.0, 4.0);
        assert!((a.distance_to(b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance_to(a), 0.0);
    }

    #[test]
    fn close_nodes_form_a_dense_mesh() {
        let d = line_deployment(10.0, 3);
        let t = d.build_topology().unwrap();
        // 10, 20, 30 m hops are all healthy in the industrial model.
        assert!(t.is_connected());
        assert!(t.link(NodeId::field(1), NodeId::Gateway).is_some());
        assert!(t.link(NodeId::field(3), NodeId::field(2)).is_some());
    }

    #[test]
    fn distant_nodes_need_relays() {
        // 70 m spacing: adjacent nodes connect (70 m links are healthy) but
        // 140 m skips fall below the 0.9 availability threshold, so node 3
        // (210 m out) must relay through n2 and n1.
        let d = line_deployment(70.0, 3);
        let t = d.build_topology().unwrap();
        assert!(t.link(NodeId::field(1), NodeId::Gateway).is_some());
        assert!(t.link(NodeId::field(2), NodeId::Gateway).is_none());
        assert!(t.link(NodeId::field(3), NodeId::Gateway).is_none());
        let (_, paths) = d.build_routed(MAX_HOPS_GUIDELINE).unwrap();
        assert_eq!(paths[2].hop_count(), 3); // n3 -> n2 -> n1 -> G
    }

    #[test]
    fn availability_threshold_prunes_links() {
        let strict = Deployment::new(
            Position::new(0.0, 0.0),
            PropagationModel::industrial(),
            0.999,
        )
        .unwrap();
        let mut strict = strict;
        strict.place(1, Position::new(60.0, 0.0)).unwrap();
        let relaxed = {
            let mut d =
                Deployment::new(Position::new(0.0, 0.0), PropagationModel::industrial(), 0.6)
                    .unwrap();
            d.place(1, Position::new(60.0, 0.0)).unwrap();
            d
        };
        let link_strict = strict.build_topology().unwrap().link_count();
        let link_relaxed = relaxed.build_topology().unwrap().link_count();
        assert!(link_relaxed >= link_strict);
    }

    #[test]
    fn out_of_range_device_fails_routing() {
        let mut d = line_deployment(10.0, 1);
        d.place(9, Position::new(2000.0, 2000.0)).unwrap();
        assert!(matches!(
            d.build_routed(MAX_HOPS_GUIDELINE),
            Err(NetError::NoRoute { .. })
        ));
    }

    #[test]
    fn hop_guideline_enforced() {
        // Six 70 m hops in a line: route length exceeds the 4-hop guideline.
        let d = line_deployment(70.0, 6);
        assert!(matches!(
            d.build_routed(MAX_HOPS_GUIDELINE),
            Err(NetError::TooManyHops { .. })
        ));
        assert!(d.build_routed(6).is_ok());
    }

    #[test]
    fn duplicate_and_unknown_devices() {
        let mut d = line_deployment(10.0, 2);
        assert!(matches!(
            d.place(1, Position::new(5.0, 5.0)),
            Err(NetError::DuplicateNode { .. })
        ));
        assert!(d
            .predicted_link(NodeId::field(1), NodeId::field(77))
            .is_err());
        assert!(d.position(NodeId::Gateway).is_some());
        assert!(d.position(NodeId::field(77)).is_none());
    }

    #[test]
    fn predicted_quality_decays_with_distance() {
        let d = line_deployment(25.0, 3);
        let near = d.predicted_link(NodeId::field(1), NodeId::Gateway).unwrap();
        let far = d.predicted_link(NodeId::field(3), NodeId::Gateway).unwrap();
        assert!(near.availability() > far.availability());
    }
}
