//! Node identifiers and directed links.

use std::fmt;

/// A node of a WirelessHART network: either the gateway (the network's
/// routing destination with its wired connection to the controller) or a
/// numbered field device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeId {
    /// The gateway / access point.
    Gateway,
    /// A field device (sensor or actuator), numbered from 1 as in the paper.
    Field(u32),
}

impl NodeId {
    /// The gateway.
    pub const GATEWAY: NodeId = NodeId::Gateway;

    /// A field device by number.
    pub const fn field(n: u32) -> NodeId {
        NodeId::Field(n)
    }

    /// Whether this is the gateway.
    pub fn is_gateway(self) -> bool {
        matches!(self, NodeId::Gateway)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Gateway => f.write_str("G"),
            NodeId::Field(n) => write!(f, "n{n}"),
        }
    }
}

/// A directed wireless hop `from -> to`. Physical links are bidirectional;
/// a `Hop` names one direction of use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Hop {
    /// The transmitting node.
    pub from: NodeId,
    /// The receiving node.
    pub to: NodeId,
}

impl Hop {
    /// Creates a hop.
    pub const fn new(from: NodeId, to: NodeId) -> Hop {
        Hop { from, to }
    }

    /// The same physical link used in the opposite direction.
    pub fn reversed(self) -> Hop {
        Hop {
            from: self.to,
            to: self.from,
        }
    }

    /// A canonical (order-independent) key for the underlying physical link,
    /// used to identify the bidirectional link regardless of direction.
    pub fn undirected_key(self) -> (NodeId, NodeId) {
        if self.from <= self.to {
            (self.from, self.to)
        } else {
            (self.to, self.from)
        }
    }
}

impl fmt::Display for Hop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{},{}>", self.from, self.to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(NodeId::GATEWAY.to_string(), "G");
        assert_eq!(NodeId::field(3).to_string(), "n3");
        assert_eq!(
            Hop::new(NodeId::field(1), NodeId::GATEWAY).to_string(),
            "<n1,G>"
        );
    }

    #[test]
    fn gateway_detection() {
        assert!(NodeId::GATEWAY.is_gateway());
        assert!(!NodeId::field(1).is_gateway());
    }

    #[test]
    fn reversal_and_undirected_key() {
        let h = Hop::new(NodeId::field(2), NodeId::field(7));
        assert_eq!(h.reversed(), Hop::new(NodeId::field(7), NodeId::field(2)));
        assert_eq!(h.undirected_key(), h.reversed().undirected_key());
    }

    #[test]
    fn ordering_puts_gateway_first() {
        assert!(NodeId::GATEWAY < NodeId::field(0));
        assert!(NodeId::field(1) < NodeId::field(2));
    }
}
