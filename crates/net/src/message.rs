//! Message life cycle (Section II-B).
//!
//! A sensory message is stamped with a born time and a time-to-live counted
//! in *uplink* slots: "uplink messages 'sleep' during downlink slots and do
//! not decrease their TTL". When the TTL reaches zero the message is
//! discarded to keep the registers clean.

use crate::ids::NodeId;
use crate::superframe::{ReportingInterval, Superframe};

/// A sensory message travelling towards the gateway.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Message {
    source: NodeId,
    born_uplink_slot: u64,
    ttl: u32,
    age_uplink_slots: u32,
}

impl Message {
    /// Creates a message born at the given absolute uplink-slot count with
    /// the given TTL (in uplink slots).
    pub fn new(source: NodeId, born_uplink_slot: u64, ttl: u32) -> Self {
        Message {
            source,
            born_uplink_slot,
            ttl,
            age_uplink_slots: 0,
        }
    }

    /// The standard TTL: a message lives for exactly one reporting interval,
    /// `Is * F_up` uplink slots.
    pub fn with_standard_ttl(
        source: NodeId,
        born_uplink_slot: u64,
        frame: Superframe,
        interval: ReportingInterval,
    ) -> Self {
        Message::new(source, born_uplink_slot, interval.uplink_slots(frame))
    }

    /// The node that generated the message.
    pub fn source(self) -> NodeId {
        self.source
    }

    /// Absolute uplink slot at which the message was born.
    pub fn born_uplink_slot(self) -> u64 {
        self.born_uplink_slot
    }

    /// Remaining uplink slots before the message is discarded.
    pub fn remaining_ttl(self) -> u32 {
        self.ttl
    }

    /// Age in uplink slots (the path model's state descriptor).
    pub fn age(self) -> u32 {
        self.age_uplink_slots
    }

    /// Advances the message by one *uplink* slot, decrementing the TTL and
    /// increasing the age. Returns `false` once the message has expired and
    /// must be discarded. Downlink slots do not call this.
    #[must_use]
    pub fn tick_uplink(&mut self) -> bool {
        if self.ttl == 0 {
            return false;
        }
        self.ttl -= 1;
        self.age_uplink_slots += 1;
        true
    }

    /// Whether the TTL has run out.
    pub fn is_expired(self) -> bool {
        self.ttl == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_ttl_spans_reporting_interval() {
        let frame = Superframe::symmetric(7).unwrap();
        let interval = ReportingInterval::new(4).unwrap();
        let m = Message::with_standard_ttl(NodeId::field(1), 0, frame, interval);
        assert_eq!(m.remaining_ttl(), 28);
        assert_eq!(m.source(), NodeId::field(1));
        assert_eq!(m.born_uplink_slot(), 0);
    }

    #[test]
    fn ticking_ages_and_expires() {
        let mut m = Message::new(NodeId::field(2), 5, 3);
        assert!(!m.is_expired());
        assert!(m.tick_uplink());
        assert_eq!(m.age(), 1);
        assert!(m.tick_uplink());
        assert!(m.tick_uplink());
        assert_eq!(m.age(), 3);
        assert!(m.is_expired());
        assert!(!m.tick_uplink()); // further ticks are refused
        assert_eq!(m.age(), 3);
    }

    #[test]
    fn zero_ttl_message_is_born_expired() {
        let mut m = Message::new(NodeId::field(1), 0, 0);
        assert!(m.is_expired());
        assert!(!m.tick_uplink());
    }
}
