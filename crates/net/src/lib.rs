//! WirelessHART network substrate.
//!
//! Implements Section II of Remke & Wu (DSN 2013): the protocol facts the
//! performance model is built on.
//!
//! * [`NodeId`] / [`Hop`] — nodes and directed hops in the paper's notation;
//! * [`Topology`] — the connectivity graph with per-link [`whart_channel::LinkModel`]s;
//! * [`Path`] / [`shortest_path`] / [`uplink_paths`] — routing, with path
//!   composition (Section V-D) and the 4-hop guideline;
//! * [`Superframe`] / [`ReportingInterval`] — 10 ms TDMA slots, uplink and
//!   downlink halves, delay conversion;
//! * [`Schedule`] — the communication schedule `eta` with validation and
//!   the sequential builder behind `eta_a`/`eta_b`;
//! * [`Message`] — the message life cycle with uplink-only TTL;
//! * [`typical`] — the paper's evaluation scenarios (Section V example,
//!   Fig. 12 network, hop-count chains) ready-made.
//!
//! # Example
//!
//! ```
//! use whart_channel::LinkModel;
//! use whart_net::typical::TypicalNetwork;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let link = LinkModel::from_availability(0.83, 0.9)?;
//! let net = TypicalNetwork::new(link);
//! let eta_a = net.schedule_eta_a();
//! eta_a.validate(&net.topology, &net.paths)?;
//! assert_eq!(net.paths.len(), 10);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod geometry;
mod ids;
mod message;
mod route;
mod schedule;
mod superframe;
mod topology;

pub mod typical;

pub use error::{NetError, Result};
pub use geometry::{Deployment, Position};
pub use ids::{Hop, NodeId};
pub use message::Message;
pub use route::{shortest_path, uplink_paths, Path, MAX_HOPS_GUIDELINE};
pub use schedule::{Schedule, ScheduleEntry, SchedulePriority};
pub use superframe::{ReportingInterval, Superframe, SLOT_MS};
pub use topology::Topology;
