//! Error types for the network substrate.

use crate::ids::NodeId;
use std::fmt;

/// Errors produced while building or validating WirelessHART networks.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NetError {
    /// A node referenced by an operation does not exist in the topology.
    UnknownNode {
        /// The missing node.
        node: NodeId,
    },
    /// A link referenced by an operation does not exist in the topology.
    UnknownLink {
        /// Transmitting node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
    },
    /// A node was added twice.
    DuplicateNode {
        /// The duplicated node.
        node: NodeId,
    },
    /// A link connects a node to itself.
    SelfLoop {
        /// The offending node.
        node: NodeId,
    },
    /// No route exists from the node to the requested destination.
    NoRoute {
        /// The unreachable source.
        from: NodeId,
        /// The unreachable destination.
        to: NodeId,
    },
    /// A path was empty or its consecutive nodes are not linked.
    InvalidPath {
        /// Explanation of the defect.
        reason: String,
    },
    /// The schedule is inconsistent with the topology or paths.
    InvalidSchedule {
        /// Explanation of the defect.
        reason: String,
    },
    /// A super-frame parameter was zero or inconsistent.
    InvalidSuperframe {
        /// Explanation of the defect.
        reason: String,
    },
    /// The paper's engineering guideline of at most 4 hops was violated.
    TooManyHops {
        /// Observed hop count.
        hops: usize,
        /// The configured maximum.
        max: usize,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownNode { node } => write!(f, "unknown node {node}"),
            NetError::UnknownLink { from, to } => write!(f, "no link {from} -> {to}"),
            NetError::DuplicateNode { node } => write!(f, "node {node} already exists"),
            NetError::SelfLoop { node } => write!(f, "self-loop at {node}"),
            NetError::NoRoute { from, to } => write!(f, "no route from {from} to {to}"),
            NetError::InvalidPath { reason } => write!(f, "invalid path: {reason}"),
            NetError::InvalidSchedule { reason } => write!(f, "invalid schedule: {reason}"),
            NetError::InvalidSuperframe { reason } => write!(f, "invalid super-frame: {reason}"),
            NetError::TooManyHops { hops, max } => {
                write!(
                    f,
                    "path has {hops} hops, exceeding the WirelessHART guideline of {max}"
                )
            }
        }
    }
}

impl std::error::Error for NetError {}

/// Convenient result alias for network operations.
pub type Result<T> = std::result::Result<T, NetError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty() {
        let errors = [
            NetError::UnknownNode {
                node: NodeId::field(3),
            },
            NetError::UnknownLink {
                from: NodeId::field(1),
                to: NodeId::GATEWAY,
            },
            NetError::DuplicateNode {
                node: NodeId::field(1),
            },
            NetError::SelfLoop {
                node: NodeId::field(2),
            },
            NetError::NoRoute {
                from: NodeId::field(9),
                to: NodeId::GATEWAY,
            },
            NetError::InvalidPath {
                reason: "empty".into(),
            },
            NetError::InvalidSchedule {
                reason: "hop order".into(),
            },
            NetError::InvalidSuperframe {
                reason: "zero slots".into(),
            },
            NetError::TooManyHops { hops: 5, max: 4 },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
