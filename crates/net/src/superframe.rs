//! TDMA super-frames and reporting intervals (Section II).
//!
//! The data link layer divides time into strict 10 ms slots. A super-frame
//! consists of an uplink half (`F_up` slots, the communication schedule) and
//! a downlink half (`T_down` slots, the control responses); the paper's
//! networks use symmetric halves. Sensors report once every `Is`
//! super-frames (the *reporting interval*).

use crate::error::{NetError, Result};

/// The WirelessHART slot length in milliseconds.
pub const SLOT_MS: u32 = 10;

/// A super-frame: `F_up` uplink slots followed by `T_down` downlink slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Superframe {
    uplink_slots: u32,
    downlink_slots: u32,
}

impl Superframe {
    /// A super-frame with distinct uplink and downlink sizes.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidSuperframe`] if the uplink half is empty.
    pub fn new(uplink_slots: u32, downlink_slots: u32) -> Result<Self> {
        if uplink_slots == 0 {
            return Err(NetError::InvalidSuperframe {
                reason: "uplink half must contain at least one slot".into(),
            });
        }
        Ok(Superframe {
            uplink_slots,
            downlink_slots,
        })
    }

    /// A symmetric super-frame (`T_down = F_up`), the configuration used in
    /// all the paper's experiments ("symmetric up and downlinks",
    /// `F_up = F_s / 2`).
    ///
    /// # Errors
    ///
    /// See [`Superframe::new`].
    pub fn symmetric(uplink_slots: u32) -> Result<Self> {
        Superframe::new(uplink_slots, uplink_slots)
    }

    /// Number of uplink slots (`F_up`).
    pub fn uplink_slots(self) -> u32 {
        self.uplink_slots
    }

    /// Number of downlink slots (`T_down`).
    pub fn downlink_slots(self) -> u32 {
        self.downlink_slots
    }

    /// Total slots per cycle (`F_s = F_up + T_down`).
    pub fn cycle_slots(self) -> u32 {
        self.uplink_slots + self.downlink_slots
    }

    /// Cycle duration in milliseconds.
    pub fn cycle_ms(self) -> u32 {
        self.cycle_slots() * SLOT_MS
    }

    /// The absolute delay, in milliseconds, of a message that reaches its
    /// destination in reporting cycle `cycle` (1-based) at uplink slot
    /// `slot_number` (1-based) of that cycle.
    ///
    /// This is the delay conversion that reproduces every delay the paper
    /// reports (see DESIGN.md): the message was born at the start of cycle 1
    /// and has lived through `cycle - 1` full super-frames plus
    /// `slot_number` uplink slots.
    ///
    /// # Panics
    ///
    /// Panics if `cycle` or `slot_number` is zero, or `slot_number` exceeds
    /// the uplink half.
    pub fn delay_ms(self, cycle: u32, slot_number: u32) -> u32 {
        assert!(cycle >= 1, "cycles are 1-based");
        assert!(
            (1..=self.uplink_slots).contains(&slot_number),
            "slot_number {slot_number} outside uplink half 1..={}",
            self.uplink_slots
        );
        ((cycle - 1) * self.cycle_slots() + slot_number) * SLOT_MS
    }
}

/// A reporting interval: sensors measure and forward once every `Is`
/// super-frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReportingInterval(u32);

impl ReportingInterval {
    /// The paper's regular-control setting, `Is = 4`.
    pub const REGULAR: ReportingInterval = ReportingInterval(4);
    /// The paper's fast-control setting, `Is = 2` (Section VI-D).
    pub const FAST: ReportingInterval = ReportingInterval(2);

    /// Creates a reporting interval.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidSuperframe`] for `Is = 0`.
    pub fn new(cycles: u32) -> Result<Self> {
        if cycles == 0 {
            return Err(NetError::InvalidSuperframe {
                reason: "a reporting interval spans at least one super-frame".into(),
            });
        }
        Ok(ReportingInterval(cycles))
    }

    /// Number of super-frame cycles (`Is`).
    pub fn cycles(self) -> u32 {
        self.0
    }

    /// Total uplink slots available to a message: `Is * F_up` — also the
    /// default TTL.
    pub fn uplink_slots(self, frame: Superframe) -> u32 {
        self.0 * frame.uplink_slots()
    }

    /// The interval's wall-clock length in milliseconds.
    pub fn duration_ms(self, frame: Superframe) -> u32 {
        self.0 * frame.cycle_ms()
    }
}

impl Default for ReportingInterval {
    fn default() -> Self {
        ReportingInterval::REGULAR
    }
}

impl std::fmt::Display for ReportingInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Is={}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_superframe_shapes() {
        let f = Superframe::symmetric(7).unwrap();
        assert_eq!(f.uplink_slots(), 7);
        assert_eq!(f.downlink_slots(), 7);
        assert_eq!(f.cycle_slots(), 14);
        assert_eq!(f.cycle_ms(), 140);
    }

    #[test]
    fn zero_uplink_rejected() {
        assert!(Superframe::new(0, 5).is_err());
        assert!(Superframe::symmetric(0).is_err());
    }

    #[test]
    fn section_v_delays() {
        // The example path: F_up = 7, symmetric; arrivals in cycles 1..=4 at
        // slot 7 give delays 70, 210, 350, 490 ms (Figs. 7 and 9).
        let f = Superframe::symmetric(7).unwrap();
        assert_eq!(f.delay_ms(1, 7), 70);
        assert_eq!(f.delay_ms(2, 7), 210);
        assert_eq!(f.delay_ms(3, 7), 350);
        assert_eq!(f.delay_ms(4, 7), 490);
    }

    #[test]
    fn section_vi_delays() {
        // Typical network: F_up = 20, symmetric (400 ms cycles). Path 10's
        // last hop sits at slot 19 -> first-cycle delay 190 ms, fourth-cycle
        // delay 1390 ms (Fig. 14's axis reaches 1400 ms).
        let f = Superframe::symmetric(20).unwrap();
        assert_eq!(f.cycle_ms(), 400);
        assert_eq!(f.delay_ms(1, 19), 190);
        assert_eq!(f.delay_ms(4, 19), 1390);
    }

    #[test]
    #[should_panic(expected = "outside uplink half")]
    fn delay_rejects_downlink_slots() {
        let f = Superframe::symmetric(7).unwrap();
        let _ = f.delay_ms(1, 8);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn delay_rejects_cycle_zero() {
        let f = Superframe::symmetric(7).unwrap();
        let _ = f.delay_ms(0, 1);
    }

    #[test]
    fn reporting_interval_basics() {
        let is = ReportingInterval::new(4).unwrap();
        let f = Superframe::symmetric(7).unwrap();
        assert_eq!(is.cycles(), 4);
        assert_eq!(is.uplink_slots(f), 28);
        assert_eq!(is.duration_ms(f), 560);
        assert_eq!(is.to_string(), "Is=4");
        assert!(ReportingInterval::new(0).is_err());
        assert_eq!(ReportingInterval::default(), ReportingInterval::REGULAR);
        assert_eq!(ReportingInterval::FAST.cycles(), 2);
    }
}
