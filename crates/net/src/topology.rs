//! Network connectivity graphs.
//!
//! A [`Topology`] holds the gateway, the field devices and the
//! bidirectional wireless links between them, each carrying the two-state
//! [`LinkModel`] of the physical layer. The paper's Fig. 12 connectivity
//! graph is one instance (see [`crate::typical`]).

use crate::error::{NetError, Result};
use crate::ids::{Hop, NodeId};
use std::collections::BTreeMap;
use whart_channel::LinkModel;

/// An undirected connectivity graph with per-link quality models.
///
/// The gateway is always present. Links are bidirectional ("every node
/// connects to another node or the gateway with a bi-directional wireless
/// link"); both directions share one [`LinkModel`].
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    nodes: Vec<NodeId>,
    links: BTreeMap<(NodeId, NodeId), LinkModel>,
}

impl Default for Topology {
    fn default() -> Self {
        Topology::new()
    }
}

impl Topology {
    /// An empty topology containing only the gateway.
    pub fn new() -> Self {
        Topology {
            nodes: vec![NodeId::Gateway],
            links: BTreeMap::new(),
        }
    }

    /// Adds a field device.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::DuplicateNode`] if the node already exists.
    pub fn add_node(&mut self, node: NodeId) -> Result<()> {
        if self.nodes.contains(&node) {
            return Err(NetError::DuplicateNode { node });
        }
        self.nodes.push(node);
        Ok(())
    }

    /// Connects two existing nodes with a bidirectional link.
    ///
    /// Re-connecting an existing pair replaces its link model (used to
    /// degrade or repair links in failure studies).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownNode`] if either endpoint is missing and
    /// [`NetError::SelfLoop`] if the endpoints coincide.
    pub fn connect(&mut self, a: NodeId, b: NodeId, link: LinkModel) -> Result<()> {
        if a == b {
            return Err(NetError::SelfLoop { node: a });
        }
        for node in [a, b] {
            if !self.contains(node) {
                return Err(NetError::UnknownNode { node });
            }
        }
        self.links.insert(Hop::new(a, b).undirected_key(), link);
        Ok(())
    }

    /// Whether the node exists.
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }

    /// All nodes including the gateway, in insertion order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The field devices (everything but the gateway).
    pub fn field_devices(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().copied().filter(|n| !n.is_gateway())
    }

    /// The link model between two nodes, if they are connected.
    pub fn link(&self, a: NodeId, b: NodeId) -> Option<LinkModel> {
        self.links.get(&Hop::new(a, b).undirected_key()).copied()
    }

    /// The link model for a hop.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownLink`] if the hop's endpoints are not
    /// connected.
    pub fn link_for(&self, hop: Hop) -> Result<LinkModel> {
        self.link(hop.from, hop.to).ok_or(NetError::UnknownLink {
            from: hop.from,
            to: hop.to,
        })
    }

    /// Replaces the link model of an existing link.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownLink`] if the nodes are not connected.
    pub fn set_link(&mut self, a: NodeId, b: NodeId, link: LinkModel) -> Result<()> {
        let key = Hop::new(a, b).undirected_key();
        match self.links.get_mut(&key) {
            Some(slot) => {
                *slot = link;
                Ok(())
            }
            None => Err(NetError::UnknownLink { from: a, to: b }),
        }
    }

    /// Removes a link (e.g. after a permanent failure, Section VI-C).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownLink`] if the nodes are not connected.
    pub fn remove_link(&mut self, a: NodeId, b: NodeId) -> Result<LinkModel> {
        self.links
            .remove(&Hop::new(a, b).undirected_key())
            .ok_or(NetError::UnknownLink { from: a, to: b })
    }

    /// The neighbors of a node in ascending order.
    pub fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .links
            .keys()
            .filter_map(|&(a, b)| {
                if a == node {
                    Some(b)
                } else if b == node {
                    Some(a)
                } else {
                    None
                }
            })
            .collect();
        out.sort();
        out
    }

    /// All undirected links with their models.
    pub fn links(&self) -> impl Iterator<Item = ((NodeId, NodeId), LinkModel)> + '_ {
        self.links.iter().map(|(&k, &v)| (k, v))
    }

    /// Number of nodes including the gateway.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of undirected links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Whether every field device can reach the gateway.
    pub fn is_connected(&self) -> bool {
        let mut visited = vec![NodeId::Gateway];
        let mut frontier = vec![NodeId::Gateway];
        while let Some(node) = frontier.pop() {
            for next in self.neighbors(node) {
                if !visited.contains(&next) {
                    visited.push(next);
                    frontier.push(next);
                }
            }
        }
        visited.len() == self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> LinkModel {
        LinkModel::from_availability(0.83, 0.9).unwrap()
    }

    fn triangle() -> Topology {
        let mut t = Topology::new();
        t.add_node(NodeId::field(1)).unwrap();
        t.add_node(NodeId::field(2)).unwrap();
        t.connect(NodeId::field(1), NodeId::Gateway, link())
            .unwrap();
        t.connect(NodeId::field(2), NodeId::field(1), link())
            .unwrap();
        t
    }

    #[test]
    fn new_topology_has_gateway() {
        let t = Topology::new();
        assert!(t.contains(NodeId::Gateway));
        assert_eq!(t.node_count(), 1);
        assert!(t.is_connected());
    }

    #[test]
    fn duplicate_nodes_rejected() {
        let mut t = Topology::new();
        t.add_node(NodeId::field(1)).unwrap();
        assert_eq!(
            t.add_node(NodeId::field(1)).unwrap_err(),
            NetError::DuplicateNode {
                node: NodeId::field(1)
            }
        );
    }

    #[test]
    fn links_are_bidirectional() {
        let t = triangle();
        assert!(t.link(NodeId::field(1), NodeId::Gateway).is_some());
        assert!(t.link(NodeId::Gateway, NodeId::field(1)).is_some());
        assert_eq!(
            t.link_for(Hop::new(NodeId::field(1), NodeId::Gateway))
                .unwrap(),
            t.link_for(Hop::new(NodeId::Gateway, NodeId::field(1)))
                .unwrap()
        );
    }

    #[test]
    fn connect_validates_endpoints() {
        let mut t = Topology::new();
        t.add_node(NodeId::field(1)).unwrap();
        assert!(matches!(
            t.connect(NodeId::field(1), NodeId::field(9), link()),
            Err(NetError::UnknownNode { .. })
        ));
        assert!(matches!(
            t.connect(NodeId::field(1), NodeId::field(1), link()),
            Err(NetError::SelfLoop { .. })
        ));
    }

    #[test]
    fn neighbors_are_sorted() {
        let t = triangle();
        assert_eq!(
            t.neighbors(NodeId::field(1)),
            vec![NodeId::Gateway, NodeId::field(2)]
        );
        assert_eq!(t.neighbors(NodeId::field(2)), vec![NodeId::field(1)]);
        assert!(t.neighbors(NodeId::field(99)).is_empty());
    }

    #[test]
    fn set_and_remove_link() {
        let mut t = triangle();
        let degraded = LinkModel::from_availability(0.693, 0.9).unwrap();
        t.set_link(NodeId::Gateway, NodeId::field(1), degraded)
            .unwrap();
        assert_eq!(t.link(NodeId::field(1), NodeId::Gateway).unwrap(), degraded);
        t.remove_link(NodeId::field(1), NodeId::field(2)).unwrap();
        assert!(t.link(NodeId::field(1), NodeId::field(2)).is_none());
        assert!(!t.is_connected());
        assert!(t.remove_link(NodeId::field(1), NodeId::field(2)).is_err());
        assert!(t
            .set_link(NodeId::field(1), NodeId::field(2), degraded)
            .is_err());
    }

    #[test]
    fn connectivity_detection() {
        let mut t = triangle();
        assert!(t.is_connected());
        t.add_node(NodeId::field(3)).unwrap();
        assert!(!t.is_connected());
        t.connect(NodeId::field(3), NodeId::field(2), link())
            .unwrap();
        assert!(t.is_connected());
    }

    #[test]
    fn field_devices_excludes_gateway() {
        let t = triangle();
        let devices: Vec<_> = t.field_devices().collect();
        assert_eq!(devices, vec![NodeId::field(1), NodeId::field(2)]);
        assert_eq!(t.link_count(), 2);
    }

    #[test]
    fn reconnect_replaces_model() {
        let mut t = triangle();
        let better = LinkModel::from_availability(0.948, 0.9).unwrap();
        t.connect(NodeId::field(1), NodeId::Gateway, better)
            .unwrap();
        assert_eq!(t.link(NodeId::field(1), NodeId::Gateway).unwrap(), better);
        assert_eq!(t.link_count(), 2);
    }
}
