//! Communication schedules (Section II-C).
//!
//! The network manager centrally computes a schedule `eta` that assigns at
//! most one transmission to each uplink slot. A [`ScheduleEntry`] names the
//! hop that transmits and which path's message it carries (the same physical
//! link may serve several paths in different slots, e.g. link `e3` in the
//! paper's typical network serves paths 3, 7, 8 and 10).

use crate::error::{NetError, Result};
use crate::ids::Hop;
use crate::route::Path;
use crate::topology::Topology;

/// Path priority used by [`Schedule::by_priority`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulePriority {
    /// Short paths transmit first (the paper's `eta_a` style).
    ShortPathsFirst,
    /// Long paths transmit first (the paper's `eta_b` balancing idea).
    LongPathsFirst,
}

/// One scheduled transmission: hop plus the index (into the network's path
/// list) of the message it forwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScheduleEntry {
    /// The transmitting hop.
    pub hop: Hop,
    /// Which path's message this slot serves.
    pub path_index: usize,
}

/// An uplink communication schedule: one optional transmission per slot.
///
/// Slots are 0-based in the API; [`Schedule::slot_number`] converts to the
/// paper's 1-based numbering used in delay formulas.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schedule {
    slots: Vec<Option<ScheduleEntry>>,
}

impl Schedule {
    /// An all-idle schedule of the given length.
    pub fn empty(len: usize) -> Self {
        Schedule {
            slots: vec![None; len],
        }
    }

    /// Builds a schedule by walking `order` over `paths` and assigning each
    /// path's hops to the next free slots, in hop order — the construction
    /// behind both of the paper's schedules: `eta_a` is `order =
    /// [0, 1, ..., 9]` (short paths first), `eta_b` starts with the long
    /// paths.
    ///
    /// The schedule length is exactly the total number of hops.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidSchedule`] if `order` is not a permutation
    /// of the path indices.
    pub fn sequential(paths: &[Path], order: &[usize]) -> Result<Self> {
        if order.len() != paths.len() {
            return Err(NetError::InvalidSchedule {
                reason: format!(
                    "order has {} entries for {} paths",
                    order.len(),
                    paths.len()
                ),
            });
        }
        let mut seen = vec![false; paths.len()];
        for &i in order {
            if i >= paths.len() || seen[i] {
                return Err(NetError::InvalidSchedule {
                    reason: format!("order is not a permutation (index {i})"),
                });
            }
            seen[i] = true;
        }
        let total: usize = paths.iter().map(Path::hop_count).sum();
        let mut schedule = Schedule::empty(total);
        let mut slot = 0;
        for &path_index in order {
            for hop in paths[path_index].hops() {
                schedule.slots[slot] = Some(ScheduleEntry { hop, path_index });
                slot += 1;
            }
        }
        Ok(schedule)
    }

    /// Builds a schedule by hop-count priority: [`SchedulePriority::ShortPathsFirst`]
    /// generalizes the paper's `eta_a`, [`SchedulePriority::LongPathsFirst`]
    /// its `eta_b` balancing idea (granting long paths early slots evens
    /// out the expected delays, Section VI-B). Ties keep path order.
    ///
    /// Note: the paper's exact `eta_b` additionally demotes path 7 within
    /// the 2-hop group; [`crate::typical::TypicalNetwork::schedule_eta_b`]
    /// reproduces that literal order.
    ///
    /// # Errors
    ///
    /// See [`Schedule::sequential`].
    pub fn by_priority(paths: &[Path], priority: SchedulePriority) -> Result<Self> {
        let mut order: Vec<usize> = (0..paths.len()).collect();
        match priority {
            SchedulePriority::ShortPathsFirst => {
                order.sort_by_key(|&i| paths[i].hop_count());
            }
            SchedulePriority::LongPathsFirst => {
                order.sort_by_key(|&i| std::cmp::Reverse(paths[i].hop_count()));
            }
        }
        Schedule::sequential(paths, &order)
    }

    /// Builds a schedule from explicit `(slot, entry)` assignments, leaving
    /// other slots idle — used for hand-written schedules like the paper's
    /// Section V example `(*, *, <n1,n2>, *, *, <n2,n3>, <n3,G>)`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidSchedule`] for out-of-range or doubly
    /// assigned slots.
    pub fn with_entries(len: usize, entries: &[(usize, ScheduleEntry)]) -> Result<Self> {
        let mut schedule = Schedule::empty(len);
        for &(slot, entry) in entries {
            if slot >= len {
                return Err(NetError::InvalidSchedule {
                    reason: format!("slot {slot} out of range for length {len}"),
                });
            }
            if schedule.slots[slot].is_some() {
                return Err(NetError::InvalidSchedule {
                    reason: format!("slot {slot} assigned twice"),
                });
            }
            schedule.slots[slot] = Some(entry);
        }
        Ok(schedule)
    }

    /// Number of slots (`F_up` of the owning super-frame).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Extends the schedule with idle slots up to `len` (no-op if already
    /// that long) — e.g. the paper's typical network packs 19 transmissions
    /// into an `F_up = 20` uplink half, leaving the last slot idle.
    pub fn padded(mut self, len: usize) -> Self {
        if self.slots.len() < len {
            self.slots.resize(len, None);
        }
        self
    }

    /// Whether the schedule has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The entry at a 0-based slot, if any.
    pub fn entry(&self, slot: usize) -> Option<ScheduleEntry> {
        self.slots.get(slot).copied().flatten()
    }

    /// Converts a 0-based slot index to the paper's 1-based slot number.
    pub fn slot_number(slot: usize) -> u32 {
        slot as u32 + 1
    }

    /// Iterates `(slot, entry)` over the scheduled transmissions.
    pub fn transmissions(&self) -> impl Iterator<Item = (usize, ScheduleEntry)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.map(|e| (i, e)))
    }

    /// The scheduled `(slot, hop)` pairs serving one path, in slot order.
    pub fn slots_for_path(&self, path_index: usize) -> Vec<(usize, Hop)> {
        self.transmissions()
            .filter(|(_, e)| e.path_index == path_index)
            .map(|(slot, e)| (slot, e.hop))
            .collect()
    }

    /// The 0-based slot of the path's final hop (towards its destination),
    /// if the path is scheduled.
    pub fn last_slot_for_path(&self, path_index: usize) -> Option<usize> {
        self.slots_for_path(path_index)
            .last()
            .map(|&(slot, _)| slot)
    }

    /// Validates the schedule against a topology and path list:
    ///
    /// * every scheduled hop uses an existing link;
    /// * every path's hops appear exactly once, in path order, in
    ///   increasing slots (a message cannot be forwarded before it arrives).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidSchedule`] or [`NetError::UnknownLink`]
    /// describing the first violation.
    pub fn validate(&self, topology: &Topology, paths: &[Path]) -> Result<()> {
        for (slot, entry) in self.transmissions() {
            topology.link_for(entry.hop)?;
            if entry.path_index >= paths.len() {
                return Err(NetError::InvalidSchedule {
                    reason: format!("slot {slot} serves unknown path {}", entry.path_index),
                });
            }
        }
        for (path_index, path) in paths.iter().enumerate() {
            let scheduled = self.slots_for_path(path_index);
            let expected: Vec<Hop> = path.hops().collect();
            if scheduled.len() != expected.len() {
                return Err(NetError::InvalidSchedule {
                    reason: format!(
                        "path {path_index} has {} hops but {} scheduled slots",
                        expected.len(),
                        scheduled.len()
                    ),
                });
            }
            for ((slot, hop), want) in scheduled.iter().zip(&expected) {
                if hop != want {
                    return Err(NetError::InvalidSchedule {
                        reason: format!(
                            "path {path_index}: slot {slot} transmits {hop}, expected {want}"
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for Schedule {
    /// Renders in the paper's `eta` notation: `(*, <n1,n2>, ...)`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("(")?;
        for (i, slot) in self.slots.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            match slot {
                Some(entry) => write!(f, "{}", entry.hop)?,
                None => f.write_str("*")?,
            }
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;
    use whart_channel::LinkModel;

    fn n(i: u32) -> NodeId {
        NodeId::field(i)
    }

    fn three_hop_paths() -> Vec<Path> {
        vec![Path::new(vec![n(1), n(2), n(3), NodeId::Gateway]).unwrap()]
    }

    /// The paper's Section V schedule: (*, *, <n1,n2>, *, *, <n2,n3>, <n3,G>).
    fn section_v_schedule() -> Schedule {
        let hops: Vec<Hop> = three_hop_paths()[0].hops().collect();
        Schedule::with_entries(
            7,
            &[
                (
                    2,
                    ScheduleEntry {
                        hop: hops[0],
                        path_index: 0,
                    },
                ),
                (
                    5,
                    ScheduleEntry {
                        hop: hops[1],
                        path_index: 0,
                    },
                ),
                (
                    6,
                    ScheduleEntry {
                        hop: hops[2],
                        path_index: 0,
                    },
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn section_v_schedule_shape() {
        let s = section_v_schedule();
        assert_eq!(s.len(), 7);
        assert!(s.entry(0).is_none());
        assert_eq!(s.entry(2).unwrap().hop, Hop::new(n(1), n(2)));
        assert_eq!(s.last_slot_for_path(0), Some(6));
        assert_eq!(Schedule::slot_number(6), 7);
        assert_eq!(s.to_string(), "(*, *, <n1,n2>, *, *, <n2,n3>, <n3,G>)");
    }

    #[test]
    fn sequential_packs_hops_in_order() {
        let paths = vec![
            Path::new(vec![n(1), NodeId::Gateway]).unwrap(),
            Path::new(vec![n(2), n(1), NodeId::Gateway]).unwrap(),
        ];
        let s = Schedule::sequential(&paths, &[0, 1]).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.entry(0).unwrap().path_index, 0);
        assert_eq!(s.entry(1).unwrap().hop, Hop::new(n(2), n(1)));
        assert_eq!(s.entry(2).unwrap().hop, Hop::new(n(1), NodeId::Gateway));
        // Reversed priority.
        let s = Schedule::sequential(&paths, &[1, 0]).unwrap();
        assert_eq!(s.last_slot_for_path(1), Some(1));
        assert_eq!(s.last_slot_for_path(0), Some(2));
    }

    #[test]
    fn sequential_rejects_bad_orders() {
        let paths = three_hop_paths();
        assert!(Schedule::sequential(&paths, &[]).is_err());
        assert!(Schedule::sequential(&paths, &[1]).is_err());
        assert!(Schedule::sequential(&paths, &[0, 0]).is_err());
    }

    #[test]
    fn with_entries_rejects_conflicts() {
        let hops: Vec<Hop> = three_hop_paths()[0].hops().collect();
        let e = ScheduleEntry {
            hop: hops[0],
            path_index: 0,
        };
        assert!(Schedule::with_entries(3, &[(5, e)]).is_err());
        assert!(Schedule::with_entries(3, &[(1, e), (1, e)]).is_err());
    }

    #[test]
    fn validation_against_topology() {
        let mut t = Topology::new();
        for i in 1..=3 {
            t.add_node(n(i)).unwrap();
        }
        let link = LinkModel::from_availability(0.75, 0.9).unwrap();
        t.connect(n(1), n(2), link).unwrap();
        t.connect(n(2), n(3), link).unwrap();
        t.connect(n(3), NodeId::Gateway, link).unwrap();
        let paths = three_hop_paths();
        section_v_schedule().validate(&t, &paths).unwrap();

        // Break the hop order: forward before arrival.
        let hops: Vec<Hop> = paths[0].hops().collect();
        let bad = Schedule::with_entries(
            7,
            &[
                (
                    0,
                    ScheduleEntry {
                        hop: hops[1],
                        path_index: 0,
                    },
                ),
                (
                    1,
                    ScheduleEntry {
                        hop: hops[0],
                        path_index: 0,
                    },
                ),
                (
                    2,
                    ScheduleEntry {
                        hop: hops[2],
                        path_index: 0,
                    },
                ),
            ],
        )
        .unwrap();
        assert!(matches!(
            bad.validate(&t, &paths),
            Err(NetError::InvalidSchedule { .. })
        ));

        // A hop with no physical link.
        let bad = Schedule::with_entries(
            7,
            &[(
                0,
                ScheduleEntry {
                    hop: Hop::new(n(1), NodeId::Gateway),
                    path_index: 0,
                },
            )],
        )
        .unwrap();
        assert!(matches!(
            bad.validate(&t, &paths),
            Err(NetError::UnknownLink { .. })
        ));

        // Missing hops.
        let bad = Schedule::with_entries(
            7,
            &[(
                0,
                ScheduleEntry {
                    hop: hops[0],
                    path_index: 0,
                },
            )],
        )
        .unwrap();
        assert!(matches!(
            bad.validate(&t, &paths),
            Err(NetError::InvalidSchedule { .. })
        ));

        // Unknown path index.
        let bad = Schedule::with_entries(
            7,
            &[(
                0,
                ScheduleEntry {
                    hop: hops[0],
                    path_index: 7,
                },
            )],
        )
        .unwrap();
        assert!(matches!(
            bad.validate(&t, &paths),
            Err(NetError::InvalidSchedule { .. })
        ));
    }

    #[test]
    fn transmissions_iterates_in_slot_order() {
        let s = section_v_schedule();
        let slots: Vec<usize> = s.transmissions().map(|(i, _)| i).collect();
        assert_eq!(slots, vec![2, 5, 6]);
        assert_eq!(s.slots_for_path(0).len(), 3);
        assert!(s.slots_for_path(3).is_empty());
        assert_eq!(s.last_slot_for_path(3), None);
    }

    #[test]
    fn priority_builders_order_by_hops() {
        let paths = vec![
            Path::new(vec![n(2), n(1), NodeId::Gateway]).unwrap(), // 2 hops
            Path::new(vec![n(3), NodeId::Gateway]).unwrap(),       // 1 hop
            Path::new(vec![n(5), n(4), n(3), NodeId::Gateway]).unwrap(), // 3 hops
        ];
        let short = Schedule::by_priority(&paths, SchedulePriority::ShortPathsFirst).unwrap();
        // 1-hop path first, 3-hop path last.
        assert_eq!(short.last_slot_for_path(1), Some(0));
        assert_eq!(short.last_slot_for_path(2), Some(5));
        let long = Schedule::by_priority(&paths, SchedulePriority::LongPathsFirst).unwrap();
        assert_eq!(long.last_slot_for_path(2), Some(2));
        assert_eq!(long.last_slot_for_path(1), Some(5));
        // Both carry every hop exactly once.
        assert_eq!(short.transmissions().count(), 6);
        assert_eq!(long.transmissions().count(), 6);
    }

    #[test]
    fn empty_schedule_display() {
        assert_eq!(Schedule::empty(2).to_string(), "(*, *)");
        assert!(Schedule::empty(0).is_empty());
    }
}
