//! The paper's evaluation scenarios, ready-made.
//!
//! * [`section_v_example`] — the three-hop path of Section V-A with its
//!   `F_up = 7` schedule `(*, *, <n1,n2>, *, *, <n2,n3>, <n3,G>)`;
//! * [`TypicalNetwork`] — the ten-node network of Fig. 12 (30% of nodes one
//!   hop from the gateway, 50% two hops, 20% three hops) with the
//!   schedules `eta_a` (short paths first) and `eta_b` (long paths first);
//! * [`chain_path`] — an n-hop chain for the hop-count studies.

use crate::error::Result;
use crate::ids::NodeId;
use crate::route::Path;
use crate::schedule::Schedule;
use crate::superframe::Superframe;
use crate::topology::Topology;
use whart_channel::LinkModel;

/// The Section V-A example: a three-hop path `n1 -> n2 -> n3 -> G` in a
/// symmetric `F_up = 7` super-frame with communication schedule
/// `(*, *, <n1,n2>, *, *, <n2,n3>, <n3,G>)`.
///
/// All links share `link`.
///
/// # Errors
///
/// Never fails for a valid [`LinkModel`]; the `Result` covers internal
/// construction.
pub fn section_v_example(link: LinkModel) -> Result<(Topology, Path, Schedule, Superframe)> {
    let mut topology = Topology::new();
    for i in 1..=3 {
        topology.add_node(NodeId::field(i))?;
    }
    topology.connect(NodeId::field(1), NodeId::field(2), link)?;
    topology.connect(NodeId::field(2), NodeId::field(3), link)?;
    topology.connect(NodeId::field(3), NodeId::Gateway, link)?;
    let path = Path::through(
        &topology,
        vec![
            NodeId::field(1),
            NodeId::field(2),
            NodeId::field(3),
            NodeId::Gateway,
        ],
    )?;
    let hops: Vec<_> = path.hops().collect();
    let schedule = Schedule::with_entries(
        7,
        &[
            (
                2,
                crate::schedule::ScheduleEntry {
                    hop: hops[0],
                    path_index: 0,
                },
            ),
            (
                5,
                crate::schedule::ScheduleEntry {
                    hop: hops[1],
                    path_index: 0,
                },
            ),
            (
                6,
                crate::schedule::ScheduleEntry {
                    hop: hops[2],
                    path_index: 0,
                },
            ),
        ],
    )?;
    let superframe = Superframe::symmetric(7)?;
    Ok((topology, path, schedule, superframe))
}

/// An n-hop chain `n_n -> ... -> n_1 -> G` with homogeneous links and the
/// straight-through schedule (hop k in slot k), used for the paper's
/// hop-count study (Fig. 10).
///
/// # Errors
///
/// Returns an error only for `hops = 0` (an invalid path).
pub fn chain_path(hops: u32, link: LinkModel) -> Result<(Topology, Path, Schedule)> {
    let mut topology = Topology::new();
    for i in 1..=hops {
        topology.add_node(NodeId::field(i))?;
    }
    topology.connect(NodeId::field(1), NodeId::Gateway, link)?;
    for i in 2..=hops {
        topology.connect(NodeId::field(i), NodeId::field(i - 1), link)?;
    }
    let mut nodes: Vec<NodeId> = (1..=hops).rev().map(NodeId::field).collect();
    nodes.push(NodeId::Gateway);
    let path = Path::through(&topology, nodes)?;
    let schedule = Schedule::sequential(std::slice::from_ref(&path), &[0])?;
    Ok((topology, path, schedule))
}

/// The typical WirelessHART network of Fig. 12: ten field devices with
/// three 1-hop, five 2-hop and two 3-hop uplink paths.
#[derive(Debug, Clone, PartialEq)]
pub struct TypicalNetwork {
    /// The Fig. 12 connectivity graph.
    pub topology: Topology,
    /// Uplink paths 1..=10, indexed 0..=9 as in the paper's Fig. 13.
    pub paths: Vec<Path>,
    /// The symmetric `F_up = 20` super-frame (400 ms cycles).
    pub superframe: Superframe,
}

impl TypicalNetwork {
    /// Builds the network with every link sharing `link`.
    pub fn new(link: LinkModel) -> Self {
        Self::build(link).expect("the Fig. 12 network is statically valid")
    }

    fn build(link: LinkModel) -> Result<Self> {
        let mut topology = Topology::new();
        for i in 1..=10 {
            topology.add_node(NodeId::field(i))?;
        }
        let g = NodeId::Gateway;
        let n = NodeId::field;
        // Fig. 12: n1..n3 reach the gateway directly; n4, n5 relay via n1;
        // n6 via n2; n7, n8 via n3; n9 via n6; n10 via n7.
        let edges: [(NodeId, NodeId); 10] = [
            (n(1), g),
            (n(2), g),
            (n(3), g),
            (n(4), n(1)),
            (n(5), n(1)),
            (n(6), n(2)),
            (n(7), n(3)),
            (n(8), n(3)),
            (n(9), n(6)),
            (n(10), n(7)),
        ];
        for (a, b) in edges {
            topology.connect(a, b, link)?;
        }
        let routes: [&[u32]; 10] = [
            &[1],
            &[2],
            &[3],
            &[4, 1],
            &[5, 1],
            &[6, 2],
            &[7, 3],
            &[8, 3],
            &[9, 6, 2],
            &[10, 7, 3],
        ];
        let mut paths = Vec::with_capacity(10);
        for route in routes {
            let mut nodes: Vec<NodeId> = route.iter().map(|&i| n(i)).collect();
            nodes.push(g);
            paths.push(Path::through(&topology, nodes)?);
        }
        Ok(TypicalNetwork {
            topology,
            paths,
            superframe: Superframe::symmetric(20)?,
        })
    }

    /// Schedule `eta_a` (Section VI-A): paths in numeric order, so short
    /// paths transmit first. 19 transmissions padded to the 20-slot uplink
    /// half.
    pub fn schedule_eta_a(&self) -> Schedule {
        Schedule::sequential(&self.paths, &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9])
            .expect("static order is a permutation")
            .padded(self.superframe.uplink_slots() as usize)
    }

    /// Schedule `eta_b` (Section VI-B): long paths first. The order is the
    /// one whose expected delays the paper reports in Fig. 16 — 3-hop paths
    /// 9 and 10, then the 2-hop paths with path 7 granted the lowest
    /// priority (it becomes the new bottleneck at slot 16), then the 1-hop
    /// paths.
    pub fn schedule_eta_b(&self) -> Schedule {
        Schedule::sequential(&self.paths, &[8, 9, 3, 4, 5, 7, 6, 0, 1, 2])
            .expect("static order is a permutation")
            .padded(self.superframe.uplink_slots() as usize)
    }

    /// Replaces the link between `a` and `b` (e.g. to degrade `e3 =
    /// (n3, G)` as in the Table III failure study).
    ///
    /// # Errors
    ///
    /// Returns [`crate::NetError::UnknownLink`] if the nodes are not
    /// connected.
    pub fn set_link(&mut self, a: NodeId, b: NodeId, link: LinkModel) -> Result<()> {
        self.topology.set_link(a, b, link)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> LinkModel {
        LinkModel::from_availability(0.83, 0.9).unwrap()
    }

    #[test]
    fn section_v_example_shape() {
        let (topology, path, schedule, superframe) = section_v_example(link()).unwrap();
        assert_eq!(path.hop_count(), 3);
        assert_eq!(schedule.len(), 7);
        assert_eq!(superframe.uplink_slots(), 7);
        schedule
            .validate(&topology, std::slice::from_ref(&path))
            .unwrap();
        assert_eq!(
            schedule.to_string(),
            "(*, *, <n1,n2>, *, *, <n2,n3>, <n3,G>)"
        );
    }

    #[test]
    fn typical_network_hop_distribution() {
        let net = TypicalNetwork::new(link());
        assert_eq!(net.topology.node_count(), 11);
        assert_eq!(net.topology.link_count(), 10);
        assert!(net.topology.is_connected());
        let hops: Vec<usize> = net.paths.iter().map(Path::hop_count).collect();
        assert_eq!(hops, vec![1, 1, 1, 2, 2, 2, 2, 2, 3, 3]);
        // 30% one hop, 50% two hops, 20% three hops — the HCF field ratio.
        assert_eq!(hops.iter().filter(|&&h| h == 1).count(), 3);
        assert_eq!(hops.iter().filter(|&&h| h == 2).count(), 5);
        assert_eq!(hops.iter().filter(|&&h| h == 3).count(), 2);
        // F_up must hold all 19 transmissions.
        let total: usize = hops.iter().sum();
        assert_eq!(total, 19);
    }

    #[test]
    fn eta_a_matches_paper_listing() {
        let net = TypicalNetwork::new(link());
        let s = net.schedule_eta_a();
        assert_eq!(s.len(), 20);
        s.validate(&net.topology, &net.paths).unwrap();
        let rendered = s.to_string();
        // The first slots and the path-10 tail as printed in Section VI-A.
        assert!(
            rendered.starts_with("(<n1,G>, <n2,G>, <n3,G>, <n4,n1>, <n1,G>"),
            "{rendered}"
        );
        assert!(
            rendered.contains("<n10,n7>, <n7,n3>, <n3,G>, *)"),
            "{rendered}"
        );
        // Last-hop slot numbers drive the delay measures: path 1 at slot 1,
        // path 10 at slot 19 (1-based).
        assert_eq!(s.last_slot_for_path(0), Some(0));
        assert_eq!(s.last_slot_for_path(9), Some(18));
    }

    #[test]
    fn eta_b_priorities() {
        let net = TypicalNetwork::new(link());
        let s = net.schedule_eta_b();
        assert_eq!(s.len(), 20);
        s.validate(&net.topology, &net.paths).unwrap();
        // Path 9 (index 8) finishes at slot 3, path 10 (index 9) at slot 6,
        // path 7 (index 6) is the last 2-hop path at slot 16 (1-based).
        assert_eq!(s.last_slot_for_path(8), Some(2));
        assert_eq!(s.last_slot_for_path(9), Some(5));
        assert_eq!(s.last_slot_for_path(6), Some(15));
        // 1-hop paths close the schedule.
        assert_eq!(s.last_slot_for_path(0), Some(16));
        assert_eq!(s.last_slot_for_path(2), Some(18));
    }

    #[test]
    fn chain_path_shapes() {
        for hops in 1..=4 {
            let (topology, path, schedule) = chain_path(hops, link()).unwrap();
            assert_eq!(path.hop_count(), hops as usize);
            assert_eq!(schedule.len(), hops as usize);
            schedule
                .validate(&topology, std::slice::from_ref(&path))
                .unwrap();
        }
        assert!(chain_path(0, link()).is_err());
    }

    #[test]
    fn set_link_degrades_e3() {
        let mut net = TypicalNetwork::new(link());
        let degraded = LinkModel::from_availability(0.693, 0.9).unwrap();
        net.set_link(NodeId::field(3), NodeId::Gateway, degraded)
            .unwrap();
        assert_eq!(
            net.topology
                .link(NodeId::field(3), NodeId::Gateway)
                .unwrap(),
            degraded
        );
        assert!(net
            .set_link(NodeId::field(1), NodeId::field(2), degraded)
            .is_err());
    }
}
