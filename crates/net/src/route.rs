//! Routing: paths, shortest-path extraction and path composition.
//!
//! WirelessHART networks use upstream graph routing computed by the network
//! manager; for the model, what matters is the resulting uplink *path* of
//! each field device. Paths can also be composed (Section V-D): a peer path
//! ending where an existing path starts forms a longer route to the gateway.

use crate::error::{NetError, Result};
use crate::ids::{Hop, NodeId};
use crate::topology::Topology;
use std::collections::{BTreeMap, VecDeque};

/// The official WirelessHART guideline: a node should be at most 4 hops
/// from the gateway (Section V-C).
pub const MAX_HOPS_GUIDELINE: usize = 4;

/// A simple path through the network, from a source node to a destination
/// (usually the gateway). Holds at least two nodes and never repeats one.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Path {
    nodes: Vec<NodeId>,
}

impl Path {
    /// Creates a path from an ordered node list (source first).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidPath`] if fewer than two nodes are given
    /// or a node repeats.
    pub fn new(nodes: Vec<NodeId>) -> Result<Self> {
        if nodes.len() < 2 {
            return Err(NetError::InvalidPath {
                reason: "a path needs at least two nodes".into(),
            });
        }
        for (i, a) in nodes.iter().enumerate() {
            if nodes[i + 1..].contains(a) {
                return Err(NetError::InvalidPath {
                    reason: format!("node {a} repeats"),
                });
            }
        }
        Ok(Path { nodes })
    }

    /// Creates a path and checks every consecutive pair is linked in the
    /// topology (the paper's "confirmation of path viability" for source
    /// routing).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidPath`] for a malformed node list and
    /// [`NetError::UnknownLink`] for a missing link.
    pub fn through(topology: &Topology, nodes: Vec<NodeId>) -> Result<Self> {
        let path = Path::new(nodes)?;
        for hop in path.hops() {
            topology.link_for(hop)?;
        }
        Ok(path)
    }

    /// The source node.
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// The destination node.
    pub fn destination(&self) -> NodeId {
        *self.nodes.last().expect("paths have >= 2 nodes")
    }

    /// The ordered nodes.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The hops in transmission order.
    pub fn hops(&self) -> impl Iterator<Item = Hop> + '_ {
        self.nodes.windows(2).map(|w| Hop::new(w[0], w[1]))
    }

    /// Number of hops (`nodes - 1`).
    pub fn hop_count(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Whether the path ends at the gateway.
    pub fn is_uplink(&self) -> bool {
        self.destination().is_gateway()
    }

    /// Checks the WirelessHART hop-count guideline.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::TooManyHops`] when the hop count exceeds `max`.
    pub fn check_hop_guideline(&self, max: usize) -> Result<()> {
        if self.hop_count() > max {
            return Err(NetError::TooManyHops {
                hops: self.hop_count(),
                max,
            });
        }
        Ok(())
    }

    /// Composes a peer path with a continuation path sharing its endpoint
    /// (Section V-D, Fig. 11): `self` must end where `continuation` starts.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidPath`] if the endpoints do not meet or the
    /// combined path would repeat a node.
    pub fn compose(&self, continuation: &Path) -> Result<Path> {
        if self.destination() != continuation.source() {
            return Err(NetError::InvalidPath {
                reason: format!(
                    "peer path ends at {} but continuation starts at {}",
                    self.destination(),
                    continuation.source()
                ),
            });
        }
        let mut nodes = self.nodes.clone();
        nodes.extend_from_slice(&continuation.nodes()[1..]);
        Path::new(nodes)
    }
}

impl std::fmt::Display for Path {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                f.write_str(" -> ")?;
            }
            write!(f, "{n}")?;
        }
        Ok(())
    }
}

/// Finds a shortest path (fewest hops) from `from` to `to` by breadth-first
/// search; ties are broken towards smaller node ids, which makes routing
/// deterministic.
///
/// # Errors
///
/// Returns [`NetError::UnknownNode`] for missing endpoints and
/// [`NetError::NoRoute`] if the nodes are disconnected.
pub fn shortest_path(topology: &Topology, from: NodeId, to: NodeId) -> Result<Path> {
    for node in [from, to] {
        if !topology.contains(node) {
            return Err(NetError::UnknownNode { node });
        }
    }
    if from == to {
        return Err(NetError::InvalidPath {
            reason: "source equals destination".into(),
        });
    }
    let mut parent: BTreeMap<NodeId, NodeId> = BTreeMap::new();
    let mut queue = VecDeque::from([from]);
    parent.insert(from, from);
    while let Some(node) = queue.pop_front() {
        if node == to {
            break;
        }
        for next in topology.neighbors(node) {
            parent.entry(next).or_insert_with(|| {
                queue.push_back(next);
                node
            });
        }
    }
    if !parent.contains_key(&to) {
        return Err(NetError::NoRoute { from, to });
    }
    let mut nodes = vec![to];
    let mut cursor = to;
    while cursor != from {
        cursor = parent[&cursor];
        nodes.push(cursor);
    }
    nodes.reverse();
    Path::new(nodes)
}

/// The uplink path of every field device, in the order the devices were
/// added (the network manager's routing table).
///
/// # Errors
///
/// Returns [`NetError::NoRoute`] for any disconnected device.
pub fn uplink_paths(topology: &Topology) -> Result<Vec<Path>> {
    topology
        .field_devices()
        .map(|device| shortest_path(topology, device, NodeId::Gateway))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use whart_channel::LinkModel;

    fn link() -> LinkModel {
        LinkModel::from_availability(0.83, 0.9).unwrap()
    }

    /// n2 - n1 - G plus a direct (longer-numbered) n3 - G.
    fn chain() -> Topology {
        let mut t = Topology::new();
        for n in 1..=3 {
            t.add_node(NodeId::field(n)).unwrap();
        }
        t.connect(NodeId::field(1), NodeId::Gateway, link())
            .unwrap();
        t.connect(NodeId::field(2), NodeId::field(1), link())
            .unwrap();
        t.connect(NodeId::field(3), NodeId::Gateway, link())
            .unwrap();
        t
    }

    #[test]
    fn path_construction_and_accessors() {
        let p = Path::new(vec![NodeId::field(2), NodeId::field(1), NodeId::Gateway]).unwrap();
        assert_eq!(p.source(), NodeId::field(2));
        assert_eq!(p.destination(), NodeId::Gateway);
        assert_eq!(p.hop_count(), 2);
        assert!(p.is_uplink());
        let hops: Vec<_> = p.hops().collect();
        assert_eq!(hops[0], Hop::new(NodeId::field(2), NodeId::field(1)));
        assert_eq!(hops[1], Hop::new(NodeId::field(1), NodeId::Gateway));
        assert_eq!(p.to_string(), "n2 -> n1 -> G");
    }

    #[test]
    fn path_rejects_degenerate_inputs() {
        assert!(Path::new(vec![]).is_err());
        assert!(Path::new(vec![NodeId::field(1)]).is_err());
        assert!(Path::new(vec![NodeId::field(1), NodeId::field(2), NodeId::field(1)]).is_err());
    }

    #[test]
    fn through_checks_links() {
        let t = chain();
        assert!(Path::through(
            &t,
            vec![NodeId::field(2), NodeId::field(1), NodeId::Gateway]
        )
        .is_ok());
        assert!(matches!(
            Path::through(&t, vec![NodeId::field(2), NodeId::Gateway]),
            Err(NetError::UnknownLink { .. })
        ));
    }

    #[test]
    fn bfs_finds_shortest_route() {
        let t = chain();
        let p = shortest_path(&t, NodeId::field(2), NodeId::Gateway).unwrap();
        assert_eq!(
            p.nodes(),
            &[NodeId::field(2), NodeId::field(1), NodeId::Gateway]
        );
        let direct = shortest_path(&t, NodeId::field(3), NodeId::Gateway).unwrap();
        assert_eq!(direct.hop_count(), 1);
    }

    #[test]
    fn bfs_detects_missing_routes() {
        let mut t = chain();
        t.add_node(NodeId::field(9)).unwrap();
        assert_eq!(
            shortest_path(&t, NodeId::field(9), NodeId::Gateway).unwrap_err(),
            NetError::NoRoute {
                from: NodeId::field(9),
                to: NodeId::Gateway
            }
        );
        assert!(shortest_path(&t, NodeId::field(77), NodeId::Gateway).is_err());
        assert!(shortest_path(&t, NodeId::Gateway, NodeId::Gateway).is_err());
    }

    #[test]
    fn uplink_paths_cover_all_devices() {
        let t = chain();
        let paths = uplink_paths(&t).unwrap();
        assert_eq!(paths.len(), 3);
        assert!(paths.iter().all(Path::is_uplink));
        assert_eq!(paths[1].hop_count(), 2);
    }

    #[test]
    fn hop_guideline() {
        let p = Path::new(vec![
            NodeId::field(5),
            NodeId::field(4),
            NodeId::field(3),
            NodeId::field(2),
            NodeId::field(1),
            NodeId::Gateway,
        ])
        .unwrap();
        assert_eq!(p.hop_count(), 5);
        assert_eq!(
            p.check_hop_guideline(MAX_HOPS_GUIDELINE).unwrap_err(),
            NetError::TooManyHops { hops: 5, max: 4 }
        );
        assert!(p.check_hop_guideline(5).is_ok());
    }

    #[test]
    fn composition_joins_at_shared_node() {
        // Fig. 11: peer path n5 -> n3 composed with existing n3 -> G.
        let peer = Path::new(vec![NodeId::field(5), NodeId::field(3)]).unwrap();
        let existing = Path::new(vec![NodeId::field(3), NodeId::Gateway]).unwrap();
        let composed = peer.compose(&existing).unwrap();
        assert_eq!(
            composed.nodes(),
            &[NodeId::field(5), NodeId::field(3), NodeId::Gateway]
        );
    }

    #[test]
    fn composition_rejects_mismatched_ends() {
        let peer = Path::new(vec![NodeId::field(5), NodeId::field(3)]).unwrap();
        let existing = Path::new(vec![NodeId::field(4), NodeId::Gateway]).unwrap();
        assert!(peer.compose(&existing).is_err());
    }

    #[test]
    fn composition_rejects_cycles() {
        let peer = Path::new(vec![NodeId::field(1), NodeId::field(3)]).unwrap();
        let existing =
            Path::new(vec![NodeId::field(3), NodeId::field(1), NodeId::Gateway]).unwrap();
        assert!(peer.compose(&existing).is_err());
    }
}
