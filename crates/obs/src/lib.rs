//! whart-obs: the workspace's metrics and timing facade.
//!
//! Production fleets need to see where solve time goes — cache hit
//! rates, per-backend solve latencies, compile vs. solve splits — but
//! the hot paths must not pay for that visibility when nobody is
//! looking. This crate provides exactly that trade:
//!
//! * [`Metrics`] — a cloneable handle to a named-instrument registry.
//!   [`Metrics::disabled`] (the default) carries no registry at all:
//!   every instrument resolved through it is a no-op whose record path
//!   is a single `Option` branch, no locks, no clock reads, no
//!   allocation.
//! * [`Counter`] / [`Gauge`] — atomic monotone counts and last/max
//!   values.
//! * [`Histogram`] — fixed log2-bucket latency/size histograms with an
//!   explicit overflow bucket, exact `count`/`sum`/`min`/`max`.
//! * [`SpanTimer`] — a scoped guard recording elapsed nanoseconds into
//!   a histogram when dropped. On a disabled handle the clock is never
//!   read.
//! * [`MetricsSnapshot`] — a point-in-time copy of every instrument,
//!   serializable to and from JSON (machine-readable CLI/CI artifacts).
//! * [`RollingCounter`] / [`RollingHistogram`] — sliding-window
//!   instruments (a ring of K sub-windows over an explicit clock) for
//!   "last 30 seconds" views next to the cumulative ones.
//!
//! Instrument handles resolve their storage once — hot loops should
//! resolve outside the loop and reuse the handle; each record is then
//! lock-free.
//!
//! ```
//! use whart_obs::Metrics;
//!
//! let metrics = Metrics::new();
//! metrics.counter("engine.path_cache.hits").add(3);
//! {
//!     let _span = metrics.timer("solver.fast.solve_ns");
//!     // ... timed work ...
//! }
//! let snapshot = metrics.snapshot();
//! assert_eq!(snapshot.counter("engine.path_cache.hits"), Some(3));
//! assert_eq!(snapshot.histogram("solver.fast.solve_ns").unwrap().count, 1);
//!
//! // Disabled: same call sites, no effect, no cost beyond one branch.
//! let off = Metrics::disabled();
//! off.counter("engine.path_cache.hits").add(3);
//! assert!(off.snapshot().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
pub mod prometheus;
mod snapshot;
pub mod window;

pub use histogram::{bucket_upper_bound, HistogramSnapshot, BUCKETS};
pub use snapshot::MetricsSnapshot;
pub use window::{RollingCounter, RollingHistogram, DEFAULT_SUB_WINDOWS};

use histogram::HistogramCore;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The named-instrument registry behind an enabled [`Metrics`] handle.
#[derive(Default)]
struct Registry {
    counters: Mutex<HashMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<HashMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<HashMap<String, Arc<HistogramCore>>>,
}

/// A cloneable handle to a metrics registry, or a no-op stand-in.
///
/// Cloning shares the registry: instruments resolved through any clone
/// land in the same snapshot. The default handle is disabled.
#[derive(Clone, Default)]
pub struct Metrics {
    registry: Option<Arc<Registry>>,
}

impl Metrics {
    /// A fresh, enabled registry.
    pub fn new() -> Metrics {
        Metrics {
            registry: Some(Arc::new(Registry::default())),
        }
    }

    /// The no-op handle: every instrument resolved through it records
    /// nothing and costs one branch per operation.
    pub fn disabled() -> Metrics {
        Metrics { registry: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.registry.is_some()
    }

    /// Resolves (creating on first use) the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        Counter {
            cell: self.registry.as_ref().map(|r| {
                let mut counters = r.counters.lock().expect("metrics lock");
                Arc::clone(counters.entry(name.to_owned()).or_default())
            }),
        }
    }

    /// Resolves (creating on first use) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge {
            cell: self.registry.as_ref().map(|r| {
                let mut gauges = r.gauges.lock().expect("metrics lock");
                Arc::clone(gauges.entry(name.to_owned()).or_default())
            }),
        }
    }

    /// Resolves (creating on first use) the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram {
            core: self.registry.as_ref().map(|r| {
                let mut histograms = r.histograms.lock().expect("metrics lock");
                Arc::clone(histograms.entry(name.to_owned()).or_default())
            }),
        }
    }

    /// Starts a scoped span recording elapsed nanoseconds into the
    /// histogram named `name` when the returned guard drops.
    pub fn timer(&self, name: &str) -> SpanTimer {
        self.histogram(name).start()
    }

    /// A point-in-time copy of every instrument. Empty for disabled
    /// handles.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(registry) = &self.registry else {
            return MetricsSnapshot::default();
        };
        let counters = registry
            .counters
            .lock()
            .expect("metrics lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = registry
            .gauges
            .lock()
            .expect("metrics lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let histograms = registry
            .histograms
            .lock()
            .expect("metrics lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Metrics")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// A monotone event counter.
#[derive(Clone)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// Adds `n` events.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one event.
    pub fn increment(&self) {
        self.add(1);
    }
}

/// A last-written / running-max value.
#[derive(Clone)]
pub struct Gauge {
    cell: Option<Arc<AtomicU64>>,
}

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, value: u64) {
        if let Some(cell) = &self.cell {
            cell.store(value, Ordering::Relaxed);
        }
    }

    /// Raises the value to `value` if larger.
    pub fn record_max(&self, value: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_max(value, Ordering::Relaxed);
        }
    }
}

/// A fixed log2-bucket histogram of non-negative values (latencies in
/// nanoseconds, sizes, counts).
#[derive(Clone)]
pub struct Histogram {
    core: Option<Arc<HistogramCore>>,
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, value: u64) {
        if let Some(core) = &self.core {
            core.record(value);
        }
    }

    /// Starts a span whose elapsed nanoseconds are recorded here when
    /// the guard drops. On a disabled histogram the clock is not read.
    pub fn start(&self) -> SpanTimer {
        SpanTimer {
            histogram: self.clone(),
            start: self.core.as_ref().map(|_| Instant::now()),
        }
    }
}

/// A scoped timer; records elapsed nanoseconds into its histogram on
/// drop (or explicitly via [`SpanTimer::stop`]).
pub struct SpanTimer {
    histogram: Histogram,
    start: Option<Instant>,
}

impl SpanTimer {
    /// Stops the span now, recording the elapsed nanoseconds.
    pub fn stop(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if let Some(start) = self.start.take() {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.histogram.record(nanos);
        }
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_clones() {
        let metrics = Metrics::new();
        let a = metrics.counter("events");
        let b = metrics.clone().counter("events");
        a.add(2);
        b.increment();
        assert_eq!(metrics.snapshot().counter("events"), Some(3));
    }

    #[test]
    fn gauges_set_and_max() {
        let metrics = Metrics::new();
        let g = metrics.gauge("depth");
        g.set(5);
        g.record_max(3);
        assert_eq!(metrics.snapshot().gauge("depth"), Some(5));
        g.record_max(9);
        assert_eq!(metrics.snapshot().gauge("depth"), Some(9));
    }

    #[test]
    fn timers_record_into_histograms() {
        let metrics = Metrics::new();
        {
            let _span = metrics.timer("work_ns");
        }
        metrics.timer("work_ns").stop();
        let snapshot = metrics.snapshot();
        let h = snapshot.histogram("work_ns").unwrap();
        assert_eq!(h.count, 2);
        assert!(h.sum >= h.min);
    }

    #[test]
    fn disabled_handles_record_nothing_and_read_no_clock() {
        let metrics = Metrics::disabled();
        assert!(!metrics.is_enabled());
        metrics.counter("c").add(7);
        metrics.gauge("g").set(7);
        metrics.histogram("h").record(7);
        let span = metrics.timer("t");
        assert!(span.start.is_none(), "disabled spans never touch the clock");
        drop(span);
        assert!(metrics.snapshot().is_empty());
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Metrics::default().is_enabled());
    }
}
