//! Sliding-window instruments: a ring of K sub-windows over an
//! explicit clock.
//!
//! The cumulative instruments in this crate answer "what happened since
//! the process started"; a live service also needs "what happened in
//! the last 30 seconds". [`RollingCounter`] and [`RollingHistogram`]
//! provide that as a fixed ring of `K` sub-window slots, each covering
//! `window / K` of time. Records land in the slot the supplied
//! timestamp falls into (lazily resetting a slot whose previous tenant
//! has expired), and reads merge every slot still inside the window —
//! so a read sees between `(K-1)/K` and the full window of history, and
//! old traffic ages out in `window / K` granules without any background
//! thread.
//!
//! Both types take the clock as an argument (`now_ns`, nanoseconds on
//! any monotonic scale the caller chooses) rather than reading it,
//! which keeps window advance and expiry deterministic under test and
//! lets one clock read serve several instruments per request.

use crate::histogram::HistogramSnapshot;
use std::sync::Mutex;
use std::time::Duration;

/// Default number of sub-windows (`K`): a 30 s window advances in 3 s
/// granules.
pub const DEFAULT_SUB_WINDOWS: usize = 10;

/// One ring slot: the sub-window index it currently holds data for
/// (`now_ns / slot_ns`), plus the accumulated payload.
#[derive(Debug, Clone)]
struct Slot<T> {
    epoch: u64,
    data: T,
}

/// The shared ring mechanics: epoch bookkeeping for record and read.
struct Ring<T> {
    slot_ns: u64,
    slots: Mutex<Vec<Slot<T>>>,
}

impl<T: Default + Clone> Ring<T> {
    fn new(window: Duration, sub_windows: usize) -> Ring<T> {
        assert!(sub_windows >= 1, "a rolling window needs at least 1 slot");
        let window_ns = u64::try_from(window.as_nanos()).unwrap_or(u64::MAX);
        let slot_ns = (window_ns / sub_windows as u64).max(1);
        Ring {
            slot_ns,
            slots: Mutex::new(vec![
                Slot {
                    // No epoch a real timestamp can produce: the slot
                    // reads as expired until first written.
                    epoch: u64::MAX,
                    data: T::default(),
                };
                sub_windows
            ]),
        }
    }

    fn record(&self, now_ns: u64, update: impl FnOnce(&mut T)) {
        let epoch = now_ns / self.slot_ns;
        let mut slots = self.slots.lock().expect("window lock");
        let k = slots.len() as u64;
        let slot = &mut slots[(epoch % k) as usize];
        if slot.epoch != epoch {
            // The previous tenant of this ring position is at least a
            // full window old: reset lazily instead of sweeping.
            slot.data = T::default();
            slot.epoch = epoch;
        }
        update(&mut slot.data);
    }

    fn fold<R>(&self, now_ns: u64, mut init: R, mut fold: impl FnMut(&mut R, &T)) -> R {
        let epoch = now_ns / self.slot_ns;
        let slots = self.slots.lock().expect("window lock");
        let k = slots.len() as u64;
        for slot in slots.iter() {
            // Live slots cover (epoch - K, epoch]; anything older — or
            // the u64::MAX never-written marker — is expired.
            if slot.epoch <= epoch && slot.epoch + k > epoch {
                fold(&mut init, &slot.data);
            }
        }
        init
    }

    fn window(&self) -> Duration {
        let slots = self.slots.lock().expect("window lock").len() as u64;
        Duration::from_nanos(self.slot_ns.saturating_mul(slots))
    }
}

/// A sliding-window event counter: [`RollingCounter::add_at`] lands in
/// the sub-window the timestamp falls into, and
/// [`RollingCounter::value_at`] sums the sub-windows still inside the
/// window at that time.
pub struct RollingCounter {
    ring: Ring<u64>,
}

impl RollingCounter {
    /// A counter over `window`, advancing in `window / sub_windows`
    /// granules.
    pub fn new(window: Duration, sub_windows: usize) -> RollingCounter {
        RollingCounter {
            ring: Ring::new(window, sub_windows),
        }
    }

    /// Adds `n` events at time `now_ns`.
    pub fn add_at(&self, now_ns: u64, n: u64) {
        self.ring
            .record(now_ns, |total| *total = total.saturating_add(n));
    }

    /// Events recorded within the window ending at `now_ns`.
    pub fn value_at(&self, now_ns: u64) -> u64 {
        self.ring
            .fold(now_ns, 0u64, |sum, n| *sum = sum.saturating_add(*n))
    }

    /// The configured window span.
    pub fn window(&self) -> Duration {
        self.ring.window()
    }
}

/// A sliding-window log2 histogram: each sub-window slot is a plain
/// [`HistogramSnapshot`], and [`RollingHistogram::snapshot_at`] merges
/// the live slots — so windowed quantiles, counts and means come from
/// exactly the same snapshot machinery as the cumulative instruments,
/// and a windowed snapshot merges cleanly into a cumulative one.
pub struct RollingHistogram {
    ring: Ring<HistogramSnapshot>,
}

impl RollingHistogram {
    /// A histogram over `window`, advancing in `window / sub_windows`
    /// granules.
    pub fn new(window: Duration, sub_windows: usize) -> RollingHistogram {
        RollingHistogram {
            ring: Ring::new(window, sub_windows),
        }
    }

    /// Records one observation at time `now_ns`.
    pub fn record_at(&self, now_ns: u64, value: u64) {
        self.ring.record(now_ns, |slot| slot.observe(value));
    }

    /// The merged snapshot of every sub-window still inside the window
    /// ending at `now_ns`. Empty (count 0) when all slots have expired.
    pub fn snapshot_at(&self, now_ns: u64) -> HistogramSnapshot {
        self.ring
            .fold(now_ns, HistogramSnapshot::default(), |acc, slot| {
                acc.merge(slot)
            })
    }

    /// The configured window span.
    pub fn window(&self) -> Duration {
        self.ring.window()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WINDOW: Duration = Duration::from_secs(30);
    const SLOT_NS: u64 = 3_000_000_000; // 30 s / 10 sub-windows

    #[test]
    fn empty_windows_read_as_zero() {
        let counter = RollingCounter::new(WINDOW, DEFAULT_SUB_WINDOWS);
        assert_eq!(counter.value_at(0), 0);
        assert_eq!(counter.value_at(u64::MAX - 1), 0);
        let histogram = RollingHistogram::new(WINDOW, DEFAULT_SUB_WINDOWS);
        let snapshot = histogram.snapshot_at(123_456);
        assert_eq!(snapshot, HistogramSnapshot::default());
        assert_eq!(snapshot.quantile(0.5), None);
        assert_eq!(counter.window(), WINDOW);
        assert_eq!(histogram.window(), WINDOW);
    }

    #[test]
    fn records_are_visible_through_the_whole_window_then_expire() {
        let counter = RollingCounter::new(WINDOW, DEFAULT_SUB_WINDOWS);
        counter.add_at(0, 5);
        // Visible immediately and for every read inside the window.
        assert_eq!(counter.value_at(0), 5);
        assert_eq!(counter.value_at(SLOT_NS * 9), 5, "last live read");
        // One slot later the write's sub-window ages out.
        assert_eq!(counter.value_at(SLOT_NS * 10), 0, "expired");
    }

    #[test]
    fn clock_step_over_multiple_sub_windows_expires_everything() {
        let histogram = RollingHistogram::new(WINDOW, DEFAULT_SUB_WINDOWS);
        histogram.record_at(0, 100);
        histogram.record_at(SLOT_NS, 200);
        assert_eq!(histogram.snapshot_at(SLOT_NS).count, 2);
        // A clock step far past the window: every slot is stale even
        // though none was ever overwritten.
        let later = SLOT_NS * 100;
        assert_eq!(histogram.snapshot_at(later).count, 0);
        // New records after the step land normally and do not resurrect
        // the expired ones sharing a ring position.
        histogram.record_at(later, 300);
        let snapshot = histogram.snapshot_at(later);
        assert_eq!((snapshot.count, snapshot.min, snapshot.max), (1, 300, 300));
    }

    #[test]
    fn sub_windows_age_out_one_granule_at_a_time() {
        let counter = RollingCounter::new(WINDOW, DEFAULT_SUB_WINDOWS);
        for slot in 0..10u64 {
            counter.add_at(slot * SLOT_NS, 1);
        }
        assert_eq!(counter.value_at(9 * SLOT_NS), 10);
        assert_eq!(counter.value_at(10 * SLOT_NS), 9, "oldest granule gone");
        assert_eq!(counter.value_at(14 * SLOT_NS), 5);
        assert_eq!(counter.value_at(19 * SLOT_NS), 0);
    }

    #[test]
    fn ring_positions_are_reset_when_reused() {
        let counter = RollingCounter::new(WINDOW, DEFAULT_SUB_WINDOWS);
        counter.add_at(0, 7);
        // A full ring revolution later the same position is reused; the
        // old 7 must not leak into the new window.
        counter.add_at(10 * SLOT_NS, 2);
        assert_eq!(counter.value_at(10 * SLOT_NS), 2);
    }

    #[test]
    fn windowed_snapshots_merge_with_cumulative_snapshots() {
        // A rolling snapshot is an ordinary HistogramSnapshot: merging
        // it into a cumulative one keeps exact totals, as if the window
        // had been recorded into the cumulative histogram too.
        let rolling = RollingHistogram::new(WINDOW, DEFAULT_SUB_WINDOWS);
        rolling.record_at(0, 64);
        rolling.record_at(SLOT_NS, 4096);
        let windowed = rolling.snapshot_at(SLOT_NS);
        assert_eq!(windowed.count, 2);
        assert_eq!(windowed.sum, 4160);

        let metrics = crate::Metrics::new();
        metrics.histogram("h").record(1);
        let mut cumulative = metrics.snapshot().histogram("h").unwrap().clone();
        cumulative.merge(&windowed);
        assert_eq!(cumulative.count, 3);
        assert_eq!(cumulative.sum, 4161);
        assert_eq!((cumulative.min, cumulative.max), (1, 4096));
        assert_eq!(cumulative.bucketed_count(), 3);
    }

    #[test]
    fn observe_matches_the_atomic_core_exactly() {
        // The snapshot-form accumulation the sub-windows use must agree
        // with the atomic core bucket-for-bucket.
        let values = [0u64, 1, 7, 64, 4095, 1u64 << 39, (1u64 << 45) + 17];
        let metrics = crate::Metrics::new();
        let reference = metrics.histogram("h");
        let mut observed = HistogramSnapshot::default();
        for &v in &values {
            reference.record(v);
            observed.observe(v);
        }
        assert_eq!(observed, metrics.snapshot().histogram("h").unwrap().clone());
    }

    #[test]
    fn one_slot_window_degenerates_sanely() {
        let counter = RollingCounter::new(Duration::from_secs(1), 1);
        counter.add_at(0, 3);
        assert_eq!(counter.value_at(999_999_999), 3);
        assert_eq!(counter.value_at(1_000_000_000), 0);
    }
}
