//! The fixed log2-bucket histogram core and its snapshot form.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of regular buckets. Bucket `i` holds values `v` with
/// `floor(log2(max(v, 1))) == i`, i.e. `2^i <= v < 2^(i+1)` (bucket 0
/// additionally holds 0). With 40 buckets the regular range tops out
/// just below `2^40` — about 18 minutes when values are nanoseconds —
/// and everything at or above that lands in the overflow bucket.
pub const BUCKETS: usize = 40;

/// The index of the regular bucket holding `value`, or `None` for the
/// overflow bucket.
pub(crate) fn bucket_index(value: u64) -> Option<usize> {
    let index = 63 - value.max(1).leading_zeros() as usize;
    (index < BUCKETS).then_some(index)
}

/// Inclusive upper bound of regular bucket `index`.
pub fn bucket_upper_bound(index: usize) -> u64 {
    debug_assert!(index < BUCKETS);
    (1u64 << (index + 1)) - 1
}

/// Lock-free accumulation state of one histogram.
pub(crate) struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    overflow: AtomicU64,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> HistogramCore {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            overflow: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl HistogramCore {
    pub(crate) fn record(&self, value: u64) {
        match bucket_index(value) {
            Some(index) => self.buckets[index].fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let count = b.load(Ordering::Relaxed);
                (count > 0).then_some((i, count))
            })
            .collect();
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets,
            overflow: self.overflow.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of one histogram: exact totals plus the
/// populated log2 buckets (sparse `(index, count)` pairs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Exact sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Populated regular buckets as `(bucket index, count)`, ascending.
    pub buckets: Vec<(usize, u64)>,
    /// Observations at or above `2^BUCKETS`.
    pub overflow: u64,
}

impl HistogramSnapshot {
    /// Mean observed value, from the exact totals (not the buckets).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Sum of all bucket counts including overflow; always equals
    /// [`HistogramSnapshot::count`].
    pub fn bucketed_count(&self) -> u64 {
        self.buckets.iter().map(|&(_, c)| c).sum::<u64>() + self.overflow
    }

    /// Estimates the `q`-quantile (`0.0 <= q <= 1.0`) from the log2
    /// buckets.
    ///
    /// The rank `ceil(q * count)` (at least 1) is located in the
    /// cumulative bucket counts; within its bucket the value is
    /// interpolated *geometrically* — ranks walk the bucket's
    /// `[2^i, 2^(i+1))` span on the log scale with a half-rank offset,
    /// so the bucket's median rank reports the geometric midpoint
    /// `2^(i+1/2)` rather than the upper bound. (Linear-to-upper-bound
    /// interpolation systematically overstates bucket quantiles: with
    /// most mass in one bucket it reports p50 above the exact mean.)
    /// The estimate is clamped to the exact observed `[min, max]`, so
    /// `quantile(0.0)` is exactly `min`, `quantile(1.0)` is exactly
    /// `max`, and a single-valued histogram returns that value for
    /// every `q`. Ranks landing in the overflow bucket report `max`.
    ///
    /// Returns `None` for an empty histogram or a `q` outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) || q.is_nan() {
            return None;
        }
        if q == 0.0 {
            return Some(self.min as f64);
        }
        if q == 1.0 {
            return Some(self.max as f64);
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for &(index, count) in &self.buckets {
            cumulative += count;
            if cumulative >= rank {
                // Half-rank offset: rank r of `count` sits at fraction
                // (r - 1/2) / count through the bucket, so the middle
                // rank lands on the bucket midpoint instead of its
                // upper edge.
                let into = ((rank - (cumulative - count)) as f64 - 0.5) / count as f64;
                let estimate = if index == 0 {
                    // Bucket 0 holds {0, 1}; the geometric scale
                    // degenerates at 0, so interpolate linearly.
                    into
                } else {
                    // Geometric walk across [2^i, 2^(i+1)): at
                    // into = 1/2 this is the geometric midpoint
                    // 2^(i+1/2).
                    (1u64 << index) as f64 * 2f64.powf(into)
                };
                return Some(estimate.clamp(self.min as f64, self.max as f64));
            }
        }
        // Rank falls in the overflow bucket: the best exact bound is max.
        Some(self.max as f64)
    }

    /// Records one observation directly into the snapshot form,
    /// keeping the same exact totals and sparse log2 buckets the atomic
    /// core maintains. This is the single-threaded accumulation path
    /// used by rolling sub-windows, where each slot is a plain snapshot
    /// behind its window's lock.
    pub fn observe(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        match bucket_index(value) {
            None => self.overflow = self.overflow.saturating_add(1),
            Some(index) => match self.buckets.binary_search_by_key(&index, |&(i, _)| i) {
                Ok(at) => self.buckets[at].1 = self.buckets[at].1.saturating_add(1),
                Err(at) => self.buckets.insert(at, (index, 1)),
            },
        }
    }

    /// Folds `other` into `self` as if every observation behind both
    /// snapshots had been recorded into one histogram: count, sum,
    /// overflow and per-bucket counts add; min/max combine (an empty
    /// side contributes nothing). Saturates rather than wraps on
    /// astronomically large sums.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.overflow = self.overflow.saturating_add(other.overflow);
        let mut merged = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        while let (Some(&&(ia, ca)), Some(&&(ib, cb))) = (a.peek(), b.peek()) {
            match ia.cmp(&ib) {
                std::cmp::Ordering::Less => {
                    merged.push((ia, ca));
                    a.next();
                }
                std::cmp::Ordering::Greater => {
                    merged.push((ib, cb));
                    b.next();
                }
                std::cmp::Ordering::Equal => {
                    merged.push((ia, ca.saturating_add(cb)));
                    a.next();
                    b.next();
                }
            }
        }
        merged.extend(a.copied());
        merged.extend(b.copied());
        self.buckets = merged;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // 0 and 1 share bucket 0.
        assert_eq!(bucket_index(0), Some(0));
        assert_eq!(bucket_index(1), Some(0));
        // Each boundary 2^i opens bucket i; 2^i - 1 still sits in i-1.
        for i in 1..BUCKETS {
            assert_eq!(bucket_index(1u64 << i), Some(i), "2^{i}");
            assert_eq!(bucket_index((1u64 << i) - 1), Some(i - 1), "2^{i} - 1");
            assert_eq!(bucket_upper_bound(i - 1), (1u64 << i) - 1);
        }
        // The first value past the last regular bucket overflows.
        assert_eq!(bucket_index((1u64 << BUCKETS) - 1), Some(BUCKETS - 1));
        assert_eq!(bucket_index(1u64 << BUCKETS), None);
        assert_eq!(bucket_index(u64::MAX), None);
    }

    #[test]
    fn overflow_bucket_counts_separately() {
        let core = HistogramCore::default();
        core.record(1u64 << BUCKETS);
        core.record(u64::MAX);
        core.record(5);
        let snapshot = core.snapshot();
        assert_eq!(snapshot.overflow, 2);
        assert_eq!(snapshot.count, 3);
        assert_eq!(snapshot.buckets, vec![(2, 1)]);
        assert_eq!(snapshot.bucketed_count(), 3);
        assert_eq!(snapshot.max, u64::MAX);
        assert_eq!(snapshot.min, 5);
    }

    #[test]
    fn empty_histogram_snapshot() {
        let snapshot = HistogramCore::default().snapshot();
        assert_eq!(snapshot, HistogramSnapshot::default());
        assert_eq!(snapshot.mean(), None);
        assert_eq!(snapshot.bucketed_count(), 0);
    }

    #[test]
    fn totals_are_exact() {
        let core = HistogramCore::default();
        for v in [3u64, 10, 1000, 7] {
            core.record(v);
        }
        let snapshot = core.snapshot();
        assert_eq!(snapshot.count, 4);
        assert_eq!(snapshot.sum, 1020);
        assert_eq!(snapshot.min, 3);
        assert_eq!(snapshot.max, 1000);
        assert_eq!(snapshot.mean(), Some(255.0));
    }

    #[test]
    fn zero_is_recorded_in_bucket_zero_with_exact_totals() {
        let core = HistogramCore::default();
        core.record(0);
        let snapshot = core.snapshot();
        assert_eq!(snapshot.buckets, vec![(0, 1)]);
        assert_eq!(snapshot.count, 1);
        assert_eq!(snapshot.sum, 0);
        assert_eq!(snapshot.min, 0);
        assert_eq!(snapshot.max, 0);
        assert_eq!(snapshot.mean(), Some(0.0));
    }

    #[test]
    fn exact_powers_of_two_land_on_their_own_boundary_bucket() {
        let core = HistogramCore::default();
        // Every exact power of two 2^i opens bucket i; totals stay exact.
        for i in 0..BUCKETS {
            core.record(1u64 << i);
        }
        let snapshot = core.snapshot();
        assert_eq!(snapshot.buckets.len(), BUCKETS);
        // 1 lands in bucket 0 alongside nothing else here; each higher
        // power is alone in its bucket.
        for (i, &(index, count)) in snapshot.buckets.iter().enumerate() {
            assert_eq!(index, i);
            assert_eq!(count, 1);
        }
        assert_eq!(snapshot.overflow, 0);
        assert_eq!(snapshot.count, BUCKETS as u64);
        assert_eq!(snapshot.sum, (1u64 << BUCKETS) - 1);
        assert_eq!(snapshot.min, 1);
        assert_eq!(snapshot.max, 1u64 << (BUCKETS - 1));
    }

    #[test]
    fn u64_max_overflows_without_perturbing_totals() {
        let core = HistogramCore::default();
        core.record(u64::MAX);
        let snapshot = core.snapshot();
        assert_eq!(snapshot.buckets, vec![]);
        assert_eq!(snapshot.overflow, 1);
        assert_eq!(snapshot.count, 1);
        assert_eq!(snapshot.sum, u64::MAX);
        assert_eq!(snapshot.min, u64::MAX);
        assert_eq!(snapshot.max, u64::MAX);
        assert_eq!(snapshot.bucketed_count(), 1);
    }

    #[test]
    fn quantile_is_exact_at_the_ends_and_clamped_to_min_max() {
        let core = HistogramCore::default();
        for v in [100u64, 200, 300, 400, 1000] {
            core.record(v);
        }
        let snapshot = core.snapshot();
        assert_eq!(snapshot.quantile(0.0), Some(100.0), "q=0 is the exact min");
        assert_eq!(snapshot.quantile(1.0), Some(1000.0), "q=1 is the exact max");
        let p50 = snapshot.quantile(0.5).unwrap();
        assert!((100.0..=1000.0).contains(&p50), "{p50}");
        // Monotone in q.
        let p95 = snapshot.quantile(0.95).unwrap();
        assert!(p95 >= p50, "{p95} >= {p50}");
        assert_eq!(snapshot.quantile(-0.1), None);
        assert_eq!(snapshot.quantile(1.1), None);
        assert_eq!(snapshot.quantile(f64::NAN), None);
        assert_eq!(HistogramSnapshot::default().quantile(0.5), None);
    }

    #[test]
    fn quantile_at_bucket_boundaries() {
        // A single value exactly on a power-of-two boundary: every
        // quantile collapses to it via the min/max clamp.
        let core = HistogramCore::default();
        core.record(1u64 << 12);
        let snapshot = core.snapshot();
        for q in [0.0, 0.25, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(snapshot.quantile(q), Some(4096.0), "q={q}");
        }

        // Two boundary values in distinct buckets: the median must come
        // from the lower bucket, the p99 from the upper.
        let core = HistogramCore::default();
        core.record(1u64 << 4);
        core.record(1u64 << 10);
        let snapshot = core.snapshot();
        let p50 = snapshot.quantile(0.5).unwrap();
        assert!((16.0..32.0).contains(&p50), "median in bucket 4: {p50}");
        assert_eq!(snapshot.quantile(0.99), Some(1024.0), "clamped to max");
    }

    #[test]
    fn quantile_rank_in_the_overflow_bucket_reports_max() {
        let core = HistogramCore::default();
        core.record(7);
        core.record(1u64 << BUCKETS);
        core.record(u64::MAX);
        let snapshot = core.snapshot();
        assert_eq!(snapshot.quantile(1.0), Some(u64::MAX as f64));
        assert_eq!(snapshot.quantile(0.9), Some(u64::MAX as f64));
        assert_eq!(snapshot.quantile(0.0), Some(7.0));
    }

    #[test]
    fn quantile_interpolates_within_a_bucket() {
        // 64 observations spread across bucket 6 ([64, 128)): the
        // interpolated quantiles walk the bucket span monotonically.
        let core = HistogramCore::default();
        for v in 64..128u64 {
            core.record(v);
        }
        let snapshot = core.snapshot();
        let p25 = snapshot.quantile(0.25).unwrap();
        let p75 = snapshot.quantile(0.75).unwrap();
        assert!(p25 < p75, "{p25} < {p75}");
        assert!((64.0..=127.0).contains(&p25));
        assert!((64.0..=127.0).contains(&p75));
    }

    #[test]
    fn bucket_median_reports_the_geometric_midpoint() {
        // Five observations in bucket 6 ([64, 128)) put the median rank
        // at the bucket's half-rank point: the estimate is the geometric
        // midpoint 2^6.5, not the bucket's upper bound.
        let core = HistogramCore::default();
        core.record(64);
        for _ in 0..3 {
            core.record(65);
        }
        core.record(127);
        let snapshot = core.snapshot();
        let p50 = snapshot.quantile(0.5).unwrap();
        let midpoint = 64.0 * 2f64.sqrt();
        assert!((p50 - midpoint).abs() < 1e-9, "{p50} vs {midpoint}");
    }

    #[test]
    fn p50_stays_at_or_below_max_for_mass_at_a_bucket_floor() {
        // The committed-bench bias case: every observation near the
        // floor of one wide bucket. Upper-bound interpolation reported
        // p50 ~50% above the exact mean; the geometric estimate clamps
        // to the observed max instead.
        let core = HistogramCore::default();
        for v in 262_144..262_244u64 {
            core.record(v);
        }
        let snapshot = core.snapshot();
        let mean = snapshot.mean().unwrap();
        let p50 = snapshot.quantile(0.5).unwrap();
        assert!(p50 <= snapshot.max as f64, "{p50}");
        assert!(
            p50 <= mean + 100.0,
            "p50 {p50} still biased over mean {mean}"
        );
    }

    #[test]
    fn merge_is_exact_for_count_sum_min_max() {
        let a_core = HistogramCore::default();
        for v in [0u64, 7, 1u64 << 12, u64::MAX] {
            a_core.record(v);
        }
        let b_core = HistogramCore::default();
        for v in [3u64, 1u64 << 12, 1u64 << 39] {
            b_core.record(v);
        }
        // Reference: one histogram that saw every observation.
        let all = HistogramCore::default();
        for v in [0u64, 7, 1u64 << 12, u64::MAX, 3, 1u64 << 12, 1u64 << 39] {
            all.record(v);
        }
        let mut merged = a_core.snapshot();
        merged.merge(&b_core.snapshot());
        assert_eq!(merged, all.snapshot());
        assert_eq!(merged.count, 7);
        assert_eq!(merged.min, 0);
        assert_eq!(merged.max, u64::MAX);
        assert_eq!(merged.bucketed_count(), merged.count);
    }

    #[test]
    fn merge_with_empty_sides_changes_nothing() {
        let core = HistogramCore::default();
        core.record(42);
        let populated = core.snapshot();

        // empty.merge(populated) adopts the populated side's min/max.
        let mut empty = HistogramSnapshot::default();
        empty.merge(&populated);
        assert_eq!(empty, populated);

        // populated.merge(empty) is a no-op — min must not become 0.
        let mut unchanged = populated.clone();
        unchanged.merge(&HistogramSnapshot::default());
        assert_eq!(unchanged, populated);
        assert_eq!(unchanged.min, 42);
    }
}
