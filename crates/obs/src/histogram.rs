//! The fixed log2-bucket histogram core and its snapshot form.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of regular buckets. Bucket `i` holds values `v` with
/// `floor(log2(max(v, 1))) == i`, i.e. `2^i <= v < 2^(i+1)` (bucket 0
/// additionally holds 0). With 40 buckets the regular range tops out
/// just below `2^40` — about 18 minutes when values are nanoseconds —
/// and everything at or above that lands in the overflow bucket.
pub const BUCKETS: usize = 40;

/// The index of the regular bucket holding `value`, or `None` for the
/// overflow bucket.
pub(crate) fn bucket_index(value: u64) -> Option<usize> {
    let index = 63 - value.max(1).leading_zeros() as usize;
    (index < BUCKETS).then_some(index)
}

/// Inclusive upper bound of regular bucket `index`.
pub fn bucket_upper_bound(index: usize) -> u64 {
    debug_assert!(index < BUCKETS);
    (1u64 << (index + 1)) - 1
}

/// Lock-free accumulation state of one histogram.
pub(crate) struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    overflow: AtomicU64,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> HistogramCore {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            overflow: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl HistogramCore {
    pub(crate) fn record(&self, value: u64) {
        match bucket_index(value) {
            Some(index) => self.buckets[index].fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let count = b.load(Ordering::Relaxed);
                (count > 0).then_some((i, count))
            })
            .collect();
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets,
            overflow: self.overflow.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of one histogram: exact totals plus the
/// populated log2 buckets (sparse `(index, count)` pairs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Exact sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Populated regular buckets as `(bucket index, count)`, ascending.
    pub buckets: Vec<(usize, u64)>,
    /// Observations at or above `2^BUCKETS`.
    pub overflow: u64,
}

impl HistogramSnapshot {
    /// Mean observed value, from the exact totals (not the buckets).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Sum of all bucket counts including overflow; always equals
    /// [`HistogramSnapshot::count`].
    pub fn bucketed_count(&self) -> u64 {
        self.buckets.iter().map(|&(_, c)| c).sum::<u64>() + self.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // 0 and 1 share bucket 0.
        assert_eq!(bucket_index(0), Some(0));
        assert_eq!(bucket_index(1), Some(0));
        // Each boundary 2^i opens bucket i; 2^i - 1 still sits in i-1.
        for i in 1..BUCKETS {
            assert_eq!(bucket_index(1u64 << i), Some(i), "2^{i}");
            assert_eq!(bucket_index((1u64 << i) - 1), Some(i - 1), "2^{i} - 1");
            assert_eq!(bucket_upper_bound(i - 1), (1u64 << i) - 1);
        }
        // The first value past the last regular bucket overflows.
        assert_eq!(bucket_index((1u64 << BUCKETS) - 1), Some(BUCKETS - 1));
        assert_eq!(bucket_index(1u64 << BUCKETS), None);
        assert_eq!(bucket_index(u64::MAX), None);
    }

    #[test]
    fn overflow_bucket_counts_separately() {
        let core = HistogramCore::default();
        core.record(1u64 << BUCKETS);
        core.record(u64::MAX);
        core.record(5);
        let snapshot = core.snapshot();
        assert_eq!(snapshot.overflow, 2);
        assert_eq!(snapshot.count, 3);
        assert_eq!(snapshot.buckets, vec![(2, 1)]);
        assert_eq!(snapshot.bucketed_count(), 3);
        assert_eq!(snapshot.max, u64::MAX);
        assert_eq!(snapshot.min, 5);
    }

    #[test]
    fn empty_histogram_snapshot() {
        let snapshot = HistogramCore::default().snapshot();
        assert_eq!(snapshot, HistogramSnapshot::default());
        assert_eq!(snapshot.mean(), None);
        assert_eq!(snapshot.bucketed_count(), 0);
    }

    #[test]
    fn totals_are_exact() {
        let core = HistogramCore::default();
        for v in [3u64, 10, 1000, 7] {
            core.record(v);
        }
        let snapshot = core.snapshot();
        assert_eq!(snapshot.count, 4);
        assert_eq!(snapshot.sum, 1020);
        assert_eq!(snapshot.min, 3);
        assert_eq!(snapshot.max, 1000);
        assert_eq!(snapshot.mean(), Some(255.0));
    }
}
