//! The serializable point-in-time snapshot of a metrics registry.

use crate::histogram::HistogramSnapshot;
use std::collections::BTreeMap;
use whart_json::Json;

/// A point-in-time copy of every instrument in a [`crate::Metrics`]
/// registry, with a stable JSON form for CLI `--metrics` files and CI
/// artifacts.
///
/// Instruments are keyed by name in sorted order, so serialized
/// snapshots diff cleanly. Numeric values are exact in JSON up to
/// `2^53` (JSON numbers are doubles); nanosecond sums stay below that
/// for ~104 days of accumulated time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Whether the snapshot holds no instruments at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// The value of the counter named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The value of the gauge named `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// The histogram named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Serializes to the stable JSON form.
    pub fn to_json(&self) -> Json {
        let map = |m: &BTreeMap<String, u64>| {
            Json::Object(m.iter().map(|(k, &v)| (k.clone(), Json::from(v))).collect())
        };
        let histograms = Json::Object(
            self.histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        Json::object([
                            ("count", Json::from(h.count)),
                            ("sum", Json::from(h.sum)),
                            ("min", Json::from(h.min)),
                            ("max", Json::from(h.max)),
                            (
                                "buckets",
                                Json::Array(
                                    h.buckets
                                        .iter()
                                        .map(|&(i, c)| {
                                            Json::Array(vec![Json::from(i as u64), Json::from(c)])
                                        })
                                        .collect(),
                                ),
                            ),
                            ("overflow", Json::from(h.overflow)),
                        ]),
                    )
                })
                .collect(),
        );
        Json::object([
            ("counters", map(&self.counters)),
            ("gauges", map(&self.gauges)),
            ("histograms", histograms),
        ])
    }

    /// Deserializes the JSON form produced by
    /// [`MetricsSnapshot::to_json`].
    ///
    /// # Errors
    ///
    /// Describes the first structural mismatch encountered.
    pub fn from_json(value: &Json) -> Result<MetricsSnapshot, String> {
        if value.as_object().is_none() {
            return Err("snapshot must be a JSON object".into());
        }
        let u64_of = |v: &Json, what: &str| {
            v.as_u64()
                .ok_or_else(|| format!("{what} must be a non-negative integer"))
        };
        let map_of = |key: &str| -> Result<BTreeMap<String, u64>, String> {
            match value.get(key) {
                None => Ok(BTreeMap::new()),
                Some(section) => section
                    .as_object()
                    .ok_or_else(|| format!("'{key}' must be an object"))?
                    .iter()
                    .map(|(k, v)| Ok((k.clone(), u64_of(v, &format!("'{key}.{k}'"))?)))
                    .collect(),
            }
        };
        let counters = map_of("counters")?;
        let gauges = map_of("gauges")?;
        let mut histograms = BTreeMap::new();
        if let Some(section) = value.get("histograms") {
            for (name, h) in section
                .as_object()
                .ok_or("'histograms' must be an object")?
            {
                let field = |key: &str| -> Result<u64, String> {
                    u64_of(h.require(key)?, &format!("'histograms.{name}.{key}'"))
                };
                let mut buckets = Vec::new();
                for pair in h
                    .require("buckets")?
                    .as_array()
                    .ok_or_else(|| format!("'histograms.{name}.buckets' must be an array"))?
                {
                    let bad =
                        || format!("'histograms.{name}.buckets' entries must be [index, count]");
                    let index = pair.at(0).and_then(Json::as_u64).ok_or_else(bad)?;
                    let count = pair.at(1).and_then(Json::as_u64).ok_or_else(bad)?;
                    if index as usize >= crate::BUCKETS {
                        return Err(format!(
                            "'histograms.{name}.buckets' index {index} out of range"
                        ));
                    }
                    buckets.push((index as usize, count));
                }
                histograms.insert(
                    name.clone(),
                    HistogramSnapshot {
                        count: field("count")?,
                        sum: field("sum")?,
                        min: field("min")?,
                        max: field("max")?,
                        buckets,
                        overflow: field("overflow")?,
                    },
                );
            }
        }
        Ok(MetricsSnapshot {
            counters,
            gauges,
            histograms,
        })
    }

    /// Parses the JSON text form.
    ///
    /// # Errors
    ///
    /// Propagates syntax errors and structural mismatches.
    pub fn parse(text: &str) -> Result<MetricsSnapshot, String> {
        let value = Json::parse(text).map_err(|e| format!("invalid snapshot: {e}"))?;
        MetricsSnapshot::from_json(&value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Metrics;

    #[test]
    fn json_round_trip_preserves_everything() {
        let metrics = Metrics::new();
        metrics.counter("engine.path_cache.hits").add(17);
        metrics.counter("solver.sim.draws").add(123_456);
        metrics.gauge("engine.pool.max_queue_depth").set(9);
        let h = metrics.histogram("solver.fast.solve_ns");
        for v in [0u64, 1, 100, 65_535, 1 << 20, (1 << 40) + 5] {
            h.record(v);
        }
        let snapshot = metrics.snapshot();
        let text = snapshot.to_json().to_pretty();
        let back = MetricsSnapshot::parse(&text).unwrap();
        assert_eq!(back, snapshot);
        assert_eq!(back.histogram("solver.fast.solve_ns").unwrap().overflow, 1);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snapshot = MetricsSnapshot::default();
        assert!(snapshot.is_empty());
        let back = MetricsSnapshot::parse(&snapshot.to_json().to_compact()).unwrap();
        assert_eq!(back, snapshot);
        assert!(back.is_empty());
        // A disabled registry snapshots to the same empty form.
        assert_eq!(Metrics::disabled().snapshot(), snapshot);
    }

    #[test]
    fn malformed_snapshots_are_rejected() {
        assert!(!MetricsSnapshot::parse("[]").unwrap_err().is_empty());
        assert!(MetricsSnapshot::parse("{\"counters\": {\"x\": -1}}").is_err());
        assert!(MetricsSnapshot::parse("{\"counters\": 3}").is_err());
        assert!(MetricsSnapshot::parse(
            "{\"histograms\": {\"h\": {\"count\": 1, \"sum\": 1, \"min\": 1, \"max\": 1, \
             \"buckets\": [[99, 1]], \"overflow\": 0}}}"
        )
        .is_err());
        // Missing sections default to empty.
        let partial = MetricsSnapshot::parse("{\"counters\": {\"x\": 4}}").unwrap();
        assert_eq!(partial.counter("x"), Some(4));
        assert!(partial.histograms.is_empty());
    }
}
