//! Prometheus text-format exposition of a [`MetricsSnapshot`], plus the
//! parser-side helper the tests and CI smoke checks validate scrapes
//! with.
//!
//! Counters and gauges are emitted verbatim (one sample each); the log2
//! [`crate::HistogramSnapshot`] is emitted as a native Prometheus
//! histogram — cumulative `_bucket{le="..."}` series at the populated
//! buckets' inclusive upper bounds, a `+Inf` bucket equal to `_count`,
//! and exact `_sum`/`_count` samples.
//!
//! Instrument names are dotted in the registry (`engine.path_cache.hits`)
//! and may carry a `{key=value,...}` label suffix (the convention
//! `whart-serve` uses for per-route series, e.g.
//! `http.requests{route=/v1/analyze,code=200}`). Rendering splits the
//! suffix into Prometheus labels and sanitizes every metric name to
//! `[a-zA-Z_:][a-zA-Z0-9_:]*` and every label name to
//! `[a-zA-Z_][a-zA-Z0-9_]*`; label values are escaped, not sanitized.
//! Series sharing a sanitized family name are grouped under one `# TYPE`
//! line.

use crate::histogram::bucket_upper_bound;
use crate::{HistogramSnapshot, MetricsSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A derived, float-valued gauge sample appended to an exposition by
/// [`render_with`] — computed at scrape time (cache hit ratios, latency
/// quantiles) rather than stored in the registry's integer instruments.
#[derive(Debug, Clone, PartialEq)]
pub struct DerivedGauge {
    /// Instrument-style name, optionally carrying a `{k=v,...}` suffix.
    pub name: String,
    /// Sample value.
    pub value: f64,
}

impl DerivedGauge {
    /// A derived gauge sample.
    pub fn new(name: impl Into<String>, value: f64) -> DerivedGauge {
        DerivedGauge {
            name: name.into(),
            value,
        }
    }
}

/// Whether `c` may appear in a metric name (after the first character).
fn metric_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == ':'
}

/// Sanitizes a metric name to `[a-zA-Z_:][a-zA-Z0-9_:]*`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = if i == 0 {
            c.is_ascii_alphabetic() || c == '_' || c == ':'
        } else {
            metric_char(c)
        };
        if ok {
            out.push(c);
        } else if i == 0 && metric_char(c) {
            // A leading digit is valid later in the name; keep it behind
            // a conventional prefix instead of erasing it.
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Sanitizes a label name to `[a-zA-Z_][a-zA-Z0-9_]*`.
pub fn sanitize_label_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = if i == 0 {
            c.is_ascii_alphabetic() || c == '_'
        } else {
            c.is_ascii_alphanumeric() || c == '_'
        };
        if ok {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value per the exposition format (`\`, `"`, newline).
fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Splits an instrument name into its base and `{k=v,...}` label suffix
/// (already sanitized/escaped). A malformed suffix is folded into the
/// base name rather than dropped.
fn split_name(name: &str) -> (String, Vec<(String, String)>) {
    let Some(open) = name.find('{') else {
        return (sanitize_metric_name(name), Vec::new());
    };
    let Some(stripped) = name[open..]
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
    else {
        return (sanitize_metric_name(name), Vec::new());
    };
    let mut labels = Vec::new();
    for pair in stripped.split(',').filter(|p| !p.is_empty()) {
        match pair.split_once('=') {
            Some((k, v)) => {
                let v = v.trim_matches('"');
                labels.push((sanitize_label_name(k.trim()), escape_label_value(v)));
            }
            None => return (sanitize_metric_name(name), Vec::new()),
        }
    }
    labels.sort();
    (sanitize_metric_name(&name[..open]), labels)
}

fn format_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    format!("{{{}}}", body.join(","))
}

/// Formats a float sample value: integral values print without a
/// fractional part (matching Prometheus' own text output for integers).
fn format_value(value: f64) -> String {
    if value.is_nan() {
        return "NaN".into();
    }
    if value.is_infinite() {
        return if value > 0.0 {
            "+Inf".into()
        } else {
            "-Inf".into()
        };
    }
    if value.fract() == 0.0 && value.abs() < 9.007_199_254_740_992e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

/// One family of samples sharing a name and TYPE.
struct Family {
    kind: &'static str,
    /// `(label-suffix, rendered sample lines)`.
    lines: Vec<String>,
}

fn push_sample(
    families: &mut BTreeMap<String, Family>,
    family: &str,
    kind: &'static str,
    sample_name: &str,
    labels: &[(String, String)],
    value: f64,
) {
    let entry = families.entry(family.to_string()).or_insert(Family {
        kind,
        lines: Vec::new(),
    });
    entry.lines.push(format!(
        "{sample_name}{} {}",
        format_labels(labels),
        format_value(value)
    ));
}

/// Renders the snapshot as Prometheus text exposition (version 0.0.4).
pub fn render(snapshot: &MetricsSnapshot) -> String {
    render_with(snapshot, &[])
}

/// Renders the snapshot plus `derived` float gauges (scrape-time values
/// such as cache hit ratios and latency quantiles).
pub fn render_with(snapshot: &MetricsSnapshot, derived: &[DerivedGauge]) -> String {
    let mut families: BTreeMap<String, Family> = BTreeMap::new();
    for (name, &value) in &snapshot.counters {
        let (base, labels) = split_name(name);
        push_sample(
            &mut families,
            &base,
            "counter",
            &base,
            &labels,
            value as f64,
        );
    }
    for (name, &value) in &snapshot.gauges {
        let (base, labels) = split_name(name);
        push_sample(&mut families, &base, "gauge", &base, &labels, value as f64);
    }
    for gauge in derived {
        let (base, labels) = split_name(&gauge.name);
        push_sample(&mut families, &base, "gauge", &base, &labels, gauge.value);
    }
    for (name, histogram) in &snapshot.histograms {
        let (base, labels) = split_name(name);
        render_histogram(&mut families, &base, &labels, histogram);
    }
    let mut out = String::new();
    for (name, family) in &families {
        let _ = writeln!(out, "# TYPE {name} {}", family.kind);
        for line in &family.lines {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

fn render_histogram(
    families: &mut BTreeMap<String, Family>,
    base: &str,
    labels: &[(String, String)],
    histogram: &HistogramSnapshot,
) {
    let bucket_name = format!("{base}_bucket");
    let mut cumulative = 0u64;
    for &(index, count) in &histogram.buckets {
        cumulative += count;
        let mut with_le = labels.to_vec();
        with_le.push(("le".into(), format!("{}", bucket_upper_bound(index))));
        push_sample(
            families,
            base,
            "histogram",
            &bucket_name,
            &with_le,
            cumulative as f64,
        );
    }
    let mut with_inf = labels.to_vec();
    with_inf.push(("le".into(), "+Inf".into()));
    push_sample(
        families,
        base,
        "histogram",
        &bucket_name,
        &with_inf,
        histogram.count as f64,
    );
    push_sample(
        families,
        base,
        "histogram",
        &format!("{base}_sum"),
        labels,
        histogram.sum as f64,
    );
    push_sample(
        families,
        base,
        "histogram",
        &format!("{base}_count"),
        labels,
        histogram.count as f64,
    );
}

/// One parsed sample line of an exposition.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Sample name (the family name, possibly with a `_bucket`/`_sum`/
    /// `_count` suffix).
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// Parsed value.
    pub value: f64,
}

impl Sample {
    /// The value of the label named `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A parsed Prometheus text exposition: the declared types and every
/// sample, in source order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Exposition {
    /// `# TYPE` declarations by family name.
    pub types: BTreeMap<String, String>,
    /// Every sample line.
    pub samples: Vec<Sample>,
}

impl Exposition {
    /// Samples whose name equals `name`.
    pub fn named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Sample> {
        self.samples.iter().filter(move |s| s.name == name)
    }

    /// The single sample with `name` and no labels, if present.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
            .map(|s| s.value)
    }

    /// Structural validation beyond line syntax: for every declared
    /// histogram family (per distinct non-`le` label set), cumulative
    /// bucket counts must be monotone in `le`, the `+Inf` bucket must
    /// exist and equal `_count`, and a `_sum` must be present.
    ///
    /// # Errors
    ///
    /// Describes the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        for (family, kind) in &self.types {
            if kind != "histogram" {
                continue;
            }
            // Group bucket samples by their non-`le` labels.
            let mut groups: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
            for sample in self.named(&format!("{family}_bucket")) {
                let le = sample
                    .label("le")
                    .ok_or_else(|| format!("{family}: bucket sample without 'le'"))?;
                let bound = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse::<f64>()
                        .map_err(|_| format!("{family}: unparseable le '{le}'"))?
                };
                let group: Vec<String> = sample
                    .labels
                    .iter()
                    .filter(|(k, _)| k != "le")
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect();
                groups
                    .entry(group.join(","))
                    .or_default()
                    .push((bound, sample.value));
            }
            if groups.is_empty() {
                return Err(format!("{family}: histogram with no _bucket samples"));
            }
            for (labels, mut buckets) in groups {
                buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("le bounds are not NaN"));
                let mut previous = f64::NEG_INFINITY;
                for &(_, count) in &buckets {
                    if count < previous {
                        return Err(format!("{family}{{{labels}}}: bucket counts not monotone"));
                    }
                    previous = count;
                }
                let (last_bound, inf_count) = *buckets.last().expect("non-empty");
                if last_bound.is_finite() {
                    return Err(format!("{family}{{{labels}}}: missing +Inf bucket"));
                }
                let count = self
                    .samples
                    .iter()
                    .find(|s| {
                        s.name == format!("{family}_count")
                            && labels
                                == s.labels
                                    .iter()
                                    .map(|(k, v)| format!("{k}={v}"))
                                    .collect::<Vec<_>>()
                                    .join(",")
                    })
                    .map(|s| s.value)
                    .ok_or_else(|| format!("{family}{{{labels}}}: missing _count"))?;
                if inf_count != count {
                    return Err(format!(
                        "{family}{{{labels}}}: +Inf bucket {inf_count} != _count {count}"
                    ));
                }
                let has_sum = self
                    .samples
                    .iter()
                    .any(|s| s.name == format!("{family}_sum"));
                if !has_sum {
                    return Err(format!("{family}{{{labels}}}: missing _sum"));
                }
            }
        }
        Ok(())
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(metric_char)
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Parses Prometheus text exposition, enforcing the line grammar and the
/// `[a-zA-Z_:][a-zA-Z0-9_:]*` metric- / `[a-zA-Z_][a-zA-Z0-9_]*`
/// label-name charsets.
///
/// This is the parser side of [`render`]: the golden and property tests
/// round-trip through it, and the CI smoke job reuses it (via the
/// `promcheck` example) to assert a live scrape parses.
///
/// # Errors
///
/// Describes the first malformed line.
pub fn parse(text: &str) -> Result<Exposition, String> {
    let mut exposition = Exposition::default();
    for (number, line) in text.lines().enumerate() {
        let line = line.trim();
        let context = |what: &str| format!("line {}: {what}: {line}", number + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(decl) = comment.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let name = parts.next().ok_or_else(|| context("TYPE without name"))?;
                let kind = parts.next().ok_or_else(|| context("TYPE without kind"))?;
                if !valid_metric_name(name) {
                    return Err(context("invalid metric name in TYPE"));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(context("unknown TYPE kind"));
                }
                if exposition.types.insert(name.into(), kind.into()).is_some() {
                    return Err(context("duplicate TYPE declaration"));
                }
            }
            continue;
        }
        exposition.samples.push(parse_sample(line, &context)?);
    }
    Ok(exposition)
}

fn parse_sample(line: &str, context: &dyn Fn(&str) -> String) -> Result<Sample, String> {
    let (name_and_labels, value) = match line.find('{') {
        Some(_) => {
            let close = line
                .rfind('}')
                .ok_or_else(|| context("unterminated label set"))?;
            (&line[..=close], line[close + 1..].trim())
        }
        None => {
            let space = line
                .find(char::is_whitespace)
                .ok_or_else(|| context("sample without value"))?;
            (&line[..space], line[space..].trim())
        }
    };
    let value: f64 = match value {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        other => other
            .split_whitespace()
            .next()
            .unwrap_or("")
            .parse()
            .map_err(|_| context("unparseable sample value"))?,
    };
    let (name, labels) = match name_and_labels.find('{') {
        None => (name_and_labels.to_string(), Vec::new()),
        Some(open) => {
            let body = name_and_labels[open..]
                .strip_prefix('{')
                .and_then(|s| s.strip_suffix('}'))
                .ok_or_else(|| context("malformed label set"))?;
            let mut labels = Vec::new();
            for pair in split_label_pairs(body).map_err(|e| context(&e))? {
                let (key, raw) = pair;
                if !valid_label_name(&key) {
                    return Err(context("invalid label name"));
                }
                labels.push((key, raw));
            }
            (name_and_labels[..open].to_string(), labels)
        }
    };
    if !valid_metric_name(&name) {
        return Err(context("invalid metric name"));
    }
    Ok(Sample {
        name,
        labels,
        value,
    })
}

/// Splits `k="v",k2="v2"` respecting escapes inside quoted values.
fn split_label_pairs(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut pairs = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or("label without '='")?;
        let key = rest[..eq].trim().to_string();
        let after = &rest[eq + 1..];
        let quoted = after.strip_prefix('"').ok_or("unquoted label value")?;
        // Find the closing quote, skipping escaped characters.
        let mut value = String::new();
        let mut chars = quoted.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, escaped)) => value.push(escaped),
                    None => return Err("dangling escape in label value".into()),
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                other => value.push(other),
            }
        }
        let end = end.ok_or("unterminated label value")?;
        pairs.push((key, value));
        rest = quoted[end + 1..].trim_start();
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Metrics;

    #[test]
    fn golden_exposition_for_a_known_snapshot() {
        let metrics = Metrics::new();
        metrics.counter("engine.path_cache.hits").add(17);
        metrics
            .counter("http.requests{route=/v1/analyze,code=200}")
            .add(3);
        metrics
            .counter("http.requests{route=/v1/analyze,code=400}")
            .add(1);
        metrics.gauge("engine.pool.max_queue_depth").set(9);
        let h = metrics.histogram("solver.fast.solve_ns");
        for v in [1u64, 3, 900, 70_000] {
            h.record(v);
        }
        let text = render(&metrics.snapshot());
        let expected = "\
# TYPE engine_path_cache_hits counter
engine_path_cache_hits 17
# TYPE engine_pool_max_queue_depth gauge
engine_pool_max_queue_depth 9
# TYPE http_requests counter
http_requests{code=\"200\",route=\"/v1/analyze\"} 3
http_requests{code=\"400\",route=\"/v1/analyze\"} 1
# TYPE solver_fast_solve_ns histogram
solver_fast_solve_ns_bucket{le=\"1\"} 1
solver_fast_solve_ns_bucket{le=\"3\"} 2
solver_fast_solve_ns_bucket{le=\"1023\"} 3
solver_fast_solve_ns_bucket{le=\"131071\"} 4
solver_fast_solve_ns_bucket{le=\"+Inf\"} 4
solver_fast_solve_ns_sum 70904
solver_fast_solve_ns_count 4
";
        assert_eq!(text, expected);
        let parsed = parse(&text).unwrap();
        parsed.validate().unwrap();
        assert_eq!(parsed.types["http_requests"], "counter");
        assert_eq!(parsed.value("engine_path_cache_hits"), Some(17.0));
    }

    #[test]
    fn derived_gauges_render_as_floats() {
        let metrics = Metrics::new();
        metrics.counter("engine.path_cache.hits").add(1);
        let text = render_with(
            &metrics.snapshot(),
            &[
                DerivedGauge::new("engine.path_cache.hit_ratio", 0.5),
                DerivedGauge::new("http.request_ns.p99{route=/metrics}", 1234.0),
            ],
        );
        assert!(
            text.contains("# TYPE engine_path_cache_hit_ratio gauge"),
            "{text}"
        );
        assert!(text.contains("engine_path_cache_hit_ratio 0.5"), "{text}");
        assert!(
            text.contains("http_request_ns_p99{route=\"/metrics\"} 1234"),
            "{text}"
        );
        parse(&text).unwrap().validate().unwrap();
    }

    #[test]
    fn overflow_observations_keep_the_inf_bucket_equal_to_count() {
        let metrics = Metrics::new();
        let h = metrics.histogram("h");
        h.record(5);
        h.record(u64::MAX); // overflow bucket
        let text = render(&metrics.snapshot());
        let parsed = parse(&text).unwrap();
        parsed.validate().unwrap();
        let inf = parsed
            .named("h_bucket")
            .find(|s| s.label("le") == Some("+Inf"))
            .unwrap();
        assert_eq!(inf.value, 2.0, "{text}");
        // The last finite bucket holds only the regular observation.
        let finite: Vec<f64> = parsed
            .named("h_bucket")
            .filter(|s| s.label("le") != Some("+Inf"))
            .map(|s| s.value)
            .collect();
        assert_eq!(finite, vec![1.0]);
    }

    #[test]
    fn nasty_names_are_sanitized_into_the_charset() {
        assert_eq!(
            sanitize_metric_name("engine.path-cache hits"),
            "engine_path_cache_hits"
        );
        assert_eq!(sanitize_metric_name("0day"), "_0day");
        assert_eq!(sanitize_metric_name(""), "_");
        assert_eq!(sanitize_label_name("le gacy-9"), "le_gacy_9");
        assert_eq!(sanitize_label_name("9code"), "_9code");
        let metrics = Metrics::new();
        metrics.counter("weird métric näme{röute=a\"b\\c}").add(1);
        let text = render(&metrics.snapshot());
        let parsed = parse(&text).unwrap();
        parsed.validate().unwrap();
        for sample in &parsed.samples {
            assert!(valid_metric_name(&sample.name), "{}", sample.name);
            for (k, _) in &sample.labels {
                assert!(valid_label_name(k), "{k}");
            }
        }
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse("no_value").is_err());
        assert!(parse("bad-name 3").is_err());
        assert!(parse("x{unterminated 3").is_err());
        assert!(parse("x{k=unquoted} 3").is_err());
        assert!(parse("x{9k=\"v\"} 3").is_err());
        assert!(parse("x nonsense").is_err());
        assert!(parse("# TYPE x nonsense").is_err());
        assert!(parse("# TYPE x counter\n# TYPE x counter").is_err());
        // Comments and empty lines are fine.
        parse("# HELP x whatever\n\nx 3\n").unwrap();
    }

    #[test]
    fn validate_catches_histogram_inconsistencies() {
        let bad_inf = "\
# TYPE h histogram
h_bucket{le=\"1\"} 1
h_bucket{le=\"+Inf\"} 1
h_sum 1
h_count 2
";
        let err = parse(bad_inf).unwrap().validate().unwrap_err();
        assert!(err.contains("+Inf"), "{err}");
        let no_inf = "\
# TYPE h histogram
h_bucket{le=\"1\"} 1
h_sum 1
h_count 1
";
        let err = parse(no_inf).unwrap().validate().unwrap_err();
        assert!(err.contains("+Inf"), "{err}");
        let no_buckets = "# TYPE h histogram\nh_sum 1\nh_count 1\n";
        let err = parse(no_buckets).unwrap().validate().unwrap_err();
        assert!(err.contains("no _bucket"), "{err}");
    }

    #[test]
    fn escaped_label_values_round_trip() {
        let metrics = Metrics::new();
        metrics.gauge("g{path=a\\b\"c}").set(1);
        let text = render(&metrics.snapshot());
        let parsed = parse(&text).unwrap();
        let sample = parsed.named("g").next().unwrap();
        assert_eq!(sample.label("path"), Some("a\\b\"c"));
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert_eq!(render(&MetricsSnapshot::default()), "");
        let parsed = parse("").unwrap();
        assert!(parsed.samples.is_empty());
        parsed.validate().unwrap();
    }

    #[test]
    fn process_resource_gauges_render_under_their_exact_names() {
        // The serve /metrics handler publishes whart-prof's resource
        // sampler through these derived gauges. Their names are a wire
        // contract with dashboards and promcheck: already underscored,
        // they must render verbatim (no dot-to-underscore rewriting,
        // no prefixing) and round-trip through the parser.
        let derived = [
            DerivedGauge::new("process_cpu_percent", 12.5),
            DerivedGauge::new("process_rss_bytes", 104_857_600.0),
            DerivedGauge::new("process_threads", 9.0),
            DerivedGauge::new("process_open_fds", 32.0),
            DerivedGauge::new("process_start_time_seconds", 1_754_000_000.0),
            DerivedGauge::new("uptime_seconds", 42.5),
        ];
        let text = render_with(&MetricsSnapshot::default(), &derived);
        for gauge in &derived {
            assert!(
                text.contains(&format!("# TYPE {} gauge", gauge.name)),
                "{text}"
            );
        }
        let parsed = parse(&text).unwrap();
        parsed.validate().unwrap();
        for gauge in &derived {
            assert_eq!(
                parsed.value(&gauge.name),
                Some(gauge.value),
                "{}",
                gauge.name
            );
        }
    }
}
