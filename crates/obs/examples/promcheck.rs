//! Validates a Prometheus text-format scrape file.
//!
//! Used by the CI `serve-smoke` job to assert that a live `/metrics`
//! scrape parses and holds the exposition invariants (cumulative
//! buckets monotone, `+Inf` == `_count`, names in charset):
//!
//! ```sh
//! cargo run -p whart-obs --example promcheck -- scrape.txt [required-name ...]
//! ```
//!
//! Extra arguments are sample names that must be present (a missing one
//! is an error). Exits non-zero with a message on any violation.

use std::process::ExitCode;
use whart_obs::prometheus::parse;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: promcheck <scrape-file> [required-sample-name ...]");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(error) => {
            eprintln!("promcheck: cannot read {path}: {error}");
            return ExitCode::FAILURE;
        }
    };
    let exposition = match parse(&text) {
        Ok(exposition) => exposition,
        Err(error) => {
            eprintln!("promcheck: {path}: parse error: {error}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(error) = exposition.validate() {
        eprintln!("promcheck: {path}: invalid exposition: {error}");
        return ExitCode::FAILURE;
    }
    let mut missing = false;
    for required in args {
        if exposition.named(&required).next().is_none() {
            eprintln!("promcheck: {path}: missing required sample {required}");
            missing = true;
        }
    }
    if missing {
        return ExitCode::FAILURE;
    }
    println!(
        "promcheck: {path}: ok ({} samples, {} families)",
        exposition.samples.len(),
        exposition.types.len()
    );
    ExitCode::SUCCESS
}
