//! Property tests for the Prometheus text-format encoder: arbitrary
//! registries (including hostile instrument names and label suffixes)
//! must render to an exposition that parses, whose histogram buckets
//! are cumulative-monotone with `+Inf` equal to `_count`, and whose
//! names and labels land in the Prometheus charsets after sanitization.

use proptest::prelude::*;
use whart_obs::prometheus::{parse, render, render_with, DerivedGauge};
use whart_obs::Metrics;

fn metric_name_ok(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn label_name_ok(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Builds an instrument name from raw draws, mixing clean dotted idiom,
/// `{k=v,...}` label suffixes, and hostile characters (spaces, unicode,
/// quotes, leading digits) that the encoder must sanitize away.
fn build_name(variant: u8, bytes: &[usize]) -> String {
    const CLEAN: &[char] = &[
        'a', 'b', 'c', 'x', 'y', 'z', '0', '7', '.', '_', 'q', 'r', 's', 't',
    ];
    const HOSTILE: &[char] = &[
        'a', '9', ' ', 'é', '-', '"', '\\', '{', '}', '=', ',', '/', 'µ', ':', '\t', 'Z',
    ];
    let pick = |table: &[char], draws: &[usize]| -> String {
        draws.iter().map(|&d| table[d % table.len()]).collect()
    };
    let half = bytes.len() / 2;
    match variant % 4 {
        // Clean dotted idiom, guaranteed-alphabetic first char.
        0 => format!("m{}", pick(CLEAN, bytes)),
        // One label.
        1 => format!(
            "m{}{{route=/v{}}}",
            pick(CLEAN, &bytes[..half]),
            bytes[half..].len()
        ),
        // Two labels, numeric value.
        2 => format!(
            "m{}{{route=/v1/analyze,code={}}}",
            pick(CLEAN, &bytes[..half]),
            200 + (bytes[half] % 300)
        ),
        // Hostile characters everywhere, including a label suffix.
        _ => format!(
            "{}{{rö ute={}}}",
            pick(HOSTILE, &bytes[..half]),
            pick(HOSTILE, &bytes[half..])
        ),
    }
}

/// Raw draws for one instrument name: a variant selector plus bytes.
fn instrument_name() -> impl Strategy<Value = String> {
    (0u8..4, proptest::collection::vec(0usize..1000, 1..12))
        .prop_map(|(variant, bytes)| build_name(variant, &bytes))
}

proptest! {
    #[test]
    fn renders_parse_and_validate(
        counters in proptest::collection::vec((instrument_name(), 0u64..1u64 << 40), 0..6),
        gauges in proptest::collection::vec((instrument_name(), 0u64..1u64 << 40), 0..6),
        histograms in proptest::collection::vec(
            (instrument_name(), proptest::collection::vec(any::<u64>(), 1..40)),
            0..4,
        ),
        derived in proptest::collection::vec((instrument_name(), -1e12f64..1e12), 0..3),
    ) {
        // Index prefixes keep sanitized family names distinct across
        // instruments (otherwise two hostile names can sanitize into one
        // family and legitimately interleave two histograms' buckets).
        let metrics = Metrics::new();
        for (i, (name, value)) in counters.iter().enumerate() {
            metrics.counter(&format!("c{i}.{name}")).add(*value);
        }
        for (i, (name, value)) in gauges.iter().enumerate() {
            metrics.gauge(&format!("g{i}.{name}")).set(*value);
        }
        for (i, (name, values)) in histograms.iter().enumerate() {
            let h = metrics.histogram(&format!("h{i}.{name}"));
            for &v in values {
                h.record(v);
            }
        }
        let derived: Vec<DerivedGauge> = derived
            .iter()
            .enumerate()
            .map(|(i, (n, v))| DerivedGauge::new(format!("d{i}.{n}"), *v))
            .collect();
        let text = render_with(&metrics.snapshot(), &derived);

        let exposition = parse(&text)
            .unwrap_or_else(|e| panic!("render output failed to parse: {e}\n---\n{text}"));
        exposition
            .validate()
            .unwrap_or_else(|e| panic!("render output failed validation: {e}\n---\n{text}"));

        // Every sample name and label name is in the Prometheus charset.
        for sample in &exposition.samples {
            prop_assert!(metric_name_ok(&sample.name), "bad name {:?}", sample.name);
            for (key, _) in &sample.labels {
                prop_assert!(label_name_ok(key), "bad label {key:?}");
            }
        }
        for family in exposition.types.keys() {
            prop_assert!(metric_name_ok(family), "bad family {family:?}");
        }

        // Histogram invariants, re-checked here independently of
        // validate(): cumulative buckets are monotone and +Inf == _count
        // == the number of recorded observations.
        for (family, kind) in &exposition.types {
            if kind != "histogram" {
                continue;
            }
            let bucket_name = format!("{family}_bucket");
            let buckets: Vec<&whart_obs::prometheus::Sample> =
                exposition.named(&bucket_name).collect();
            prop_assert!(!buckets.is_empty());
            let mut previous = f64::NEG_INFINITY;
            for sample in &buckets {
                if sample.label("le") != Some("+Inf") {
                    prop_assert!(sample.value >= previous, "non-monotone in {text}");
                    previous = sample.value;
                }
            }
            let inf = buckets
                .iter()
                .find(|s| s.label("le") == Some("+Inf"))
                .expect("+Inf bucket");
            // Index prefixes make each family a single histogram, so the
            // one _count sample (labelled or not) belongs to these
            // buckets.
            let count_name = format!("{family}_count");
            let count = exposition
                .named(&count_name)
                .next()
                .expect("_count sample")
                .value;
            prop_assert_eq!(inf.value, count);
            prop_assert!(inf.value >= previous, "+Inf below last finite bucket");
        }
    }

    #[test]
    fn rendering_is_deterministic(values in proptest::collection::vec(any::<u64>(), 1..50)) {
        let metrics = Metrics::new();
        let h = metrics.histogram("latency.ns");
        for &v in &values {
            h.record(v);
        }
        metrics.counter("events").add(values.len() as u64);
        let snapshot = metrics.snapshot();
        prop_assert_eq!(render(&snapshot), render(&snapshot));
    }
}
