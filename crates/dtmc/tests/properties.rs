//! Property-based tests for the DTMC substrate.

use proptest::prelude::*;
use whart_dtmc::{classify, expected_visits, Dtmc, Pmf, SparseStochastic, ValueDistribution};

/// Strategy: a random row-stochastic matrix of `n` states where each row has
/// 1..=3 successors.
fn stochastic_rows(n: usize) -> impl Strategy<Value = Vec<Vec<(usize, f64)>>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(0..n, 1..=3usize),
            proptest::collection::vec(0.05f64..1.0, 3),
        ),
        n,
    )
    .prop_map(move |rows| {
        rows.into_iter()
            .map(|(targets, weights)| {
                let total: f64 = weights.iter().take(targets.len()).sum();
                targets
                    .iter()
                    .zip(&weights)
                    .map(|(&t, &w)| (t, w / total))
                    .collect::<Vec<_>>()
            })
            .collect()
    })
}

fn build_chain(rows: Vec<Vec<(usize, f64)>>) -> Dtmc {
    let mut b = Dtmc::builder();
    let ids: Vec<_> = (0..rows.len())
        .map(|i| b.add_state(format!("s{i}")))
        .collect();
    for (from, row) in rows.iter().enumerate() {
        let total: f64 = row.iter().map(|(_, p)| p).sum();
        for (k, &(to, p)) in row.iter().enumerate() {
            // Renormalize the last edge so the row is exactly stochastic.
            let p = if k + 1 == row.len() {
                p + (1.0 - total)
            } else {
                p
            };
            b.add_transition(ids[from], ids[to], p.clamp(0.0, 1.0))
                .unwrap();
        }
    }
    b.build().unwrap()
}

proptest! {
    #[test]
    fn left_mul_preserves_probability_mass(rows in (2usize..8).prop_flat_map(stochastic_rows)) {
        let m = SparseStochastic::from_rows(rows).unwrap();
        let n = m.len();
        let uniform = vec![1.0 / n as f64; n];
        let stepped = m.left_mul(&uniform).unwrap();
        let mass: f64 = stepped.iter().sum();
        prop_assert!((mass - 1.0).abs() < 1e-9);
        prop_assert!(stepped.iter().all(|p| (-1e-12..=1.0 + 1e-9).contains(p)));
    }

    #[test]
    fn transient_mass_is_conserved_over_many_steps(
        rows in (2usize..6).prop_flat_map(stochastic_rows),
        steps in 0usize..50,
    ) {
        let chain = build_chain(rows);
        let n = chain.len();
        let mut init = vec![0.0; n];
        init[0] = 1.0;
        let p = chain.transient(&init, steps).unwrap();
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn steady_state_is_fixed_point(rows in (2usize..6).prop_flat_map(stochastic_rows)) {
        let chain = build_chain(rows);
        if let Ok(pi) = chain.steady_state() {
            let stepped = chain.matrix().left_mul(&pi).unwrap();
            for (a, b) in pi.iter().zip(&stepped) {
                prop_assert!((a - b).abs() < 1e-8, "pi not stationary: {a} vs {b}");
            }
            prop_assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-8);
        }
    }

    #[test]
    fn convolution_mass_multiplies(
        p in 0.05f64..0.95,
        q in 0.05f64..0.95,
        la in 1usize..12,
        lb in 1usize..12,
    ) {
        let a = Pmf::geometric(p, la).unwrap();
        let b = Pmf::geometric(q, lb).unwrap();
        let c = a.convolve(&b);
        prop_assert!((c.total_mass() - a.total_mass() * b.total_mass()).abs() < 1e-12);
        prop_assert_eq!(c.len(), la + lb - 1);
    }

    #[test]
    fn convolution_is_commutative(
        p in 0.05f64..0.95,
        q in 0.05f64..0.95,
        n in 1u32..4,
    ) {
        let a = Pmf::geometric(p, 6).unwrap();
        let b = Pmf::negative_binomial(q, n, 5).unwrap();
        let ab = a.convolve(&b);
        let ba = b.convolve(&a);
        for i in 0..ab.len() {
            prop_assert!((ab.get(i) - ba.get(i)).abs() < 1e-12);
        }
    }

    #[test]
    fn negative_binomial_mass_never_exceeds_one(
        p in 0.0f64..=1.0,
        n in 1u32..6,
        len in 1usize..40,
    ) {
        let nb = Pmf::negative_binomial(p, n, len).unwrap();
        prop_assert!(nb.total_mass() <= 1.0 + 1e-9);
        prop_assert!(nb.as_slice().iter().all(|x| *x >= 0.0));
    }

    #[test]
    fn value_distribution_cdf_monotone(
        pairs in proptest::collection::vec((0.0f64..1000.0, 0.0f64..0.2), 1..20),
    ) {
        let d = ValueDistribution::new(pairs).unwrap();
        let mut last = 0.0;
        for (v, _) in d.iter() {
            let c = d.cdf(v);
            prop_assert!(c + 1e-12 >= last);
            last = c;
        }
        prop_assert!((d.cdf(f64::MAX) - d.total_mass()).abs() < 1e-9);
    }

    #[test]
    fn absorption_probabilities_sum_to_one(
        branch in 0.05f64..0.95,
        chain_len in 1usize..6,
    ) {
        // A birth chain ending in two absorbing states.
        let mut b = Dtmc::builder();
        let states: Vec<_> = (0..chain_len).map(|i| b.add_state(format!("t{i}"))).collect();
        let goal = b.add_state("goal");
        let discard = b.add_state("discard");
        for (i, &s) in states.iter().enumerate() {
            let next = if i + 1 < chain_len { states[i + 1] } else { goal };
            b.add_transition(s, next, branch).unwrap();
            b.add_transition(s, discard, 1.0 - branch).unwrap();
        }
        b.make_absorbing(goal).unwrap();
        b.make_absorbing(discard).unwrap();
        let chain = b.build().unwrap();
        let a = chain.absorption().unwrap();
        for s in chain.states() {
            let total = a.probability(s, goal) + a.probability(s, discard);
            prop_assert!((total - 1.0).abs() < 1e-9);
        }
        // Closed form: from the head, P(goal) = branch^chain_len.
        let head = states[0];
        prop_assert!((a.probability(head, goal) - branch.powi(chain_len as i32)).abs() < 1e-9);
    }
}

proptest! {
    #[test]
    fn classification_partitions_the_state_space(
        rows in (2usize..8).prop_flat_map(stochastic_rows),
    ) {
        let chain = build_chain(rows);
        let c = classify(&chain);
        // Every state appears in exactly one class.
        let mut seen = vec![0usize; chain.len()];
        for class in &c.classes {
            for s in class {
                seen[s.index()] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&n| n == 1));
        // At least one class is closed (a finite chain always has a
        // recurrent class).
        prop_assert!(c.closed.iter().any(|&b| b));
    }

    #[test]
    fn visit_counts_sum_to_absorption_time(
        branch in 0.1f64..0.9,
        chain_len in 1usize..6,
    ) {
        // Line of transient states draining into goal/discard.
        let mut b = Dtmc::builder();
        let states: Vec<_> = (0..chain_len).map(|i| b.add_state(format!("t{i}"))).collect();
        let goal = b.add_state("goal");
        let discard = b.add_state("discard");
        for (i, &s) in states.iter().enumerate() {
            let next = if i + 1 < chain_len { states[i + 1] } else { goal };
            b.add_transition(s, next, branch).unwrap();
            b.add_transition(s, discard, 1.0 - branch).unwrap();
        }
        b.make_absorbing(goal).unwrap();
        b.make_absorbing(discard).unwrap();
        let chain = b.build().unwrap();
        let absorption = chain.absorption().unwrap();
        for &start in &states {
            let visits = expected_visits(&chain, start).unwrap();
            let total: f64 = visits.iter().sum();
            prop_assert!((total - absorption.expected_steps(start)).abs() < 1e-9);
            prop_assert!(visits.iter().all(|v| *v >= 0.0));
        }
    }
}
