//! Sparse row-stochastic transition matrices.
//!
//! The path models produced by the WirelessHART construction are extremely
//! sparse (at most two successors per state), so transitions are stored in a
//! compressed sparse-row layout.

use crate::error::{DtmcError, Result};
use crate::linalg::DenseMatrix;

/// Tolerance used when checking that a row sums to one.
pub const STOCHASTIC_TOL: f64 = 1e-9;

/// A sparse square matrix whose rows are probability distributions.
///
/// Row `i` holds the outgoing transition probabilities of state `i`. Rows are
/// validated to be sub-stochastic on insertion and fully stochastic by
/// [`SparseStochastic::validate`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseStochastic {
    /// `row_starts[i]..row_starts[i+1]` indexes `cols`/`vals` for row `i`.
    row_starts: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl SparseStochastic {
    /// Builds a matrix from per-row transition lists.
    ///
    /// Each entry of `rows` is the list of `(target, probability)` pairs for
    /// one source state. Duplicate targets within a row are summed.
    ///
    /// # Errors
    ///
    /// Returns [`DtmcError::InvalidProbability`] for entries outside `[0, 1]`
    /// and [`DtmcError::StateOutOfRange`] for targets `>= rows.len()`.
    pub fn from_rows(rows: Vec<Vec<(usize, f64)>>) -> Result<Self> {
        let n = rows.len();
        let mut row_starts = Vec::with_capacity(n + 1);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        row_starts.push(0);
        for (from, mut row) in rows.into_iter().enumerate() {
            row.sort_unstable_by_key(|&(c, _)| c);
            let mut merged: Vec<(usize, f64)> = Vec::with_capacity(row.len());
            for (to, p) in row {
                if !p.is_finite() || !(0.0..=1.0 + STOCHASTIC_TOL).contains(&p) {
                    return Err(DtmcError::InvalidProbability { from, to, value: p });
                }
                if to >= n {
                    return Err(DtmcError::StateOutOfRange { state: to, len: n });
                }
                match merged.last_mut() {
                    Some(last) if last.0 == to => last.1 += p,
                    _ => merged.push((to, p)),
                }
            }
            for (to, p) in merged {
                if p > 0.0 {
                    cols.push(to);
                    vals.push(p);
                }
            }
            row_starts.push(cols.len());
        }
        Ok(SparseStochastic {
            row_starts,
            cols,
            vals,
        })
    }

    /// Number of states (rows).
    pub fn len(&self) -> usize {
        self.row_starts.len().saturating_sub(1)
    }

    /// Whether the matrix has no states.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of stored non-zero transitions.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// The `(target, probability)` pairs of one row.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.len()`.
    pub fn row(&self, row: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let range = self.row_starts[row]..self.row_starts[row + 1];
        self.cols[range.clone()]
            .iter()
            .copied()
            .zip(self.vals[range].iter().copied())
    }

    /// The probability of the transition `from -> to` (zero if absent).
    ///
    /// # Panics
    ///
    /// Panics if `from >= self.len()`.
    pub fn get(&self, from: usize, to: usize) -> f64 {
        self.row(from)
            .find(|&(c, _)| c == to)
            .map_or(0.0, |(_, p)| p)
    }

    /// Sum of one row, for stochasticity checks.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.len()`.
    pub fn row_sum(&self, row: usize) -> f64 {
        let range = self.row_starts[row]..self.row_starts[row + 1];
        self.vals[range].iter().sum()
    }

    /// Checks every row sums to one within [`STOCHASTIC_TOL`].
    ///
    /// # Errors
    ///
    /// Returns [`DtmcError::RowNotStochastic`] naming the first bad row.
    pub fn validate(&self) -> Result<()> {
        for state in 0..self.len() {
            let sum = self.row_sum(state);
            if (sum - 1.0).abs() > STOCHASTIC_TOL {
                return Err(DtmcError::RowNotStochastic { state, sum });
            }
        }
        Ok(())
    }

    /// Computes `p * M` for a row vector `p` (one step of transient analysis).
    ///
    /// # Errors
    ///
    /// Returns [`DtmcError::LengthMismatch`] if `p.len() != self.len()`.
    pub fn left_mul(&self, p: &[f64]) -> Result<Vec<f64>> {
        if p.len() != self.len() {
            return Err(DtmcError::LengthMismatch {
                expected: self.len(),
                actual: p.len(),
            });
        }
        let mut out = vec![0.0; self.len()];
        for (from, &mass) in p.iter().enumerate() {
            if mass == 0.0 {
                continue;
            }
            for (to, prob) in self.row(from) {
                out[to] += mass * prob;
            }
        }
        Ok(out)
    }

    /// Whether state `row` is absorbing (its only transition is a self-loop
    /// with probability one).
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.len()`.
    pub fn is_absorbing(&self, row: usize) -> bool {
        let mut entries = self.row(row);
        matches!(
            (entries.next(), entries.next()),
            (Some((to, p)), None) if to == row && (p - 1.0).abs() <= STOCHASTIC_TOL
        )
    }

    /// Indices of all absorbing states.
    pub fn absorbing_states(&self) -> Vec<usize> {
        (0..self.len()).filter(|&s| self.is_absorbing(s)).collect()
    }

    /// Converts to a dense matrix (intended for small chains and tests).
    pub fn to_dense(&self) -> DenseMatrix {
        let n = self.len();
        let mut m = DenseMatrix::zeros(n, n);
        for from in 0..n {
            for (to, p) in self.row(from) {
                m[(from, to)] += p;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state() -> SparseStochastic {
        // UP/DOWN link chain with p_fl = 0.3, p_rc = 0.9.
        SparseStochastic::from_rows(vec![vec![(0, 0.7), (1, 0.3)], vec![(0, 0.9), (1, 0.1)]])
            .unwrap()
    }

    #[test]
    fn rows_round_trip() {
        let m = two_state();
        assert_eq!(m.len(), 2);
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(0, 1), 0.3);
        assert_eq!(m.get(1, 0), 0.9);
        assert_eq!(m.get(1, 1), 0.1);
        m.validate().unwrap();
    }

    #[test]
    fn duplicate_targets_are_merged() {
        let m = SparseStochastic::from_rows(vec![vec![(0, 0.25), (0, 0.75)]]).unwrap();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 0), 1.0);
    }

    #[test]
    fn rejects_out_of_range_target() {
        let err = SparseStochastic::from_rows(vec![vec![(3, 1.0)]]).unwrap_err();
        assert_eq!(err, DtmcError::StateOutOfRange { state: 3, len: 1 });
    }

    #[test]
    fn rejects_negative_probability() {
        let err = SparseStochastic::from_rows(vec![vec![(0, -0.1)]]).unwrap_err();
        assert!(matches!(err, DtmcError::InvalidProbability { .. }));
    }

    #[test]
    fn validate_flags_substochastic_row() {
        let m = SparseStochastic::from_rows(vec![vec![(0, 0.5)]]).unwrap();
        assert!(matches!(
            m.validate(),
            Err(DtmcError::RowNotStochastic { state: 0, .. })
        ));
    }

    #[test]
    fn left_mul_preserves_mass() {
        let m = two_state();
        let p = m.left_mul(&[0.5, 0.5]).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // 0.5*0.7 + 0.5*0.9 = 0.8 up.
        assert!((p[0] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn absorbing_detection() {
        let m = SparseStochastic::from_rows(vec![
            vec![(1, 1.0)],
            vec![(1, 1.0)],
            vec![(0, 0.5), (2, 0.5)],
        ])
        .unwrap();
        assert!(!m.is_absorbing(0));
        assert!(m.is_absorbing(1));
        assert!(!m.is_absorbing(2)); // self-loop of 0.5 is not absorbing
        assert_eq!(m.absorbing_states(), vec![1]);
    }

    #[test]
    fn zero_probability_edges_are_dropped() {
        let m = SparseStochastic::from_rows(vec![vec![(0, 0.0), (0, 1.0)]]).unwrap();
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn to_dense_matches_sparse() {
        let m = two_state();
        let d = m.to_dense();
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(d[(i, j)], m.get(i, j));
            }
        }
    }
}
