//! Structural classification of chains: communicating classes,
//! irreducibility, aperiodicity and expected visit counts.
//!
//! The path models of the WirelessHART paper are absorbing by
//! construction; these analyses let callers *verify* such structural
//! assumptions instead of trusting them, and support the generic DTMC
//! use-cases of the substrate.

use crate::chain::{Dtmc, StateId};
use crate::error::Result;
use crate::linalg::DenseMatrix;

/// The communicating classes of a chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Classification {
    /// Strongly connected components in reverse topological order
    /// (successors before predecessors); each is a sorted list of states.
    pub classes: Vec<Vec<StateId>>,
    /// For each class, whether it is closed (no transition leaves it).
    pub closed: Vec<bool>,
}

impl Classification {
    /// The class index of a state.
    ///
    /// # Panics
    ///
    /// Panics if `state` does not belong to the classified chain.
    pub fn class_of(&self, state: StateId) -> usize {
        self.classes
            .iter()
            .position(|c| c.contains(&state))
            .expect("state belongs to the classified chain")
    }

    /// Whether the chain is irreducible (exactly one class).
    pub fn is_irreducible(&self) -> bool {
        self.classes.len() == 1
    }

    /// The recurrent (closed) classes.
    pub fn recurrent_classes(&self) -> impl Iterator<Item = &[StateId]> {
        self.classes
            .iter()
            .zip(&self.closed)
            .filter(|(_, closed)| **closed)
            .map(|(c, _)| c.as_slice())
    }

    /// The transient states (members of open classes).
    pub fn transient_states(&self) -> Vec<StateId> {
        let mut out: Vec<StateId> = self
            .classes
            .iter()
            .zip(&self.closed)
            .filter(|(_, closed)| !**closed)
            .flat_map(|(c, _)| c.iter().copied())
            .collect();
        out.sort();
        out
    }
}

/// Computes the communicating classes (strongly connected components) of a
/// chain with an iterative Tarjan algorithm, and marks which are closed.
pub fn classify(chain: &Dtmc) -> Classification {
    let n = chain.len();
    // Iterative Tarjan.
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut classes: Vec<Vec<StateId>> = Vec::new();

    // Explicit DFS stack: (node, iterator position over successors).
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut call_stack: Vec<(usize, Vec<usize>, usize)> = Vec::new();
        let successors: Vec<usize> = chain
            .successors(StateId(start))
            .map(|(s, _)| s.index())
            .collect();
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;
        call_stack.push((start, successors, 0));
        while let Some((node, succ, pos)) = call_stack.last_mut() {
            if *pos < succ.len() {
                let next = succ[*pos];
                *pos += 1;
                if index[next] == usize::MAX {
                    index[next] = next_index;
                    low[next] = next_index;
                    next_index += 1;
                    stack.push(next);
                    on_stack[next] = true;
                    let succ_next: Vec<usize> = chain
                        .successors(StateId(next))
                        .map(|(s, _)| s.index())
                        .collect();
                    call_stack.push((next, succ_next, 0));
                } else if on_stack[next] {
                    low[*node] = low[*node].min(index[next]);
                }
            } else {
                let node = *node;
                if low[node] == index[node] {
                    let mut class = Vec::new();
                    loop {
                        let top = stack.pop().expect("tarjan stack invariant");
                        on_stack[top] = false;
                        class.push(StateId(top));
                        if top == node {
                            break;
                        }
                    }
                    class.sort();
                    classes.push(class);
                }
                call_stack.pop();
                if let Some((parent, _, _)) = call_stack.last() {
                    low[*parent] = low[*parent].min(low[node]);
                }
            }
        }
    }

    let closed = classes
        .iter()
        .map(|class| {
            class.iter().all(|&s| {
                chain
                    .successors(s)
                    .all(|(to, p)| p == 0.0 || class.binary_search(&to).is_ok())
            })
        })
        .collect();
    Classification { classes, closed }
}

/// The period of a state: the gcd of the lengths of all cycles through it
/// (1 = aperiodic). Computed by BFS levelling within the state's class.
///
/// # Panics
///
/// Panics if `state` does not belong to the chain.
pub fn period(chain: &Dtmc, state: StateId) -> u64 {
    let classification = classify(chain);
    let class = &classification.classes[classification.class_of(state)];
    // BFS from `state` within the class; the period is the gcd of
    // (level(u) + 1 - level(v)) over intra-class edges u -> v.
    let mut level = vec![None::<u64>; chain.len()];
    level[state.index()] = Some(0);
    let mut queue = std::collections::VecDeque::from([state]);
    let mut g: u64 = 0;
    while let Some(u) = queue.pop_front() {
        let lu = level[u.index()].expect("queued states have levels");
        for (v, p) in chain.successors(u) {
            if p == 0.0 || class.binary_search(&v).is_err() {
                continue;
            }
            match level[v.index()] {
                None => {
                    level[v.index()] = Some(lu + 1);
                    queue.push_back(v);
                }
                Some(lv) => {
                    let diff = (lu + 1) as i64 - lv as i64;
                    g = gcd(g, diff.unsigned_abs());
                }
            }
        }
    }
    if g == 0 {
        0 // no cycle through the state (transient singleton)
    } else {
        g
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Expected number of visits to each transient state before absorption,
/// starting from `from` — the corresponding row of the fundamental matrix
/// `N = (I - Q)^-1`. Absorbing/recurrent states report 0.
///
/// # Errors
///
/// Returns a solver error if some transient state cannot reach a recurrent
/// class (cannot happen in a well-formed chain).
pub fn expected_visits(chain: &Dtmc, from: StateId) -> Result<Vec<f64>> {
    let classification = classify(chain);
    let transient = classification.transient_states();
    let t = transient.len();
    let mut pos = vec![usize::MAX; chain.len()];
    for (i, s) in transient.iter().enumerate() {
        pos[s.index()] = i;
    }
    if t == 0 || pos[from.index()] == usize::MAX {
        return Ok(vec![0.0; chain.len()]);
    }
    // Solve x (I - Q) = e_from, i.e. (I - Q)^T x = e_from.
    let mut a = DenseMatrix::identity(t);
    for (i, &s) in transient.iter().enumerate() {
        for (to, p) in chain.successors(s) {
            if pos[to.index()] != usize::MAX {
                a[(pos[to.index()], i)] -= p;
            }
        }
    }
    let mut b = vec![0.0; t];
    b[pos[from.index()]] = 1.0;
    let x = a.solve(b)?;
    let mut out = vec![0.0; chain.len()];
    for (i, &s) in transient.iter().enumerate() {
        out[s.index()] = x[i];
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Dtmc;

    fn absorbing_chain() -> (Dtmc, StateId, StateId, StateId) {
        let mut b = Dtmc::builder();
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let goal = b.add_state("goal");
        b.add_transition(s0, s1, 0.5).unwrap();
        b.add_transition(s0, s0, 0.5).unwrap();
        b.add_transition(s1, goal, 0.5).unwrap();
        b.add_transition(s1, s0, 0.5).unwrap();
        b.make_absorbing(goal).unwrap();
        (b.build().unwrap(), s0, s1, goal)
    }

    #[test]
    fn classifies_absorbing_chain() {
        let (chain, s0, s1, goal) = absorbing_chain();
        let c = classify(&chain);
        assert_eq!(c.classes.len(), 2);
        assert!(!c.is_irreducible());
        // s0 and s1 communicate (s0 -> s1 -> s0); goal is its own closed class.
        assert_eq!(c.class_of(s0), c.class_of(s1));
        assert_ne!(c.class_of(s0), c.class_of(goal));
        let recurrent: Vec<_> = c.recurrent_classes().collect();
        assert_eq!(recurrent, vec![&[goal][..]]);
        assert_eq!(c.transient_states(), vec![s0, s1]);
    }

    #[test]
    fn irreducible_two_state_chain() {
        let mut b = Dtmc::builder();
        let up = b.add_state("UP");
        let down = b.add_state("DOWN");
        b.add_transition(up, up, 0.7).unwrap();
        b.add_transition(up, down, 0.3).unwrap();
        b.add_transition(down, up, 0.9).unwrap();
        b.add_transition(down, down, 0.1).unwrap();
        let chain = b.build().unwrap();
        let c = classify(&chain);
        assert!(c.is_irreducible());
        assert!(c.closed[0]);
        assert_eq!(period(&chain, up), 1); // self-loops make it aperiodic
    }

    #[test]
    fn period_of_a_cycle() {
        // A deterministic 3-cycle has period 3.
        let mut b = Dtmc::builder();
        let states: Vec<_> = (0..3).map(|i| b.add_state(format!("c{i}"))).collect();
        for i in 0..3 {
            b.add_transition(states[i], states[(i + 1) % 3], 1.0)
                .unwrap();
        }
        let chain = b.build().unwrap();
        assert!(classify(&chain).is_irreducible());
        assert_eq!(period(&chain, states[0]), 3);
    }

    #[test]
    fn period_of_transient_singleton_is_zero() {
        let mut b = Dtmc::builder();
        let s = b.add_state("s");
        let a = b.add_state("a");
        b.add_transition(s, a, 1.0).unwrap();
        b.make_absorbing(a).unwrap();
        let chain = b.build().unwrap();
        assert_eq!(period(&chain, s), 0);
        assert_eq!(period(&chain, a), 1);
    }

    #[test]
    fn expected_visits_match_closed_form() {
        // From s0: N[0][0] = expected visits to s0. With the chain above,
        // the fundamental matrix of Q = [[0.5, 0.5], [0.5, 0]] is
        // (I-Q)^-1 = [[4, 2], [2, 2]].
        let (chain, s0, s1, goal) = absorbing_chain();
        let visits = expected_visits(&chain, s0).unwrap();
        assert!((visits[s0.index()] - 4.0).abs() < 1e-12);
        assert!((visits[s1.index()] - 2.0).abs() < 1e-12);
        assert_eq!(visits[goal.index()], 0.0);
        let visits = expected_visits(&chain, s1).unwrap();
        assert!((visits[s0.index()] - 2.0).abs() < 1e-12);
        assert!((visits[s1.index()] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn expected_visits_from_recurrent_state_is_zero() {
        let (chain, _, _, goal) = absorbing_chain();
        let visits = expected_visits(&chain, goal).unwrap();
        assert!(visits.iter().all(|v| *v == 0.0));
    }

    #[test]
    fn visits_sum_equals_expected_absorption_time() {
        // sum_j N[i][j] = expected steps to absorption from i.
        let (chain, s0, _, _) = absorbing_chain();
        let visits = expected_visits(&chain, s0).unwrap();
        let absorption = chain.absorption().unwrap();
        let total: f64 = visits.iter().sum();
        assert!((total - absorption.expected_steps(s0)).abs() < 1e-12);
    }
}
