//! Small dense linear algebra used by the absorbing and steady-state solvers.
//!
//! The chains produced by the WirelessHART path model are small (hundreds of
//! states) and their fundamental-matrix systems are smaller still, so a dense
//! Gaussian elimination with partial pivoting is both simple and fast enough.
//! Implemented here rather than pulled from `nalgebra` to keep the substrate
//! dependency-free and the numerics auditable.

use crate::error::{DtmcError, Result};

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a zero matrix of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows
            .checked_mul(cols)
            .expect("matrix shape overflows usize");
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates an identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`DtmcError::LengthMismatch`] if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(DtmcError::LengthMismatch {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(DenseMatrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Multiplies `self` by a column vector.
    ///
    /// # Errors
    ///
    /// Returns [`DtmcError::LengthMismatch`] if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(DtmcError::LengthMismatch {
                expected: self.cols,
                actual: v.len(),
            });
        }
        let mut out = vec![0.0; self.rows];
        for (i, out_i) in out.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *out_i = row.iter().zip(v).map(|(a, b)| a * b).sum();
        }
        Ok(out)
    }

    /// Solves `A x = b` for each right-hand side column in `rhs`, in place,
    /// via Gaussian elimination with partial pivoting. `rhs` is a list of
    /// column vectors; each is replaced by the corresponding solution.
    ///
    /// # Errors
    ///
    /// Returns [`DtmcError::SingularSystem`] if a pivot underflows, and
    /// [`DtmcError::LengthMismatch`] if shapes disagree.
    pub fn solve_many(mut self, rhs: &mut [Vec<f64>]) -> Result<()> {
        if self.rows != self.cols {
            return Err(DtmcError::LengthMismatch {
                expected: self.rows,
                actual: self.cols,
            });
        }
        let n = self.rows;
        for b in rhs.iter() {
            if b.len() != n {
                return Err(DtmcError::LengthMismatch {
                    expected: n,
                    actual: b.len(),
                });
            }
        }
        for col in 0..n {
            // Partial pivoting: pick the largest magnitude pivot below the diagonal.
            let pivot_row = (col..n)
                .max_by(|&a, &b| {
                    self[(a, col)]
                        .abs()
                        .partial_cmp(&self[(b, col)].abs())
                        .expect("pivot comparison on NaN")
                })
                .expect("non-empty pivot range");
            let pivot = self[(pivot_row, col)];
            if pivot.abs() < 1e-300 {
                return Err(DtmcError::SingularSystem);
            }
            if pivot_row != col {
                self.swap_rows(pivot_row, col);
                for b in rhs.iter_mut() {
                    b.swap(pivot_row, col);
                }
            }
            for row in col + 1..n {
                let factor = self[(row, col)] / pivot;
                if factor == 0.0 {
                    continue;
                }
                for k in col..n {
                    let v = self[(col, k)];
                    self[(row, k)] -= factor * v;
                }
                for b in rhs.iter_mut() {
                    let v = b[col];
                    b[row] -= factor * v;
                }
            }
        }
        // Back substitution.
        for b in rhs.iter_mut() {
            for row in (0..n).rev() {
                let mut acc = b[row];
                for k in row + 1..n {
                    acc -= self[(row, k)] * b[k];
                }
                b[row] = acc / self[(row, row)];
            }
        }
        Ok(())
    }

    /// Solves `A x = b` for a single right-hand side, consuming `self`.
    ///
    /// # Errors
    ///
    /// See [`DenseMatrix::solve_many`].
    pub fn solve(self, b: Vec<f64>) -> Result<Vec<f64>> {
        let mut rhs = [b];
        self.solve_many(&mut rhs)?;
        let [x] = rhs;
        Ok(x)
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (head, tail) = self.data.split_at_mut(hi * self.cols);
        head[lo * self.cols..(lo + 1) * self.cols].swap_with_slice(&mut tail[..self.cols]);
    }
}

impl std::ops::Index<(usize, usize)> for DenseMatrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMatrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solves_to_rhs() {
        let a = DenseMatrix::identity(4);
        let x = a.solve(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn solves_known_system() {
        // 2x + y = 5 ; x + 3y = 10  =>  x = 1, y = 3
        let a = DenseMatrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, 3.0]).unwrap();
        let x = a.solve(vec![5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // First pivot entry is zero; requires a row swap.
        let a = DenseMatrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let x = a.solve(vec![2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_system_is_detected() {
        let a = DenseMatrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        assert_eq!(
            a.solve(vec![1.0, 2.0]).unwrap_err(),
            DtmcError::SingularSystem
        );
    }

    #[test]
    fn solve_many_shares_elimination() {
        let a = DenseMatrix::from_rows(2, 2, vec![4.0, 1.0, 1.0, 3.0]).unwrap();
        let mut rhs = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        a.solve_many(&mut rhs).unwrap();
        // Result columns form the inverse of A; check A * inv = I.
        let a = DenseMatrix::from_rows(2, 2, vec![4.0, 1.0, 1.0, 3.0]).unwrap();
        let c0 = a.mul_vec(&rhs[0]).unwrap();
        let c1 = a.mul_vec(&rhs[1]).unwrap();
        assert!((c0[0] - 1.0).abs() < 1e-12 && c0[1].abs() < 1e-12);
        assert!((c1[1] - 1.0).abs() < 1e-12 && c1[0].abs() < 1e-12);
    }

    #[test]
    fn mul_vec_checks_length() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            a.mul_vec(&[1.0]),
            Err(DtmcError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn from_rows_checks_length() {
        assert!(DenseMatrix::from_rows(2, 2, vec![0.0; 3]).is_err());
    }

    #[test]
    fn larger_random_like_system_round_trips() {
        // Build a diagonally dominant 8x8 system with a known solution.
        let n = 8;
        let mut a = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = if i == j {
                    10.0 + i as f64
                } else {
                    1.0 / (1.0 + (i + 2 * j) as f64)
                };
            }
        }
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - 3.5).collect();
        let b = a.mul_vec(&x_true).unwrap();
        let x = a.solve(b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10, "{xi} vs {ti}");
        }
    }
}
