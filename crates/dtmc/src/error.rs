//! Error types for the DTMC substrate.

use std::fmt;

/// Errors produced while constructing or analysing a Markov chain.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DtmcError {
    /// A transition probability was outside `[0, 1]` or not finite.
    InvalidProbability {
        /// Source state of the offending transition.
        from: usize,
        /// Target state of the offending transition.
        to: usize,
        /// The offending value.
        value: f64,
    },
    /// A row of the transition matrix does not sum to one.
    RowNotStochastic {
        /// Index of the offending row.
        state: usize,
        /// The actual row sum.
        sum: f64,
    },
    /// A state index was out of range.
    StateOutOfRange {
        /// The offending index.
        state: usize,
        /// Number of states in the chain.
        len: usize,
    },
    /// The initial distribution does not match the chain or does not sum to one.
    InvalidInitialDistribution {
        /// Explanation of the defect.
        reason: String,
    },
    /// A linear system was singular (or numerically so) and could not be solved.
    SingularSystem,
    /// The requested analysis needs at least one state.
    EmptyChain,
    /// The chain has no absorbing state but an absorbing analysis was requested.
    NoAbsorbingStates,
    /// Distribution support and probability vectors have mismatched lengths.
    LengthMismatch {
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
}

impl fmt::Display for DtmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DtmcError::InvalidProbability { from, to, value } => write!(
                f,
                "invalid transition probability {value} on edge {from} -> {to}"
            ),
            DtmcError::RowNotStochastic { state, sum } => {
                write!(f, "row {state} sums to {sum}, expected 1")
            }
            DtmcError::StateOutOfRange { state, len } => {
                write!(
                    f,
                    "state index {state} out of range for chain of {len} states"
                )
            }
            DtmcError::InvalidInitialDistribution { reason } => {
                write!(f, "invalid initial distribution: {reason}")
            }
            DtmcError::SingularSystem => write!(f, "linear system is singular"),
            DtmcError::EmptyChain => write!(f, "chain has no states"),
            DtmcError::NoAbsorbingStates => write!(f, "chain has no absorbing states"),
            DtmcError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
        }
    }
}

impl std::error::Error for DtmcError {}

/// Convenient result alias for DTMC operations.
pub type Result<T> = std::result::Result<T, DtmcError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            DtmcError::InvalidProbability {
                from: 0,
                to: 1,
                value: 1.5,
            },
            DtmcError::RowNotStochastic { state: 3, sum: 0.9 },
            DtmcError::StateOutOfRange { state: 7, len: 4 },
            DtmcError::InvalidInitialDistribution {
                reason: "sums to 0".into(),
            },
            DtmcError::SingularSystem,
            DtmcError::EmptyChain,
            DtmcError::NoAbsorbingStates,
            DtmcError::LengthMismatch {
                expected: 2,
                actual: 3,
            },
        ];
        for e in errors {
            let text = e.to_string();
            assert!(!text.is_empty());
            assert!(text.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DtmcError>();
    }
}
