//! Discrete-time Markov chain substrate for the WirelessHART performance
//! model.
//!
//! This crate provides the generic machinery the hierarchical model of
//! Remke & Wu (DSN 2013) is built on:
//!
//! * [`SparseStochastic`] — validated sparse row-stochastic matrices;
//! * [`Dtmc`] — labelled chains with transient, steady-state and
//!   absorbing-state analysis;
//! * [`Pmf`] / [`ValueDistribution`] — finite discrete distributions with
//!   the convolution used for path composition (Eq. 12 of the paper);
//! * [`dot`] — Graphviz export in the style of the paper's Figs. 4-5;
//! * [`DenseMatrix`] — the small dense solver backing the analyses.
//!
//! # Example
//!
//! The paper's two-state link model, analysed for its stationary
//! availability (Eq. 4):
//!
//! ```
//! use whart_dtmc::Dtmc;
//!
//! # fn main() -> Result<(), whart_dtmc::DtmcError> {
//! let mut b = Dtmc::builder();
//! let up = b.add_state("UP");
//! let down = b.add_state("DOWN");
//! b.add_transition(up, up, 0.9034)?;
//! b.add_transition(up, down, 0.0966)?;
//! b.add_transition(down, up, 0.9)?;
//! b.add_transition(down, down, 0.1)?;
//! let link = b.build()?;
//!
//! let pi = link.steady_state()?;
//! assert!((pi[up.index()] - 0.9 / (0.9 + 0.0966)).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chain;
mod dist;
mod error;
mod linalg;
mod matrix;

pub mod classify;
pub mod dot;

pub use chain::{Absorption, Dtmc, DtmcBuilder, StateId};
pub use classify::{classify, expected_visits, period, Classification};
pub use dist::{Pmf, ValueDistribution};
pub use error::{DtmcError, Result};
pub use linalg::DenseMatrix;
pub use matrix::{SparseStochastic, STOCHASTIC_TOL};
