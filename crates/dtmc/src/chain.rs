//! The labelled discrete-time Markov chain type and its analyses.

use crate::dist::Pmf;
use crate::error::{DtmcError, Result};
use crate::linalg::DenseMatrix;
use crate::matrix::SparseStochastic;

/// Opaque identifier of a state inside one [`Dtmc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub(crate) usize);

impl StateId {
    /// The underlying dense index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for StateId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A finite, time-homogeneous discrete-time Markov chain with string-labelled
/// states.
///
/// Use [`Dtmc::builder`] to construct one:
///
/// ```
/// use whart_dtmc::Dtmc;
///
/// # fn main() -> Result<(), whart_dtmc::DtmcError> {
/// let mut b = Dtmc::builder();
/// let up = b.add_state("UP");
/// let down = b.add_state("DOWN");
/// b.add_transition(up, up, 0.7)?;
/// b.add_transition(up, down, 0.3)?;
/// b.add_transition(down, up, 0.9)?;
/// b.add_transition(down, down, 0.1)?;
/// let link = b.build()?;
/// let pi = link.steady_state()?;
/// assert!((pi[up.index()] - 0.75).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dtmc {
    labels: Vec<String>,
    matrix: SparseStochastic,
}

impl Dtmc {
    /// Starts building a chain.
    pub fn builder() -> DtmcBuilder {
        DtmcBuilder::default()
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.matrix.len()
    }

    /// Whether the chain has no states.
    pub fn is_empty(&self) -> bool {
        self.matrix.is_empty()
    }

    /// Number of non-zero transitions.
    pub fn transition_count(&self) -> usize {
        self.matrix.nnz()
    }

    /// The label of a state.
    ///
    /// # Panics
    ///
    /// Panics if `state` does not belong to this chain.
    pub fn label(&self, state: StateId) -> &str {
        &self.labels[state.0]
    }

    /// Looks a state up by label (first match).
    pub fn state_by_label(&self, label: &str) -> Option<StateId> {
        self.labels.iter().position(|l| l == label).map(StateId)
    }

    /// Iterates over all states.
    pub fn states(&self) -> impl Iterator<Item = StateId> {
        (0..self.len()).map(StateId)
    }

    /// The transition probability `from -> to`.
    ///
    /// # Panics
    ///
    /// Panics if `from` does not belong to this chain.
    pub fn probability(&self, from: StateId, to: StateId) -> f64 {
        self.matrix.get(from.0, to.0)
    }

    /// The successors of a state with their probabilities.
    ///
    /// # Panics
    ///
    /// Panics if `state` does not belong to this chain.
    pub fn successors(&self, state: StateId) -> impl Iterator<Item = (StateId, f64)> + '_ {
        self.matrix.row(state.0).map(|(s, p)| (StateId(s), p))
    }

    /// Borrow the underlying sparse matrix.
    pub fn matrix(&self) -> &SparseStochastic {
        &self.matrix
    }

    /// Whether a state is absorbing.
    ///
    /// # Panics
    ///
    /// Panics if `state` does not belong to this chain.
    pub fn is_absorbing(&self, state: StateId) -> bool {
        self.matrix.is_absorbing(state.0)
    }

    /// All absorbing states.
    pub fn absorbing_states(&self) -> Vec<StateId> {
        self.matrix
            .absorbing_states()
            .into_iter()
            .map(StateId)
            .collect()
    }

    /// The distribution after `steps` transitions from `initial`.
    ///
    /// # Errors
    ///
    /// Returns [`DtmcError::InvalidInitialDistribution`] if `initial` has the
    /// wrong length or does not sum to one.
    pub fn transient(&self, initial: &[f64], steps: usize) -> Result<Vec<f64>> {
        self.check_initial(initial)?;
        let mut p = initial.to_vec();
        for _ in 0..steps {
            p = self.matrix.left_mul(&p).expect("validated length");
        }
        Ok(p)
    }

    /// The full trajectory `p(0), p(1), ..., p(steps)` of transient
    /// distributions.
    ///
    /// # Errors
    ///
    /// See [`Dtmc::transient`].
    pub fn transient_trajectory(&self, initial: &[f64], steps: usize) -> Result<Vec<Vec<f64>>> {
        self.check_initial(initial)?;
        let mut out = Vec::with_capacity(steps + 1);
        out.push(initial.to_vec());
        for _ in 0..steps {
            let next = self
                .matrix
                .left_mul(out.last().expect("non-empty"))
                .expect("length");
            out.push(next);
        }
        Ok(out)
    }

    /// The unique stationary distribution `pi` with `pi P = pi`.
    ///
    /// Solved densely; intended for small chains (links, reduced models). For
    /// chains with several closed classes the returned solution is whichever
    /// the elimination finds — callers should ensure irreducibility.
    ///
    /// # Errors
    ///
    /// Returns [`DtmcError::EmptyChain`] for an empty chain and
    /// [`DtmcError::SingularSystem`] if elimination fails.
    pub fn steady_state(&self) -> Result<Vec<f64>> {
        let n = self.len();
        if n == 0 {
            return Err(DtmcError::EmptyChain);
        }
        // Solve (P^T - I) pi = 0 with the last equation replaced by sum(pi) = 1.
        let mut a = DenseMatrix::zeros(n, n);
        for from in 0..n {
            for (to, p) in self.matrix.row(from) {
                a[(to, from)] += p;
            }
            a[(from, from)] -= 1.0;
        }
        for col in 0..n {
            a[(n - 1, col)] = 1.0;
        }
        let mut b = vec![0.0; n];
        b[n - 1] = 1.0;
        let pi = a.solve(b)?;
        Ok(pi)
    }

    /// Absorbing-chain analysis: for every transient state, the probability
    /// of ending in each absorbing state and the expected number of steps to
    /// absorption.
    ///
    /// # Errors
    ///
    /// Returns [`DtmcError::NoAbsorbingStates`] if the chain has none, and
    /// [`DtmcError::SingularSystem`] if some transient state cannot reach any
    /// absorbing state (the fundamental system is then singular).
    pub fn absorption(&self) -> Result<Absorption> {
        let absorbing = self.matrix.absorbing_states();
        if absorbing.is_empty() {
            return Err(DtmcError::NoAbsorbingStates);
        }
        let transient: Vec<usize> = (0..self.len())
            .filter(|s| !self.matrix.is_absorbing(*s))
            .collect();
        let t = transient.len();
        let mut transient_pos = vec![usize::MAX; self.len()];
        for (i, &s) in transient.iter().enumerate() {
            transient_pos[s] = i;
        }
        let mut absorbing_pos = vec![usize::MAX; self.len()];
        for (j, &s) in absorbing.iter().enumerate() {
            absorbing_pos[s] = j;
        }
        // (I - Q) with Q the transient-to-transient block.
        let mut i_minus_q = DenseMatrix::identity(t);
        // R: transient-to-absorbing block, stored column-wise as rhs vectors.
        let mut rhs: Vec<Vec<f64>> = vec![vec![0.0; t]; absorbing.len()];
        for (row, &s) in transient.iter().enumerate() {
            for (to, p) in self.matrix.row(s) {
                if transient_pos[to] != usize::MAX {
                    i_minus_q[(row, transient_pos[to])] -= p;
                } else {
                    rhs[absorbing_pos[to]][row] += p;
                }
            }
        }
        // Expected steps: (I - Q) tau = 1.
        let mut all_rhs = rhs;
        all_rhs.push(vec![1.0; t]);
        i_minus_q.solve_many(&mut all_rhs)?;
        let expected_steps_t = all_rhs.pop().expect("pushed above");
        let probs_cols = all_rhs;

        let mut probabilities = vec![vec![0.0; absorbing.len()]; self.len()];
        let mut expected_steps = vec![0.0; self.len()];
        for (j, &s) in absorbing.iter().enumerate() {
            probabilities[s][j] = 1.0;
        }
        for (row, &s) in transient.iter().enumerate() {
            for (j, col) in probs_cols.iter().enumerate() {
                probabilities[s][j] = col[row];
            }
            expected_steps[s] = expected_steps_t[row];
        }
        Ok(Absorption {
            absorbing: absorbing.into_iter().map(StateId).collect(),
            probabilities,
            expected_steps,
        })
    }

    fn check_initial(&self, initial: &[f64]) -> Result<()> {
        if initial.len() != self.len() {
            return Err(DtmcError::InvalidInitialDistribution {
                reason: format!("length {} != state count {}", initial.len(), self.len()),
            });
        }
        let sum: f64 = initial.iter().sum();
        if (sum - 1.0).abs() > 1e-9 || initial.iter().any(|p| *p < 0.0 || !p.is_finite()) {
            return Err(DtmcError::InvalidInitialDistribution {
                reason: format!("entries must be in [0,1] and sum to 1 (sum = {sum})"),
            });
        }
        Ok(())
    }
}

/// The result of [`Dtmc::absorption`].
#[derive(Debug, Clone, PartialEq)]
pub struct Absorption {
    absorbing: Vec<StateId>,
    /// `probabilities[s][j]`: probability that a walk from state `s` is
    /// absorbed in `absorbing[j]`.
    probabilities: Vec<Vec<f64>>,
    expected_steps: Vec<f64>,
}

impl Absorption {
    /// The absorbing states, in the order used by [`Absorption::probability`].
    pub fn absorbing_states(&self) -> &[StateId] {
        &self.absorbing
    }

    /// Probability that a walk from `from` is absorbed in `target`.
    ///
    /// Returns zero if `target` is not absorbing.
    ///
    /// # Panics
    ///
    /// Panics if `from` does not belong to the analysed chain.
    pub fn probability(&self, from: StateId, target: StateId) -> f64 {
        match self.absorbing.iter().position(|&s| s == target) {
            Some(j) => self.probabilities[from.0][j],
            None => 0.0,
        }
    }

    /// Absorption probabilities from `from` as a [`Pmf`] over the absorbing
    /// states (in [`Absorption::absorbing_states`] order).
    ///
    /// # Panics
    ///
    /// Panics if `from` does not belong to the analysed chain.
    pub fn distribution_from(&self, from: StateId) -> Pmf {
        self.probabilities[from.0].iter().copied().collect()
    }

    /// Expected number of steps until absorption starting from `from`
    /// (zero for absorbing states).
    ///
    /// # Panics
    ///
    /// Panics if `from` does not belong to the analysed chain.
    pub fn expected_steps(&self, from: StateId) -> f64 {
        self.expected_steps[from.0]
    }
}

/// Incremental builder for [`Dtmc`]; see [`Dtmc::builder`].
#[derive(Debug, Clone, Default)]
pub struct DtmcBuilder {
    labels: Vec<String>,
    rows: Vec<Vec<(usize, f64)>>,
}

impl DtmcBuilder {
    /// Adds a state and returns its id.
    pub fn add_state(&mut self, label: impl Into<String>) -> StateId {
        self.labels.push(label.into());
        self.rows.push(Vec::new());
        StateId(self.labels.len() - 1)
    }

    /// Number of states added so far.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether no states have been added yet.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Adds a transition. Probabilities on duplicate edges accumulate.
    ///
    /// # Errors
    ///
    /// Returns [`DtmcError::StateOutOfRange`] for unknown states and
    /// [`DtmcError::InvalidProbability`] for probabilities outside `[0, 1]`.
    pub fn add_transition(&mut self, from: StateId, to: StateId, p: f64) -> Result<&mut Self> {
        let n = self.labels.len();
        for s in [from.0, to.0] {
            if s >= n {
                return Err(DtmcError::StateOutOfRange { state: s, len: n });
            }
        }
        if !p.is_finite() || !(0.0..=1.0).contains(&p) {
            return Err(DtmcError::InvalidProbability {
                from: from.0,
                to: to.0,
                value: p,
            });
        }
        self.rows[from.0].push((to.0, p));
        Ok(self)
    }

    /// Marks a state absorbing (self-loop with probability one).
    ///
    /// # Errors
    ///
    /// Returns [`DtmcError::StateOutOfRange`] for unknown states.
    pub fn make_absorbing(&mut self, state: StateId) -> Result<&mut Self> {
        self.add_transition(state, state, 1.0)
    }

    /// Finalizes the chain, validating that every row is stochastic.
    ///
    /// # Errors
    ///
    /// Returns [`DtmcError::RowNotStochastic`] naming the first bad state.
    pub fn build(self) -> Result<Dtmc> {
        let matrix = SparseStochastic::from_rows(self.rows)?;
        matrix.validate()?;
        Ok(Dtmc {
            labels: self.labels,
            matrix,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link_chain(p_fl: f64, p_rc: f64) -> Dtmc {
        let mut b = Dtmc::builder();
        let up = b.add_state("UP");
        let down = b.add_state("DOWN");
        b.add_transition(up, up, 1.0 - p_fl).unwrap();
        b.add_transition(up, down, p_fl).unwrap();
        b.add_transition(down, up, p_rc).unwrap();
        b.add_transition(down, down, 1.0 - p_rc).unwrap();
        b.build().unwrap()
    }

    /// A tiny absorbing chain: s0 -> goal (0.6) | s1 (0.4); s1 -> goal (0.5) | discard (0.5).
    fn absorbing_chain() -> (Dtmc, StateId, StateId, StateId, StateId) {
        let mut b = Dtmc::builder();
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let goal = b.add_state("goal");
        let discard = b.add_state("discard");
        b.add_transition(s0, goal, 0.6).unwrap();
        b.add_transition(s0, s1, 0.4).unwrap();
        b.add_transition(s1, goal, 0.5).unwrap();
        b.add_transition(s1, discard, 0.5).unwrap();
        b.make_absorbing(goal).unwrap();
        b.make_absorbing(discard).unwrap();
        (b.build().unwrap(), s0, s1, goal, discard)
    }

    #[test]
    fn builder_validates_rows() {
        let mut b = Dtmc::builder();
        let s = b.add_state("lonely");
        b.add_transition(s, s, 0.5).unwrap();
        assert!(matches!(
            b.build(),
            Err(DtmcError::RowNotStochastic { state: 0, .. })
        ));
    }

    #[test]
    fn builder_rejects_bad_probability() {
        let mut b = Dtmc::builder();
        let s = b.add_state("s");
        assert!(b.add_transition(s, s, 1.5).is_err());
        assert!(b.add_transition(s, s, f64::NAN).is_err());
    }

    #[test]
    fn labels_round_trip() {
        let chain = link_chain(0.3, 0.9);
        let up = chain.state_by_label("UP").unwrap();
        assert_eq!(chain.label(up), "UP");
        assert_eq!(chain.state_by_label("MISSING"), None);
        assert_eq!(chain.len(), 2);
        assert_eq!(chain.transition_count(), 4);
    }

    #[test]
    fn steady_state_of_link_chain() {
        // pi(up) = p_rc / (p_rc + p_fl), Eq. 4 of the paper.
        let chain = link_chain(0.3, 0.9);
        let pi = chain.steady_state().unwrap();
        assert!((pi[0] - 0.75).abs() < 1e-12);
        assert!((pi[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn transient_converges_to_steady_state() {
        let chain = link_chain(0.0966, 0.9);
        let p = chain.transient(&[0.0, 1.0], 200).unwrap();
        let pi = chain.steady_state().unwrap();
        assert!((p[0] - pi[0]).abs() < 1e-10);
    }

    #[test]
    fn transient_trajectory_has_expected_length_and_mass() {
        let chain = link_chain(0.184, 0.9);
        let traj = chain.transient_trajectory(&[0.0, 1.0], 6).unwrap();
        assert_eq!(traj.len(), 7);
        for p in &traj {
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
        // Fig. 17: from DOWN the chain recovers to ~steady within one slot.
        assert_eq!(traj[0][0], 0.0);
        assert!((traj[1][0] - 0.9).abs() < 1e-12);
    }

    #[test]
    fn transient_rejects_bad_initial() {
        let chain = link_chain(0.3, 0.9);
        assert!(chain.transient(&[0.5], 1).is_err());
        assert!(chain.transient(&[0.7, 0.7], 1).is_err());
        assert!(chain.transient(&[-0.5, 1.5], 1).is_err());
    }

    #[test]
    fn absorption_probabilities_and_steps() {
        let (chain, s0, s1, goal, discard) = absorbing_chain();
        let a = chain.absorption().unwrap();
        assert!((a.probability(s0, goal) - 0.8).abs() < 1e-12); // 0.6 + 0.4*0.5
        assert!((a.probability(s0, discard) - 0.2).abs() < 1e-12);
        assert!((a.probability(s1, goal) - 0.5).abs() < 1e-12);
        assert!((a.probability(goal, goal) - 1.0).abs() < 1e-12);
        assert_eq!(a.probability(s0, s1), 0.0); // non-absorbing target
        assert!((a.expected_steps(s0) - 1.4).abs() < 1e-12); // 1 + 0.4*1
        assert_eq!(a.expected_steps(goal), 0.0);
        let d = a.distribution_from(s0);
        assert!((d.total_mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn absorption_requires_absorbing_states() {
        let chain = link_chain(0.3, 0.9);
        assert_eq!(
            chain.absorption().unwrap_err(),
            DtmcError::NoAbsorbingStates
        );
    }

    #[test]
    fn absorption_matches_transient_limit() {
        let (chain, s0, _, goal, _) = absorbing_chain();
        let a = chain.absorption().unwrap();
        let mut init = vec![0.0; chain.len()];
        init[s0.index()] = 1.0;
        let p = chain.transient(&init, 100).unwrap();
        assert!((p[goal.index()] - a.probability(s0, goal)).abs() < 1e-12);
    }

    #[test]
    fn state_display_is_compact() {
        assert_eq!(StateId(5).to_string(), "s5");
    }
}
