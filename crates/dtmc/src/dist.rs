//! Finite discrete distributions.
//!
//! Two flavours are provided:
//!
//! * [`Pmf`] — a (possibly sub-stochastic) probability mass function over
//!   indices `0..len`. The paper's *cycle probability functions* `g(x)` are
//!   `Pmf`s: index `i` holds the probability that a message is absorbed in
//!   reporting cycle `i + 1`, and the missing mass is the loss probability.
//!   Composition of paths (Eq. 12) is the plain convolution of the 0-based
//!   representations — the paper's "time-shifted by one" is an artifact of
//!   1-based cycle counting.
//! * [`ValueDistribution`] — a pmf over arbitrary `f64` values (delays in
//!   milliseconds), supporting expectation and cumulative queries.

use crate::error::{DtmcError, Result};

/// A probability mass function over indices `0..len`, allowed to be
/// sub-stochastic (total mass `<= 1`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Pmf {
    probs: Vec<f64>,
}

impl Pmf {
    /// Creates a pmf from raw index probabilities.
    ///
    /// # Errors
    ///
    /// Returns [`DtmcError::InvalidProbability`] if any entry is negative or
    /// not finite, or [`DtmcError::InvalidInitialDistribution`] if the total
    /// mass exceeds one beyond rounding tolerance.
    pub fn new(probs: Vec<f64>) -> Result<Self> {
        for (i, &p) in probs.iter().enumerate() {
            if !p.is_finite() || p < 0.0 {
                return Err(DtmcError::InvalidProbability {
                    from: i,
                    to: i,
                    value: p,
                });
            }
        }
        let total: f64 = probs.iter().sum();
        if total > 1.0 + 1e-9 {
            return Err(DtmcError::InvalidInitialDistribution {
                reason: format!("total mass {total} exceeds 1"),
            });
        }
        Ok(Pmf { probs })
    }

    /// The geometric distribution `P(i) = (1-p)^i * p` truncated to `len`
    /// entries. `p` is the per-trial success probability; index `i` is the
    /// number of failures before the success.
    ///
    /// # Errors
    ///
    /// Returns [`DtmcError::InvalidProbability`] if `p` is outside `[0, 1]`.
    pub fn geometric(p: f64, len: usize) -> Result<Self> {
        if !(0.0..=1.0).contains(&p) || !p.is_finite() {
            return Err(DtmcError::InvalidProbability {
                from: 0,
                to: 0,
                value: p,
            });
        }
        let q = 1.0 - p;
        let mut probs = Vec::with_capacity(len);
        let mut tail = 1.0;
        for _ in 0..len {
            probs.push(tail * p);
            tail *= q;
        }
        Ok(Pmf { probs })
    }

    /// The negative-binomial distribution of the number of *extra* trials:
    /// `P(i) = C(i + n - 1, n - 1) * q^i * p^n`, truncated to `len` entries.
    ///
    /// For a WirelessHART path of `n` homogeneous steady-state links whose
    /// schedule visits the hops in order once per cycle, `P(i)` is exactly
    /// the probability that the message is absorbed in cycle `i + 1` — used
    /// throughout the test-suite as a closed-form oracle.
    ///
    /// # Errors
    ///
    /// Returns [`DtmcError::InvalidProbability`] if `p` is outside `[0, 1]`.
    pub fn negative_binomial(p: f64, n: u32, len: usize) -> Result<Self> {
        if !(0.0..=1.0).contains(&p) || !p.is_finite() {
            return Err(DtmcError::InvalidProbability {
                from: 0,
                to: 0,
                value: p,
            });
        }
        let q = 1.0 - p;
        let pn = p.powi(n as i32);
        let mut probs = Vec::with_capacity(len);
        // C(i + n - 1, n - 1), computed incrementally to avoid factorials.
        let mut coeff = 1.0;
        let mut qi = 1.0;
        for i in 0..len {
            probs.push(coeff * qi * pn);
            coeff *= (i as f64 + n as f64) / (i as f64 + 1.0);
            qi *= q;
        }
        Ok(Pmf { probs })
    }

    /// Number of support points.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Whether the pmf has no support points.
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Probability at index `i` (zero outside the stored support).
    pub fn get(&self, i: usize) -> f64 {
        self.probs.get(i).copied().unwrap_or(0.0)
    }

    /// Borrow the raw probabilities.
    pub fn as_slice(&self) -> &[f64] {
        &self.probs
    }

    /// Total probability mass (the paper's reachability `R` when `self` is a
    /// cycle probability function).
    pub fn total_mass(&self) -> f64 {
        self.probs.iter().sum()
    }

    /// Expected index conditioned on the event covered by the support, i.e.
    /// `sum(i * P(i)) / total_mass`. Returns `None` for zero total mass.
    pub fn conditional_mean_index(&self) -> Option<f64> {
        let mass = self.total_mass();
        if mass <= 0.0 {
            return None;
        }
        let weighted: f64 = self
            .probs
            .iter()
            .enumerate()
            .map(|(i, p)| i as f64 * p)
            .sum();
        Some(weighted / mass)
    }

    /// Rescales so the total mass is one.
    ///
    /// # Errors
    ///
    /// Returns [`DtmcError::InvalidInitialDistribution`] on zero total mass.
    pub fn normalized(&self) -> Result<Pmf> {
        let mass = self.total_mass();
        if mass <= 0.0 {
            return Err(DtmcError::InvalidInitialDistribution {
                reason: "cannot normalize zero mass".into(),
            });
        }
        Ok(Pmf {
            probs: self.probs.iter().map(|p| p / mass).collect(),
        })
    }

    /// Conditional variance of the index given the covered event.
    /// `None` for zero total mass.
    pub fn conditional_index_variance(&self) -> Option<f64> {
        let mean = self.conditional_mean_index()?;
        let mass = self.total_mass();
        let second: f64 = self
            .probs
            .iter()
            .enumerate()
            .map(|(i, p)| (i as f64) * (i as f64) * p)
            .sum();
        Some((second / mass - mean * mean).max(0.0))
    }

    /// Convolution `P(c) = sum_i self(i) * other(c - i)`.
    ///
    /// With 0-based cycle indices this is exactly the paper's path
    /// composition (Eq. 12): the composed path takes `i + j` *extra* cycles
    /// when its components take `i` and `j`. The result has
    /// `self.len() + other.len() - 1` support points (empty inputs give an
    /// empty result).
    pub fn convolve(&self, other: &Pmf) -> Pmf {
        if self.is_empty() || other.is_empty() {
            return Pmf::default();
        }
        let mut probs = vec![0.0; self.len() + other.len() - 1];
        for (i, &a) in self.probs.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            for (j, &b) in other.probs.iter().enumerate() {
                probs[i + j] += a * b;
            }
        }
        Pmf { probs }
    }

    /// Truncates to the first `len` support points, dropping tail mass.
    pub fn truncated(&self, len: usize) -> Pmf {
        Pmf {
            probs: self.probs.iter().copied().take(len).collect(),
        }
    }
}

impl FromIterator<f64> for Pmf {
    /// Collects raw probabilities; invalid values are debug-asserted rather
    /// than checked (use [`Pmf::new`] for validated construction).
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let probs: Vec<f64> = iter.into_iter().collect();
        debug_assert!(probs.iter().all(|p| p.is_finite() && *p >= 0.0));
        Pmf { probs }
    }
}

/// A probability distribution over arbitrary real values, e.g. delays in
/// milliseconds. Values are kept sorted and unique.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ValueDistribution {
    values: Vec<f64>,
    probs: Vec<f64>,
}

impl ValueDistribution {
    /// Creates a distribution from `(value, probability)` pairs. Pairs with
    /// equal values are merged; pairs with zero probability are kept so the
    /// support mirrors the model's possible outcomes.
    ///
    /// # Errors
    ///
    /// Returns [`DtmcError::InvalidProbability`] for negative or non-finite
    /// probabilities or non-finite values.
    pub fn new(mut pairs: Vec<(f64, f64)>) -> Result<Self> {
        for (i, &(v, p)) in pairs.iter().enumerate() {
            if !p.is_finite() || p < 0.0 || !v.is_finite() {
                return Err(DtmcError::InvalidProbability {
                    from: i,
                    to: i,
                    value: p,
                });
            }
        }
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite values"));
        let mut values = Vec::with_capacity(pairs.len());
        let mut probs = Vec::with_capacity(pairs.len());
        for (v, p) in pairs {
            match values.last() {
                Some(&last) if last == v => *probs.last_mut().expect("parallel vec") += p,
                _ => {
                    values.push(v);
                    probs.push(p);
                }
            }
        }
        Ok(ValueDistribution { values, probs })
    }

    /// The support/probability pairs in ascending value order.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.values.iter().copied().zip(self.probs.iter().copied())
    }

    /// Number of support points.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the distribution has no support points.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total probability mass.
    pub fn total_mass(&self) -> f64 {
        self.probs.iter().sum()
    }

    /// Expectation `sum(v * p)`. For a sub-stochastic distribution this is
    /// the *unconditional* contribution; divide by [`total_mass`] for the
    /// conditional mean.
    ///
    /// [`total_mass`]: ValueDistribution::total_mass
    pub fn expectation(&self) -> f64 {
        self.iter().map(|(v, p)| v * p).sum()
    }

    /// Conditional mean given the covered event; `None` on zero mass.
    pub fn conditional_mean(&self) -> Option<f64> {
        let mass = self.total_mass();
        (mass > 0.0).then(|| self.expectation() / mass)
    }

    /// Probability of a value `<= x`.
    pub fn cdf(&self, x: f64) -> f64 {
        self.iter()
            .take_while(|&(v, _)| v <= x)
            .map(|(_, p)| p)
            .sum()
    }

    /// Conditional variance given the covered event; `None` on zero mass.
    pub fn conditional_variance(&self) -> Option<f64> {
        let mean = self.conditional_mean()?;
        let mass = self.total_mass();
        let second: f64 = self.iter().map(|(v, p)| v * v * p).sum();
        Some((second / mass - mean * mean).max(0.0))
    }

    /// The `q`-quantile (0 <= q <= 1) of the *normalized* distribution: the
    /// smallest support value whose normalized cdf reaches `q`. `None` on
    /// zero mass.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile level {q} outside [0, 1]"
        );
        let mass = self.total_mass();
        if mass <= 0.0 {
            return None;
        }
        let target = q * mass;
        let mut acc = 0.0;
        for (v, p) in self.iter() {
            acc += p;
            if acc + 1e-15 >= target {
                return Some(v);
            }
        }
        self.values.last().copied()
    }

    /// Rescales to total mass one.
    ///
    /// # Errors
    ///
    /// Returns [`DtmcError::InvalidInitialDistribution`] on zero total mass.
    pub fn normalized(&self) -> Result<ValueDistribution> {
        let mass = self.total_mass();
        if mass <= 0.0 {
            return Err(DtmcError::InvalidInitialDistribution {
                reason: "cannot normalize zero mass".into(),
            });
        }
        Ok(ValueDistribution {
            values: self.values.clone(),
            probs: self.probs.iter().map(|p| p / mass).collect(),
        })
    }

    /// Pointwise average of several distributions (the paper's network delay
    /// distribution `Gamma`, Eq. 13 aggregates per-path distributions this
    /// way). The result's support is the union of all supports.
    pub fn average<'a, I>(dists: I) -> ValueDistribution
    where
        I: IntoIterator<Item = &'a ValueDistribution>,
    {
        let mut pairs: Vec<(f64, f64)> = Vec::new();
        let mut count = 0usize;
        for d in dists {
            count += 1;
            pairs.extend(d.iter());
        }
        if count == 0 {
            return ValueDistribution::default();
        }
        let scale = 1.0 / count as f64;
        let scaled: Vec<(f64, f64)> = pairs.into_iter().map(|(v, p)| (v, p * scale)).collect();
        ValueDistribution::new(scaled).expect("scaled inputs remain valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_matches_closed_form() {
        let g = Pmf::geometric(0.3, 5).unwrap();
        for i in 0..5 {
            let expected = 0.7_f64.powi(i as i32) * 0.3;
            assert!((g.get(i) - expected).abs() < 1e-15);
        }
    }

    #[test]
    fn negative_binomial_n1_is_geometric() {
        let nb = Pmf::negative_binomial(0.3, 1, 6).unwrap();
        let g = Pmf::geometric(0.3, 6).unwrap();
        for i in 0..6 {
            assert!((nb.get(i) - g.get(i)).abs() < 1e-15);
        }
    }

    #[test]
    fn negative_binomial_matches_paper_example() {
        // Section V-A: 3 hops, p = 0.75, Is = 4.
        let nb = Pmf::negative_binomial(0.75, 3, 4).unwrap();
        assert!((nb.get(0) - 0.421875).abs() < 1e-9);
        assert!((nb.get(1) - 0.31640625).abs() < 1e-9);
        assert!((nb.get(2) - 0.158203125).abs() < 1e-9);
        assert!((nb.get(3) - 0.065917968).abs() < 1e-8);
        assert!((nb.total_mass() - 0.9624).abs() < 1e-4);
    }

    #[test]
    fn convolution_composes_cycle_functions() {
        // Table IV, composed path alpha: peer 1-hop pi=0.9103 with existing
        // 2-hop pi=0.83.
        let peer = Pmf::geometric(0.910299, 4).unwrap();
        let existing = Pmf::negative_binomial(0.83, 2, 4).unwrap();
        let composed = peer.convolve(&existing).truncated(4);
        assert!((composed.get(0) - 0.6274).abs() < 5e-4);
        assert!((composed.get(1) - 0.2694).abs() < 5e-4);
        assert!((composed.get(2) - 0.0784).abs() < 5e-4);
        assert!((composed.get(3) - 0.0193).abs() < 5e-4);
        assert!((composed.total_mass() - 0.9946).abs() < 5e-4);
    }

    #[test]
    fn convolution_with_point_mass_shifts_nothing() {
        let unit = Pmf::new(vec![1.0]).unwrap();
        let g = Pmf::geometric(0.4, 5).unwrap();
        assert_eq!(unit.convolve(&g), g);
    }

    #[test]
    fn pmf_rejects_mass_above_one() {
        assert!(Pmf::new(vec![0.7, 0.7]).is_err());
    }

    #[test]
    fn pmf_rejects_negative() {
        assert!(Pmf::new(vec![-0.1]).is_err());
    }

    #[test]
    fn normalized_restores_unit_mass() {
        let g = Pmf::geometric(0.5, 3).unwrap(); // mass 0.875
        let n = g.normalized().unwrap();
        assert!((n.total_mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn conditional_mean_index_of_point_mass_is_zero() {
        let p = Pmf::new(vec![1.0]).unwrap();
        assert_eq!(p.conditional_mean_index(), Some(0.0));
    }

    #[test]
    fn value_distribution_merges_equal_values() {
        let d = ValueDistribution::new(vec![(70.0, 0.2), (70.0, 0.3), (210.0, 0.5)]).unwrap();
        assert_eq!(d.len(), 2);
        assert!((d.cdf(70.0) - 0.5).abs() < 1e-12);
        assert!((d.total_mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn value_distribution_expectation() {
        let d = ValueDistribution::new(vec![(10.0, 0.5), (30.0, 0.5)]).unwrap();
        assert!((d.expectation() - 20.0).abs() < 1e-12);
        assert_eq!(d.conditional_mean(), Some(20.0));
    }

    #[test]
    fn average_is_pointwise() {
        let a = ValueDistribution::new(vec![(1.0, 1.0)]).unwrap();
        let b = ValueDistribution::new(vec![(3.0, 1.0)]).unwrap();
        let avg = ValueDistribution::average([&a, &b]);
        assert!((avg.cdf(1.0) - 0.5).abs() < 1e-12);
        assert!((avg.expectation() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn average_of_none_is_empty() {
        let avg = ValueDistribution::average(std::iter::empty());
        assert!(avg.is_empty());
        assert_eq!(avg.total_mass(), 0.0);
    }

    #[test]
    fn pmf_variance_of_geometric() {
        // Variance of a full geometric (failures before success) is q/p^2.
        let p = 0.4;
        let g = Pmf::geometric(p, 400).unwrap();
        let var = g.conditional_index_variance().unwrap();
        assert!((var - (1.0 - p) / (p * p)).abs() < 1e-6, "{var}");
        // A point mass has zero variance.
        assert_eq!(
            Pmf::new(vec![1.0]).unwrap().conditional_index_variance(),
            Some(0.0)
        );
    }

    #[test]
    fn value_distribution_variance() {
        let d = ValueDistribution::new(vec![(0.0, 0.5), (10.0, 0.5)]).unwrap();
        assert!((d.conditional_variance().unwrap() - 25.0).abs() < 1e-12);
        assert_eq!(ValueDistribution::default().conditional_variance(), None);
    }

    #[test]
    fn quantiles_walk_the_support() {
        let d = ValueDistribution::new(vec![(70.0, 0.5), (210.0, 0.3), (350.0, 0.2)]).unwrap();
        assert_eq!(d.quantile(0.0), Some(70.0));
        assert_eq!(d.quantile(0.5), Some(70.0));
        assert_eq!(d.quantile(0.51), Some(210.0));
        assert_eq!(d.quantile(0.8), Some(210.0));
        assert_eq!(d.quantile(0.99), Some(350.0));
        assert_eq!(d.quantile(1.0), Some(350.0));
        assert_eq!(ValueDistribution::default().quantile(0.5), None);
        // Quantiles of a sub-stochastic distribution act on the normalized
        // version.
        let sub = ValueDistribution::new(vec![(1.0, 0.25), (2.0, 0.25)]).unwrap();
        assert_eq!(sub.quantile(0.5), Some(1.0));
        assert_eq!(sub.quantile(0.9), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn quantile_level_validated() {
        let d = ValueDistribution::new(vec![(1.0, 1.0)]).unwrap();
        let _ = d.quantile(1.5);
    }

    #[test]
    fn cdf_is_monotone() {
        let d = ValueDistribution::new(vec![(1.0, 0.25), (2.0, 0.25), (5.0, 0.5)]).unwrap();
        assert_eq!(d.cdf(0.0), 0.0);
        assert!(d.cdf(1.5) <= d.cdf(2.0));
        assert!((d.cdf(10.0) - 1.0).abs() < 1e-12);
    }
}
