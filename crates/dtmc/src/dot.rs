//! Graphviz DOT export for DTMCs.
//!
//! The paper presents its path models as transition diagrams (Figs. 4 and 5);
//! this module renders any [`Dtmc`] in the same style so the reproduced
//! chains can be inspected visually with `dot -Tsvg`.

use crate::chain::{Dtmc, StateId};
use std::fmt::Write as _;

/// Rendering options for [`to_dot`].
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// Graph name placed after `digraph`.
    pub graph_name: String,
    /// Lay the graph out left-to-right (the paper's time-line orientation).
    pub left_to_right: bool,
    /// Number of significant digits for edge probabilities.
    pub precision: usize,
    /// Highlight absorbing states with a double circle.
    pub mark_absorbing: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            graph_name: "dtmc".to_string(),
            left_to_right: true,
            precision: 4,
            mark_absorbing: true,
        }
    }
}

/// Renders a chain as a Graphviz `digraph`.
///
/// State labels become node labels; edges carry their probability. With the
/// default options absorbing states are drawn as double circles, matching
/// the goal/discard states of the paper's figures.
pub fn to_dot(chain: &Dtmc, options: &DotOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", sanitize(&options.graph_name));
    if options.left_to_right {
        out.push_str("  rankdir=LR;\n");
    }
    out.push_str("  node [shape=circle];\n");
    for state in chain.states() {
        let shape = if options.mark_absorbing && chain.is_absorbing(state) {
            " shape=doublecircle"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  {} [label=\"{}\"{}];",
            state,
            escape(chain.label(state)),
            shape
        );
    }
    for state in chain.states() {
        for (to, p) in chain.successors(state) {
            if chain.is_absorbing(state) && to == state {
                continue; // omit the implicit self-loop of absorbing states
            }
            let _ = writeln!(
                out,
                "  {} -> {} [label=\"{:.prec$}\"];",
                state,
                to,
                p,
                prec = options.precision
            );
        }
    }
    out.push_str("}\n");
    out
}

/// Renders with default options; see [`to_dot`].
pub fn to_dot_default(chain: &Dtmc) -> String {
    to_dot(chain, &DotOptions::default())
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() || cleaned.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        format!("g_{cleaned}")
    } else {
        cleaned
    }
}

fn escape(label: &str) -> String {
    label.replace('\\', "\\\\").replace('"', "\\\"")
}

#[allow(unused)]
fn state_name(state: StateId) -> String {
    state.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_chain() -> Dtmc {
        let mut b = Dtmc::builder();
        let a = b.add_state("(1,-,-)");
        let goal = b.add_state("R7");
        b.add_transition(a, goal, 1.0).unwrap();
        b.make_absorbing(goal).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn dot_contains_states_and_edges() {
        let dot = to_dot_default(&sample_chain());
        assert!(dot.starts_with("digraph dtmc {"));
        assert!(dot.contains("rankdir=LR"));
        assert!(dot.contains("label=\"(1,-,-)\""));
        assert!(dot.contains("label=\"R7\" shape=doublecircle"));
        assert!(dot.contains("s0 -> s1 [label=\"1.0000\"]"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn absorbing_self_loops_are_omitted() {
        let dot = to_dot_default(&sample_chain());
        assert!(!dot.contains("s1 -> s1"));
    }

    #[test]
    fn quotes_in_labels_are_escaped() {
        let mut b = Dtmc::builder();
        let s = b.add_state("say \"hi\"");
        b.make_absorbing(s).unwrap();
        let dot = to_dot_default(&b.build().unwrap());
        assert!(dot.contains("say \\\"hi\\\""));
    }

    #[test]
    fn graph_names_are_sanitized() {
        let options = DotOptions {
            graph_name: "3-hop path!".into(),
            ..DotOptions::default()
        };
        let dot = to_dot(&sample_chain(), &options);
        assert!(dot.starts_with("digraph g_3_hop_path_ {"));
    }

    #[test]
    fn precision_is_respected() {
        let options = DotOptions {
            precision: 2,
            ..DotOptions::default()
        };
        let dot = to_dot(&sample_chain(), &options);
        assert!(dot.contains("label=\"1.00\""));
    }
}
