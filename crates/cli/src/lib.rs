//! `whart` — derive the DTMC performance model of a fully specified
//! WirelessHART network and compute its measures of interest.
//!
//! A Rust rebuild of the analysis tool described in Remke & Wu (DSN 2013).
//! This library backs the `whart` binary; [`run`] is the argv-level entry
//! point the binary (and the tests) drive.
//!
//! ```text
//! whart analyze  <spec.json> [--backend fast|explicit|sim] [--seed S] [--intervals N] [--json] [--metrics <out.json>]
//! whart batch    <scenarios.json> [--threads N] [--stats] [--metrics <out.json>]
//! whart serve    [--addr <ip:port>] [--threads N] [--keepalive-timeout S] [--max-queue N] [--metrics <out.json>] [--trace <out.json>]
//! whart dot      <spec.json> --path <i>
//! whart simulate <spec.json> [--intervals N] [--seed S] [--threads W] [--json]
//! whart predict  <spec.json> --path <i> --snr <EbN0>
//! whart optimize [--seed S] [--nodes N] [--objective reachability|delay] [--rounds R]
//! whart example  <typical|section-v>
//! ```

mod batch;
mod commands;
mod serve_app;
mod spec;

use spec::NetworkSpec;
use std::process::ExitCode;

const USAGE: &str = "usage:
  whart analyze  <spec.json> [--backend fast|explicit|sim] [--seed S] [--intervals N] [--json] [--metrics <out.json>] [--trace <out.json>] [--profile <out.folded>] [--profile-hz HZ]
  whart explain  <spec.json> [--path <i>] [--backend fast|sim] [--seed S] [--intervals N]
  whart batch    <scenarios.json> [--threads N] [--stats] [--metrics <out.json>] [--trace <out.json>] [--profile <out.folded>] [--profile-hz HZ]
  whart serve    [--addr <ip:port>] [--threads N] [--keepalive-timeout S] [--max-queue N] [--metrics <out.json>] [--trace <out.json>] [--metrics-capacity N] [--trace-capacity N] [--log <out.jsonl>] [--log-level error|warn|info|debug] [--slo-target-ms MS] [--flight-threshold-ms MS] [--profile <out.folded>] [--profile-hz HZ]
  whart dot      <spec.json> --path <i>
  whart simulate <spec.json> [--intervals N] [--seed S] [--threads W] [--json]
  whart predict  <spec.json> --path <i> --snr <EbN0-linear>
  whart sensitivity <spec.json> [--step <delta>]
  whart optimize [--seed S] [--nodes N] [--degree D] [--depth H] [--extra-links E] [--availability LO:HI] [--recovery P] [--slack K] [--interval Is] [--objective reachability|delay] [--rounds R] [--threads N] [--json] [--emit-spec <spec.json>] [--metrics <out.json>] [--trace <out.json>] [--profile <out.folded>] [--profile-hz HZ]
  whart example  <typical|section-v>

node 0 denotes the gateway; paths are listed source-first and may omit the
trailing gateway. Link quality accepts {p_fl,p_rc}, {ber}, {snr} or
{availability}. batch reads a JSON list of scenarios (template or inline
network, overrides, failure injections, measures) and streams one JSON
line per scenario through the memoizing engine. analyze solves through a
pluggable backend: 'fast' (analytical transient, default), 'explicit'
(Algorithm 1 chain) or 'sim' (Monte-Carlo; --seed and --intervals set
the estimator); batch scenarios select theirs with a \"backend\" field.
explain breaks one path down per hop (channel provenance, expected
attempts/failures, which hop loses the packets) and per delivery cycle
(delay decomposition); the breakdown always uses the fast evaluator,
and --backend sim appends a sim-vs-analytic divergence table. --metrics <out.json> records solver/engine counters
and latency histograms during the run and writes the snapshot to the
given file; batch additionally appends one 'metrics' summary line per
backend. --trace <out.json> records the structured event journal (solve
spans, per-hop provenance, engine stages) as Chrome trace_event JSON
(Perfetto-loadable), or as JSON Lines when the path ends in .jsonl.
--profile <out> runs a sampling profiler for the whole command and
writes the capture as flamegraph-collapsed text ('frame;frame count'
per line), or as a JSON profile with per-thread and per-frame totals
when the path ends in .json; --profile-hz sets the sampling rate
(default 997). Engine stages, solver backends, cache layers, serve
handlers and optimizer rounds publish activity frames, so the profile
attributes wall time without signals or debug info. --metrics, --trace
and --profile each accept '-' to write to stdout, but only one at a
time — the streams would interleave.
serve holds a long-lived engine behind an HTTP API (default address
127.0.0.1:9090): POST /v1/analyze and /v1/batch take the same JSON
specs as the CLI, GET /metrics is Prometheus text exposition,
GET /v1/trace drains the journal, GET /healthz and /readyz probe
liveness/readiness, POST /admin/shutdown (or Ctrl-C) drains in-flight
work and writes the final --metrics/--trace artifacts before exit.
Every request carries an X-Request-Id correlation id (assigned if the
client sent none), returned on all responses and stamped on the
request's log event, trace spans, and flight-recorder entry. --log
writes one structured JSON line per request ('-' = stdout, 'stderr',
or a file path; --log-level filters, default info; like --metrics and
--trace, at most one such stream may use stdout). GET /statusz shows
per-route rolling 30 s p50/p95/p99, error rate and SLO burn rate
(--slo-target-ms sets the latency target, default 5); the same windows
back http.*.window30s gauges on /metrics. GET /v1/debug/requests lists
the flight recorder's retained request traces (the most recent plus
those slower than --flight-threshold-ms, default the committed serve
benchmark p99); GET /v1/debug/requests/<id> replays one request's
per-hop timeline.
--metrics-capacity bounds the engine's path/link cache entries;
--trace-capacity bounds the trace journal's retained events.
Connections are HTTP/1.1 keep-alive (pipelining supported);
--keepalive-timeout sets how many seconds an idle connection may stay
parked before the server closes it (default 60), and --max-queue caps
the dispatch backlog — readable requests beyond it are rejected with
503 + Retry-After instead of queueing unboundedly (default 1024).
optimize needs no spec file: it generates a seeded random mesh
(generalizing the paper's Fig. 12 network), builds the greedy Eq. 12
uplink routing tree and hill-climbs routes and schedule order through
the memoizing engine, maximizing composed reachability or minimizing
E[delay] under the uplink slot budget. --emit-spec writes the optimized
network in the same JSON the other commands consume ('-' appends it to
stdout), so what-if results feed straight back into analyze/batch.";

/// Binary entry point: parses argv, runs, prints.
pub fn main_entry() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Rejects flag combinations whose output would interleave: more than
/// one of the given streams (`--metrics`, `--trace`, `--log`, ...)
/// pointed at stdout via `-`.
fn reject_stdout_interleave(streams: &[(&str, Option<&str>)]) -> Result<(), String> {
    let dashed: Vec<String> = streams
        .iter()
        .filter(|(_, value)| *value == Some("-"))
        .map(|(flag, _)| format!("{flag} -"))
        .collect();
    if dashed.len() > 1 {
        return Err(format!(
            "{} both stream to stdout and would interleave; give at \
             least one of them a file path",
            dashed.join(" and ")
        ));
    }
    Ok(())
}

/// The artifact-stream trio every profiling-capable command shares:
/// any two of `--metrics`/`--trace`/`--profile` on stdout interleave.
fn reject_artifact_stdout(
    metrics: Option<&str>,
    trace: Option<&str>,
    profile: Option<&str>,
) -> Result<(), String> {
    reject_stdout_interleave(&[
        ("--metrics", metrics),
        ("--trace", trace),
        ("--profile", profile),
    ])
}

/// Largest accepted sampling rate: comfortably above useful resolution,
/// low enough that the sampler thread cannot degenerate into a busy
/// loop.
const MAX_PROFILE_HZ: u32 = 50_000;

/// Parses `--profile-hz` (default [`whart_prof::DEFAULT_HZ`]), bounding
/// it to `1..=`[`MAX_PROFILE_HZ`].
fn parse_profile_hz(args: &[String]) -> Result<u32, String> {
    let hz: u32 = parse_or(args, "--profile-hz", whart_prof::DEFAULT_HZ)?;
    if hz == 0 {
        return Err("--profile-hz must be at least 1".into());
    }
    if hz > MAX_PROFILE_HZ {
        return Err(format!(
            "--profile-hz must be at most {MAX_PROFILE_HZ} (got {hz})"
        ));
    }
    Ok(hz)
}

/// Runs one `whart` invocation and returns what it prints to stdout.
///
/// # Errors
///
/// A human-readable message for usage and evaluation failures.
pub fn run(args: &[String]) -> Result<String, String> {
    let command = args.first().ok_or("missing command")?;
    match command.as_str() {
        "example" => {
            let which = args.get(1).ok_or("missing example name")?;
            commands::example(which)
        }
        "batch" => {
            let path = args.get(1).ok_or("missing scenario list file")?;
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let threads = parse_threads(args, "--threads")?;
            let metrics = flag_value(args, "--metrics")?;
            let trace = flag_value(args, "--trace")?;
            let profile = flag_value(args, "--profile")?;
            reject_artifact_stdout(metrics.as_deref(), trace.as_deref(), profile.as_deref())?;
            batch::batch(
                &text,
                threads,
                has_flag(args, "--stats"),
                metrics.as_deref(),
                trace.as_deref(),
                profile.as_deref(),
                parse_profile_hz(args)?,
            )
        }
        "serve" => {
            let metrics = flag_value(args, "--metrics")?;
            let trace = flag_value(args, "--trace")?;
            let log = flag_value(args, "--log")?;
            let profile = flag_value(args, "--profile")?;
            reject_stdout_interleave(&[
                ("--metrics", metrics.as_deref()),
                ("--trace", trace.as_deref()),
                ("--log", log.as_deref()),
                ("--profile", profile.as_deref()),
            ])?;
            let log_level = match flag_value(args, "--log-level")? {
                Some(v) => Some(whart_log::Level::parse(&v)?),
                None => None,
            };
            let positive_ms = |flag: &str| -> Result<Option<f64>, String> {
                match flag_value(args, flag)? {
                    Some(v) => {
                        let ms: f64 = parse(&v, flag)?;
                        if !ms.is_finite() || ms <= 0.0 {
                            return Err(format!(
                                "{flag} expects a positive number of milliseconds, got '{v}'"
                            ));
                        }
                        Ok(Some(ms))
                    }
                    None => Ok(None),
                }
            };
            let slo_target_ms = positive_ms("--slo-target-ms")?;
            let flight_threshold_ms = positive_ms("--flight-threshold-ms")?;
            let keepalive_timeout = match flag_value(args, "--keepalive-timeout")? {
                Some(v) => {
                    let seconds: f64 = parse(&v, "--keepalive-timeout")?;
                    if !seconds.is_finite() || seconds <= 0.0 {
                        return Err(format!(
                            "--keepalive-timeout expects a positive number of seconds, got '{v}'"
                        ));
                    }
                    Some(std::time::Duration::from_secs_f64(seconds))
                }
                None => None,
            };
            let options = serve_app::ServeOptions {
                addr: flag_value(args, "--addr")?.unwrap_or_else(|| "127.0.0.1:9090".into()),
                threads: parse_threads(args, "--threads")?,
                keepalive_timeout,
                max_queue: match flag_value(args, "--max-queue")? {
                    Some(v) => Some(parse(&v, "--max-queue")?),
                    None => None,
                },
                metrics_path: metrics,
                trace_path: trace,
                cache_capacity: match flag_value(args, "--metrics-capacity")? {
                    Some(v) => Some(parse(&v, "--metrics-capacity")?),
                    None => None,
                },
                trace_capacity: match flag_value(args, "--trace-capacity")? {
                    Some(v) => Some(parse(&v, "--trace-capacity")?),
                    None => None,
                },
                log_path: log,
                log_level,
                slo_target_ms,
                flight_threshold_ms,
                profile_path: profile,
                profile_hz: parse_profile_hz(args)?,
            };
            serve_app::serve(options)
        }
        "optimize" => {
            let metrics = flag_value(args, "--metrics")?;
            let trace = flag_value(args, "--trace")?;
            let profile = flag_value(args, "--profile")?;
            reject_artifact_stdout(metrics.as_deref(), trace.as_deref(), profile.as_deref())?;
            let emit_spec = flag_value(args, "--emit-spec")?;
            if emit_spec.as_deref() == Some("-")
                && (metrics.as_deref() == Some("-")
                    || trace.as_deref() == Some("-")
                    || profile.as_deref() == Some("-"))
            {
                return Err("--emit-spec - shares stdout with another JSON stream and \
                     would interleave; give at least one of them a file path"
                    .into());
            }
            let defaults = whart_opt::GeneratorConfig::default();
            let availability = match flag_value(args, "--availability")? {
                Some(v) => {
                    let (lo, hi) = v
                        .split_once(':')
                        .ok_or("--availability expects LO:HI (e.g. 0.75:0.99)")?;
                    (parse(lo, "--availability")?, parse(hi, "--availability")?)
                }
                None => defaults.availability,
            };
            let generator = whart_opt::GeneratorConfig {
                seed: parse_or(args, "--seed", defaults.seed)?,
                nodes: parse_or(args, "--nodes", defaults.nodes)?,
                max_degree: parse_or(args, "--degree", defaults.max_degree)?,
                max_depth: parse_or(args, "--depth", defaults.max_depth)?,
                extra_links: parse_or(args, "--extra-links", defaults.extra_links)?,
                availability,
                recovery: parse_or(args, "--recovery", defaults.recovery)?,
                slot_slack: parse_or(args, "--slack", defaults.slot_slack)?,
                reporting_interval: parse_or(args, "--interval", defaults.reporting_interval)?,
            };
            let search_defaults = whart_opt::SearchConfig::default();
            let objective = match flag_value(args, "--objective")? {
                Some(name) => whart_opt::Objective::parse(&name).ok_or(format!(
                    "unknown objective '{name}' (expected reachability or delay)"
                ))?,
                None => search_defaults.objective,
            };
            let search = whart_opt::SearchConfig {
                objective,
                max_rounds: parse_or(args, "--rounds", search_defaults.max_rounds)?,
            };
            commands::optimize(&commands::OptimizeOptions {
                generator,
                search,
                threads: parse_threads(args, "--threads")?,
                json: has_flag(args, "--json"),
                emit_spec,
                metrics_path: metrics,
                trace_path: trace,
                profile_path: profile,
                profile_hz: parse_profile_hz(args)?,
            })
        }
        "analyze" | "explain" | "dot" | "simulate" | "predict" | "sensitivity" => {
            let path = args.get(1).ok_or("missing spec file")?;
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let spec = NetworkSpec::from_json(&text)?;
            match command.as_str() {
                "analyze" => {
                    let name = flag_value(args, "--backend")?.unwrap_or_else(|| "fast".into());
                    let seed = parse_or(args, "--seed", 42u64)?;
                    let intervals = parse_or(args, "--intervals", 100_000u64)?;
                    let backend = commands::Backend::parse(&name, seed, intervals)?;
                    let metrics = flag_value(args, "--metrics")?;
                    let trace = flag_value(args, "--trace")?;
                    let profile = flag_value(args, "--profile")?;
                    reject_artifact_stdout(
                        metrics.as_deref(),
                        trace.as_deref(),
                        profile.as_deref(),
                    )?;
                    commands::analyze(
                        &spec,
                        has_flag(args, "--json"),
                        &backend,
                        metrics.as_deref(),
                        trace.as_deref(),
                        profile.as_deref(),
                        parse_profile_hz(args)?,
                    )
                }
                "explain" => {
                    let name = flag_value(args, "--backend")?.unwrap_or_else(|| "fast".into());
                    let seed = parse_or(args, "--seed", 42u64)?;
                    let intervals = parse_or(args, "--intervals", 100_000u64)?;
                    let backend = commands::Backend::parse(&name, seed, intervals)?;
                    let index = parse_or(args, "--path", 1usize)?;
                    commands::explain(
                        &spec,
                        index.checked_sub(1).ok_or("--path is 1-based")?,
                        &backend,
                    )
                }
                "dot" => {
                    let index =
                        flag_value(args, "--path")?.ok_or("dot requires --path <i> (1-based)")?;
                    let index: usize = parse(&index, "--path")?;
                    commands::dot(&spec, index.checked_sub(1).ok_or("--path is 1-based")?)
                }
                "simulate" => {
                    let intervals = parse_or(args, "--intervals", 100_000u64)?;
                    let seed = parse_or(args, "--seed", 42u64)?;
                    // --threads is the documented spelling; --workers stays
                    // accepted for compatibility. Both go through the
                    // shared validating parser.
                    let workers = if has_flag(args, "--threads") {
                        parse_threads(args, "--threads")?
                    } else {
                        parse_threads(args, "--workers")?
                    };
                    commands::simulate(&spec, intervals, seed, workers, has_flag(args, "--json"))
                }
                "sensitivity" => {
                    let step = parse_or(args, "--step", 0.05f64)?;
                    commands::sensitivity(&spec, step)
                }
                "predict" => {
                    let index = flag_value(args, "--path")?
                        .ok_or("predict requires --path <i> (1-based)")?;
                    let index: usize = parse(&index, "--path")?;
                    let snr = flag_value(args, "--snr")?
                        .ok_or("predict requires --snr <Eb/N0, linear>")?;
                    let snr: f64 = parse(&snr, "--snr")?;
                    commands::predict(&spec, index.checked_sub(1).ok_or("--path is 1-based")?, snr)
                }
                _ => unreachable!(),
            }
        }
        "--help" | "-h" | "help" => Ok(format!("{USAGE}\n")),
        other => Err(format!("unknown command '{other}'")),
    }
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn flag_value(args: &[String], flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        Some(i) => args
            .get(i + 1)
            .cloned()
            .map(Some)
            .ok_or_else(|| format!("{flag} needs a value")),
        None => Ok(None),
    }
}

fn parse<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("invalid value '{value}' for {flag}"))
}

fn parse_or<T: std::str::FromStr + Copy>(
    args: &[String],
    flag: &str,
    default: T,
) -> Result<T, String> {
    match flag_value(args, flag)? {
        Some(v) => parse(&v, flag),
        None => Ok(default),
    }
}

fn num_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Largest accepted worker count: far above any real machine, low enough
/// to catch a fat-fingered "10240" before the engine tries to honor it.
const MAX_THREADS: usize = 1024;

/// Parses a worker-count flag (default: the CPU count). Every command
/// that spawns workers funnels through here so the grammar is uniform:
/// 0 and values above [`MAX_THREADS`] are usage errors, not engine
/// behavior.
fn parse_threads(args: &[String], flag: &str) -> Result<usize, String> {
    let threads: usize = parse_or(args, flag, num_cpus())?;
    if threads == 0 {
        return Err(format!("{flag} must be at least 1"));
    }
    if threads > MAX_THREADS {
        return Err(format!(
            "{flag} must be at most {MAX_THREADS} (got {threads})"
        ));
    }
    Ok(threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|p| p.to_string()).collect()
    }

    #[test]
    fn help_and_errors() {
        assert!(run(&s(&["help"])).unwrap().contains("usage"));
        assert!(run(&[]).is_err());
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&s(&["analyze"])).is_err());
        assert!(run(&s(&["analyze", "/nonexistent.json"])).is_err());
    }

    #[test]
    fn end_to_end_analyze_from_temp_file() {
        let dir = std::env::temp_dir().join("whart-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("section_v.json");
        std::fs::write(&path, commands::example("section-v").unwrap()).unwrap();
        let out = run(&s(&["analyze", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("0.9624") || out.contains("0.962"), "{out}");
        let dot = run(&s(&["dot", path.to_str().unwrap(), "--path", "1"])).unwrap();
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn analyze_backend_flag_selects_the_solver() {
        let dir = std::env::temp_dir().join("whart-cli-backend-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("section_v.json");
        std::fs::write(&path, commands::example("section-v").unwrap()).unwrap();
        let file = path.to_str().unwrap();

        let explicit = run(&s(&["analyze", file, "--backend", "explicit"])).unwrap();
        assert!(explicit.starts_with("backend: explicit"), "{explicit}");
        assert!(explicit.contains("0.962"), "{explicit}");

        let sim = run(&s(&[
            "analyze",
            file,
            "--backend",
            "sim",
            "--seed",
            "7",
            "--intervals",
            "20000",
        ]))
        .unwrap();
        assert!(sim.starts_with("backend: sim (seed 7"), "{sim}");
        assert!(sim.contains("0.96"), "{sim}");

        assert!(run(&s(&["analyze", file, "--backend", "magic"])).is_err());
    }

    #[test]
    fn analyze_metrics_flag_writes_a_snapshot() {
        let dir = std::env::temp_dir().join("whart-cli-metrics-test");
        std::fs::create_dir_all(&dir).unwrap();
        let spec = dir.join("section_v.json");
        std::fs::write(&spec, commands::example("section-v").unwrap()).unwrap();
        let metrics = dir.join("metrics.json");
        let out = run(&s(&[
            "analyze",
            spec.to_str().unwrap(),
            "--metrics",
            metrics.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("0.962"), "{out}");
        let text = std::fs::read_to_string(&metrics).unwrap();
        let snapshot = whart_obs::MetricsSnapshot::parse(&text).unwrap();
        let solves = snapshot.histogram("solver.fast.solve_ns").unwrap();
        assert_eq!(solves.count, 1, "one path in the Section V network");
        assert!(snapshot.counter("solver.fast.transient_steps").unwrap() > 0);
        assert!(run(&s(&["analyze", spec.to_str().unwrap(), "--metrics"])).is_err());
    }

    #[test]
    fn analyze_trace_flag_writes_chrome_json() {
        let dir = std::env::temp_dir().join("whart-cli-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let spec = dir.join("section_v.json");
        std::fs::write(&spec, commands::example("section-v").unwrap()).unwrap();
        let trace = dir.join("trace.json");
        let out = run(&s(&[
            "analyze",
            spec.to_str().unwrap(),
            "--trace",
            trace.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("0.962"), "{out}");
        // The file round-trips through whart-json as Chrome trace_event
        // JSON with solve spans and per-hop provenance instants.
        let text = std::fs::read_to_string(&trace).unwrap();
        let value = whart_json::Json::parse(&text).unwrap();
        let events = match &value["traceEvents"] {
            whart_json::Json::Array(events) => events,
            other => panic!("traceEvents missing: {other:?}"),
        };
        let named = |n: &str| {
            events
                .iter()
                .filter(|e| e["name"].as_str() == Some(n))
                .count()
        };
        assert_eq!(named("path_solve"), 1, "one path in Section V");
        assert_eq!(named("hop"), 3, "three hops");
        assert!(run(&s(&["analyze", spec.to_str().unwrap(), "--trace"])).is_err());
    }

    #[test]
    fn dash_streams_metrics_and_trace_to_stdout() {
        let dir = std::env::temp_dir().join("whart-cli-dash-test");
        std::fs::create_dir_all(&dir).unwrap();
        let spec = dir.join("section_v.json");
        std::fs::write(&spec, commands::example("section-v").unwrap()).unwrap();
        let file = spec.to_str().unwrap();

        let out = run(&s(&["analyze", file, "--metrics", "-"])).unwrap();
        let start = out.find("\n{").expect("snapshot JSON after the table");
        let snapshot = whart_obs::MetricsSnapshot::parse(&out[start..]).unwrap();
        assert!(snapshot.histogram("solver.fast.solve_ns").is_some());

        let out = run(&s(&["analyze", file, "--trace", "-"])).unwrap();
        let jsonl: Vec<&str> = out.lines().filter(|l| l.starts_with('{')).collect();
        assert!(!jsonl.is_empty(), "{out}");
        assert!(jsonl.iter().any(|l| l.contains("\"path_solve\"")), "{out}");
        for line in jsonl {
            whart_json::Json::parse(line).unwrap();
        }
    }

    #[test]
    fn dual_stdout_streams_are_rejected_with_a_clear_error() {
        let dir = std::env::temp_dir().join("whart-cli-dual-dash-test");
        std::fs::create_dir_all(&dir).unwrap();
        let spec = dir.join("section_v.json");
        std::fs::write(&spec, commands::example("section-v").unwrap()).unwrap();
        let file = spec.to_str().unwrap();

        // Any pair of stdout artifact streams on analyze: rejected
        // before any work happens, naming both flags.
        for (a, b) in [
            ("--metrics", "--trace"),
            ("--metrics", "--profile"),
            ("--trace", "--profile"),
        ] {
            let err = run(&s(&["analyze", file, a, "-", b, "-"])).unwrap_err();
            assert!(err.contains("interleave"), "{a}/{b}: {err}");
            assert!(err.contains(a), "{a}/{b}: {err}");
            assert!(err.contains(b), "{a}/{b}: {err}");
        }
        // Same grammar on batch.
        let scenarios = dir.join("fleet.json");
        std::fs::write(&scenarios, "[{\"network\":\"section-v\"}]").unwrap();
        for pair in [["--metrics", "--trace"], ["--trace", "--profile"]] {
            let err = run(&s(&[
                "batch",
                scenarios.to_str().unwrap(),
                pair[0],
                "-",
                pair[1],
                "-",
            ]))
            .unwrap_err();
            assert!(err.contains("interleave"), "{err}");
        }
        // One stdout stream plus one file stays allowed.
        let trace = dir.join("trace.json");
        let out = run(&s(&[
            "analyze",
            file,
            "--metrics",
            "-",
            "--trace",
            trace.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("counters"), "{out}");
        assert!(trace.exists());
    }

    #[test]
    fn explain_command_prints_the_breakdown() {
        let dir = std::env::temp_dir().join("whart-cli-explain-test");
        std::fs::create_dir_all(&dir).unwrap();
        let spec = dir.join("section_v.json");
        std::fs::write(&spec, commands::example("section-v").unwrap()).unwrap();
        let out = run(&s(&["explain", spec.to_str().unwrap()])).unwrap();
        assert!(out.contains("dominant loss hop"), "{out}");
        assert!(out.contains("delay decomposition"), "{out}");
        assert!(run(&s(&["explain", spec.to_str().unwrap(), "--path", "0"])).is_err());
    }

    #[test]
    fn optimize_end_to_end_emits_a_reusable_spec() {
        let dir = std::env::temp_dir().join("whart-cli-optimize-test");
        std::fs::create_dir_all(&dir).unwrap();
        let spec = dir.join("optimized.json");
        let base = [
            "optimize",
            "--seed",
            "11",
            "--nodes",
            "12",
            "--rounds",
            "4",
            "--threads",
            "2",
        ];
        let mut with_spec: Vec<&str> = base.to_vec();
        with_spec.extend(["--emit-spec", spec.to_str().unwrap()]);
        let out = run(&s(&with_spec)).unwrap();
        assert!(out.contains("objective: reachability"), "{out}");
        assert!(out.contains("path cache hit ratio"), "{out}");
        // The emitted spec feeds straight back into analyze.
        let analyzed = run(&s(&["analyze", spec.to_str().unwrap()])).unwrap();
        assert!(analyzed.contains("network utilization"), "{analyzed}");
        // Determinism: the same seed reproduces the JSON report.
        let mut json_args: Vec<&str> = base.to_vec();
        json_args.push("--json");
        let a = run(&s(&json_args)).unwrap();
        let b = run(&s(&json_args)).unwrap();
        assert_eq!(a, b, "same seed must reproduce the report");
        // Flag grammar rejections.
        assert!(run(&s(&["optimize", "--objective", "magic"])).is_err());
        assert!(run(&s(&["optimize", "--availability", "0.9"])).is_err());
        assert!(run(&s(&["optimize", "--nodes", "0"])).is_err());
        assert!(run(&s(&["optimize", "--emit-spec", "-", "--metrics", "-"])).is_err());
    }

    #[test]
    fn flag_parsing() {
        let args = s(&["simulate", "x.json", "--seed", "7"]);
        assert_eq!(parse_or(&args, "--seed", 42u64).unwrap(), 7);
        assert_eq!(parse_or(&args, "--intervals", 5u64).unwrap(), 5);
        assert!(flag_value(&s(&["--path"]), "--path").is_err());
        assert!(parse::<u64>("abc", "--seed").is_err());
    }

    #[test]
    fn thread_counts_are_validated_uniformly_across_commands() {
        let dir = std::env::temp_dir().join("whart-cli-threads-test");
        std::fs::create_dir_all(&dir).unwrap();
        let spec = dir.join("section_v.json");
        std::fs::write(&spec, commands::example("section-v").unwrap()).unwrap();
        let scenarios = dir.join("fleet.json");
        std::fs::write(&scenarios, "[{\"network\":\"section-v\"}]").unwrap();
        let spec = spec.to_str().unwrap();
        let scenarios = scenarios.to_str().unwrap();

        // Every worker-spawning command rejects 0 and absurd counts with
        // the same message shape, before doing any work.
        let cases: [&[&str]; 5] = [
            &["batch", scenarios, "--threads"],
            &["serve", "--threads"],
            &["optimize", "--threads"],
            &["simulate", spec, "--threads"],
            &["simulate", spec, "--workers"],
        ];
        for case in cases {
            let flag = case[case.len() - 1];
            let mut zero: Vec<&str> = case.to_vec();
            zero.push("0");
            let err = run(&s(&zero)).unwrap_err();
            assert!(err.contains(flag), "{err}");
            assert!(err.contains("at least 1"), "{err}");
            let mut huge: Vec<&str> = case.to_vec();
            huge.push("4096");
            let err = run(&s(&huge)).unwrap_err();
            assert!(err.contains(flag), "{err}");
            assert!(err.contains("at most 1024"), "{err}");
        }
        // The bounds are inclusive: 1 and 1024 are accepted.
        let out = run(&s(&[
            "simulate",
            spec,
            "--intervals",
            "200",
            "--threads",
            "1",
        ]))
        .unwrap();
        assert!(out.contains("simulated R"), "{out}");
        let out = run(&s(&["batch", scenarios, "--threads", "1024"])).unwrap();
        assert_eq!(out.lines().count(), 1, "{out}");
    }

    #[test]
    fn serve_flag_grammar_is_validated_before_binding() {
        let err = run(&s(&["serve", "--metrics", "-", "--trace", "-"])).unwrap_err();
        assert!(err.contains("interleave"), "{err}");
        let err = run(&s(&["serve", "--threads", "zero?"])).unwrap_err();
        assert!(err.contains("--threads"), "{err}");
        let err = run(&s(&["serve", "--metrics-capacity", "x"])).unwrap_err();
        assert!(err.contains("--metrics-capacity"), "{err}");
        let err = run(&s(&["serve", "--keepalive-timeout", "abc"])).unwrap_err();
        assert!(err.contains("--keepalive-timeout"), "{err}");
        for bad in ["0", "-3", "inf", "nan"] {
            let err = run(&s(&["serve", "--keepalive-timeout", bad])).unwrap_err();
            assert!(err.contains("--keepalive-timeout"), "{bad}: {err}");
        }
        let err = run(&s(&["serve", "--max-queue", "-1"])).unwrap_err();
        assert!(err.contains("--max-queue"), "{err}");
        let err = run(&s(&["serve", "--max-queue", "lots"])).unwrap_err();
        assert!(err.contains("--max-queue"), "{err}");
    }

    #[test]
    fn serve_log_flags_are_validated_before_binding() {
        // The full stdout-interleave matrix: any pair out of
        // --metrics/--trace/--log/--profile on stdout is rejected
        // uniformly, naming both flags.
        let streams = ["--metrics", "--trace", "--log", "--profile"];
        for (i, a) in streams.iter().enumerate() {
            for b in &streams[i + 1..] {
                let err = run(&s(&["serve", a, "-", b, "-"])).unwrap_err();
                assert!(err.contains("interleave"), "{a}/{b}: {err}");
                assert!(err.contains(a), "{a}/{b}: {err}");
                assert!(err.contains(b), "{a}/{b}: {err}");
            }
        }
        // --profile-hz shares the bounded-grammar treatment.
        for bad in ["0", "abc", "-5", "999999"] {
            let err = run(&s(&["serve", "--profile-hz", bad])).unwrap_err();
            assert!(err.contains("--profile-hz"), "{bad}: {err}");
        }
        // Level grammar is checked up front...
        let err = run(&s(&["serve", "--log-level", "loud"])).unwrap_err();
        assert!(err.contains("unknown log level"), "{err}");
        // ...as are the SLO and tail-sampling thresholds.
        for flag in ["--slo-target-ms", "--flight-threshold-ms"] {
            for bad in ["0", "-2", "nan", "abc"] {
                let err = run(&s(&["serve", flag, bad])).unwrap_err();
                assert!(err.contains(flag), "{flag} {bad}: {err}");
            }
        }
    }
}
