//! `whart` binary shim — all the logic lives in the `whart_cli` library.

use std::process::ExitCode;

fn main() -> ExitCode {
    whart_cli::main_entry()
}
