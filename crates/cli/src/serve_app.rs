//! The `whart serve` application: the CLI's evaluation pipeline behind a
//! long-running HTTP service.
//!
//! One process holds one [`EngineStore`] (an engine per solver backend,
//! all sharing a metrics registry and trace journal), so the engines'
//! path/link caches stay warm across requests — repeated or overlapping
//! specs answer from memo instead of re-solving. The HTTP machinery
//! itself lives in the `whart-serve` crate; this module wires the
//! routes:
//!
//! * `POST /v1/analyze` — the `whart analyze` pipeline on the request
//!   body (same spec JSON, same report bytes). Query parameters select
//!   the backend (`backend=fast|explicit|sim`, `seed`, `intervals`) and
//!   the rendering (`format=json|text`, JSON being the service default).
//! * `POST /v1/batch` — the `whart batch` pipeline: one compact JSON
//!   line per scenario, `?stats=true` appends per-engine stats lines.
//! * `POST /v1/optimize` — the `whart optimize` pipeline: a seeded
//!   random mesh plus the Eq. 12 what-if route/schedule search, run
//!   against the store's warm fast engine. Topology size and round
//!   budget are capped server-side.
//! * `GET /metrics` — Prometheus text exposition of the shared registry,
//!   with engine cache-size and hit-ratio gauges plus request-latency
//!   quantiles derived at scrape time.
//! * `GET /v1/trace` — drains the shared journal (`format=jsonl` or
//!   `format=chrome`).
//! * `GET /statusz` — the live SLO view: per-route rolling p50/p95/p99,
//!   error rate and burn rate over the last 30 s, queue depth,
//!   keep-alive reuse ratio.
//! * `GET /v1/debug/requests` — flight-recorder summaries (the last N
//!   requests plus retained-slow outliers), one JSON line each;
//!   `GET /v1/debug/requests/<id>` replays one request's full per-hop
//!   timeline by correlation id.
//! * `GET /v1/debug/profile` — an on-demand sampling capture of the live
//!   process: blocks for `?seconds=N` (default 1, capped), samples every
//!   thread's activity stack at `?hz=`, and returns flamegraph folded
//!   text (`?format=folded`, the default) or per-thread JSON
//!   (`?format=json`). The profiler is always attached in serve mode, so
//!   captures need no restart and cost nothing between requests.
//! * `GET /healthz`, `GET /readyz` — built into `whart-serve`; readiness
//!   flips only after a background self-check solve of the Section V
//!   network succeeds.
//! * `POST /admin/shutdown` — trips the same graceful drain as Ctrl-C:
//!   stop accepting, finish in-flight solves, write the final
//!   `--metrics`/`--trace` artifacts, exit.

use crate::batch::{decode_fleet, result_line, stats_line, BatchEntry};
use crate::commands::{
    example, render_analyze, write_metrics, write_profile, write_trace, Backend,
};
use crate::spec::NetworkSpec;
use std::sync::{Arc, Mutex};
use std::time::Instant;
use whart_engine::{Engine, MeasureSet, Scenario, ScenarioResult};
use whart_log::{Level, Logger};
use whart_model::{MeasurePlan, NetworkModel};
use whart_obs::prometheus::{self, DerivedGauge};
use whart_obs::Metrics;
use whart_prof::{Frame, Profiler, ResourceSampler};
use whart_serve::flight::{DEFAULT_RECENT, DEFAULT_SLOW};
use whart_serve::windows::DEFAULT_WINDOW;
use whart_serve::{FlightRecorder, HttpWindows, Request, Response, Router, Server, ServerConfig};
use whart_trace::Trace;

/// `whart serve` command-line options.
pub(crate) struct ServeOptions {
    /// Listen address (`ip:port`; port 0 picks a free port).
    pub addr: String,
    /// HTTP worker threads; also the per-engine solver thread count.
    pub threads: usize,
    /// Idle keep-alive timeout (`--keepalive-timeout`, seconds).
    pub keepalive_timeout: Option<std::time::Duration>,
    /// Dispatch-queue capacity (`--max-queue`); requests beyond it are
    /// rejected with 503 + Retry-After.
    pub max_queue: Option<usize>,
    /// Where to write the final metrics snapshot at shutdown.
    pub metrics_path: Option<String>,
    /// Where to write the final trace journal at shutdown.
    pub trace_path: Option<String>,
    /// Engine path/link cache capacity bound (entries per layer).
    pub cache_capacity: Option<usize>,
    /// Trace journal capacity bound (retained events).
    pub trace_capacity: Option<usize>,
    /// Structured request-log target (`--log`; `-` is stdout, `stderr`
    /// the diagnostic stream, anything else a file path).
    pub log_path: Option<String>,
    /// Minimum level the request log records (`--log-level`).
    pub log_level: Option<Level>,
    /// Rolling-window SLO latency target, milliseconds
    /// (`--slo-target-ms`).
    pub slo_target_ms: Option<f64>,
    /// Flight-recorder tail-sampling threshold, milliseconds
    /// (`--flight-threshold-ms`).
    pub flight_threshold_ms: Option<f64>,
    /// Where to write a whole-lifetime sampled profile at shutdown
    /// (`--profile`). The live `/v1/debug/profile` endpoint works with
    /// or without this.
    pub profile_path: Option<String>,
    /// Sampling frequency for the lifetime capture, and the default for
    /// `/v1/debug/profile` (`--profile-hz`).
    pub profile_hz: u32,
}

/// Longest `/v1/debug/profile` capture one request may hold a worker
/// thread for.
const MAX_PROFILE_SECONDS: u64 = 30;

/// How often the background resource sampler re-reads `/proc/self`.
const RESOURCE_PERIOD: std::time::Duration = std::time::Duration::from_secs(1);

/// Default SLO latency target: the service promises p99 < 5 ms warm.
const DEFAULT_SLO_TARGET_MS: f64 = 5.0;

/// Default flight-recorder tail threshold: the committed `BENCH_serve`
/// keep-alive p99 at the rated load (see `BENCH_serve.json`, `rate500`).
/// Requests slower than the benchmarked tail are the ones worth keeping.
const DEFAULT_FLIGHT_THRESHOLD_MS: f64 = 0.91;

/// One engine per solver backend, find-or-created on first use. All
/// engines share the service's metrics registry and trace journal, and
/// their caches persist for the life of the process.
struct EngineStore {
    threads: usize,
    cache_capacity: Option<usize>,
    metrics: Metrics,
    trace: Trace,
    profiler: Profiler,
    engines: Vec<(Backend, Engine)>,
}

impl EngineStore {
    fn new(
        threads: usize,
        cache_capacity: Option<usize>,
        metrics: Metrics,
        trace: Trace,
        profiler: Profiler,
    ) -> EngineStore {
        EngineStore {
            threads,
            cache_capacity,
            metrics,
            trace,
            profiler,
            engines: Vec::new(),
        }
    }

    /// The engine slot for `backend`, creating it on first use.
    fn slot(&mut self, backend: Backend) -> usize {
        if let Some(i) = self.engines.iter().position(|(b, _)| *b == backend) {
            return i;
        }
        let mut engine = Engine::with_solver(self.threads, backend.solver());
        engine.set_metrics(self.metrics.clone());
        engine.set_trace(self.trace.clone());
        engine.set_profiler(self.profiler.clone());
        engine.set_cache_capacities(self.cache_capacity, self.cache_capacity);
        self.engines.push((backend, engine));
        self.engines.len() - 1
    }

    /// Solves one network scenario through `backend`'s warm engine.
    /// Returns the result and how many cache hits the solve scored.
    /// `request_id` is stamped on every trace span the solve emits, so
    /// the journal links back to the originating HTTP request.
    fn solve_network(
        &mut self,
        backend: Backend,
        model: NetworkModel,
        request_id: &str,
    ) -> Result<(ScenarioResult, u64), String> {
        let _scope = self
            .trace
            .context_scope([("request_id", request_id.into())]);
        let slot = self.slot(backend);
        let engine = &mut self.engines[slot].1;
        let before = engine.stats().cache_hits();
        engine.submit(Scenario::network("http", model));
        let mut results = engine.drain().map_err(|e| e.to_string())?;
        let result = results.pop().ok_or("engine returned no result")?;
        let hits = engine.stats().cache_hits() - before;
        Ok((result, hits))
    }

    /// Runs a decoded scenario fleet exactly as `whart batch` does —
    /// per-backend engines, submission-order output — but against the
    /// store's persistent engines.
    fn solve_fleet(
        &mut self,
        entries: Vec<BatchEntry>,
        with_stats: bool,
        request_id: &str,
    ) -> Result<String, String> {
        let _scope = self
            .trace
            .context_scope([("request_id", request_id.into())]);
        let measure_sets: Vec<MeasureSet> = entries.iter().map(|e| e.measures).collect();
        let mut placements: Vec<(usize, usize)> = Vec::with_capacity(entries.len());
        let mut used: Vec<usize> = Vec::new();
        for entry in entries {
            let slot = self.slot(entry.backend);
            if !used.contains(&slot) {
                used.push(slot);
            }
            let index = self.engines[slot].1.submit(entry.scenario);
            placements.push((slot, index));
        }
        let mut drained: Vec<Option<Vec<ScenarioResult>>> = Vec::new();
        drained.resize_with(self.engines.len(), || None);
        for &slot in &used {
            drained[slot] = Some(self.engines[slot].1.drain().map_err(|e| e.to_string())?);
        }
        let mut out = String::new();
        for ((slot, index), measures) in placements.iter().zip(measure_sets) {
            let results = drained[*slot].as_ref().expect("used slot was drained");
            out.push_str(&result_line(&results[*index], measures).to_compact());
            out.push('\n');
        }
        if with_stats {
            for &slot in &used {
                out.push_str(&stats_line(&self.engines[slot].1).to_compact());
                out.push('\n');
            }
        }
        Ok(out)
    }
}

/// How many distinct `(query, body)` analyze requests the response
/// memo retains before evicting the oldest.
const MEMO_CAPACITY: usize = 32;

/// One memoized `/v1/analyze` response.
///
/// The analyze pipeline is a pure function of the query parameters and
/// the spec body (every backend is deterministic — `sim` takes its seed
/// from the query), so the *rendered response bytes* can be replayed
/// verbatim for a repeated request. Production traffic is dominated by
/// monitors re-analyzing an unchanged spec; replaying the bytes turns
/// those requests from a solver round-trip into a table lookup, which
/// is what lets a keep-alive connection stream analyses at
/// connection-overhead cost.
struct MemoEntry {
    /// Hash over `(query, body)` — a fast reject before the full
    /// comparison below (hash equality alone never serves a response).
    fingerprint: u64,
    query: Vec<(String, String)>,
    body: Vec<u8>,
    /// Whether the rendered body is JSON (`format=text` renders plain).
    json: bool,
    rendered: String,
    /// Path count of the original evaluation, replayed as a trace arg.
    paths: u64,
}

fn memo_fingerprint(request: &Request) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    request.query.hash(&mut hasher);
    request.body.hash(&mut hasher);
    hasher.finish()
}

/// Handler-level activity frames, interned once at startup.
#[derive(Clone, Copy)]
struct ServeFrames {
    analyze: Frame,
    batch: Frame,
    optimize: Frame,
}

/// Shared application state captured by every route handler.
struct App {
    metrics: Metrics,
    trace: Trace,
    log: Logger,
    windows: Arc<HttpWindows>,
    flight: FlightRecorder,
    started: Instant,
    /// Always enabled in serve mode so `/v1/debug/profile` can capture
    /// without a restart; between captures the sampler is parked and
    /// frame pushes are two relaxed atomic stores.
    profiler: Profiler,
    frames: ServeFrames,
    /// Default `?hz=` for `/v1/debug/profile` (`--profile-hz`).
    profile_hz: u32,
    /// Background `/proc/self` reader behind the `process_*` gauges.
    resources: ResourceSampler,
    engines: Mutex<EngineStore>,
    analyze_memo: Mutex<std::collections::VecDeque<MemoEntry>>,
}

impl App {
    fn store(&self) -> Result<std::sync::MutexGuard<'_, EngineStore>, String> {
        self.engines
            .lock()
            .map_err(|_| "engine store poisoned by an earlier panic".to_string())
    }

    /// Replays a memoized analyze response for this exact request, if
    /// one exists.
    fn memo_lookup(&self, request: &Request, fingerprint: u64) -> Option<Response> {
        let memo = self.analyze_memo.lock().ok()?;
        let entry = memo.iter().find(|e| {
            e.fingerprint == fingerprint && e.query == request.query && e.body == request.body
        })?;
        self.metrics.counter("serve.analyze_memo.hits").increment();
        let response = if entry.json {
            Response::json(200, entry.rendered.clone())
        } else {
            Response::text(200, entry.rendered.clone())
        };
        Some(
            response
                .with_trace_arg("paths", entry.paths)
                .with_trace_arg("memo", 1u64),
        )
    }

    /// Records a freshly rendered analyze response, evicting the
    /// oldest entry once the memo is full.
    fn memo_store(
        &self,
        request: &Request,
        fingerprint: u64,
        json: bool,
        rendered: &str,
        paths: u64,
    ) {
        let Ok(mut memo) = self.analyze_memo.lock() else {
            return;
        };
        if memo.len() >= MEMO_CAPACITY {
            memo.pop_front();
        }
        memo.push_back(MemoEntry {
            fingerprint,
            query: request.query.clone(),
            body: request.body.clone(),
            json,
            rendered: rendered.to_string(),
            paths,
        });
    }
}

fn bad_request(message: &str) -> Response {
    Response::text(400, format!("error: {message}\n"))
}

/// Body size beyond which a response streams with
/// `Transfer-Encoding: chunked` instead of one `Content-Length` body
/// (batch fleets and trace drains routinely exceed this).
const CHUNK_THRESHOLD: usize = 64 * 1024;

/// Opts large bodies into chunked streaming (HTTP/1.0 peers still get
/// `Content-Length` framing — the connection layer downgrades).
fn maybe_chunked(response: Response) -> Response {
    if response.body.len() > CHUNK_THRESHOLD {
        response.with_chunked()
    } else {
        response
    }
}

fn query_u64(request: &Request, key: &str, default: u64) -> Result<u64, String> {
    match request.query_param(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value '{v}' for query parameter '{key}'")),
    }
}

/// `POST /v1/analyze`: the `analyze` pipeline on the request body.
///
/// Responses are memoized per exact `(query, body)` pair — see
/// [`MemoEntry`] — so a repeated analysis replays the original bytes
/// instead of re-solving.
fn analyze_handler(app: &App, request: &Request) -> Result<Response, String> {
    let _frame = app.profiler.enter(app.frames.analyze);
    let fingerprint = memo_fingerprint(request);
    if let Some(response) = app.memo_lookup(request, fingerprint) {
        return Ok(response);
    }
    app.metrics.counter("serve.analyze_memo.misses").increment();
    let spec = NetworkSpec::from_json(request.body_text()?)?;
    let name = request.query_param("backend").unwrap_or("fast");
    let seed = query_u64(request, "seed", 42)?;
    let intervals = query_u64(request, "intervals", 100_000)?;
    let backend = Backend::parse(name, seed, intervals)?;
    let json = match request.query_param("format") {
        None | Some("json") => true,
        Some("text") => false,
        Some(other) => return Err(format!("unknown format '{other}' (expected json or text)")),
    };
    let model = spec.to_model()?;
    let request_id = request.request_id().unwrap_or("-").to_owned();
    let solve_started = Instant::now();
    // The sim backend solves directly (its per-path seeds are positional
    // in the network, which the engine's per-path routing would not
    // reproduce); the deterministic backends go through the warm engine.
    let (body, paths, hits) = match backend {
        Backend::Sim { .. } => {
            let _scope = app
                .trace
                .context_scope([("request_id", request_id.as_str().into())]);
            let problem = model.compile().map_err(|e| e.to_string())?;
            let eval = backend
                .solver()
                .solve_network_traced(&problem, MeasurePlan::default(), &app.metrics, &app.trace)
                .map_err(|e| e.to_string())?;
            let paths = eval.reports().len();
            (render_analyze(json, &backend, &eval), paths, 0)
        }
        Backend::Fast | Backend::Explicit => {
            let (result, hits) = app.store()?.solve_network(backend, model, &request_id)?;
            let eval = result
                .network()
                .ok_or("engine returned a non-network outcome")?;
            let paths = eval.reports().len();
            (render_analyze(json, &backend, eval), paths, hits)
        }
    };
    let engine_ns = u64::try_from(solve_started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    app.memo_store(request, fingerprint, json, &body, paths as u64);
    let response = if json {
        Response::json(200, body)
    } else {
        Response::text(200, body)
    };
    Ok(response
        .with_trace_arg("paths", paths as u64)
        .with_trace_arg("cache_hits", hits)
        .with_trace_arg("engine_ns", engine_ns))
}

/// `POST /v1/batch`: the `batch` pipeline against the persistent engines.
fn batch_handler(app: &App, request: &Request) -> Result<Response, String> {
    let _frame = app.profiler.enter(app.frames.batch);
    let entries = decode_fleet(request.body_text()?)?;
    let with_stats = matches!(request.query_param("stats"), Some("true") | Some("1"));
    let scenarios = entries.len();
    let request_id = request.request_id().unwrap_or("-").to_owned();
    let mut store = app.store()?;
    let before: u64 = store
        .engines
        .iter()
        .map(|(_, e)| e.stats().cache_hits())
        .sum();
    let out = store.solve_fleet(entries, with_stats, &request_id)?;
    let hits: u64 = store
        .engines
        .iter()
        .map(|(_, e)| e.stats().cache_hits())
        .sum::<u64>()
        - before;
    drop(store);
    let mut response = Response::json(200, out);
    response.content_type = "application/x-ndjson".into();
    Ok(maybe_chunked(response)
        .with_trace_arg("scenarios", scenarios as u64)
        .with_trace_arg("cache_hits", hits))
}

/// `POST /v1/optimize`: generates a seeded random mesh and runs the
/// what-if route/schedule search against the store's warm fast engine.
/// The JSON body selects the generator and search parameters, all
/// optional: `seed`, `nodes`, `degree`, `depth`, `extra_links`,
/// `availability` (a `[lo, hi]` pair), `recovery`, `slack`, `interval`,
/// `objective` (`"reachability"` or `"delay"`) and `rounds`. The knobs
/// that drive search cost are capped server-side so one request cannot
/// monopolize the service; `?spec=true` wraps the report together with
/// the optimized network's `analyze`/`batch`-compatible spec.
fn optimize_handler(app: &App, request: &Request) -> Result<Response, String> {
    let _frame = app.profiler.enter(app.frames.optimize);
    let body = request.body_text()?;
    let value = if body.trim().is_empty() {
        whart_json::Json::object([] as [(&str, whart_json::Json); 0])
    } else {
        whart_json::Json::parse(body).map_err(|e| format!("invalid JSON body: {e}"))?
    };
    let uint = |key: &str, default: u64, max: u64| -> Result<u64, String> {
        match &value[key] {
            whart_json::Json::Null => Ok(default),
            v => {
                let n = v
                    .as_u64()
                    .ok_or_else(|| format!("'{key}' must be a non-negative integer"))?;
                if n > max {
                    return Err(format!("'{key}' is capped at {max} for the service"));
                }
                Ok(n)
            }
        }
    };
    let float = |key: &str, default: f64| -> Result<f64, String> {
        match &value[key] {
            whart_json::Json::Null => Ok(default),
            v => v
                .as_f64()
                .ok_or_else(|| format!("'{key}' must be a number")),
        }
    };
    let g = whart_opt::GeneratorConfig::default();
    let s = whart_opt::SearchConfig::default();
    let availability = match &value["availability"] {
        whart_json::Json::Null => Ok(g.availability),
        whart_json::Json::Array(pair) if pair.len() == 2 => {
            match (pair[0].as_f64(), pair[1].as_f64()) {
                (Some(lo), Some(hi)) => Ok((lo, hi)),
                _ => Err("'availability' must be a [lo, hi] number pair".to_string()),
            }
        }
        _ => Err("'availability' must be a [lo, hi] number pair".to_string()),
    }?;
    let objective = match &value["objective"] {
        whart_json::Json::Null => s.objective,
        v => {
            let name = v.as_str().ok_or("'objective' must be a string")?;
            whart_opt::Objective::parse(name).ok_or_else(|| {
                format!("unknown objective '{name}' (expected reachability or delay)")
            })?
        }
    };
    let generator = whart_opt::GeneratorConfig {
        seed: uint("seed", g.seed, u64::MAX)?,
        nodes: uint("nodes", g.nodes.into(), 64)? as u32,
        max_degree: uint("degree", g.max_degree as u64, 64)? as usize,
        max_depth: uint("depth", g.max_depth as u64, 64)? as usize,
        extra_links: uint("extra_links", g.extra_links.into(), 256)? as u32,
        availability,
        recovery: float("recovery", g.recovery)?,
        slot_slack: uint("slack", g.slot_slack.into(), 1024)? as u32,
        reporting_interval: uint("interval", g.reporting_interval.into(), 32)? as u32,
    };
    let search = whart_opt::SearchConfig {
        objective,
        max_rounds: uint("rounds", s.max_rounds as u64, 16)? as usize,
    };
    let net = whart_opt::generate(&generator).map_err(|e| e.to_string())?;
    let request_id = request.request_id().unwrap_or("-").to_owned();
    let mut store = app.store()?;
    let _scope = store
        .trace
        .context_scope([("request_id", request_id.as_str().into())]);
    let slot = store.slot(Backend::Fast);
    let result = whart_opt::optimize(&mut store.engines[slot].1, &net, &search)
        .map_err(|e| e.to_string())?;
    drop(store);
    let candidates = result.candidates_evaluated;
    let with_spec = matches!(request.query_param("spec"), Some("true") | Some("1"));
    let payload = if with_spec {
        whart_json::Json::object([
            ("report", result.to_json()),
            ("spec", result.spec_json(&net)),
        ])
    } else {
        result.to_json()
    };
    let mut text = payload.to_pretty();
    text.push('\n');
    Ok(Response::json(200, text).with_trace_arg("candidates", candidates))
}

/// `GET /v1/trace`: drains the shared journal.
fn trace_handler(app: &App, request: &Request) -> Result<Response, String> {
    let log = app.trace.drain();
    match request.query_param("format") {
        None | Some("jsonl") => {
            let mut response = Response::json(200, log.to_jsonl());
            response.content_type = "application/x-ndjson".into();
            Ok(maybe_chunked(response))
        }
        Some("chrome") => {
            let mut text = log.to_chrome_json().to_pretty();
            text.push('\n');
            Ok(maybe_chunked(Response::json(200, text)))
        }
        Some(other) => Err(format!(
            "unknown format '{other}' (expected jsonl or chrome)"
        )),
    }
}

/// `GET /metrics`: Prometheus text exposition of the shared registry.
///
/// On top of the verbatim counters/gauges/histograms, each scrape
/// derives the values Prometheus cannot read from a raw registry:
/// engine cache sizes (refreshed from the live engines), cache
/// hit ratios, and request-latency quantiles from the log2 histograms.
fn metrics_handler(app: &App) -> Result<Response, String> {
    let snapshot = app.metrics.snapshot();
    let mut derived: Vec<DerivedGauge> = Vec::new();
    {
        let store = app.store()?;
        for (_, engine) in &store.engines {
            let backend = engine.solver_name();
            derived.push(DerivedGauge::new(
                format!("engine.cache.path_entries{{backend={backend}}}"),
                engine.cached_paths() as f64,
            ));
            derived.push(DerivedGauge::new(
                format!("engine.cache.link_entries{{backend={backend}}}"),
                engine.cached_links() as f64,
            ));
        }
    }
    for layer in ["engine.path_cache", "engine.link_cache"] {
        let hits = snapshot.counter(&format!("{layer}.hits")).unwrap_or(0);
        let misses = snapshot.counter(&format!("{layer}.misses")).unwrap_or(0);
        if hits + misses > 0 {
            derived.push(DerivedGauge::new(
                format!("{layer}.hit_ratio"),
                hits as f64 / (hits + misses) as f64,
            ));
        }
    }
    for (name, histogram) in &snapshot.histograms {
        let Some(rest) = name.strip_prefix("http.request_ns") else {
            continue;
        };
        for (q, label) in [(0.5, "p50"), (0.95, "p95"), (0.99, "p99")] {
            if let Some(value) = histogram.quantile(q) {
                derived.push(DerivedGauge::new(
                    format!("http.request_ns.{label}{rest}"),
                    value,
                ));
            }
        }
    }
    // Process resource telemetry from the background `/proc/self`
    // sampler, in the standard Prometheus process_* family names.
    if let Some(process) = app.resources.latest() {
        derived.push(DerivedGauge::new(
            "process_cpu_percent",
            process.cpu_percent,
        ));
        derived.push(DerivedGauge::new(
            "process_rss_bytes",
            process.rss_bytes as f64,
        ));
        derived.push(DerivedGauge::new("process_threads", process.threads as f64));
        derived.push(DerivedGauge::new(
            "process_open_fds",
            process.open_fds as f64,
        ));
        derived.push(DerivedGauge::new(
            "process_start_time_seconds",
            process.start_time_seconds,
        ));
    }
    derived.push(DerivedGauge::new(
        "uptime_seconds",
        app.started.elapsed().as_secs_f64(),
    ));
    // Sliding-window gauges: what the last window of traffic looked
    // like, per route, alongside the cumulative series above.
    let window_s = app.windows.window().as_secs();
    for route in app.windows.snapshot() {
        let suffix = format!("window{window_s}s{{route={}}}", route.route);
        derived.push(DerivedGauge::new(
            format!("http.requests.{suffix}"),
            route.requests as f64,
        ));
        derived.push(DerivedGauge::new(
            format!("http.errors.{suffix}"),
            route.errors as f64,
        ));
        derived.push(DerivedGauge::new(
            format!("http.slo_burn.{suffix}"),
            route.slo_burn_rate(),
        ));
        for (q, label) in [(0.5, "p50"), (0.95, "p95"), (0.99, "p99")] {
            if let Some(value) = route.latency.quantile(q) {
                derived.push(DerivedGauge::new(
                    format!("http.request_ns.{label}.{suffix}"),
                    value,
                ));
            }
        }
    }
    let mut response = Response::text(200, prometheus::render_with(&snapshot, &derived));
    response.content_type = "text/plain; version=0.0.4; charset=utf-8".into();
    Ok(response)
}

/// `GET /statusz`: the live SLO view — per-route rolling quantiles,
/// error rate and burn rate over the last window, plus queue and
/// connection health, as a plain-text page for humans and smoke tests.
fn statusz_handler(app: &App) -> Result<Response, String> {
    use std::fmt::Write as _;
    let snapshot = app.metrics.snapshot();
    let requests_total: u64 = snapshot
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("http.requests_total"))
        .map(|(_, count)| count)
        .sum();
    let reuses = snapshot.counter("http.keepalive.reuses_total").unwrap_or(0);
    let reuse_ratio = if requests_total == 0 {
        0.0
    } else {
        reuses as f64 / requests_total as f64
    };
    let slo_target_ms = app.windows.slo_target_ns() as f64 / 1e6;
    let mut out = String::new();
    let _ = writeln!(out, "whart serve status");
    let _ = writeln!(out, "uptime_s: {}", app.started.elapsed().as_secs());
    let _ = writeln!(out, "window_s: {}", app.windows.window().as_secs());
    let _ = writeln!(out, "slo_target_ms: {slo_target_ms:.3}");
    let _ = writeln!(out, "requests_total: {requests_total}");
    let _ = writeln!(
        out,
        "queue_depth: {}",
        snapshot.gauge("http.queue_depth").unwrap_or(0)
    );
    let _ = writeln!(
        out,
        "connections_open: {}",
        snapshot.gauge("http.connections_open").unwrap_or(0)
    );
    let _ = writeln!(out, "keepalive_reuse_ratio: {reuse_ratio:.3}");
    let _ = writeln!(
        out,
        "flight_threshold_ms: {:.3}",
        app.flight.threshold_ns().unwrap_or(0) as f64 / 1e6
    );
    let _ = writeln!(out, "log_write_errors: {}", app.log.write_errors());
    if let Some(process) = app.resources.latest() {
        let _ = writeln!(out);
        let _ = writeln!(out, "process:");
        let _ = writeln!(out, "  cpu_percent: {:.1}", process.cpu_percent);
        let _ = writeln!(out, "  rss_bytes: {}", process.rss_bytes);
        let _ = writeln!(out, "  threads: {}", process.threads);
        let _ = writeln!(out, "  open_fds: {}", process.open_fds);
        let _ = writeln!(
            out,
            "  start_time_seconds: {:.0}",
            process.start_time_seconds
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<28} {:>8} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>7}",
        "route", "requests", "errors", "err_rate", "p50_ms", "p95_ms", "p99_ms", "slo_miss", "burn"
    );
    let ms = |q: Option<f64>| q.map_or(0.0, |ns| ns / 1e6);
    for route in app.windows.snapshot() {
        let _ = writeln!(
            out,
            "{:<28} {:>8} {:>8} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9} {:>7.2}",
            route.route,
            route.requests,
            route.errors,
            route.error_rate(),
            ms(route.latency.quantile(0.5)),
            ms(route.latency.quantile(0.95)),
            ms(route.latency.quantile(0.99)),
            route.slo_misses,
            route.slo_burn_rate(),
        );
    }
    Ok(Response::text(200, out))
}

/// `GET /v1/debug/requests`: flight-recorder summaries, newest first,
/// one JSON object per line.
fn debug_requests_handler(app: &App) -> Response {
    let mut out = String::new();
    for entry in app.flight.summaries() {
        out.push_str(&entry.summary_json().to_compact());
        out.push('\n');
    }
    let mut response = Response::json(200, out);
    response.content_type = "application/x-ndjson".into();
    maybe_chunked(response)
}

/// `GET /v1/debug/requests/<id>`: one retained request's summary plus
/// its per-hop timeline, as trace-journal JSONL.
fn debug_request_detail_handler(app: &App, request: &Request) -> Response {
    let id = request.path.rsplit('/').next().unwrap_or("");
    match app.flight.lookup(id) {
        Some(entry) => {
            let mut response = Response::json(200, entry.detail_jsonl());
            response.content_type = "application/x-ndjson".into();
            maybe_chunked(response)
        }
        None => Response::text(404, format!("no retained trace for request id '{id}'\n")),
    }
}

/// `GET /v1/debug/profile`: an on-demand sampling capture of the live
/// process. Blocks the handling worker for `?seconds=N` (default 1,
/// capped at [`MAX_PROFILE_SECONDS`]) while the sampler aggregates every
/// thread's activity stack at `?hz=` (default `--profile-hz`), then
/// returns the capture as flamegraph folded text or per-thread JSON
/// (`?format=folded|json`).
fn debug_profile_handler(app: &App, request: &Request) -> Result<Response, String> {
    let seconds = query_u64(request, "seconds", 1)?;
    if seconds == 0 || seconds > MAX_PROFILE_SECONDS {
        return Err(format!(
            "'seconds' must be between 1 and {MAX_PROFILE_SECONDS}"
        ));
    }
    let hz = query_u64(request, "hz", app.profile_hz as u64)?;
    if hz == 0 || hz > crate::MAX_PROFILE_HZ as u64 {
        return Err(format!(
            "'hz' must be between 1 and {}",
            crate::MAX_PROFILE_HZ
        ));
    }
    let json = match request.query_param("format") {
        None | Some("folded") => false,
        Some("json") => true,
        Some(other) => {
            return Err(format!(
                "unknown format '{other}' (expected folded or json)"
            ))
        }
    };
    let capture = app
        .profiler
        .start_capture(hz as u32)
        .ok_or("profiler is not attached")?;
    std::thread::sleep(std::time::Duration::from_secs(seconds));
    let profile = capture.stop();
    if json {
        let mut text = profile.to_json().to_pretty();
        text.push('\n');
        Ok(maybe_chunked(Response::json(200, text))
            .with_trace_arg("samples", profile.total_samples()))
    } else {
        Ok(maybe_chunked(Response::text(200, profile.to_folded()))
            .with_trace_arg("samples", profile.total_samples()))
    }
}

/// Wraps a fallible handler into the router's infallible signature.
fn wrap(result: Result<Response, String>) -> Response {
    result.unwrap_or_else(|e| bad_request(&e))
}

fn build_router(app: &Arc<App>, shutdown: whart_serve::Flag) -> Router {
    let analyze_app = Arc::clone(app);
    let batch_app = Arc::clone(app);
    let optimize_app = Arc::clone(app);
    let trace_app = Arc::clone(app);
    let metrics_app = Arc::clone(app);
    let statusz_app = Arc::clone(app);
    let debug_list_app = Arc::clone(app);
    let debug_detail_app = Arc::clone(app);
    let debug_profile_app = Arc::clone(app);
    Router::new()
        .route("POST", "/v1/analyze", move |req| {
            wrap(analyze_handler(&analyze_app, req))
        })
        .route("POST", "/v1/batch", move |req| {
            wrap(batch_handler(&batch_app, req))
        })
        .route("POST", "/v1/optimize", move |req| {
            wrap(optimize_handler(&optimize_app, req))
        })
        .route("GET", "/v1/trace", move |req| {
            wrap(trace_handler(&trace_app, req))
        })
        .route("GET", "/metrics", move |_req| {
            wrap(metrics_handler(&metrics_app))
        })
        .route("GET", "/statusz", move |_req| {
            wrap(statusz_handler(&statusz_app))
        })
        .route("GET", "/v1/debug/requests", move |_req| {
            debug_requests_handler(&debug_list_app)
        })
        .route("GET", "/v1/debug/profile", move |req| {
            wrap(debug_profile_handler(&debug_profile_app, req))
        })
        .prefix_route(
            "GET",
            "/v1/debug/requests/",
            "/v1/debug/requests/:id",
            move |req| debug_request_detail_handler(&debug_detail_app, req),
        )
        .route("POST", "/admin/shutdown", move |_req| {
            shutdown.set();
            Response::text(202, "draining\n")
        })
}

/// The readiness self-check: one real solve of the paper's Section V
/// network through the fast engine. Succeeding proves the whole stack
/// (spec decode, model compile, engine, solver) and pre-warms the cache.
fn self_check(app: &App) -> Result<(), String> {
    let spec = NetworkSpec::from_json(&example("section-v")?)?;
    let model = spec.to_model()?;
    app.store()?
        .solve_network(Backend::Fast, model, "self-check")?;
    Ok(())
}

/// Runs `whart serve`: binds, serves until Ctrl-C or
/// `POST /admin/shutdown`, drains, and writes the final artifacts.
/// Returns the shutdown summary (plus any `-` artifact streams) for
/// stdout.
pub(crate) fn serve(options: ServeOptions) -> Result<String, String> {
    let threads = options.threads.max(1);
    let metrics = Metrics::new();
    let trace = match options.trace_capacity {
        Some(capacity) => Trace::with_capacity(capacity),
        None => Trace::new(),
    };
    let defaults = ServerConfig::default();
    let mut server = Server::bind(&ServerConfig {
        addr: options.addr.clone(),
        threads,
        keepalive_timeout: options
            .keepalive_timeout
            .unwrap_or(defaults.keepalive_timeout),
        max_queue: options.max_queue.unwrap_or(defaults.max_queue),
        ..defaults
    })
    .map_err(|e| format!("cannot bind {}: {e}", options.addr))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    server.set_metrics(metrics.clone());
    server.set_trace(trace.clone());
    let log = match &options.log_path {
        Some(target) => Logger::for_target(target, options.log_level.unwrap_or(Level::Info))?,
        None => Logger::disabled(),
    };
    let slo_target_ms = options.slo_target_ms.unwrap_or(DEFAULT_SLO_TARGET_MS);
    let flight_threshold_ms = options
        .flight_threshold_ms
        .unwrap_or(DEFAULT_FLIGHT_THRESHOLD_MS);
    let windows = Arc::new(HttpWindows::new(
        DEFAULT_WINDOW,
        std::time::Duration::from_secs_f64(slo_target_ms / 1e3),
    ));
    let flight = FlightRecorder::new(
        DEFAULT_RECENT,
        DEFAULT_SLOW,
        (flight_threshold_ms * 1e6) as u64,
    );
    server.set_log(log.clone());
    server.set_windows(Arc::clone(&windows));
    server.set_flight(flight.clone());
    // The profiler rides along for the whole process lifetime so the
    // debug endpoint can capture at any moment; an explicit `--profile`
    // additionally runs one lifetime capture written at shutdown.
    let profiler = Profiler::new();
    let lifetime_capture = options
        .profile_path
        .as_ref()
        .and_then(|_| profiler.start_capture(options.profile_hz));
    let frames = ServeFrames {
        analyze: profiler.frame("serve.analyze"),
        batch: profiler.frame("serve.batch"),
        optimize: profiler.frame("serve.optimize"),
    };
    let app = Arc::new(App {
        metrics: metrics.clone(),
        trace: trace.clone(),
        log: log.clone(),
        windows,
        flight,
        started: Instant::now(),
        profiler: profiler.clone(),
        frames,
        profile_hz: options.profile_hz,
        resources: ResourceSampler::spawn(RESOURCE_PERIOD),
        engines: Mutex::new(EngineStore::new(
            threads,
            options.cache_capacity,
            metrics.clone(),
            trace.clone(),
            profiler,
        )),
        analyze_memo: Mutex::new(std::collections::VecDeque::new()),
    });
    server.set_router(build_router(&app, server.shutdown()));
    let ready = server.ready();
    let ready_app = Arc::clone(&app);
    std::thread::Builder::new()
        .name("whart-serve-ready".into())
        .spawn(move || match self_check(&ready_app) {
            Ok(()) => ready.set(),
            Err(e) => eprintln!("whart serve: readiness self-check failed: {e}"),
        })
        .map_err(|e| format!("cannot spawn readiness check: {e}"))?;
    // The address goes to stderr so stdout stays clean for the final
    // artifacts (tests and scripts parse the port from this line).
    eprintln!("whart serve: listening on http://{addr} ({threads} worker threads)");
    log.event(Level::Info, "server_listening")
        .field("addr", addr.to_string())
        .field("threads", threads as u64)
        .emit();
    log.flush();
    server.serve().map_err(|e| format!("serve failed: {e}"))?;
    let snapshot = metrics.snapshot();
    let requests: u64 = snapshot
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("http.requests_total"))
        .map(|(_, count)| count)
        .sum();
    log.event(Level::Info, "server_drained")
        .field("requests", requests)
        .emit();
    log.flush();
    let mut out = format!("whart serve: drained after {requests} requests\n");
    if let Some(path) = &options.metrics_path {
        out.push_str(&write_metrics(path, &metrics)?);
    }
    if let Some(path) = &options.trace_path {
        out.push_str(&write_trace(path, &trace)?);
    }
    if let (Some(path), Some(capture)) = (&options.profile_path, lifetime_capture) {
        out.push_str(&write_profile(path, &capture.stop())?);
    }
    Ok(out)
}
