//! The `batch` subcommand: evaluate a fleet of scenarios through the
//! memoizing engine, streaming one JSON line per scenario.
//!
//! The input file holds a JSON array (or an object with a `scenarios`
//! array) of scenario objects:
//!
//! ```json
//! {
//!   "label": "typical, degraded e3",
//!   "network": "typical",
//!   "availability": 0.83,
//!   "interval": 4,
//!   "inject": [ { "link": [3, 0], "outage": [40, 60] } ],
//!   "measures": ["reachability", "expected_delay", "utilization"]
//! }
//! ```
//!
//! `network` is a named template (`"typical"`, `"section-v"`) or an
//! inline network spec object. `availability` replaces every link's
//! quality; `interval` replaces the reporting interval. Each injection
//! targets a link `[a, b]` (0 = gateway) and forces an `outage` slot
//! window, an `initial` state (`"up"`/`"down"`), or a degraded
//! `availability` on it. Absent `measures` requests everything except
//! the raw cycle probability function. An optional `backend` field
//! (`"fast"`, `"explicit"` or `"sim"`, with `seed`/`intervals` for the
//! latter) routes the scenario through that solver; scenarios sharing a
//! backend configuration share one memoizing engine, and output lines
//! stay in submission order regardless.

use crate::commands::{
    profiler_for, trace_for, write_metrics, write_profile, write_trace, Backend,
};
use crate::spec::{node, LinkQuality, NetworkSpec};
use whart_engine::{Engine, MeasureSet, Scenario, ScenarioResult};
use whart_json::Json;
use whart_model::{LinkDynamics, NetworkModel, Outage};
use whart_net::Hop;
use whart_obs::{Metrics, MetricsSnapshot};

/// One decoded batch entry: the scenario, which measures its output
/// lines should carry, and the solver backend it runs on.
pub(crate) struct BatchEntry {
    pub(crate) scenario: Scenario,
    pub(crate) measures: MeasureSet,
    pub(crate) backend: Backend,
}

fn u64_field(value: &Json, key: &str, default: u64) -> Result<u64, String> {
    match value.get(key) {
        None => Ok(default),
        Some(v) => match v.as_f64() {
            Some(x) if x >= 0.0 && x.fract() == 0.0 => Ok(x as u64),
            _ => Err(format!("'{key}' must be a non-negative integer")),
        },
    }
}

fn decode_backend(value: &Json) -> Result<Backend, String> {
    let Some(name) = value.get("backend") else {
        return Ok(Backend::Fast);
    };
    let name = name.as_str().ok_or("'backend' must be a string")?;
    let seed = u64_field(value, "seed", 42)?;
    let intervals = u64_field(value, "intervals", 100_000)?;
    Backend::parse(name, seed, intervals)
}

fn decode_measures(value: &Json) -> Result<MeasureSet, String> {
    let Some(names) = value.get("measures") else {
        return Ok(MeasureSet::default());
    };
    let Json::Array(names) = names else {
        return Err("'measures' must be an array of measure names".into());
    };
    let mut set = MeasureSet {
        reachability: false,
        expected_delay: false,
        expected_intervals_to_first_loss: false,
        utilization: false,
        cycle_probabilities: false,
        ..MeasureSet::default()
    };
    for name in names {
        match name.as_str() {
            Some("reachability") => set.reachability = true,
            Some("expected_delay") => set.expected_delay = true,
            Some("first_loss") => set.expected_intervals_to_first_loss = true,
            Some("utilization") => set.utilization = true,
            Some("cycle_probabilities") => set.cycle_probabilities = true,
            Some(other) => return Err(format!("unknown measure '{other}'")),
            None => return Err("'measures' entries must be strings".into()),
        }
    }
    Ok(set)
}

fn decode_network(value: &Json) -> Result<NetworkSpec, String> {
    let availability = match value.get("availability") {
        Some(_) => Some(value.require_f64("availability")?),
        None => None,
    };
    let mut spec = match value.get("network") {
        Some(Json::String(name)) => match name.as_str() {
            "typical" => NetworkSpec::typical(availability.unwrap_or(0.83)),
            "section-v" => NetworkSpec::section_v(availability.unwrap_or(0.75)),
            other => return Err(format!("unknown network template '{other}'")),
        },
        Some(inline @ Json::Object(_)) => {
            let mut spec = NetworkSpec::decode(inline)?;
            if let Some(availability) = availability {
                for link in &mut spec.links {
                    link.quality = LinkQuality::Availability {
                        availability,
                        p_rc: whart_channel::LinkModel::DEFAULT_RECOVERY,
                    };
                }
            }
            spec
        }
        Some(_) => return Err("'network' must be a template name or a spec object".into()),
        None => return Err("scenario needs a 'network'".into()),
    };
    if value.get("interval").is_some() {
        spec.reporting_interval = value.require_u32("interval")?;
    }
    Ok(spec)
}

fn apply_injections(model: &mut NetworkModel, value: &Json) -> Result<(), String> {
    let Some(inject) = value.get("inject") else {
        return Ok(());
    };
    let Json::Array(injections) = inject else {
        return Err("'inject' must be an array".into());
    };
    for injection in injections {
        let link = &injection["link"];
        let (a, b) = match (link[0].as_f64(), link[1].as_f64()) {
            (Some(a), Some(b)) if a >= 0.0 && b >= 0.0 && a.fract() == 0.0 && b.fract() == 0.0 => {
                (a as u32, b as u32)
            }
            _ => return Err("injection needs 'link': [a, b] with node numbers".into()),
        };
        let hop = Hop::new(node(a), node(b));
        let base = match injection.get("availability") {
            Some(_) => LinkQuality::Availability {
                availability: injection.require_f64("availability")?,
                p_rc: whart_channel::LinkModel::DEFAULT_RECOVERY,
            }
            .to_link_model()?,
            None => model.topology().link_for(hop).map_err(|e| e.to_string())?,
        };
        let mut dynamics = match injection.get("initial") {
            Some(state) => match state.as_str() {
                Some("up") => LinkDynamics::starting_in(base, whart_channel::LinkState::Up),
                Some("down") => LinkDynamics::starting_in(base, whart_channel::LinkState::Down),
                _ => return Err("injection 'initial' must be \"up\" or \"down\"".into()),
            },
            None => LinkDynamics::steady(base),
        };
        if let Some(window) = injection.get("outage") {
            let (start, end) = match (window[0].as_f64(), window[1].as_f64()) {
                (Some(s), Some(e)) if s >= 0.0 && e > s && s.fract() == 0.0 && e.fract() == 0.0 => {
                    (s as u64, e as u64)
                }
                _ => return Err("injection 'outage' must be [start, end] slots".into()),
            };
            dynamics = dynamics.with_outage(Outage::new(start, end));
        }
        model
            .override_link_dynamics(node(a), node(b), dynamics)
            .map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// Decodes a scenario-list document (a JSON array, or an object with a
/// `scenarios` array) into batch entries — the shared front half of the
/// `batch` subcommand and the service's `POST /v1/batch`.
pub(crate) fn decode_fleet(text: &str) -> Result<Vec<BatchEntry>, String> {
    let value = Json::parse(text).map_err(|e| format!("invalid scenario list: {e}"))?;
    let list = match &value {
        Json::Array(items) => items.as_slice(),
        Json::Object(_) => match &value["scenarios"] {
            Json::Array(items) => items.as_slice(),
            _ => return Err("invalid scenario list: missing 'scenarios' array".into()),
        },
        _ => return Err("invalid scenario list: expected an array of scenarios".into()),
    };
    if list.is_empty() {
        return Err("invalid scenario list: no scenarios".into());
    }
    list.iter()
        .enumerate()
        .map(|(i, v)| decode_entry(i, v))
        .collect()
}

fn decode_entry(index: usize, value: &Json) -> Result<BatchEntry, String> {
    let wrap = |e: String| format!("scenario {}: {e}", index + 1);
    let label = match value.get("label") {
        Some(l) => l
            .as_str()
            .ok_or_else(|| wrap("'label' must be a string".into()))?
            .to_owned(),
        None => format!("scenario-{}", index + 1),
    };
    let spec = decode_network(value).map_err(wrap)?;
    let mut model = spec.to_model().map_err(wrap)?;
    apply_injections(&mut model, value).map_err(wrap)?;
    let measures = decode_measures(value).map_err(wrap)?;
    let backend = decode_backend(value).map_err(wrap)?;
    Ok(BatchEntry {
        scenario: Scenario::network(label, model).with_measures(measures),
        measures,
        backend,
    })
}

pub(crate) fn result_line(result: &ScenarioResult, measures: MeasureSet) -> Json {
    let paths: Vec<Json> = result
        .path_measures
        .iter()
        .map(|m| {
            let mut fields: Vec<(String, Json)> = Vec::new();
            if measures.reachability {
                fields.push(("reachability".into(), Json::from(m.reachability)));
            }
            if measures.expected_delay {
                fields.push(("expected_delay_ms".into(), Json::from(m.expected_delay_ms)));
            }
            if measures.expected_intervals_to_first_loss {
                fields.push((
                    "expected_intervals_to_first_loss".into(),
                    Json::from(m.expected_intervals_to_first_loss),
                ));
            }
            if measures.utilization {
                fields.push(("utilization".into(), Json::from(m.utilization)));
            }
            if measures.cycle_probabilities {
                if let Some(g) = &m.cycle_probabilities {
                    fields.push(("cycle_probabilities".into(), Json::array(g.iter().copied())));
                }
            }
            Json::Object(fields)
        })
        .collect();
    let mut fields: Vec<(String, Json)> = vec![
        ("label".into(), Json::from(result.label.clone())),
        ("paths".into(), Json::Array(paths)),
    ];
    if measures.expected_delay {
        fields.push(("mean_delay_ms".into(), Json::from(result.mean_delay_ms)));
    }
    if measures.utilization {
        fields.push((
            "network_utilization".into(),
            Json::from(result.network_utilization),
        ));
    }
    Json::Object(fields)
}

pub(crate) fn stats_line(engine: &Engine) -> Json {
    let stats = engine.stats();
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    Json::object([(
        "stats",
        Json::object([
            ("backend", Json::from(engine.solver_name().to_string())),
            ("jobs", Json::from(stats.jobs_completed)),
            ("paths_requested", Json::from(stats.paths_requested)),
            ("paths_evaluated", Json::from(stats.paths_evaluated)),
            ("path_cache_hits", Json::from(stats.path_cache_hits)),
            ("path_cache_misses", Json::from(stats.path_cache_misses)),
            ("link_cache_hits", Json::from(stats.link_cache_hits)),
            ("link_cache_misses", Json::from(stats.link_cache_misses)),
            (
                "path_cache_evictions",
                Json::from(stats.path_cache_evictions),
            ),
            (
                "link_cache_evictions",
                Json::from(stats.link_cache_evictions),
            ),
            ("steals", Json::from(stats.steals)),
            ("stolen_tasks", Json::from(stats.stolen_tasks)),
            ("max_queue_depth", Json::from(stats.max_queue_depth as u64)),
            ("plan_ms", Json::from(ms(stats.plan_wall))),
            ("execute_ms", Json::from(ms(stats.execute_wall))),
            ("assemble_ms", Json::from(ms(stats.assemble_wall))),
            ("workers", Json::from(stats.workers as u64)),
            (
                "effective_workers",
                Json::from(stats.effective_workers as u64),
            ),
        ]),
    )])
}

/// One per-backend summary line of the registry: cache traffic plus the
/// per-scenario solve-latency histogram (whose count is the number of
/// scenarios routed to that backend).
fn metrics_line(backend: &str, snapshot: &MetricsSnapshot) -> Json {
    let counter = |name: &str| Json::from(snapshot.counter(name).unwrap_or(0));
    // hits / (hits + misses), null when the layer saw no traffic.
    let hit_ratio = |layer: &str| {
        let hits = snapshot.counter(&format!("{layer}.hits")).unwrap_or(0);
        let misses = snapshot.counter(&format!("{layer}.misses")).unwrap_or(0);
        match hits + misses {
            0 => Json::Null,
            total => Json::from(hits as f64 / total as f64),
        }
    };
    let latency = |name: &str| match snapshot.histogram(name) {
        Some(h) => Json::object([
            ("count", Json::from(h.count)),
            ("mean_ns", Json::from(h.mean())),
            ("min_ns", Json::from(h.min)),
            ("max_ns", Json::from(h.max)),
        ]),
        None => Json::Null,
    };
    Json::object([(
        "metrics",
        Json::object([
            ("backend", Json::from(backend.to_string())),
            ("path_cache_hits", counter("engine.path_cache.hits")),
            ("path_cache_misses", counter("engine.path_cache.misses")),
            ("path_cache_hit_ratio", hit_ratio("engine.path_cache")),
            (
                "path_cache_evictions",
                counter("engine.path_cache.evictions"),
            ),
            ("link_cache_hits", counter("engine.link_cache.hits")),
            ("link_cache_misses", counter("engine.link_cache.misses")),
            ("link_cache_hit_ratio", hit_ratio("engine.link_cache")),
            (
                "scenario_solve_ns",
                latency(&format!("engine.{backend}.scenario_solve_ns")),
            ),
            (
                "path_solve_ns",
                latency(&format!("engine.{backend}.path_solve_ns")),
            ),
        ]),
    )])
}

/// Runs `batch`: evaluates every scenario in the list through a shared
/// engine and returns one compact JSON line per scenario (submission
/// order), plus a final `stats` line when requested. With
/// `metrics_path`, all engines record into one registry whose snapshot
/// is written there as JSON, and one `metrics` summary line per backend
/// is appended to the output. With `trace_path`, all engines record
/// into one journal (per-scenario spans, per-path solve spans, per-hop
/// provenance) written there after the drains. With `profile_path`, the
/// whole run (decode through drain, on every engine's workers) executes
/// under a `profile_hz` sampling capture written there afterwards.
pub fn batch(
    text: &str,
    threads: usize,
    with_stats: bool,
    metrics_path: Option<&str>,
    trace_path: Option<&str>,
    profile_path: Option<&str>,
    profile_hz: u32,
) -> Result<String, String> {
    let profiler = profiler_for(profile_path);
    let capture = profiler.start_capture(profile_hz);
    let batch_guard = profiler.enter(profiler.frame("cli.batch"));
    let entries = decode_fleet(text)?;
    let measure_sets: Vec<MeasureSet> = entries.iter().map(|e| e.measures).collect();
    // One engine per distinct backend configuration; scenarios sharing a
    // backend share its caches. `placements` remembers where each entry
    // went so the output stays in submission order.
    let metrics = match metrics_path {
        Some(_) => Metrics::new(),
        None => Metrics::disabled(),
    };
    let trace = trace_for(trace_path);
    let mut engines: Vec<(Backend, Engine)> = Vec::new();
    let mut placements: Vec<(usize, usize)> = Vec::with_capacity(entries.len());
    for entry in entries {
        let slot = match engines.iter().position(|(b, _)| *b == entry.backend) {
            Some(i) => i,
            None => {
                let mut engine = Engine::with_solver(threads, entry.backend.solver());
                engine.set_metrics(metrics.clone());
                engine.set_trace(trace.clone());
                engine.set_profiler(profiler.clone());
                engines.push((entry.backend, engine));
                engines.len() - 1
            }
        };
        let index = engines[slot].1.submit(entry.scenario);
        placements.push((slot, index));
    }
    let mut drained: Vec<Vec<ScenarioResult>> = Vec::with_capacity(engines.len());
    for (_, engine) in &mut engines {
        drained.push(engine.drain().map_err(|e| e.to_string())?);
    }
    drop(batch_guard);
    let mut out = String::new();
    for ((slot, index), measures) in placements.iter().zip(measure_sets) {
        out.push_str(&result_line(&drained[*slot][*index], measures).to_compact());
        out.push('\n');
    }
    if with_stats {
        for (_, engine) in &engines {
            out.push_str(&stats_line(engine).to_compact());
            out.push('\n');
        }
    }
    if let Some(path) = metrics_path {
        let snapshot = metrics.snapshot();
        // One summary line per backend *name*: differently-seeded sim
        // configurations run separate engines but share the registry's
        // per-backend instruments.
        let mut reported: Vec<&str> = Vec::new();
        for (_, engine) in &engines {
            let name = engine.solver_name();
            if !reported.contains(&name) {
                reported.push(name);
                out.push_str(&metrics_line(name, &snapshot).to_compact());
                out.push('\n');
            }
        }
        out.push_str(&write_metrics(path, &metrics)?);
    }
    if let Some(path) = trace_path {
        out.push_str(&write_trace(path, &trace)?);
    }
    if let (Some(path), Some(capture)) = (profile_path, capture) {
        out.push_str(&write_profile(path, &capture.stop())?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The shape most tests use: no profiling attached. Shadows the glob
    /// import so existing call sites stay on the un-profiled path.
    fn batch(
        text: &str,
        threads: usize,
        with_stats: bool,
        metrics_path: Option<&str>,
        trace_path: Option<&str>,
    ) -> Result<String, String> {
        super::batch(
            text,
            threads,
            with_stats,
            metrics_path,
            trace_path,
            None,
            whart_prof::DEFAULT_HZ,
        )
    }

    #[test]
    fn batch_output_is_byte_identical_with_profiling_enabled() {
        let dir = std::env::temp_dir().join("whart-batch-profile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("profile.folded");
        let plain = batch(&fleet_json(), 2, false, None, None).unwrap();
        let profiled = super::batch(
            &fleet_json(),
            2,
            false,
            None,
            None,
            Some(path.to_str().unwrap()),
            whart_prof::DEFAULT_HZ,
        )
        .unwrap();
        // The sampler only observes: every scenario line must match the
        // un-profiled run byte for byte.
        assert_eq!(plain, profiled);
        // The artifact is valid folded text (possibly empty on a fast
        // machine where the drain beats the first sampler tick).
        let folded = std::fs::read_to_string(&path).unwrap();
        whart_prof::parse_folded(&folded).unwrap();
    }

    fn fleet_json() -> String {
        let scenarios: Vec<String> = [0.693, 0.83, 0.903]
            .iter()
            .flat_map(|pi| {
                [1u32, 4].iter().map(move |is| {
                    format!(
                        "{{\"label\":\"pi={pi} Is={is}\",\"network\":\"typical\",\
                         \"availability\":{pi},\"interval\":{is}}}"
                    )
                })
            })
            .collect();
        format!("[{}]", scenarios.join(","))
    }

    #[test]
    fn batch_streams_one_line_per_scenario() {
        let out = batch(&fleet_json(), 2, true, None, None).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 7, "6 scenarios + stats:\n{out}");
        let first = Json::parse(lines[0]).unwrap();
        assert_eq!(first["label"].as_str().unwrap(), "pi=0.693 Is=1");
        assert_eq!(
            match &first["paths"] {
                Json::Array(p) => p.len(),
                _ => 0,
            },
            10
        );
        let stats = Json::parse(lines[6]).unwrap();
        assert!(stats["stats"]["paths_evaluated"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn batch_matches_direct_evaluation() {
        let out = batch(
            "[{\"label\":\"x\",\"network\":\"typical\",\"availability\":0.83}]",
            2,
            false,
            None,
            None,
        )
        .unwrap();
        let line = Json::parse(out.lines().next().unwrap()).unwrap();
        let spec = NetworkSpec::typical(0.83);
        let eval = spec.to_model().unwrap().evaluate().unwrap();
        let want = eval.reports()[9].evaluation.reachability();
        let got = line["paths"][9]["reachability"].as_f64().unwrap();
        assert_eq!(got, want, "bit-identical to the serial evaluator");
        let mean = line["mean_delay_ms"].as_f64().unwrap();
        assert!((mean - 235.4).abs() < 1.0, "{mean}");
    }

    #[test]
    fn measure_selection_limits_output_keys() {
        let out = batch(
            "[{\"network\":\"section-v\",\"measures\":[\"reachability\"]}]",
            1,
            false,
            None,
            None,
        )
        .unwrap();
        let line = Json::parse(out.lines().next().unwrap()).unwrap();
        assert_eq!(line["label"].as_str().unwrap(), "scenario-1");
        assert!(line["paths"][0]["reachability"].as_f64().is_some());
        assert!(line["paths"][0].get("expected_delay_ms").is_none());
        assert!(line.get("mean_delay_ms").is_none());
    }

    #[test]
    fn injections_degrade_crossing_paths() {
        let base = batch(
            "[{\"network\":\"typical\",\"availability\":0.83}]",
            1,
            false,
            None,
            None,
        )
        .unwrap();
        let hit = batch(
            "[{\"network\":\"typical\",\"availability\":0.83,\
             \"inject\":[{\"link\":[3,0],\"availability\":0.5}]}]",
            1,
            false,
            None,
            None,
        )
        .unwrap();
        let base = Json::parse(base.lines().next().unwrap()).unwrap();
        let hit = Json::parse(hit.lines().next().unwrap()).unwrap();
        // Path 3 (index 2) crosses e3 = (n3, G); path 1 does not.
        let r = |j: &Json, i: usize| j["paths"][i]["reachability"].as_f64().unwrap();
        assert!(r(&hit, 2) < r(&base, 2) - 1e-3);
        assert_eq!(r(&hit, 0), r(&base, 0));
        // An outage window also degrades reachability.
        let outage = batch(
            "[{\"network\":\"typical\",\"availability\":0.83,\
             \"inject\":[{\"link\":[3,0],\"outage\":[0,40]}]}]",
            1,
            false,
            None,
            None,
        )
        .unwrap();
        let outage = Json::parse(outage.lines().next().unwrap()).unwrap();
        assert!(r(&outage, 2) < r(&base, 2) - 1e-3);
    }

    #[test]
    fn bad_input_is_rejected_with_context() {
        assert!(batch("42", 1, false, None, None).is_err());
        assert!(batch("[]", 1, false, None, None).is_err());
        let err = batch("[{\"network\":\"nope\"}]", 1, false, None, None).unwrap_err();
        assert!(err.contains("scenario 1"), "{err}");
        let err = batch(
            "[{\"network\":\"typical\",\"measures\":[\"bogus\"]}]",
            1,
            false,
            None,
            None,
        )
        .unwrap_err();
        assert!(err.contains("unknown measure"), "{err}");
        let err = batch(
            "[{\"network\":\"typical\",\"inject\":[{\"link\":[1,2],\"initial\":\"down\"}]}]",
            1,
            false,
            None,
            None,
        )
        .unwrap_err();
        assert!(err.contains("scenario 1"), "{err}");
    }

    #[test]
    fn backend_field_routes_through_the_selected_solver() {
        // Same scenario on all three backends, in interleaved order: the
        // output must stay in submission order and the estimates agree.
        let out = batch(
            "[{\"label\":\"f\",\"network\":\"section-v\"},\
              {\"label\":\"s\",\"network\":\"section-v\",\"backend\":\"sim\",\
               \"seed\":7,\"intervals\":20000},\
              {\"label\":\"e\",\"network\":\"section-v\",\"backend\":\"explicit\"},\
              {\"label\":\"f2\",\"network\":\"section-v\",\"backend\":\"fast\"}]",
            2,
            true,
            None,
            None,
        )
        .unwrap();
        let lines: Vec<&str> = out.lines().collect();
        // 4 scenario lines + one stats line per distinct backend (3).
        assert_eq!(lines.len(), 7, "{out}");
        let parsed: Vec<Json> = lines.iter().map(|l| Json::parse(l).unwrap()).collect();
        let labels: Vec<&str> = parsed[..4]
            .iter()
            .map(|j| j["label"].as_str().unwrap())
            .collect();
        assert_eq!(labels, ["f", "s", "e", "f2"]);
        let r = |j: &Json| j["paths"][0]["reachability"].as_f64().unwrap();
        assert_eq!(r(&parsed[0]), r(&parsed[3]), "fast entries share an engine");
        assert!((r(&parsed[0]) - r(&parsed[2])).abs() < 1e-12, "explicit");
        assert!((r(&parsed[0]) - r(&parsed[1])).abs() < 5e-3, "sim estimate");
        let backends: Vec<&str> = parsed[4..]
            .iter()
            .map(|j| j["stats"]["backend"].as_str().unwrap())
            .collect();
        assert_eq!(backends, ["fast", "sim", "explicit"]);
    }

    #[test]
    fn bogus_backend_is_rejected_with_context() {
        let err = batch(
            "[{\"network\":\"typical\",\"backend\":\"magic\"}]",
            1,
            false,
            None,
            None,
        )
        .unwrap_err();
        assert!(err.contains("scenario 1"), "{err}");
        assert!(err.contains("unknown backend"), "{err}");
    }

    #[test]
    fn metrics_snapshot_attributes_every_scenario_to_a_backend() {
        let dir = std::env::temp_dir().join("whart-batch-metrics-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.json");
        let input = "[{\"label\":\"f1\",\"network\":\"section-v\"},\
              {\"label\":\"f2\",\"network\":\"section-v\",\"availability\":0.83},\
              {\"label\":\"e\",\"network\":\"section-v\",\"backend\":\"explicit\"},\
              {\"label\":\"s\",\"network\":\"section-v\",\"backend\":\"sim\",\
               \"seed\":7,\"intervals\":2000}]";
        let out = batch(input, 2, false, Some(path.to_str().unwrap()), None).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        // 4 scenario lines + one metrics line per backend (3).
        assert_eq!(lines.len(), 7, "{out}");
        let mut by_backend = std::collections::HashMap::new();
        for line in &lines[4..] {
            let parsed = Json::parse(line).unwrap();
            let backend = parsed["metrics"]["backend"].as_str().unwrap().to_string();
            let count = parsed["metrics"]["scenario_solve_ns"]["count"]
                .as_f64()
                .unwrap();
            by_backend.insert(backend, count as u64);
        }
        assert_eq!(by_backend["fast"], 2);
        assert_eq!(by_backend["explicit"], 1);
        assert_eq!(by_backend["sim"], 1);
        assert_eq!(by_backend.values().sum::<u64>(), 4, "sums to the fleet");
        // The snapshot file round-trips and carries the same histograms.
        let text = std::fs::read_to_string(&path).unwrap();
        let snapshot = whart_obs::MetricsSnapshot::parse(&text).unwrap();
        let total: u64 = ["fast", "explicit", "sim"]
            .iter()
            .map(|b| {
                snapshot
                    .histogram(&format!("engine.{b}.scenario_solve_ns"))
                    .map_or(0, |h| h.count)
            })
            .sum();
        assert_eq!(total, 4);
        assert!(snapshot.counter("engine.path_cache.misses").unwrap_or(0) > 0);
        assert!(
            snapshot.counter("solver.sim.draws").unwrap_or(0) > 0,
            "solver-level instruments flow into the shared registry"
        );
    }

    #[test]
    fn metrics_lines_carry_cache_hit_ratios() {
        let dir = std::env::temp_dir().join("whart-batch-ratio-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.json");
        // Two identical scenarios: 10 paths each, second fully cached.
        let input = "[{\"network\":\"typical\"},{\"network\":\"typical\"}]";
        let out = batch(input, 2, false, Some(path.to_str().unwrap()), None).unwrap();
        let line = out
            .lines()
            .find(|l| l.contains("\"metrics\""))
            .expect("metrics line");
        let parsed = Json::parse(line).unwrap();
        let ratio = parsed["metrics"]["path_cache_hit_ratio"].as_f64().unwrap();
        // 20 requests. Slot-shift canonicalization folds the typical
        // network's 10 paths into 3 distinct solves, so the first
        // scenario misses 3 and hits 7, and the second hits all 10.
        assert!((ratio - 0.85).abs() < 1e-12, "{ratio}");
        // No link-cache traffic in this fleet: ratio is null, not 0/0.
        assert!(parsed["metrics"]["link_cache_hit_ratio"].is_null());
    }

    #[test]
    fn trace_flag_writes_a_chrome_trace_of_the_drain() {
        let dir = std::env::temp_dir().join("whart-batch-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let out = batch(&fleet_json(), 2, false, None, Some(path.to_str().unwrap())).unwrap();
        assert_eq!(out.lines().count(), 6, "trace goes to the file, not stdout");
        let text = std::fs::read_to_string(&path).unwrap();
        let value = Json::parse(&text).unwrap();
        let events = match &value["traceEvents"] {
            Json::Array(events) => events,
            other => panic!("traceEvents missing: {other:?}"),
        };
        let named = |n: &str| {
            events
                .iter()
                .filter(|e| e["name"].as_str() == Some(n))
                .count()
        };
        assert_eq!(named("scenario"), 6, "one span per scenario");
        assert!(named("path_solve") > 0, "solver spans recorded");
        assert!(named("hop") > 0, "per-hop provenance recorded");
        for stage in ["plan", "execute", "assemble"] {
            assert_eq!(named(stage), 1, "{stage} stage span");
        }
    }

    #[test]
    fn omitting_metrics_keeps_the_plain_output_shape() {
        let with = batch(&fleet_json(), 2, false, None, None).unwrap();
        assert_eq!(with.lines().count(), 6, "no metrics lines appended");
    }

    #[test]
    fn scenarios_object_wrapper_accepted() {
        let out = batch(
            "{\"scenarios\":[{\"network\":\"section-v\"}]}",
            1,
            false,
            None,
            None,
        )
        .unwrap();
        assert_eq!(out.lines().count(), 1);
    }
}
