//! JSON network specifications.
//!
//! The paper's authors built a tool that "automatically derives the
//! underlying model of a fully specified network". A [`NetworkSpec`] is
//! that full specification: topology with per-link quality, routing paths,
//! super-frame, reporting interval and communication schedule. Node `0`
//! denotes the gateway; field devices are numbered from 1 as in the paper.
//!
//! Specs are read and written with the workspace's own [`whart_json`]
//! library; the shapes are the same as the historical serde encoding (link
//! quality is "untagged": the present keys select the variant, and quality
//! fields sit inline next to `a`/`b`).

use whart_channel::{LinkModel, Modulation, WIRELESSHART_MESSAGE_BITS};
use whart_json::Json;
use whart_model::NetworkModel;
use whart_net::{NodeId, Path, ReportingInterval, Schedule, Superframe, Topology};

/// How one link's quality is specified; each variant maps onto a
/// [`LinkModel`] constructor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkQuality {
    /// Explicit transition probabilities.
    Transitions {
        /// Per-slot failure probability.
        p_fl: f64,
        /// Per-slot recovery probability.
        p_rc: f64,
    },
    /// Bit error rate at the WirelessHART message length
    /// (`p_rc` defaults to 0.9).
    Ber {
        /// Bit error rate.
        ber: f64,
        /// Recovery probability (default 0.9).
        p_rc: f64,
    },
    /// Measured per-bit SNR, converted through the OQPSK curve.
    Snr {
        /// Linear Eb/N0.
        snr: f64,
        /// Recovery probability (default 0.9).
        p_rc: f64,
    },
    /// Stationary availability `pi(up)` (`p_rc` defaults to 0.9).
    Availability {
        /// Stationary UP probability.
        availability: f64,
        /// Recovery probability (default 0.9).
        p_rc: f64,
    },
}

fn default_recovery() -> f64 {
    LinkModel::DEFAULT_RECOVERY
}

impl LinkQuality {
    /// Builds the link model.
    ///
    /// # Errors
    ///
    /// Returns a message describing the invalid parameter.
    pub fn to_link_model(self) -> Result<LinkModel, String> {
        let model = match self {
            LinkQuality::Transitions { p_fl, p_rc } => LinkModel::new(p_fl, p_rc),
            LinkQuality::Ber { ber, p_rc } => {
                LinkModel::from_ber(ber, WIRELESSHART_MESSAGE_BITS, p_rc)
            }
            LinkQuality::Snr { snr, p_rc } => LinkModel::from_snr(
                Modulation::Oqpsk,
                whart_channel::EbN0::from_linear(snr),
                WIRELESSHART_MESSAGE_BITS,
                p_rc,
            ),
            LinkQuality::Availability { availability, p_rc } => {
                LinkModel::from_availability(availability, p_rc)
            }
        };
        model.map_err(|e| e.to_string())
    }

    /// Decodes the quality from the keys present on a link object.
    ///
    /// # Errors
    ///
    /// Describes the missing or mistyped keys.
    pub fn from_json(value: &Json) -> Result<LinkQuality, String> {
        let p_rc_or_default = || -> Result<f64, String> {
            match value.get("p_rc") {
                Some(v) => v
                    .as_f64()
                    .ok_or_else(|| "field 'p_rc' must be a number".to_owned()),
                None => Ok(default_recovery()),
            }
        };
        if value.get("p_fl").is_some() {
            Ok(LinkQuality::Transitions {
                p_fl: value.require_f64("p_fl")?,
                p_rc: value.require_f64("p_rc")?,
            })
        } else if value.get("ber").is_some() {
            Ok(LinkQuality::Ber {
                ber: value.require_f64("ber")?,
                p_rc: p_rc_or_default()?,
            })
        } else if value.get("snr").is_some() {
            Ok(LinkQuality::Snr {
                snr: value.require_f64("snr")?,
                p_rc: p_rc_or_default()?,
            })
        } else if value.get("availability").is_some() {
            Ok(LinkQuality::Availability {
                availability: value.require_f64("availability")?,
                p_rc: p_rc_or_default()?,
            })
        } else {
            Err("link needs one of 'p_fl', 'ber', 'snr' or 'availability'".into())
        }
    }

    /// The inline (flattened) JSON fields of this quality.
    fn json_fields(self) -> Vec<(String, Json)> {
        let pair = |k: &str, v: f64, p_rc: f64| {
            vec![
                (k.to_owned(), Json::from(v)),
                ("p_rc".to_owned(), Json::from(p_rc)),
            ]
        };
        match self {
            LinkQuality::Transitions { p_fl, p_rc } => pair("p_fl", p_fl, p_rc),
            LinkQuality::Ber { ber, p_rc } => pair("ber", ber, p_rc),
            LinkQuality::Snr { snr, p_rc } => pair("snr", snr, p_rc),
            LinkQuality::Availability { availability, p_rc } => {
                pair("availability", availability, p_rc)
            }
        }
    }
}

/// One bidirectional link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSpec {
    /// One endpoint (0 = gateway).
    pub a: u32,
    /// The other endpoint (0 = gateway).
    pub b: u32,
    /// Link quality.
    pub quality: LinkQuality,
}

impl LinkSpec {
    /// Decodes one link object (`a`, `b` plus inline quality keys).
    ///
    /// # Errors
    ///
    /// Describes the first missing or mistyped key.
    pub fn from_json(value: &Json) -> Result<LinkSpec, String> {
        Ok(LinkSpec {
            a: value.require_u32("a")?,
            b: value.require_u32("b")?,
            quality: LinkQuality::from_json(value)?,
        })
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("a".to_owned(), Json::from(self.a)),
            ("b".to_owned(), Json::from(self.b)),
        ];
        fields.extend(self.quality.json_fields());
        Json::Object(fields)
    }
}

/// The communication schedule: either built sequentially from a path
/// priority order (the paper's `eta_a`/`eta_b` style) or given slot by
/// slot.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleSpec {
    /// `Schedule::sequential` over 0-based path indices, padded to the
    /// uplink half.
    Sequential {
        /// Path priority order (0-based indices into `paths`).
        order: Vec<usize>,
    },
    /// Explicit slots: each entry is `[slot, from, to, path_index]`
    /// (0-based slot, nodes with 0 = gateway).
    Explicit {
        /// The slot assignments.
        slots: Vec<(usize, u32, u32, usize)>,
    },
}

impl ScheduleSpec {
    /// Decodes a schedule object: an `order` key selects the sequential
    /// form, a `slots` key the explicit form.
    ///
    /// # Errors
    ///
    /// Describes the malformed member.
    pub fn from_json(value: &Json) -> Result<ScheduleSpec, String> {
        if let Some(order) = value.get("order") {
            let order = order
                .as_array()
                .ok_or("field 'order' must be an array")?
                .iter()
                .map(|v| {
                    v.as_u64()
                        .map(|n| n as usize)
                        .ok_or_else(|| "path indices must be non-negative integers".to_owned())
                })
                .collect::<Result<Vec<usize>, String>>()?;
            Ok(ScheduleSpec::Sequential { order })
        } else if let Some(slots) = value.get("slots") {
            let slots = slots
                .as_array()
                .ok_or("field 'slots' must be an array")?
                .iter()
                .map(|entry| {
                    let parts = entry.as_array().unwrap_or(&[]);
                    let nums: Option<Vec<u64>> = parts.iter().map(Json::as_u64).collect();
                    match nums.as_deref() {
                        Some([slot, from, to, path]) => Ok((
                            *slot as usize,
                            u32::try_from(*from).map_err(|_| "node id overflow".to_owned())?,
                            u32::try_from(*to).map_err(|_| "node id overflow".to_owned())?,
                            *path as usize,
                        )),
                        _ => Err("each slot entry must be [slot, from, to, path]".to_owned()),
                    }
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok(ScheduleSpec::Explicit { slots })
        } else {
            Err("schedule needs an 'order' or a 'slots' member".into())
        }
    }

    fn to_json(&self) -> Json {
        match self {
            ScheduleSpec::Sequential { order } => {
                Json::object([("order", Json::array(order.iter().map(|&i| Json::from(i))))])
            }
            ScheduleSpec::Explicit { slots } => Json::object([(
                "slots",
                Json::array(slots.iter().map(|&(slot, from, to, path)| {
                    Json::array([
                        Json::from(slot),
                        Json::from(from),
                        Json::from(to),
                        Json::from(path),
                    ])
                })),
            )]),
        }
    }
}

/// A fully specified WirelessHART network.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSpec {
    /// Uplink slots per super-frame (`F_up`).
    pub uplink_slots: u32,
    /// Downlink slots (defaults to `uplink_slots`, the paper's symmetric
    /// frames).
    pub downlink_slots: Option<u32>,
    /// Reporting interval `Is` (default 4).
    pub reporting_interval: u32,
    /// Field devices (numbered from 1).
    pub nodes: Vec<u32>,
    /// Bidirectional links.
    pub links: Vec<LinkSpec>,
    /// Uplink paths as node sequences; a trailing gateway (`0`) is implied
    /// if missing.
    pub paths: Vec<Vec<u32>>,
    /// The communication schedule.
    pub schedule: ScheduleSpec,
}

pub(crate) fn node(n: u32) -> NodeId {
    if n == 0 {
        NodeId::Gateway
    } else {
        NodeId::field(n)
    }
}

fn u32_array(value: &Json, what: &str) -> Result<Vec<u32>, String> {
    value
        .as_array()
        .ok_or_else(|| format!("'{what}' must be an array"))?
        .iter()
        .map(|v| {
            v.as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| format!("'{what}' entries must be non-negative integers"))
        })
        .collect()
}

impl NetworkSpec {
    /// Parses a spec from JSON.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax or shape error.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value = Json::parse(text).map_err(|e| format!("invalid spec: {e}"))?;
        Self::decode(&value).map_err(|e| format!("invalid spec: {e}"))
    }

    /// Decodes a spec from an already-parsed JSON value.
    ///
    /// # Errors
    ///
    /// Returns a description of the first shape error.
    pub fn decode(value: &Json) -> Result<Self, String> {
        let downlink_slots = match value.get("downlink_slots") {
            None | Some(Json::Null) => None,
            Some(_) => Some(value.require_u32("downlink_slots")?),
        };
        let reporting_interval = match value.get("reporting_interval") {
            None => 4,
            Some(_) => value.require_u32("reporting_interval")?,
        };
        let links = value
            .require("links")?
            .as_array()
            .ok_or("'links' must be an array")?
            .iter()
            .map(LinkSpec::from_json)
            .collect::<Result<Vec<_>, String>>()?;
        let paths = value
            .require("paths")?
            .as_array()
            .ok_or("'paths' must be an array")?
            .iter()
            .map(|route| u32_array(route, "paths"))
            .collect::<Result<Vec<_>, String>>()?;
        Ok(NetworkSpec {
            uplink_slots: value.require_u32("uplink_slots")?,
            downlink_slots,
            reporting_interval,
            nodes: u32_array(value.require("nodes")?, "nodes")?,
            links,
            paths,
            schedule: ScheduleSpec::from_json(value.require("schedule")?)?,
        })
    }

    /// Encodes the spec as a JSON value (field order matches the struct).
    pub fn to_json_value(&self) -> Json {
        Json::object([
            ("uplink_slots", Json::from(self.uplink_slots)),
            ("downlink_slots", Json::from(self.downlink_slots)),
            ("reporting_interval", Json::from(self.reporting_interval)),
            (
                "nodes",
                Json::array(self.nodes.iter().map(|&n| Json::from(n))),
            ),
            (
                "links",
                Json::Array(self.links.iter().map(LinkSpec::to_json).collect()),
            ),
            (
                "paths",
                Json::Array(
                    self.paths
                        .iter()
                        .map(|route| Json::array(route.iter().map(|&n| Json::from(n))))
                        .collect(),
                ),
            ),
            ("schedule", self.schedule.to_json()),
        ])
    }

    /// Serializes the spec to pretty JSON.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_pretty()
    }

    /// Builds the analytical network model.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first inconsistency.
    pub fn to_model(&self) -> Result<NetworkModel, String> {
        let (topology, paths, schedule, superframe, interval) = self.build_parts()?;
        NetworkModel::new(topology, paths, schedule, superframe, interval)
            .map_err(|e| e.to_string())
    }

    /// Builds the raw parts (topology, paths, schedule, frame, interval) —
    /// used by the simulator command.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first inconsistency.
    #[allow(clippy::type_complexity)]
    pub fn build_parts(
        &self,
    ) -> Result<(Topology, Vec<Path>, Schedule, Superframe, ReportingInterval), String> {
        let mut topology = Topology::new();
        for &n in &self.nodes {
            if n == 0 {
                return Err("node 0 denotes the gateway and is implicit".into());
            }
            topology
                .add_node(NodeId::field(n))
                .map_err(|e| e.to_string())?;
        }
        for link in &self.links {
            let model = link.quality.to_link_model()?;
            topology
                .connect(node(link.a), node(link.b), model)
                .map_err(|e| e.to_string())?;
        }
        let mut paths = Vec::with_capacity(self.paths.len());
        for route in &self.paths {
            let mut nodes: Vec<NodeId> = route.iter().map(|&n| node(n)).collect();
            if nodes.last() != Some(&NodeId::Gateway) {
                nodes.push(NodeId::Gateway);
            }
            paths.push(Path::through(&topology, nodes).map_err(|e| e.to_string())?);
        }
        let superframe = Superframe::new(
            self.uplink_slots,
            self.downlink_slots.unwrap_or(self.uplink_slots),
        )
        .map_err(|e| e.to_string())?;
        let interval =
            ReportingInterval::new(self.reporting_interval).map_err(|e| e.to_string())?;
        let schedule = match &self.schedule {
            ScheduleSpec::Sequential { order } => Schedule::sequential(&paths, order)
                .map_err(|e| e.to_string())?
                .padded(self.uplink_slots as usize),
            ScheduleSpec::Explicit { slots } => {
                let entries: Vec<(usize, whart_net::ScheduleEntry)> = slots
                    .iter()
                    .map(|&(slot, from, to, path_index)| {
                        (
                            slot,
                            whart_net::ScheduleEntry {
                                hop: whart_net::Hop::new(node(from), node(to)),
                                path_index,
                            },
                        )
                    })
                    .collect();
                Schedule::with_entries(self.uplink_slots as usize, &entries)
                    .map_err(|e| e.to_string())?
            }
        };
        schedule
            .validate(&topology, &paths)
            .map_err(|e| e.to_string())?;
        Ok((topology, paths, schedule, superframe, interval))
    }

    /// The paper's typical network (Fig. 12) with homogeneous links at the
    /// given availability, under schedule `eta_a`.
    pub fn typical(availability: f64) -> NetworkSpec {
        let quality = LinkQuality::Availability {
            availability,
            p_rc: 0.9,
        };
        let edges: [(u32, u32); 10] = [
            (1, 0),
            (2, 0),
            (3, 0),
            (4, 1),
            (5, 1),
            (6, 2),
            (7, 3),
            (8, 3),
            (9, 6),
            (10, 7),
        ];
        NetworkSpec {
            uplink_slots: 20,
            downlink_slots: None,
            reporting_interval: 4,
            nodes: (1..=10).collect(),
            links: edges
                .iter()
                .map(|&(a, b)| LinkSpec { a, b, quality })
                .collect(),
            paths: vec![
                vec![1],
                vec![2],
                vec![3],
                vec![4, 1],
                vec![5, 1],
                vec![6, 2],
                vec![7, 3],
                vec![8, 3],
                vec![9, 6, 2],
                vec![10, 7, 3],
            ],
            schedule: ScheduleSpec::Sequential {
                order: (0..10).collect(),
            },
        }
    }

    /// The Section V example path as a one-path network spec.
    pub fn section_v(availability: f64) -> NetworkSpec {
        let quality = LinkQuality::Availability {
            availability,
            p_rc: 0.9,
        };
        NetworkSpec {
            uplink_slots: 7,
            downlink_slots: None,
            reporting_interval: 4,
            nodes: vec![1, 2, 3],
            links: vec![
                LinkSpec {
                    a: 1,
                    b: 2,
                    quality,
                },
                LinkSpec {
                    a: 2,
                    b: 3,
                    quality,
                },
                LinkSpec {
                    a: 3,
                    b: 0,
                    quality,
                },
            ],
            paths: vec![vec![1, 2, 3]],
            schedule: ScheduleSpec::Explicit {
                slots: vec![(2, 1, 2, 0), (5, 2, 3, 0), (6, 3, 0, 0)],
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whart_model::DelayConvention;

    #[test]
    fn typical_spec_round_trips_through_json() {
        let spec = NetworkSpec::typical(0.83);
        let json = spec.to_json();
        let parsed = NetworkSpec::from_json(&json).unwrap();
        assert_eq!(parsed, spec);
        let model = parsed.to_model().unwrap();
        assert_eq!(model.paths().len(), 10);
        let eval = model.evaluate().unwrap();
        let mean = eval.mean_delay_ms(DelayConvention::Absolute).unwrap();
        assert!((mean - 235.0).abs() < 1.5, "{mean}");
    }

    #[test]
    fn section_v_spec_matches_paper() {
        let spec = NetworkSpec::section_v(0.75);
        let model = spec.to_model().unwrap();
        let eval = model.evaluate().unwrap();
        let r = eval.reachabilities()[0];
        assert!((r - 0.9624).abs() < 1e-4, "{r}");
    }

    #[test]
    fn quality_variants_parse() {
        for quality in [
            r#"{"a":1,"b":0,"p_fl":0.1,"p_rc":0.9}"#,
            r#"{"a":1,"b":0,"ber":0.0001}"#,
            r#"{"a":1,"b":0,"snr":7.0}"#,
            r#"{"a":1,"b":0,"availability":0.83}"#,
        ] {
            let link = LinkSpec::from_json(&whart_json::Json::parse(quality).unwrap()).unwrap();
            assert!(link.quality.to_link_model().is_ok(), "{quality}");
        }
    }

    #[test]
    fn snr_quality_matches_table_iv() {
        let value = whart_json::Json::parse(r#"{"a":5,"b":3,"snr":7.0}"#).unwrap();
        let link = LinkSpec::from_json(&value).unwrap();
        let model = link.quality.to_link_model().unwrap();
        assert!((model.p_fl() - 0.089).abs() < 5e-4);
    }

    #[test]
    fn bad_specs_are_rejected() {
        // Unknown node in a link.
        let spec = NetworkSpec {
            links: vec![LinkSpec {
                a: 1,
                b: 99,
                quality: LinkQuality::Availability {
                    availability: 0.8,
                    p_rc: 0.9,
                },
            }],
            ..NetworkSpec::section_v(0.8)
        };
        assert!(spec.to_model().is_err());
        // Node 0 in the device list.
        let spec = NetworkSpec {
            nodes: vec![0, 1],
            ..NetworkSpec::section_v(0.8)
        };
        assert!(spec.to_model().is_err());
        // Garbage JSON.
        assert!(NetworkSpec::from_json("{").is_err());
        // Structurally valid JSON, wrong shape.
        assert!(NetworkSpec::from_json(r#"{"uplink_slots": "seven"}"#).is_err());
        assert!(NetworkSpec::from_json(r#"{"uplink_slots": 7}"#).is_err());
    }

    #[test]
    fn implied_gateway_suffix() {
        let mut spec = NetworkSpec::section_v(0.8);
        spec.paths = vec![vec![1, 2, 3, 0]]; // explicit gateway, same result
        let model = spec.to_model().unwrap();
        assert_eq!(model.paths()[0].hop_count(), 3);
    }
}
