//! JSON network specifications.
//!
//! The paper's authors built a tool that "automatically derives the
//! underlying model of a fully specified network". A [`NetworkSpec`] is
//! that full specification: topology with per-link quality, routing paths,
//! super-frame, reporting interval and communication schedule. Node `0`
//! denotes the gateway; field devices are numbered from 1 as in the paper.

use serde::{Deserialize, Serialize};
use whart_channel::{LinkModel, Modulation, WIRELESSHART_MESSAGE_BITS};
use whart_model::NetworkModel;
use whart_net::{NodeId, Path, ReportingInterval, Schedule, Superframe, Topology};

/// How one link's quality is specified; each variant maps onto a
/// [`LinkModel`] constructor.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
#[serde(untagged)]
pub enum LinkQuality {
    /// Explicit transition probabilities.
    Transitions {
        /// Per-slot failure probability.
        p_fl: f64,
        /// Per-slot recovery probability.
        p_rc: f64,
    },
    /// Bit error rate at the WirelessHART message length
    /// (`p_rc` defaults to 0.9).
    Ber {
        /// Bit error rate.
        ber: f64,
        /// Recovery probability (default 0.9).
        #[serde(default = "default_recovery")]
        p_rc: f64,
    },
    /// Measured per-bit SNR, converted through the OQPSK curve.
    Snr {
        /// Linear Eb/N0.
        snr: f64,
        /// Recovery probability (default 0.9).
        #[serde(default = "default_recovery")]
        p_rc: f64,
    },
    /// Stationary availability `pi(up)` (`p_rc` defaults to 0.9).
    Availability {
        /// Stationary UP probability.
        availability: f64,
        /// Recovery probability (default 0.9).
        #[serde(default = "default_recovery")]
        p_rc: f64,
    },
}

fn default_recovery() -> f64 {
    LinkModel::DEFAULT_RECOVERY
}

impl LinkQuality {
    /// Builds the link model.
    ///
    /// # Errors
    ///
    /// Returns a message describing the invalid parameter.
    pub fn to_link_model(self) -> Result<LinkModel, String> {
        let model = match self {
            LinkQuality::Transitions { p_fl, p_rc } => LinkModel::new(p_fl, p_rc),
            LinkQuality::Ber { ber, p_rc } => {
                LinkModel::from_ber(ber, WIRELESSHART_MESSAGE_BITS, p_rc)
            }
            LinkQuality::Snr { snr, p_rc } => LinkModel::from_snr(
                Modulation::Oqpsk,
                whart_channel::EbN0::from_linear(snr),
                WIRELESSHART_MESSAGE_BITS,
                p_rc,
            ),
            LinkQuality::Availability { availability, p_rc } => {
                LinkModel::from_availability(availability, p_rc)
            }
        };
        model.map_err(|e| e.to_string())
    }
}

/// One bidirectional link.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkSpec {
    /// One endpoint (0 = gateway).
    pub a: u32,
    /// The other endpoint (0 = gateway).
    pub b: u32,
    /// Link quality.
    #[serde(flatten)]
    pub quality: LinkQuality,
}

/// The communication schedule: either built sequentially from a path
/// priority order (the paper's `eta_a`/`eta_b` style) or given slot by
/// slot.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(untagged)]
pub enum ScheduleSpec {
    /// `Schedule::sequential` over 0-based path indices, padded to the
    /// uplink half.
    Sequential {
        /// Path priority order (0-based indices into `paths`).
        order: Vec<usize>,
    },
    /// Explicit slots: each entry is `[slot, from, to, path_index]`
    /// (0-based slot, nodes with 0 = gateway).
    Explicit {
        /// The slot assignments.
        slots: Vec<(usize, u32, u32, usize)>,
    },
}

/// A fully specified WirelessHART network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkSpec {
    /// Uplink slots per super-frame (`F_up`).
    pub uplink_slots: u32,
    /// Downlink slots (defaults to `uplink_slots`, the paper's symmetric
    /// frames).
    #[serde(default)]
    pub downlink_slots: Option<u32>,
    /// Reporting interval `Is` (default 4).
    #[serde(default = "default_interval")]
    pub reporting_interval: u32,
    /// Field devices (numbered from 1).
    pub nodes: Vec<u32>,
    /// Bidirectional links.
    pub links: Vec<LinkSpec>,
    /// Uplink paths as node sequences; a trailing gateway (`0`) is implied
    /// if missing.
    pub paths: Vec<Vec<u32>>,
    /// The communication schedule.
    pub schedule: ScheduleSpec,
}

fn default_interval() -> u32 {
    4
}

fn node(n: u32) -> NodeId {
    if n == 0 {
        NodeId::Gateway
    } else {
        NodeId::field(n)
    }
}

impl NetworkSpec {
    /// Parses a spec from JSON.
    ///
    /// # Errors
    ///
    /// Returns the serde error message.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("invalid spec: {e}"))
    }

    /// Serializes the spec to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("specs serialize")
    }

    /// Builds the analytical network model.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first inconsistency.
    pub fn to_model(&self) -> Result<NetworkModel, String> {
        let (topology, paths, schedule, superframe, interval) = self.build_parts()?;
        NetworkModel::new(topology, paths, schedule, superframe, interval)
            .map_err(|e| e.to_string())
    }

    /// Builds the raw parts (topology, paths, schedule, frame, interval) —
    /// used by the simulator command.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first inconsistency.
    #[allow(clippy::type_complexity)]
    pub fn build_parts(
        &self,
    ) -> Result<(Topology, Vec<Path>, Schedule, Superframe, ReportingInterval), String> {
        let mut topology = Topology::new();
        for &n in &self.nodes {
            if n == 0 {
                return Err("node 0 denotes the gateway and is implicit".into());
            }
            topology.add_node(NodeId::field(n)).map_err(|e| e.to_string())?;
        }
        for link in &self.links {
            let model = link.quality.to_link_model()?;
            topology.connect(node(link.a), node(link.b), model).map_err(|e| e.to_string())?;
        }
        let mut paths = Vec::with_capacity(self.paths.len());
        for route in &self.paths {
            let mut nodes: Vec<NodeId> = route.iter().map(|&n| node(n)).collect();
            if nodes.last() != Some(&NodeId::Gateway) {
                nodes.push(NodeId::Gateway);
            }
            paths.push(Path::through(&topology, nodes).map_err(|e| e.to_string())?);
        }
        let superframe =
            Superframe::new(self.uplink_slots, self.downlink_slots.unwrap_or(self.uplink_slots))
                .map_err(|e| e.to_string())?;
        let interval =
            ReportingInterval::new(self.reporting_interval).map_err(|e| e.to_string())?;
        let schedule = match &self.schedule {
            ScheduleSpec::Sequential { order } => Schedule::sequential(&paths, order)
                .map_err(|e| e.to_string())?
                .padded(self.uplink_slots as usize),
            ScheduleSpec::Explicit { slots } => {
                let entries: Vec<(usize, whart_net::ScheduleEntry)> = slots
                    .iter()
                    .map(|&(slot, from, to, path_index)| {
                        (
                            slot,
                            whart_net::ScheduleEntry {
                                hop: whart_net::Hop::new(node(from), node(to)),
                                path_index,
                            },
                        )
                    })
                    .collect();
                Schedule::with_entries(self.uplink_slots as usize, &entries)
                    .map_err(|e| e.to_string())?
            }
        };
        schedule.validate(&topology, &paths).map_err(|e| e.to_string())?;
        Ok((topology, paths, schedule, superframe, interval))
    }

    /// The paper's typical network (Fig. 12) with homogeneous links at the
    /// given availability, under schedule `eta_a`.
    pub fn typical(availability: f64) -> NetworkSpec {
        let quality = LinkQuality::Availability { availability, p_rc: 0.9 };
        let edges: [(u32, u32); 10] = [
            (1, 0),
            (2, 0),
            (3, 0),
            (4, 1),
            (5, 1),
            (6, 2),
            (7, 3),
            (8, 3),
            (9, 6),
            (10, 7),
        ];
        NetworkSpec {
            uplink_slots: 20,
            downlink_slots: None,
            reporting_interval: 4,
            nodes: (1..=10).collect(),
            links: edges.iter().map(|&(a, b)| LinkSpec { a, b, quality }).collect(),
            paths: vec![
                vec![1],
                vec![2],
                vec![3],
                vec![4, 1],
                vec![5, 1],
                vec![6, 2],
                vec![7, 3],
                vec![8, 3],
                vec![9, 6, 2],
                vec![10, 7, 3],
            ],
            schedule: ScheduleSpec::Sequential { order: (0..10).collect() },
        }
    }

    /// The Section V example path as a one-path network spec.
    pub fn section_v(availability: f64) -> NetworkSpec {
        let quality = LinkQuality::Availability { availability, p_rc: 0.9 };
        NetworkSpec {
            uplink_slots: 7,
            downlink_slots: None,
            reporting_interval: 4,
            nodes: vec![1, 2, 3],
            links: vec![
                LinkSpec { a: 1, b: 2, quality },
                LinkSpec { a: 2, b: 3, quality },
                LinkSpec { a: 3, b: 0, quality },
            ],
            paths: vec![vec![1, 2, 3]],
            schedule: ScheduleSpec::Explicit {
                slots: vec![(2, 1, 2, 0), (5, 2, 3, 0), (6, 3, 0, 0)],
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whart_model::DelayConvention;

    #[test]
    fn typical_spec_round_trips_through_json() {
        let spec = NetworkSpec::typical(0.83);
        let json = spec.to_json();
        let parsed = NetworkSpec::from_json(&json).unwrap();
        let model = parsed.to_model().unwrap();
        assert_eq!(model.paths().len(), 10);
        let eval = model.evaluate().unwrap();
        let mean = eval.mean_delay_ms(DelayConvention::Absolute).unwrap();
        assert!((mean - 235.0).abs() < 1.5, "{mean}");
    }

    #[test]
    fn section_v_spec_matches_paper() {
        let spec = NetworkSpec::section_v(0.75);
        let model = spec.to_model().unwrap();
        let eval = model.evaluate().unwrap();
        let r = eval.reachabilities()[0];
        assert!((r - 0.9624).abs() < 1e-4, "{r}");
    }

    #[test]
    fn quality_variants_parse() {
        for quality in [
            r#"{"a":1,"b":0,"p_fl":0.1,"p_rc":0.9}"#,
            r#"{"a":1,"b":0,"ber":0.0001}"#,
            r#"{"a":1,"b":0,"snr":7.0}"#,
            r#"{"a":1,"b":0,"availability":0.83}"#,
        ] {
            let link: LinkSpec = serde_json::from_str(quality).unwrap();
            assert!(link.quality.to_link_model().is_ok(), "{quality}");
        }
    }

    #[test]
    fn snr_quality_matches_table_iv() {
        let link: LinkSpec = serde_json::from_str(r#"{"a":5,"b":3,"snr":7.0}"#).unwrap();
        let model = link.quality.to_link_model().unwrap();
        assert!((model.p_fl() - 0.089).abs() < 5e-4);
    }

    #[test]
    fn bad_specs_are_rejected() {
        // Unknown node in a link.
        let spec = NetworkSpec {
            links: vec![LinkSpec {
                a: 1,
                b: 99,
                quality: LinkQuality::Availability { availability: 0.8, p_rc: 0.9 },
            }],
            ..NetworkSpec::section_v(0.8)
        };
        assert!(spec.to_model().is_err());
        // Node 0 in the device list.
        let spec = NetworkSpec { nodes: vec![0, 1], ..NetworkSpec::section_v(0.8) };
        assert!(spec.to_model().is_err());
        // Garbage JSON.
        assert!(NetworkSpec::from_json("{").is_err());
    }

    #[test]
    fn implied_gateway_suffix() {
        let mut spec = NetworkSpec::section_v(0.8);
        spec.paths = vec![vec![1, 2, 3, 0]]; // explicit gateway, same result
        let model = spec.to_model().unwrap();
        assert_eq!(model.paths()[0].hop_count(), 3);
    }
}
