//! The CLI subcommands.

use crate::spec::NetworkSpec;
use std::sync::Arc;
use whart_json::Json;
use whart_model::{
    compose, explain_path, explicit::explicit_chain, DelayConvention, ExplicitSolver, FastSolver,
    MeasurePlan, Solver, UtilizationConvention,
};
use whart_obs::Metrics;
use whart_prof::Profiler;
use whart_sim::{MonteCarloSolver, PhyMode, Simulator};
use whart_trace::Trace;

/// Writes `text` to `path`, or returns it for the caller to append to
/// stdout when `path` is `-`.
fn write_or_passthrough(path: &str, text: String, what: &str) -> Result<String, String> {
    if path == "-" {
        return Ok(text);
    }
    std::fs::write(path, text).map_err(|e| format!("cannot write {what} to {path}: {e}"))?;
    Ok(String::new())
}

/// Writes a pretty-printed [`whart_obs::MetricsSnapshot`] to `path`
/// (`-` returns it for stdout).
pub fn write_metrics(path: &str, metrics: &Metrics) -> Result<String, String> {
    let mut text = metrics.snapshot().to_json().to_pretty();
    text.push('\n');
    write_or_passthrough(path, text, "metrics")
}

/// Serializes a drained trace journal to `path`: JSON Lines when the
/// path ends in `.jsonl` or is `-` (stdout), Chrome `trace_event` JSON
/// (Perfetto / `chrome://tracing` loadable) otherwise.
pub fn write_trace(path: &str, trace: &Trace) -> Result<String, String> {
    let log = trace.drain();
    let text = if path == "-" || path.ends_with(".jsonl") {
        log.to_jsonl()
    } else {
        let mut text = log.to_chrome_json().to_pretty();
        text.push('\n');
        text
    };
    write_or_passthrough(path, text, "trace")
}

/// The trace handle for an optional `--trace` argument: enabled exactly
/// when a destination was given.
pub fn trace_for(trace_path: Option<&str>) -> Trace {
    match trace_path {
        Some(_) => Trace::new(),
        None => Trace::disabled(),
    }
}

/// The profiler handle for an optional `--profile` argument: enabled
/// exactly when a destination was given, so an absent flag keeps every
/// instrumented site on the zero-cost disabled path.
pub fn profiler_for(profile_path: Option<&str>) -> Profiler {
    match profile_path {
        Some(_) => Profiler::new(),
        None => Profiler::disabled(),
    }
}

/// Serializes a stopped capture to `path`: per-thread JSON when the path
/// ends in `.json`, flamegraph collapsed-stack text (`a;b;c N` lines,
/// `flamegraph.pl` / speedscope loadable) otherwise. `-` returns the
/// text for stdout.
pub fn write_profile(path: &str, profile: &whart_prof::Profile) -> Result<String, String> {
    let text = if path != "-" && path.ends_with(".json") {
        let mut text = profile.to_json().to_pretty();
        text.push('\n');
        text
    } else {
        profile.to_folded()
    };
    write_or_passthrough(path, text, "profile")
}

/// The solver backend selected on the command line (`--backend`) or in a
/// batch scenario's `backend` field. Every variant consumes the same
/// compiled [`whart_model::NetworkProblem`], so overrides and failure
/// injections are cross-validated structurally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// The fast analytical transient evaluator (the default).
    Fast,
    /// Algorithm 1's explicit unrolled chain, solved by absorbing-state
    /// analysis.
    Explicit,
    /// Monte-Carlo estimation of the same compiled problem.
    Sim {
        /// Base RNG seed.
        seed: u64,
        /// Replications per path.
        intervals: u64,
    },
}

impl Backend {
    /// Parses a `--backend` name, attaching `seed`/`intervals` for `sim`.
    pub fn parse(name: &str, seed: u64, intervals: u64) -> Result<Backend, String> {
        match name {
            "fast" => Ok(Backend::Fast),
            "explicit" => Ok(Backend::Explicit),
            "sim" => Ok(Backend::Sim { seed, intervals }),
            other => Err(format!(
                "unknown backend '{other}' (expected fast, explicit or sim)"
            )),
        }
    }

    /// Instantiates the solver.
    pub fn solver(&self) -> Arc<dyn Solver> {
        match *self {
            Backend::Fast => Arc::new(FastSolver),
            Backend::Explicit => Arc::new(ExplicitSolver),
            Backend::Sim { seed, intervals } => Arc::new(MonteCarloSolver::new(seed, intervals)),
        }
    }

    /// Human-readable description for report headers.
    pub fn describe(&self) -> String {
        match *self {
            Backend::Fast => "fast".into(),
            Backend::Explicit => "explicit".into(),
            Backend::Sim { seed, intervals } => {
                format!("sim (seed {seed}, {intervals} intervals/path)")
            }
        }
    }
}

/// Runs `analyze`: per-path measures and network aggregates, solved
/// through the selected backend. With `metrics_path`, solver timings
/// and counters are recorded and written there as snapshot JSON; with
/// `trace_path`, the structured event journal (per-path solve spans,
/// per-hop provenance) is recorded and written there; with
/// `profile_path`, the whole command runs under a `profile_hz` sampling
/// capture and the folded profile is written there.
pub fn analyze(
    spec: &NetworkSpec,
    json: bool,
    backend: &Backend,
    metrics_path: Option<&str>,
    trace_path: Option<&str>,
    profile_path: Option<&str>,
    profile_hz: u32,
) -> Result<String, String> {
    let model = spec.to_model()?;
    let problem = model.compile().map_err(|e| e.to_string())?;
    let metrics = match metrics_path {
        Some(_) => Metrics::new(),
        None => Metrics::disabled(),
    };
    let trace = trace_for(trace_path);
    let profiler = profiler_for(profile_path);
    let capture = profiler.start_capture(profile_hz);
    let solve_frame = profiler.frame(&format!("solver.{}", backend.solver().name()));
    let eval = {
        let _analyze = profiler.enter(profiler.frame("cli.analyze"));
        let _solve = profiler.enter(solve_frame);
        backend
            .solver()
            .solve_network_traced(&problem, MeasurePlan::default(), &metrics, &trace)
            .map_err(|e| e.to_string())?
    };
    let mut appended = String::new();
    if let Some(path) = metrics_path {
        appended.push_str(&write_metrics(path, &metrics)?);
    }
    if let Some(path) = trace_path {
        appended.push_str(&write_trace(path, &trace)?);
    }
    if let (Some(path), Some(capture)) = (profile_path, capture) {
        appended.push_str(&write_profile(path, &capture.stop())?);
    }
    let mut out = render_analyze(json, backend, &eval);
    out.push_str(&appended);
    Ok(out)
}

/// Renders a solved network evaluation exactly as `whart analyze` prints
/// it — shared by the CLI and `whart serve` so the service's reports are
/// byte-identical to the command line's.
pub fn render_analyze(
    json: bool,
    backend: &Backend,
    eval: &whart_model::NetworkEvaluation,
) -> String {
    if json {
        let paths = eval
            .reports()
            .iter()
            .map(|r| {
                Json::object([
                    ("route", Json::from(r.path.to_string())),
                    ("hops", Json::from(r.path.hop_count())),
                    ("reachability", Json::from(r.evaluation.reachability())),
                    (
                        "expected_delay_ms",
                        Json::from(r.evaluation.expected_delay_ms(DelayConvention::Absolute)),
                    ),
                    (
                        "expected_intervals_to_first_loss",
                        Json::from(r.evaluation.expected_intervals_to_first_loss()),
                    ),
                    (
                        "utilization",
                        Json::from(r.evaluation.utilization(UtilizationConvention::AsEvaluated)),
                    ),
                    (
                        "cycle_probabilities",
                        Json::array(
                            r.evaluation
                                .cycle_probabilities()
                                .as_slice()
                                .iter()
                                .copied(),
                        ),
                    ),
                ])
            })
            .collect::<Vec<_>>();
        let payload = Json::object([
            ("backend", Json::from(backend.solver().name().to_string())),
            ("paths", Json::Array(paths)),
            (
                "mean_delay_ms",
                Json::from(eval.mean_delay_ms(DelayConvention::Absolute)),
            ),
            (
                "network_utilization",
                Json::from(eval.utilization(UtilizationConvention::AsEvaluated)),
            ),
        ]);
        let mut out = payload.to_pretty();
        if !out.ends_with('\n') {
            out.push('\n');
        }
        return out;
    }
    let mut out = String::new();
    if *backend != Backend::Fast {
        out.push_str(&format!("backend: {}\n", backend.describe()));
    }
    out.push_str("path  hops  reachability  E[delay] ms  E[N] intervals  utilization  route\n");
    for (i, r) in eval.reports().iter().enumerate() {
        let delay = r
            .evaluation
            .expected_delay_ms(DelayConvention::Absolute)
            .map_or("-".to_string(), |d| format!("{d:.1}"));
        out.push_str(&format!(
            "{:>4}  {:>4}  {:>11.6}  {:>11}  {:>14.1}  {:>11.4}  {}\n",
            i + 1,
            r.path.hop_count(),
            r.evaluation.reachability(),
            delay,
            r.evaluation.expected_intervals_to_first_loss(),
            r.evaluation.utilization(UtilizationConvention::AsEvaluated),
            r.path,
        ));
    }
    if let Some(mean) = eval.mean_delay_ms(DelayConvention::Absolute) {
        out.push_str(&format!("overall mean delay E[Gamma] = {mean:.1} ms\n"));
    }
    out.push_str(&format!(
        "network utilization U = {:.4}\n",
        eval.utilization(UtilizationConvention::AsEvaluated)
    ));
    out
}

/// Runs `explain`: the per-hop breakdown of one path — channel
/// provenance, expected attempts/failures, loss attribution (which hop
/// kills the packets), and the per-cycle delay decomposition. The
/// breakdown always comes from the fast analytical evaluator; with the
/// `sim` backend, a divergence table cross-checks the analytical values
/// against the Monte-Carlo estimate of the same compiled problem. Other
/// backends are rejected rather than silently behaving like `fast`.
pub fn explain(spec: &NetworkSpec, path_index: usize, backend: &Backend) -> Result<String, String> {
    if *backend == Backend::Explicit {
        return Err(
            "explain always breaks the path down with the fast evaluator; \
             --backend accepts 'fast' or 'sim' (sim appends a divergence table)"
                .into(),
        );
    }
    let model = spec.to_model()?;
    if path_index >= model.paths().len() {
        return Err(format!("path index {} out of range", path_index + 1));
    }
    let problem = model.path_problem(path_index).map_err(|e| e.to_string())?;
    let ex = explain_path(&problem, DelayConvention::Absolute);
    let eval = ex.evaluation();
    let route = &model.paths()[path_index];

    let mut out = String::new();
    out.push_str(&format!(
        "path {}: {route} ({} hops)\n",
        path_index + 1,
        ex.hops().len()
    ));
    let delay = eval
        .expected_delay_ms(DelayConvention::Absolute)
        .map_or("-".to_string(), |d| format!("{d:.1} ms"));
    out.push_str(&format!(
        "reachability R = {:.6}, E[delay] = {delay}, discard probability 1-R = {:.6}\n\n",
        eval.reachability(),
        eval.discard_probability()
    ));

    out.push_str("hop  link          slot  p_fl    p_rc    pi(up)  BER        E[tx]    E[fail]  loss mass  loss share\n");
    let total_loss = ex.total_loss();
    for hop in ex.hops() {
        let link = hop.link.map_or_else(
            || format!("hop-{}", hop.hop + 1),
            |(a, b)| format!("{a}--{b}"),
        );
        let share = if total_loss > 0.0 {
            format!("{:>9.1}%", hop.loss_mass / total_loss * 100.0)
        } else {
            format!("{:>10}", "-")
        };
        out.push_str(&format!(
            "{:>3}  {:<12}  {:>4}  {:.4}  {:.4}  {:.4}  {:.3e}  {:>7.4}  {:>7.4}  {:>9.6}  {share}\n",
            hop.hop + 1,
            link,
            hop.frame_slot + 1,
            hop.p_fl,
            hop.p_rc,
            hop.availability,
            hop.ber,
            hop.expected_attempts,
            hop.expected_failures,
            hop.loss_mass,
        ));
    }
    if let Some(dominant) = ex.dominant_loss_hop() {
        let hop = &ex.hops()[dominant];
        let link = hop.link.map_or_else(
            || format!("hop-{}", dominant + 1),
            |(a, b)| format!("{a}--{b}"),
        );
        out.push_str(&format!(
            "dominant loss hop: {} ({link}), {:.1}% of lost packets\n",
            dominant + 1,
            hop.loss_mass / total_loss * 100.0
        ));
    }

    out.push_str(&format!(
        "\ndelay decomposition (sums to E[delay | delivered] = {delay})\n"
    ));
    out.push_str("cycle  g_i       delay ms  contribution ms\n");
    for c in ex.cycles() {
        out.push_str(&format!(
            "{:>5}  {:.6}  {:>8.1}  {:>15.2}\n",
            c.cycle, c.probability, c.delay_ms, c.contribution_ms
        ));
    }

    if let Backend::Sim { seed, intervals } = *backend {
        let solver = MonteCarloSolver::new(seed, intervals);
        let sim = solver
            .solve_path_observed(&problem, MeasurePlan::SCALAR, &Metrics::disabled())
            .map_err(|e| e.to_string())?;
        out.push_str(&format!(
            "\nsim cross-check (seed {seed}, {intervals} intervals)\n"
        ));
        out.push_str("measure            analytic    sim         |divergence|\n");
        let mut row = |name: &str, a: f64, s: f64| {
            out.push_str(&format!(
                "{name:<17}  {a:>9.6}  {s:>9.6}  {:>12.6}\n",
                (a - s).abs()
            ));
        };
        row("reachability", eval.reachability(), sim.reachability());
        if let (Some(a), Some(s)) = (
            eval.expected_delay_ms(DelayConvention::Absolute),
            sim.expected_delay_ms(DelayConvention::Absolute),
        ) {
            row("E[delay] ms", a, s);
        }
        for c in ex.cycles() {
            row(
                &format!("g_{}", c.cycle),
                c.probability,
                sim.cycle_probabilities().get(c.cycle as usize - 1),
            );
        }
    }
    Ok(out)
}

/// Runs `dot`: the explicit Algorithm-1 DTMC of one path, as Graphviz.
pub fn dot(spec: &NetworkSpec, path_index: usize) -> Result<String, String> {
    let model = spec.to_model()?;
    let path_model = model.path_model(path_index).map_err(|e| e.to_string())?;
    let chain = explicit_chain(&path_model);
    Ok(chain.to_dot(&format!("path_{}", path_index + 1)))
}

/// Runs `simulate`: Monte-Carlo cross-check of the analytical model.
pub fn simulate(
    spec: &NetworkSpec,
    intervals: u64,
    seed: u64,
    workers: usize,
    json: bool,
) -> Result<String, String> {
    let model = spec.to_model()?;
    let eval = model.evaluate().map_err(|e| e.to_string())?;
    let (topology, paths, schedule, superframe, interval) = spec.build_parts()?;
    let sim = Simulator::new(
        topology,
        paths,
        schedule,
        superframe,
        interval,
        PhyMode::Gilbert,
    )
    .map_err(|e| e.to_string())?;
    let report = sim.run_parallel(seed, intervals, workers);
    if json {
        let paths = eval
            .reports()
            .iter()
            .zip(&report.paths)
            .map(|(r, stats)| {
                let delivered = stats.messages() - stats.lost;
                let (lo, hi) = whart_sim::wilson_interval(delivered, stats.messages(), 1.96);
                Json::object([
                    ("route", Json::from(r.path.to_string())),
                    (
                        "analytic_reachability",
                        Json::from(r.evaluation.reachability()),
                    ),
                    ("simulated_reachability", Json::from(stats.reachability())),
                    ("reachability_ci95", Json::array([lo, hi])),
                    (
                        "analytic_expected_delay_ms",
                        Json::from(r.evaluation.expected_delay_ms(DelayConvention::Absolute)),
                    ),
                    ("simulated_mean_delay_ms", Json::from(stats.mean_delay_ms())),
                ])
            })
            .collect::<Vec<_>>();
        let payload = Json::object([
            ("intervals", Json::from(intervals)),
            ("seed", Json::from(seed)),
            ("workers", Json::from(workers as u64)),
            ("paths", Json::Array(paths)),
            (
                "analytic_utilization",
                Json::from(eval.utilization(UtilizationConvention::AsEvaluated)),
            ),
            (
                "simulated_utilization",
                Json::from(report.network_utilization()),
            ),
        ]);
        return Ok(payload.to_pretty());
    }
    let mut out = String::new();
    out.push_str(&format!("{intervals} reporting intervals, seed {seed}\n"));
    out.push_str(
        "path  analytic R  simulated R  [95% CI]           analytic E[d]  simulated E[d]\n",
    );
    for (i, r) in eval.reports().iter().enumerate() {
        let stats = &report.paths[i];
        let delivered = stats.messages() - stats.lost;
        let (lo, hi) = whart_sim::wilson_interval(delivered, stats.messages(), 1.96);
        let ad = r
            .evaluation
            .expected_delay_ms(DelayConvention::Absolute)
            .map_or("-".to_string(), |d| format!("{d:.1}"));
        let sd = stats
            .mean_delay_ms()
            .map_or("-".to_string(), |d| format!("{d:.1}"));
        out.push_str(&format!(
            "{:>4}  {:>10.6}  {:>11.6}  [{:.6}, {:.6}]  {:>13}  {:>14}\n",
            i + 1,
            r.evaluation.reachability(),
            stats.reachability(),
            lo,
            hi,
            ad,
            sd,
        ));
    }
    out.push_str(&format!(
        "network utilization: analytic {:.4}, simulated {:.4}\n",
        eval.utilization(UtilizationConvention::AsEvaluated),
        report.network_utilization()
    ));
    Ok(out)
}

/// Runs `predict`: the Section VI-E composition prediction — a new node
/// attaches via a peer link (measured SNR) to an existing path.
pub fn predict(spec: &NetworkSpec, path_index: usize, snr: f64) -> Result<String, String> {
    let model = spec.to_model()?;
    if path_index >= model.paths().len() {
        return Err(format!("path index {path_index} out of range"));
    }
    let eval = model.evaluate().map_err(|e| e.to_string())?;
    let existing = &eval.reports()[path_index].evaluation;
    let peer_link = whart_channel::LinkModel::from_snr(
        whart_channel::Modulation::Oqpsk,
        whart_channel::EbN0::from_linear(snr),
        whart_channel::WIRELESSHART_MESSAGE_BITS,
        whart_channel::LinkModel::DEFAULT_RECOVERY,
    )
    .map_err(|e| e.to_string())?;
    let peer = compose::peer_cycle_probabilities(peer_link, model.interval());
    let prediction = compose::predict_composition(&peer, 1, existing).map_err(|e| e.to_string())?;
    let mut out = String::new();
    out.push_str(&format!(
        "peer link: Eb/N0 = {snr}, p_fl = {:.4}, pi(up) = {:.4}\n",
        peer_link.p_fl(),
        peer_link.availability()
    ));
    out.push_str(&format!(
        "composed cycle probabilities: {:?}\n",
        prediction
            .cycle_probabilities
            .as_slice()
            .iter()
            .map(|p| (p * 1e4).round() / 1e4)
            .collect::<Vec<_>>()
    ));
    out.push_str(&format!(
        "predicted reachability = {:.4} over {} hops\n",
        prediction.reachability, prediction.hop_count
    ));
    Ok(out)
}

/// Runs `sensitivity`: ranks physical links by the network-loss reduction
/// from improving each one (the operator's repair priority list).
pub fn sensitivity(spec: &NetworkSpec, step: f64) -> Result<String, String> {
    let model = spec.to_model()?;
    let ranking = whart_model::sensitivity::rank_link_improvements(
        &model,
        whart_model::sensitivity::Objective::TotalLoss,
        step,
    )
    .map_err(|e| e.to_string())?;
    let mut out = String::new();
    out.push_str(&format!(
        "link repair priorities (availability +{step}, objective: total loss)\n"
    ));
    out.push_str("rank  link          pi(up)   loss reduction\n");
    for (rank, s) in ranking.iter().enumerate() {
        out.push_str(&format!(
            "{:>4}  {:<12}  {:.4}   {:+.6}\n",
            rank + 1,
            format!("{} - {}", s.link.0, s.link.1),
            s.availability,
            s.gain,
        ));
    }
    Ok(out)
}

/// Options for `whart optimize`: topology generation, search and output
/// destinations, bundled so the flag grammar stays in one place.
pub struct OptimizeOptions {
    /// Random mesh parameters (seed, size, degree/depth caps, link
    /// quality range, slot slack).
    pub generator: whart_opt::GeneratorConfig,
    /// Objective and local-search round budget.
    pub search: whart_opt::SearchConfig,
    /// Engine worker threads evaluating candidates.
    pub threads: usize,
    /// Emit the report as JSON instead of the text tables.
    pub json: bool,
    /// Write the optimized network as an `analyze`/`batch`-compatible
    /// spec to this path (`-` appends it to stdout).
    pub emit_spec: Option<String>,
    /// Metrics snapshot destination.
    pub metrics_path: Option<String>,
    /// Trace journal destination.
    pub trace_path: Option<String>,
    /// Sampled profile destination (`.json` for per-thread JSON, anything
    /// else for folded stacks).
    pub profile_path: Option<String>,
    /// Sampling frequency for `profile_path` captures.
    pub profile_hz: u32,
}

/// Runs `optimize`: generates a seeded random mesh, builds the greedy
/// Eq. 12 routing tree and hill-climbs routes and schedule order through
/// the memoizing engine. The optimized network can be re-emitted as a
/// spec for `analyze`/`batch` what-if follow-ups.
pub fn optimize(options: &OptimizeOptions) -> Result<String, String> {
    let net = whart_opt::generate(&options.generator).map_err(|e| e.to_string())?;
    let metrics = match options.metrics_path {
        Some(_) => Metrics::new(),
        None => Metrics::disabled(),
    };
    let trace = trace_for(options.trace_path.as_deref());
    let profiler = profiler_for(options.profile_path.as_deref());
    let capture = profiler.start_capture(options.profile_hz);
    let mut engine = whart_engine::Engine::new(options.threads);
    engine.set_metrics(metrics.clone());
    engine.set_trace(trace.clone());
    engine.set_profiler(profiler);
    let result =
        whart_opt::optimize(&mut engine, &net, &options.search).map_err(|e| e.to_string())?;

    let mut appended = String::new();
    if let Some(path) = &options.emit_spec {
        let mut text = result.spec_json(&net).to_pretty();
        if !text.ends_with('\n') {
            text.push('\n');
        }
        appended.push_str(&write_or_passthrough(path, text, "spec")?);
    }
    if let Some(path) = &options.metrics_path {
        appended.push_str(&write_metrics(path, &metrics)?);
    }
    if let Some(path) = &options.trace_path {
        appended.push_str(&write_trace(path, &trace)?);
    }
    if let (Some(path), Some(capture)) = (&options.profile_path, capture) {
        appended.push_str(&write_profile(path, &capture.stop())?);
    }
    let mut out = if options.json {
        let mut text = result.to_json().to_pretty();
        if !text.ends_with('\n') {
            text.push('\n');
        }
        text
    } else {
        render_optimize(&net, &result)
    };
    out.push_str(&appended);
    Ok(out)
}

fn render_optimize(net: &whart_opt::GeneratedNetwork, result: &whart_opt::Optimized) -> String {
    let mut out = String::new();
    let direction = if result.objective.higher_is_better() {
        "maximize"
    } else {
        "minimize"
    };
    out.push_str(&format!(
        "objective: {} ({direction}), seed {}\n",
        result.objective.name(),
        net.config.seed,
    ));
    out.push_str(&format!(
        "network: {} devices, {} links, {} of {} uplink slots used\n",
        net.config.nodes,
        net.topology.link_count(),
        result.total_hops,
        result.uplink_slots,
    ));
    out.push_str(&format!(
        "greedy {:.6} -> optimized {:.6} after {} round(s), {} candidates, {} accepted\n",
        result.initial_objective,
        result.final_objective,
        result.rounds.len(),
        result.candidates_evaluated,
        result.accepted_moves,
    ));
    if let Some(ratio) = result.cache_hit_ratio {
        out.push_str(&format!("path cache hit ratio {ratio:.3}\n"));
    }
    out.push_str("\nround  candidates  accepted  objective  cache hit\n");
    for r in &result.rounds {
        let hit = r
            .cache_hit_ratio
            .map_or("-".to_string(), |h| format!("{h:.3}"));
        out.push_str(&format!(
            "{:>5}  {:>10}  {:>8}  {:>9.6}  {:>9}\n",
            r.round,
            r.candidates,
            if r.accepted { "yes" } else { "no" },
            r.objective_value,
            hit,
        ));
    }
    out.push_str("\npath  hops  reachability  E[delay] ms  route\n");
    for p in &result.paths {
        let delay = p
            .expected_delay_ms
            .map_or("-".to_string(), |d| format!("{d:.1}"));
        let route = p
            .route
            .iter()
            .map(|&n| {
                if n == 0 {
                    "G".to_string()
                } else {
                    format!("n{n}")
                }
            })
            .collect::<Vec<_>>()
            .join(" - ");
        out.push_str(&format!(
            "{:>4}  {:>4}  {:>11.6}  {:>11}  {}\n",
            p.device, p.hop_count, p.reachability, delay, route,
        ));
    }
    out
}

/// Runs `example`: prints a ready-made spec.
pub fn example(which: &str) -> Result<String, String> {
    match which {
        "typical" => Ok(NetworkSpec::typical(0.83).to_json()),
        "section-v" => Ok(NetworkSpec::section_v(0.75).to_json()),
        other => Err(format!(
            "unknown example '{other}' (try 'typical' or 'section-v')"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_typical_text_output() {
        let spec = NetworkSpec::typical(0.83);
        let out = analyze(
            &spec,
            false,
            &Backend::Fast,
            None,
            None,
            None,
            whart_prof::DEFAULT_HZ,
        )
        .unwrap();
        assert!(out.contains("overall mean delay E[Gamma] = 235"), "{out}");
        assert!(out.contains("network utilization U = 0.28"), "{out}");
        assert!(out.lines().count() >= 13);
        // The default backend adds no header line.
        assert!(out.starts_with("path  hops"), "{out}");
    }

    #[test]
    fn analyze_json_output_parses() {
        let spec = NetworkSpec::section_v(0.75);
        let out = analyze(
            &spec,
            true,
            &Backend::Fast,
            None,
            None,
            None,
            whart_prof::DEFAULT_HZ,
        )
        .unwrap();
        let value = Json::parse(&out).unwrap();
        let r = value["paths"][0]["reachability"].as_f64().unwrap();
        assert!((r - 0.9624).abs() < 1e-4);
        assert_eq!(value["backend"].as_str().unwrap(), "fast");
    }

    #[test]
    fn analyze_report_is_byte_identical_with_profiling_enabled() {
        let spec = NetworkSpec::section_v(0.75);
        let plain = analyze(
            &spec,
            true,
            &Backend::Fast,
            None,
            None,
            None,
            whart_prof::DEFAULT_HZ,
        )
        .unwrap();
        let dir = std::env::temp_dir().join(format!("whart-prof-parity-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out_path = dir.join("analyze.folded");
        let profiled = analyze(
            &spec,
            true,
            &Backend::Fast,
            None,
            None,
            Some(out_path.to_str().unwrap()),
            whart_prof::DEFAULT_HZ,
        )
        .unwrap();
        // The sampler only observes; the report must not change by a byte.
        assert_eq!(plain, profiled);
        // The artifact exists and is valid folded text (possibly empty:
        // one fast solve can finish between sampler ticks).
        let folded = std::fs::read_to_string(&out_path).unwrap();
        whart_prof::parse_folded(&folded).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn analyze_explicit_backend_matches_fast() {
        let spec = NetworkSpec::section_v(0.75);
        let fast = analyze(
            &spec,
            true,
            &Backend::Fast,
            None,
            None,
            None,
            whart_prof::DEFAULT_HZ,
        )
        .unwrap();
        let explicit = analyze(
            &spec,
            true,
            &Backend::Explicit,
            None,
            None,
            None,
            whart_prof::DEFAULT_HZ,
        )
        .unwrap();
        let f = Json::parse(&fast).unwrap();
        let e = Json::parse(&explicit).unwrap();
        assert_eq!(e["backend"].as_str().unwrap(), "explicit");
        let rf = f["paths"][0]["reachability"].as_f64().unwrap();
        let re = e["paths"][0]["reachability"].as_f64().unwrap();
        assert!((rf - re).abs() < 1e-12, "{rf} vs {re}");
    }

    #[test]
    fn analyze_sim_backend_estimates_the_measures() {
        let spec = NetworkSpec::section_v(0.75);
        let backend = Backend::Sim {
            seed: 7,
            intervals: 50_000,
        };
        let out = analyze(
            &spec,
            false,
            &backend,
            None,
            None,
            None,
            whart_prof::DEFAULT_HZ,
        )
        .unwrap();
        assert!(out.starts_with("backend: sim (seed 7"), "{out}");
        let json = analyze(
            &spec,
            true,
            &backend,
            None,
            None,
            None,
            whart_prof::DEFAULT_HZ,
        )
        .unwrap();
        let value = Json::parse(&json).unwrap();
        assert_eq!(value["backend"].as_str().unwrap(), "sim");
        let r = value["paths"][0]["reachability"].as_f64().unwrap();
        assert!((r - 0.9624).abs() < 5e-3, "{r}");
    }

    #[test]
    fn explain_reports_per_hop_provenance_from_the_channel_model() {
        let spec = NetworkSpec::section_v(0.75);
        let out = explain(&spec, 0, &Backend::Fast).unwrap();
        // The printed p_fl/p_rc must be the whart-channel derivation,
        // not a re-implementation.
        let expected = whart_channel::LinkModel::from_availability(0.75, 0.9).unwrap();
        assert!(out.contains(&format!("{:.4}", expected.p_fl())), "{out}");
        assert!(out.contains(&format!("{:.4}", expected.p_rc())), "{out}");
        assert!(out.contains("reachability R = 0.9624"), "{out}");
        assert!(out.contains("dominant loss hop"), "{out}");
        assert!(out.contains("delay decomposition"), "{out}");
        assert!(explain(&spec, 5, &Backend::Fast).is_err());
        // The explicit backend would silently behave like fast, so the
        // flag grammar rejects it for explain.
        let err = explain(&spec, 0, &Backend::Explicit).unwrap_err();
        assert!(err.contains("fast"), "{err}");
    }

    #[test]
    fn explain_sim_backend_appends_a_divergence_table() {
        let spec = NetworkSpec::section_v(0.75);
        let backend = Backend::Sim {
            seed: 7,
            intervals: 20_000,
        };
        let out = explain(&spec, 0, &backend).unwrap();
        assert!(
            out.contains("sim cross-check (seed 7, 20000 intervals)"),
            "{out}"
        );
        assert!(out.contains("g_1"), "{out}");
        let fast = explain(&spec, 0, &Backend::Fast).unwrap();
        assert!(!fast.contains("sim cross-check"), "{fast}");
    }

    #[test]
    fn backend_parsing_covers_the_flag_grammar() {
        assert_eq!(Backend::parse("fast", 1, 2).unwrap(), Backend::Fast);
        assert_eq!(Backend::parse("explicit", 1, 2).unwrap(), Backend::Explicit);
        assert_eq!(
            Backend::parse("sim", 9, 1000).unwrap(),
            Backend::Sim {
                seed: 9,
                intervals: 1000
            }
        );
        assert!(Backend::parse("magic", 0, 0).is_err());
    }

    #[test]
    fn dot_output_is_graphviz() {
        let spec = NetworkSpec::section_v(0.75);
        let out = dot(&spec, 0).unwrap();
        assert!(out.starts_with("digraph path_1"));
        assert!(out.contains("R7"));
        assert!(dot(&spec, 5).is_err());
    }

    #[test]
    fn simulate_agrees_with_analysis() {
        let spec = NetworkSpec::section_v(0.75);
        let out = simulate(&spec, 20_000, 7, 2, false).unwrap();
        assert!(out.contains("analytic R"), "{out}");
        // The simulated value printed should be near 0.9624.
        assert!(out.contains("0.96"), "{out}");
    }

    #[test]
    fn simulate_json_output_parses() {
        let spec = NetworkSpec::section_v(0.75);
        let out = simulate(&spec, 20_000, 7, 2, true).unwrap();
        let value = Json::parse(&out).unwrap();
        let analytic = value["paths"][0]["analytic_reachability"].as_f64().unwrap();
        assert!((analytic - 0.9624).abs() < 1e-4);
        let simulated = value["paths"][0]["simulated_reachability"]
            .as_f64()
            .unwrap();
        assert!((simulated - analytic).abs() < 0.01);
        assert_eq!(value["seed"].as_f64().unwrap(), 7.0);
    }

    #[test]
    fn predict_matches_table_iv() {
        let spec = NetworkSpec::typical(0.83);
        // Attach via path 4 (index 3 is 2-hop n4->n1->G) at Eb/N0 = 7: the
        // Table IV alpha scenario (2-hop existing path).
        let out = predict(&spec, 3, 7.0).unwrap();
        assert!(out.contains("0.9946") || out.contains("0.9945"), "{out}");
        assert!(predict(&spec, 99, 7.0).is_err());
    }

    #[test]
    fn sensitivity_ranks_links() {
        let spec = NetworkSpec::typical(0.83);
        let out = sensitivity(&spec, 0.05).unwrap();
        assert!(out.contains("repair priorities"), "{out}");
        // Ten links ranked.
        assert_eq!(out.lines().count(), 12, "{out}");
    }

    #[test]
    fn optimize_spec_round_trips_and_agrees_with_the_model() {
        let options = OptimizeOptions {
            generator: whart_opt::GeneratorConfig {
                seed: 5,
                nodes: 12,
                ..whart_opt::GeneratorConfig::default()
            },
            search: whart_opt::SearchConfig {
                max_rounds: 4,
                ..whart_opt::SearchConfig::default()
            },
            threads: 2,
            json: true,
            emit_spec: Some("-".into()),
            metrics_path: None,
            trace_path: None,
            profile_path: None,
            profile_hz: whart_prof::DEFAULT_HZ,
        };
        let out = optimize(&options).unwrap();
        // Two pretty JSON documents: the report, then the emitted spec.
        let split = out.find("\n{").expect("spec JSON after the report");
        let report = Json::parse(&out[..split + 1]).unwrap();
        let spec = NetworkSpec::from_json(&out[split..]).unwrap();
        let model = spec.to_model().unwrap();
        assert_eq!(model.paths().len(), 12);
        // Re-analyzing the emitted spec reproduces the optimizer's own
        // per-path reachability (steady links: slot placement does not
        // change the cycle function).
        let eval = model.evaluate().unwrap();
        for (i, r) in eval.reports().iter().enumerate() {
            let reported = report["paths"][i]["reachability"].as_f64().unwrap();
            assert!(
                (r.evaluation.reachability() - reported).abs() < 1e-12,
                "path {i}: {} vs {reported}",
                r.evaluation.reachability()
            );
        }
    }

    #[test]
    fn examples_render() {
        assert!(example("typical").unwrap().contains("\"uplink_slots\": 20"));
        assert!(example("section-v")
            .unwrap()
            .contains("\"uplink_slots\": 7"));
        assert!(example("nope").is_err());
    }
}
