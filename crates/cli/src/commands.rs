//! The CLI subcommands.

use crate::spec::NetworkSpec;
use std::sync::Arc;
use whart_json::Json;
use whart_model::{
    compose, explicit::explicit_chain, DelayConvention, ExplicitSolver, FastSolver, MeasurePlan,
    Solver, UtilizationConvention,
};
use whart_obs::Metrics;
use whart_sim::{MonteCarloSolver, PhyMode, Simulator};

/// Writes a pretty-printed [`whart_obs::MetricsSnapshot`] to `path`.
pub fn write_metrics(path: &str, metrics: &Metrics) -> Result<(), String> {
    let text = metrics.snapshot().to_json().to_pretty();
    std::fs::write(path, text).map_err(|e| format!("cannot write metrics to {path}: {e}"))
}

/// The solver backend selected on the command line (`--backend`) or in a
/// batch scenario's `backend` field. Every variant consumes the same
/// compiled [`whart_model::NetworkProblem`], so overrides and failure
/// injections are cross-validated structurally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// The fast analytical transient evaluator (the default).
    Fast,
    /// Algorithm 1's explicit unrolled chain, solved by absorbing-state
    /// analysis.
    Explicit,
    /// Monte-Carlo estimation of the same compiled problem.
    Sim {
        /// Base RNG seed.
        seed: u64,
        /// Replications per path.
        intervals: u64,
    },
}

impl Backend {
    /// Parses a `--backend` name, attaching `seed`/`intervals` for `sim`.
    pub fn parse(name: &str, seed: u64, intervals: u64) -> Result<Backend, String> {
        match name {
            "fast" => Ok(Backend::Fast),
            "explicit" => Ok(Backend::Explicit),
            "sim" => Ok(Backend::Sim { seed, intervals }),
            other => Err(format!(
                "unknown backend '{other}' (expected fast, explicit or sim)"
            )),
        }
    }

    /// Instantiates the solver.
    pub fn solver(&self) -> Arc<dyn Solver> {
        match *self {
            Backend::Fast => Arc::new(FastSolver),
            Backend::Explicit => Arc::new(ExplicitSolver),
            Backend::Sim { seed, intervals } => Arc::new(MonteCarloSolver::new(seed, intervals)),
        }
    }

    /// Human-readable description for report headers.
    pub fn describe(&self) -> String {
        match *self {
            Backend::Fast => "fast".into(),
            Backend::Explicit => "explicit".into(),
            Backend::Sim { seed, intervals } => {
                format!("sim (seed {seed}, {intervals} intervals/path)")
            }
        }
    }
}

/// Runs `analyze`: per-path measures and network aggregates, solved
/// through the selected backend. With `metrics_path`, solver timings
/// and counters are recorded and written there as snapshot JSON.
pub fn analyze(
    spec: &NetworkSpec,
    json: bool,
    backend: &Backend,
    metrics_path: Option<&str>,
) -> Result<String, String> {
    let model = spec.to_model()?;
    let problem = model.compile().map_err(|e| e.to_string())?;
    let metrics = match metrics_path {
        Some(_) => Metrics::new(),
        None => Metrics::disabled(),
    };
    let eval = backend
        .solver()
        .solve_network_observed(&problem, MeasurePlan::default(), &metrics)
        .map_err(|e| e.to_string())?;
    if let Some(path) = metrics_path {
        write_metrics(path, &metrics)?;
    }
    if json {
        let paths = eval
            .reports()
            .iter()
            .map(|r| {
                Json::object([
                    ("route", Json::from(r.path.to_string())),
                    ("hops", Json::from(r.path.hop_count())),
                    ("reachability", Json::from(r.evaluation.reachability())),
                    (
                        "expected_delay_ms",
                        Json::from(r.evaluation.expected_delay_ms(DelayConvention::Absolute)),
                    ),
                    (
                        "expected_intervals_to_first_loss",
                        Json::from(r.evaluation.expected_intervals_to_first_loss()),
                    ),
                    (
                        "utilization",
                        Json::from(r.evaluation.utilization(UtilizationConvention::AsEvaluated)),
                    ),
                    (
                        "cycle_probabilities",
                        Json::array(
                            r.evaluation
                                .cycle_probabilities()
                                .as_slice()
                                .iter()
                                .copied(),
                        ),
                    ),
                ])
            })
            .collect::<Vec<_>>();
        let payload = Json::object([
            ("backend", Json::from(backend.solver().name().to_string())),
            ("paths", Json::Array(paths)),
            (
                "mean_delay_ms",
                Json::from(eval.mean_delay_ms(DelayConvention::Absolute)),
            ),
            (
                "network_utilization",
                Json::from(eval.utilization(UtilizationConvention::AsEvaluated)),
            ),
        ]);
        return Ok(payload.to_pretty());
    }
    let mut out = String::new();
    if *backend != Backend::Fast {
        out.push_str(&format!("backend: {}\n", backend.describe()));
    }
    out.push_str("path  hops  reachability  E[delay] ms  E[N] intervals  utilization  route\n");
    for (i, r) in eval.reports().iter().enumerate() {
        let delay = r
            .evaluation
            .expected_delay_ms(DelayConvention::Absolute)
            .map_or("-".to_string(), |d| format!("{d:.1}"));
        out.push_str(&format!(
            "{:>4}  {:>4}  {:>11.6}  {:>11}  {:>14.1}  {:>11.4}  {}\n",
            i + 1,
            r.path.hop_count(),
            r.evaluation.reachability(),
            delay,
            r.evaluation.expected_intervals_to_first_loss(),
            r.evaluation.utilization(UtilizationConvention::AsEvaluated),
            r.path,
        ));
    }
    if let Some(mean) = eval.mean_delay_ms(DelayConvention::Absolute) {
        out.push_str(&format!("overall mean delay E[Gamma] = {mean:.1} ms\n"));
    }
    out.push_str(&format!(
        "network utilization U = {:.4}\n",
        eval.utilization(UtilizationConvention::AsEvaluated)
    ));
    Ok(out)
}

/// Runs `dot`: the explicit Algorithm-1 DTMC of one path, as Graphviz.
pub fn dot(spec: &NetworkSpec, path_index: usize) -> Result<String, String> {
    let model = spec.to_model()?;
    let path_model = model.path_model(path_index).map_err(|e| e.to_string())?;
    let chain = explicit_chain(&path_model);
    Ok(chain.to_dot(&format!("path_{}", path_index + 1)))
}

/// Runs `simulate`: Monte-Carlo cross-check of the analytical model.
pub fn simulate(
    spec: &NetworkSpec,
    intervals: u64,
    seed: u64,
    workers: usize,
    json: bool,
) -> Result<String, String> {
    let model = spec.to_model()?;
    let eval = model.evaluate().map_err(|e| e.to_string())?;
    let (topology, paths, schedule, superframe, interval) = spec.build_parts()?;
    let sim = Simulator::new(
        topology,
        paths,
        schedule,
        superframe,
        interval,
        PhyMode::Gilbert,
    )
    .map_err(|e| e.to_string())?;
    let report = sim.run_parallel(seed, intervals, workers);
    if json {
        let paths = eval
            .reports()
            .iter()
            .zip(&report.paths)
            .map(|(r, stats)| {
                let delivered = stats.messages() - stats.lost;
                let (lo, hi) = whart_sim::wilson_interval(delivered, stats.messages(), 1.96);
                Json::object([
                    ("route", Json::from(r.path.to_string())),
                    (
                        "analytic_reachability",
                        Json::from(r.evaluation.reachability()),
                    ),
                    ("simulated_reachability", Json::from(stats.reachability())),
                    ("reachability_ci95", Json::array([lo, hi])),
                    (
                        "analytic_expected_delay_ms",
                        Json::from(r.evaluation.expected_delay_ms(DelayConvention::Absolute)),
                    ),
                    ("simulated_mean_delay_ms", Json::from(stats.mean_delay_ms())),
                ])
            })
            .collect::<Vec<_>>();
        let payload = Json::object([
            ("intervals", Json::from(intervals)),
            ("seed", Json::from(seed)),
            ("workers", Json::from(workers as u64)),
            ("paths", Json::Array(paths)),
            (
                "analytic_utilization",
                Json::from(eval.utilization(UtilizationConvention::AsEvaluated)),
            ),
            (
                "simulated_utilization",
                Json::from(report.network_utilization()),
            ),
        ]);
        return Ok(payload.to_pretty());
    }
    let mut out = String::new();
    out.push_str(&format!("{intervals} reporting intervals, seed {seed}\n"));
    out.push_str(
        "path  analytic R  simulated R  [95% CI]           analytic E[d]  simulated E[d]\n",
    );
    for (i, r) in eval.reports().iter().enumerate() {
        let stats = &report.paths[i];
        let delivered = stats.messages() - stats.lost;
        let (lo, hi) = whart_sim::wilson_interval(delivered, stats.messages(), 1.96);
        let ad = r
            .evaluation
            .expected_delay_ms(DelayConvention::Absolute)
            .map_or("-".to_string(), |d| format!("{d:.1}"));
        let sd = stats
            .mean_delay_ms()
            .map_or("-".to_string(), |d| format!("{d:.1}"));
        out.push_str(&format!(
            "{:>4}  {:>10.6}  {:>11.6}  [{:.6}, {:.6}]  {:>13}  {:>14}\n",
            i + 1,
            r.evaluation.reachability(),
            stats.reachability(),
            lo,
            hi,
            ad,
            sd,
        ));
    }
    out.push_str(&format!(
        "network utilization: analytic {:.4}, simulated {:.4}\n",
        eval.utilization(UtilizationConvention::AsEvaluated),
        report.network_utilization()
    ));
    Ok(out)
}

/// Runs `predict`: the Section VI-E composition prediction — a new node
/// attaches via a peer link (measured SNR) to an existing path.
pub fn predict(spec: &NetworkSpec, path_index: usize, snr: f64) -> Result<String, String> {
    let model = spec.to_model()?;
    if path_index >= model.paths().len() {
        return Err(format!("path index {path_index} out of range"));
    }
    let eval = model.evaluate().map_err(|e| e.to_string())?;
    let existing = &eval.reports()[path_index].evaluation;
    let peer_link = whart_channel::LinkModel::from_snr(
        whart_channel::Modulation::Oqpsk,
        whart_channel::EbN0::from_linear(snr),
        whart_channel::WIRELESSHART_MESSAGE_BITS,
        whart_channel::LinkModel::DEFAULT_RECOVERY,
    )
    .map_err(|e| e.to_string())?;
    let peer = compose::peer_cycle_probabilities(peer_link, model.interval());
    let prediction = compose::predict_composition(&peer, 1, existing).map_err(|e| e.to_string())?;
    let mut out = String::new();
    out.push_str(&format!(
        "peer link: Eb/N0 = {snr}, p_fl = {:.4}, pi(up) = {:.4}\n",
        peer_link.p_fl(),
        peer_link.availability()
    ));
    out.push_str(&format!(
        "composed cycle probabilities: {:?}\n",
        prediction
            .cycle_probabilities
            .as_slice()
            .iter()
            .map(|p| (p * 1e4).round() / 1e4)
            .collect::<Vec<_>>()
    ));
    out.push_str(&format!(
        "predicted reachability = {:.4} over {} hops\n",
        prediction.reachability, prediction.hop_count
    ));
    Ok(out)
}

/// Runs `sensitivity`: ranks physical links by the network-loss reduction
/// from improving each one (the operator's repair priority list).
pub fn sensitivity(spec: &NetworkSpec, step: f64) -> Result<String, String> {
    let model = spec.to_model()?;
    let ranking = whart_model::sensitivity::rank_link_improvements(
        &model,
        whart_model::sensitivity::Objective::TotalLoss,
        step,
    )
    .map_err(|e| e.to_string())?;
    let mut out = String::new();
    out.push_str(&format!(
        "link repair priorities (availability +{step}, objective: total loss)\n"
    ));
    out.push_str("rank  link          pi(up)   loss reduction\n");
    for (rank, s) in ranking.iter().enumerate() {
        out.push_str(&format!(
            "{:>4}  {:<12}  {:.4}   {:+.6}\n",
            rank + 1,
            format!("{} - {}", s.link.0, s.link.1),
            s.availability,
            s.gain,
        ));
    }
    Ok(out)
}

/// Runs `example`: prints a ready-made spec.
pub fn example(which: &str) -> Result<String, String> {
    match which {
        "typical" => Ok(NetworkSpec::typical(0.83).to_json()),
        "section-v" => Ok(NetworkSpec::section_v(0.75).to_json()),
        other => Err(format!(
            "unknown example '{other}' (try 'typical' or 'section-v')"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_typical_text_output() {
        let spec = NetworkSpec::typical(0.83);
        let out = analyze(&spec, false, &Backend::Fast, None).unwrap();
        assert!(out.contains("overall mean delay E[Gamma] = 235"), "{out}");
        assert!(out.contains("network utilization U = 0.28"), "{out}");
        assert!(out.lines().count() >= 13);
        // The default backend adds no header line.
        assert!(out.starts_with("path  hops"), "{out}");
    }

    #[test]
    fn analyze_json_output_parses() {
        let spec = NetworkSpec::section_v(0.75);
        let out = analyze(&spec, true, &Backend::Fast, None).unwrap();
        let value = Json::parse(&out).unwrap();
        let r = value["paths"][0]["reachability"].as_f64().unwrap();
        assert!((r - 0.9624).abs() < 1e-4);
        assert_eq!(value["backend"].as_str().unwrap(), "fast");
    }

    #[test]
    fn analyze_explicit_backend_matches_fast() {
        let spec = NetworkSpec::section_v(0.75);
        let fast = analyze(&spec, true, &Backend::Fast, None).unwrap();
        let explicit = analyze(&spec, true, &Backend::Explicit, None).unwrap();
        let f = Json::parse(&fast).unwrap();
        let e = Json::parse(&explicit).unwrap();
        assert_eq!(e["backend"].as_str().unwrap(), "explicit");
        let rf = f["paths"][0]["reachability"].as_f64().unwrap();
        let re = e["paths"][0]["reachability"].as_f64().unwrap();
        assert!((rf - re).abs() < 1e-12, "{rf} vs {re}");
    }

    #[test]
    fn analyze_sim_backend_estimates_the_measures() {
        let spec = NetworkSpec::section_v(0.75);
        let backend = Backend::Sim {
            seed: 7,
            intervals: 50_000,
        };
        let out = analyze(&spec, false, &backend, None).unwrap();
        assert!(out.starts_with("backend: sim (seed 7"), "{out}");
        let json = analyze(&spec, true, &backend, None).unwrap();
        let value = Json::parse(&json).unwrap();
        assert_eq!(value["backend"].as_str().unwrap(), "sim");
        let r = value["paths"][0]["reachability"].as_f64().unwrap();
        assert!((r - 0.9624).abs() < 5e-3, "{r}");
    }

    #[test]
    fn backend_parsing_covers_the_flag_grammar() {
        assert_eq!(Backend::parse("fast", 1, 2).unwrap(), Backend::Fast);
        assert_eq!(Backend::parse("explicit", 1, 2).unwrap(), Backend::Explicit);
        assert_eq!(
            Backend::parse("sim", 9, 1000).unwrap(),
            Backend::Sim {
                seed: 9,
                intervals: 1000
            }
        );
        assert!(Backend::parse("magic", 0, 0).is_err());
    }

    #[test]
    fn dot_output_is_graphviz() {
        let spec = NetworkSpec::section_v(0.75);
        let out = dot(&spec, 0).unwrap();
        assert!(out.starts_with("digraph path_1"));
        assert!(out.contains("R7"));
        assert!(dot(&spec, 5).is_err());
    }

    #[test]
    fn simulate_agrees_with_analysis() {
        let spec = NetworkSpec::section_v(0.75);
        let out = simulate(&spec, 20_000, 7, 2, false).unwrap();
        assert!(out.contains("analytic R"), "{out}");
        // The simulated value printed should be near 0.9624.
        assert!(out.contains("0.96"), "{out}");
    }

    #[test]
    fn simulate_json_output_parses() {
        let spec = NetworkSpec::section_v(0.75);
        let out = simulate(&spec, 20_000, 7, 2, true).unwrap();
        let value = Json::parse(&out).unwrap();
        let analytic = value["paths"][0]["analytic_reachability"].as_f64().unwrap();
        assert!((analytic - 0.9624).abs() < 1e-4);
        let simulated = value["paths"][0]["simulated_reachability"]
            .as_f64()
            .unwrap();
        assert!((simulated - analytic).abs() < 0.01);
        assert_eq!(value["seed"].as_f64().unwrap(), 7.0);
    }

    #[test]
    fn predict_matches_table_iv() {
        let spec = NetworkSpec::typical(0.83);
        // Attach via path 4 (index 3 is 2-hop n4->n1->G) at Eb/N0 = 7: the
        // Table IV alpha scenario (2-hop existing path).
        let out = predict(&spec, 3, 7.0).unwrap();
        assert!(out.contains("0.9946") || out.contains("0.9945"), "{out}");
        assert!(predict(&spec, 99, 7.0).is_err());
    }

    #[test]
    fn sensitivity_ranks_links() {
        let spec = NetworkSpec::typical(0.83);
        let out = sensitivity(&spec, 0.05).unwrap();
        assert!(out.contains("repair priorities"), "{out}");
        // Ten links ranked.
        assert_eq!(out.lines().count(), 12, "{out}");
    }

    #[test]
    fn examples_render() {
        assert!(example("typical").unwrap().contains("\"uplink_slots\": 20"));
        assert!(example("section-v")
            .unwrap()
            .contains("\"uplink_slots\": 7"));
        assert!(example("nope").is_err());
    }
}
