//! End-to-end tests for `whart serve`: a real `whart` binary serving a
//! real TCP port, exercised with raw HTTP/1.1 over `TcpStream`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// A spawned `whart serve` child plus its bound address. Kills the
/// process on drop so a failing test cannot leak servers.
struct ServeProc {
    child: Child,
    addr: String,
}

impl Drop for ServeProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_serve(extra: &[&str]) -> ServeProc {
    let mut child = Command::new(env!("CARGO_BIN_EXE_whart"))
        .arg("serve")
        .args(["--addr", "127.0.0.1:0", "--threads", "2"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn whart serve");
    // The listen address is the first stderr line.
    let stderr = child.stderr.take().expect("child stderr");
    let mut lines = BufReader::new(stderr).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("serve exited before announcing its address")
            .expect("read stderr");
        if let Some(rest) = line.split("http://").nth(1) {
            break rest
                .split_whitespace()
                .next()
                .expect("address after http://")
                .to_string();
        }
    };
    // Keep draining stderr so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    ServeProc { child, addr }
}

/// One raw HTTP/1.1 exchange. Returns (status, body).
fn http(addr: &str, method: &str, target: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// One raw HTTP/1.1 exchange with extra request headers. Returns
/// (status, response headers lowercased, body).
fn http_full(
    addr: &str,
    method: &str,
    target: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut head = format!(
        "{method} {target} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    write!(stream, "{head}{body}").expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("response head");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers = head
        .lines()
        .skip(1)
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, body.to_string())
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

/// Polls `GET /readyz` until the self-check solve completes.
fn await_ready(addr: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, _) = http(addr, "GET", "/readyz", "");
        if status == 200 {
            return;
        }
        assert_eq!(status, 503, "readyz answers 503 until ready");
        assert!(Instant::now() < deadline, "server never became ready");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn section_v_spec() -> String {
    whart_cli::run(&["example".into(), "section-v".into()]).expect("example spec")
}

fn cli(args: &[&str]) -> String {
    let args: Vec<String> = args.iter().map(|a| a.to_string()).collect();
    whart_cli::run(&args).expect("cli run")
}

#[test]
fn analyze_is_byte_identical_to_the_cli_for_every_backend() {
    let serve = spawn_serve(&[]);
    await_ready(&serve.addr);
    let dir = std::env::temp_dir().join("whart-serve-parity-test");
    std::fs::create_dir_all(&dir).unwrap();
    let spec_path = dir.join("section_v.json");
    let spec = section_v_spec();
    std::fs::write(&spec_path, &spec).unwrap();
    let file = spec_path.to_str().unwrap();

    let cases = [
        ("fast", "/v1/analyze", vec!["--backend", "fast"]),
        (
            "explicit",
            "/v1/analyze?backend=explicit",
            vec!["--backend", "explicit"],
        ),
        (
            "sim",
            "/v1/analyze?backend=sim&seed=7&intervals=5000",
            vec!["--backend", "sim", "--seed", "7", "--intervals", "5000"],
        ),
    ];
    for (name, target, flags) in cases {
        let mut args = vec!["analyze", file, "--json"];
        args.extend(&flags);
        let expected = cli(&args);
        let (status, body) = http(&serve.addr, "POST", target, &spec);
        assert_eq!(status, 200, "{name}: {body}");
        assert_eq!(body, expected, "{name} report drifted from the CLI");
        // A second, cache-warm solve must not change a byte either.
        let (status, warm) = http(&serve.addr, "POST", target, &spec);
        assert_eq!(status, 200);
        assert_eq!(warm, expected, "{name} warm solve drifted");
    }

    // The text rendering matches the CLI table too.
    let expected = cli(&["analyze", file]);
    let (status, body) = http(&serve.addr, "POST", "/v1/analyze?format=text", &spec);
    assert_eq!(status, 200);
    assert_eq!(body, expected, "text report drifted from the CLI");
}

#[test]
fn metrics_exposition_is_valid_and_instruments_the_requests() {
    let serve = spawn_serve(&[]);
    await_ready(&serve.addr);
    let spec = section_v_spec();
    for _ in 0..3 {
        let (status, _) = http(&serve.addr, "POST", "/v1/analyze", &spec);
        assert_eq!(status, 200);
    }
    let (status, text) = http(&serve.addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let exposition = whart_obs::prometheus::parse(&text).expect("parse exposition");
    exposition.validate().expect("valid exposition");

    // The request counter carries route and code labels.
    let requests = exposition
        .named("http_requests_total")
        .find(|s| s.label("route") == Some("/v1/analyze") && s.label("code") == Some("200"))
        .expect("http_requests_total{route=/v1/analyze,code=200}");
    assert!(requests.value >= 3.0, "{}", requests.value);

    // The request-latency histogram exposes cumulative buckets and the
    // scrape-time quantile gauges.
    assert!(
        exposition
            .named("http_request_ns_bucket")
            .any(|s| s.label("route") == Some("/v1/analyze")),
        "request latency histogram missing:\n{text}"
    );
    for q in ["p50", "p95", "p99"] {
        assert!(
            exposition
                .named(&format!("http_request_ns_{q}"))
                .any(|s| s.label("route") == Some("/v1/analyze")),
            "missing {q} gauge:\n{text}"
        );
    }

    // Engine cache instrumentation: live entry counts and hit ratios.
    let entries = exposition
        .named("engine_cache_path_entries")
        .find(|s| s.label("backend") == Some("fast"))
        .expect("engine_cache_path_entries{backend=fast}");
    assert!(entries.value >= 1.0, "{}", entries.value);
    let ratio = exposition
        .value("engine_path_cache_hit_ratio")
        .expect("engine_path_cache_hit_ratio");
    assert!(
        (0.0..=1.0).contains(&ratio),
        "hit ratio out of range: {ratio}"
    );
    // Three identical solves after the self-check: the cache must hit.
    assert!(ratio > 0.0, "warm solves scored no cache hits");
}

#[test]
fn trace_endpoint_drains_the_journal_in_both_formats() {
    let serve = spawn_serve(&[]);
    await_ready(&serve.addr);
    let spec = section_v_spec();
    let (status, _) = http(&serve.addr, "POST", "/v1/analyze", &spec);
    assert_eq!(status, 200);

    let (status, jsonl) = http(&serve.addr, "GET", "/v1/trace", "");
    assert_eq!(status, 200);
    assert!(
        jsonl.lines().any(|l| l.contains("\"http_request\"")),
        "no request span in journal:\n{jsonl}"
    );
    for line in jsonl.lines().filter(|l| !l.is_empty()) {
        whart_json::Json::parse(line).expect("JSONL line parses");
    }

    // The drain consumed those events; a new request refills the journal
    // and format=chrome wraps it as a trace_event document.
    let (status, _) = http(&serve.addr, "POST", "/v1/analyze", &spec);
    assert_eq!(status, 200);
    let (status, chrome) = http(&serve.addr, "GET", "/v1/trace?format=chrome", "");
    assert_eq!(status, 200);
    let value = whart_json::Json::parse(&chrome).expect("chrome JSON parses");
    assert!(
        matches!(&value["traceEvents"], whart_json::Json::Array(events) if !events.is_empty()),
        "{chrome}"
    );

    let (status, _) = http(&serve.addr, "GET", "/v1/trace?format=yaml", "");
    assert_eq!(status, 400);
}

#[test]
fn batch_runs_against_the_persistent_engines() {
    let serve = spawn_serve(&[]);
    await_ready(&serve.addr);
    let fleet = r#"[
        {"label":"a","network":"typical","availability":0.83,"interval":1},
        {"label":"b","network":"typical","availability":0.83,"interval":1},
        {"label":"c","network":"section-v"}
    ]"#;
    let (status, body) = http(&serve.addr, "POST", "/v1/batch?stats=true", fleet);
    assert_eq!(status, 200, "{body}");
    let lines: Vec<&str> = body.lines().collect();
    assert_eq!(lines.len(), 4, "3 results + 1 stats line:\n{body}");
    for (i, label) in ["a", "b", "c"].iter().enumerate() {
        let line = whart_json::Json::parse(lines[i]).expect("result line parses");
        assert_eq!(line["label"].as_str(), Some(*label), "{body}");
    }
    let stats = whart_json::Json::parse(lines[3]).expect("stats line parses");
    assert!(
        stats["stats"]["path_cache_hits"].as_f64().unwrap_or(0.0) >= 1.0,
        "identical scenarios must share the cache:\n{body}"
    );
    // Malformed fleets answer 400 with the CLI's decode error.
    let (status, body) = http(&serve.addr, "POST", "/v1/batch", "[]");
    assert_eq!(status, 400);
    assert!(body.contains("no scenarios"), "{body}");
}

#[test]
fn optimize_runs_against_the_persistent_engine() {
    let serve = spawn_serve(&[]);
    await_ready(&serve.addr);
    let body = r#"{"seed": 11, "nodes": 12, "rounds": 3}"#;
    let (status, report) = http(&serve.addr, "POST", "/v1/optimize", body);
    assert_eq!(status, 200, "{report}");
    let value = whart_json::Json::parse(&report).expect("report parses");
    assert_eq!(value["objective"].as_str(), Some("reachability"));
    let initial = value["initial_objective"].as_f64().unwrap();
    let optimized = value["final_objective"].as_f64().unwrap();
    assert!(optimized + 1e-12 >= initial, "{report}");

    // The same seed answers with the same objective from the warm
    // engine, and ?spec=true wraps report and emitted spec together.
    let (status, wrapped) = http(&serve.addr, "POST", "/v1/optimize?spec=true", body);
    assert_eq!(status, 200);
    let value = whart_json::Json::parse(&wrapped).unwrap();
    assert_eq!(value["report"]["final_objective"].as_f64(), Some(optimized));
    // The embedded spec is a valid analyze input.
    let spec_text = value["spec"].to_pretty();
    let (status, analyzed) = http(&serve.addr, "POST", "/v1/analyze", &spec_text);
    assert_eq!(status, 200, "{analyzed}");
    assert!(analyzed.contains("reachability"), "{analyzed}");

    // Server-side caps and bad parameters answer 400.
    let (status, body) = http(&serve.addr, "POST", "/v1/optimize", r#"{"nodes": 500}"#);
    assert_eq!(status, 400);
    assert!(body.contains("capped"), "{body}");
    let (status, _) = http(
        &serve.addr,
        "POST",
        "/v1/optimize",
        r#"{"objective": "magic"}"#,
    );
    assert_eq!(status, 400);
}

#[test]
fn keep_alive_connection_answers_byte_identically_to_fresh_connections() {
    // New serve flags are accepted and the persistent-connection path
    // returns exactly the bytes the close-per-request path does.
    let serve = spawn_serve(&["--keepalive-timeout", "30", "--max-queue", "64"]);
    await_ready(&serve.addr);
    let spec = section_v_spec();
    let (status, expected) = http(&serve.addr, "POST", "/v1/analyze", &spec);
    assert_eq!(status, 200);

    let stream = TcpStream::connect(&serve.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut reader = BufReader::new(stream);
    for round in 0..3 {
        write!(
            reader.get_mut(),
            "POST /v1/analyze HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{spec}",
            spec.len()
        )
        .expect("write request");
        // Parse one keep-alive framed response.
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        assert!(status_line.starts_with("HTTP/1.1 200"), "{status_line}");
        let mut length = 0usize;
        let mut keep_alive = false;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            let (name, value) = line.split_once(':').unwrap();
            match name.to_ascii_lowercase().as_str() {
                "content-length" => length = value.trim().parse().unwrap(),
                "connection" => keep_alive = value.trim() == "keep-alive",
                _ => {}
            }
        }
        assert!(keep_alive, "round {round}: server kept the connection");
        let mut body = vec![0u8; length];
        reader.read_exact(&mut body).unwrap();
        assert_eq!(
            std::str::from_utf8(&body).unwrap(),
            expected,
            "round {round}: reused-connection response drifted"
        );
    }
}

#[test]
fn error_paths_answer_with_client_errors() {
    let serve = spawn_serve(&[]);
    let (status, _) = http(&serve.addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "liveness is independent of readiness");
    await_ready(&serve.addr);

    let spec = section_v_spec();
    let (status, body) = http(&serve.addr, "POST", "/v1/analyze", "{not json");
    assert_eq!(status, 400, "{body}");
    let (status, body) = http(&serve.addr, "POST", "/v1/analyze?backend=magic", &spec);
    assert_eq!(status, 400);
    assert!(body.contains("unknown backend"), "{body}");
    let (status, _) = http(&serve.addr, "GET", "/v1/analyze", "");
    assert_eq!(status, 405, "wrong method on a real route");
    let (status, _) = http(&serve.addr, "GET", "/v1/nonsense", "");
    assert_eq!(status, 404);
}

#[test]
fn graceful_shutdown_drains_in_flight_work_and_writes_final_artifacts() {
    let dir = std::env::temp_dir().join("whart-serve-shutdown-test");
    std::fs::create_dir_all(&dir).unwrap();
    let metrics_path = dir.join("final_metrics.json");
    let trace_path = dir.join("final_trace.json");
    let _ = std::fs::remove_file(&metrics_path);
    let _ = std::fs::remove_file(&trace_path);
    let mut serve = spawn_serve(&[
        "--metrics",
        metrics_path.to_str().unwrap(),
        "--trace",
        trace_path.to_str().unwrap(),
    ]);
    await_ready(&serve.addr);

    // A slow request (Monte-Carlo, generous replication count) that is
    // still in flight when the shutdown lands right behind it.
    let addr = serve.addr.clone();
    let spec = section_v_spec();
    let slow = std::thread::spawn(move || {
        http(
            &addr,
            "POST",
            "/v1/analyze?backend=sim&seed=3&intervals=150000",
            &spec,
        )
    });
    std::thread::sleep(Duration::from_millis(50));
    let (status, body) = http(&serve.addr, "POST", "/admin/shutdown", "");
    assert_eq!(status, 202);
    assert_eq!(body, "draining\n");

    // The in-flight solve completes instead of being reset.
    let (status, body) = slow.join().expect("slow request thread");
    assert_eq!(status, 200, "in-flight request dropped during drain");
    assert!(body.contains("reachability"), "{body}");

    // The process exits cleanly and writes both final artifacts.
    let output = serve.child.wait_with_output_timeout();
    assert!(output.status.success(), "serve exited nonzero");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("drained after"), "{stdout}");
    let snapshot_text = std::fs::read_to_string(&metrics_path).expect("final metrics written");
    let snapshot = whart_obs::MetricsSnapshot::parse(&snapshot_text).expect("snapshot parses");
    let served: u64 = snapshot
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("http.requests_total"))
        .map(|(_, count)| count)
        .sum();
    assert!(served >= 2, "final snapshot missed requests: {served}");
    assert!(trace_path.exists(), "final trace written");
}

#[test]
fn request_ids_flow_from_header_to_log_trace_and_flight_recorder() {
    let dir = std::env::temp_dir().join("whart-serve-request-id-test");
    std::fs::create_dir_all(&dir).unwrap();
    let log_path = dir.join("requests.jsonl");
    let _ = std::fs::remove_file(&log_path);
    let serve = spawn_serve(&[
        "--log",
        log_path.to_str().unwrap(),
        // A generous threshold so only the recent ring retains entries;
        // retention by id must not depend on the request being slow.
        "--flight-threshold-ms",
        "60000",
    ]);
    await_ready(&serve.addr);
    let spec = section_v_spec();

    // A client-supplied correlation id is echoed on the response. The
    // explicit backend's engine is cold (the self-check only warms the
    // fast one), so this request demonstrably reaches the solver.
    let id = "e2e-corr-0001";
    let (status, headers, _) = http_full(
        &serve.addr,
        "POST",
        "/v1/analyze?backend=explicit",
        &[("X-Request-Id", id)],
        &spec,
    );
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-request-id"), Some(id));
    // ...and a server-assigned id comes back when the client sends none,
    // even on error responses.
    let (status, headers, _) = http_full(&serve.addr, "POST", "/v1/analyze", &[], "{not json");
    assert_eq!(status, 400);
    let assigned = header(&headers, "x-request-id").expect("assigned id");
    assert!(!assigned.is_empty() && assigned != id, "{assigned}");

    // The flight recorder lists the request and replays it by id.
    let (status, list) = http(&serve.addr, "GET", "/v1/debug/requests", "");
    assert_eq!(status, 200);
    assert!(list.lines().any(|l| l.contains(id)), "{list}");
    let (status, detail) = http(&serve.addr, "GET", &format!("/v1/debug/requests/{id}"), "");
    assert_eq!(status, 200, "{detail}");
    let summary = whart_json::Json::parse(detail.lines().next().unwrap()).unwrap();
    assert_eq!(summary["id"].as_str(), Some(id));
    assert_eq!(summary["route"].as_str(), Some("/v1/analyze"));
    assert_eq!(summary["status"].as_u64(), Some(200));
    assert!(
        detail.lines().any(|l| l.contains("\"handler\"")),
        "per-hop timeline missing:\n{detail}"
    );
    let (status, _) = http(&serve.addr, "GET", "/v1/debug/requests/no-such-id", "");
    assert_eq!(status, 404);

    // The trace journal's request span carries the id, and so do the
    // solver spans the request triggered (the context scope).
    let (_, jsonl) = http(&serve.addr, "GET", "/v1/trace", "");
    assert!(
        jsonl
            .lines()
            .any(|l| l.contains("\"http_request\"") && l.contains(id)),
        "request span lost the id:\n{jsonl}"
    );
    assert!(
        jsonl
            .lines()
            .any(|l| l.contains("\"path_solve\"") && l.contains(id)),
        "solver span lost the id:\n{jsonl}"
    );

    // The structured log's wide event carries the same id (the log is
    // flushed per request; poll briefly for the write to land).
    let deadline = Instant::now() + Duration::from_secs(5);
    let event = loop {
        let text = std::fs::read_to_string(&log_path).unwrap_or_default();
        if let Some(line) = text.lines().find(|l| l.contains(id)) {
            break whart_json::Json::parse(line).expect("log line parses");
        }
        assert!(Instant::now() < deadline, "log line never appeared");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(event["event"].as_str(), Some("http_request"));
    assert_eq!(event["request_id"].as_str(), Some(id));
    assert_eq!(event["route"].as_str(), Some("/v1/analyze"));
    assert_eq!(event["code"].as_u64(), Some(200));
    assert!(event["total_ns"].as_u64().unwrap() > 0);
}

#[test]
fn statusz_and_windowed_gauges_track_recent_traffic() {
    let serve = spawn_serve(&[]);
    await_ready(&serve.addr);
    let spec = section_v_spec();

    let (status, page) = http(&serve.addr, "GET", "/statusz", "");
    assert_eq!(status, 200);
    assert!(page.contains("window_s: 30"), "{page}");
    assert!(page.contains("slo_target_ms: 5.000"), "{page}");
    assert!(page.contains("keepalive_reuse_ratio:"), "{page}");

    for _ in 0..4 {
        let (status, _) = http(&serve.addr, "POST", "/v1/analyze", &spec);
        assert_eq!(status, 200);
    }
    let (_, page) = http(&serve.addr, "GET", "/statusz", "");
    let row = page
        .lines()
        .find(|l| l.starts_with("/v1/analyze"))
        .expect("analyze row on statusz");
    let requests: u64 = row.split_whitespace().nth(1).unwrap().parse().unwrap();
    assert!(requests >= 4, "{row}");

    // /metrics carries the windowed gauges alongside the cumulative
    // series; traffic moves both, the cumulative one monotonically.
    let (_, text) = http(&serve.addr, "GET", "/metrics", "");
    let exposition = whart_obs::prometheus::parse(&text).expect("parse exposition");
    exposition.validate().expect("valid exposition");
    let windowed = |text: &str| -> f64 {
        whart_obs::prometheus::parse(text)
            .unwrap()
            .named("http_requests_window30s")
            .find(|s| s.label("route") == Some("/v1/analyze"))
            .expect("windowed request gauge")
            .value
    };
    let cumulative = |text: &str| -> f64 {
        whart_obs::prometheus::parse(text)
            .unwrap()
            .named("http_requests_total")
            .find(|s| s.label("route") == Some("/v1/analyze") && s.label("code") == Some("200"))
            .expect("cumulative request counter")
            .value
    };
    assert!(
        exposition
            .named("http_request_ns_p99_window30s")
            .any(|s| s.label("route") == Some("/v1/analyze")),
        "windowed p99 gauge missing:\n{text}"
    );
    assert!(
        exposition
            .named("http_slo_burn_window30s")
            .any(|s| s.label("route") == Some("/v1/analyze")),
        "windowed burn-rate gauge missing:\n{text}"
    );
    let (w1, c1) = (windowed(&text), cumulative(&text));
    assert!(w1 >= 4.0, "{w1}");
    for _ in 0..2 {
        let (status, _) = http(&serve.addr, "POST", "/v1/analyze", &spec);
        assert_eq!(status, 200);
    }
    let (_, text) = http(&serve.addr, "GET", "/metrics", "");
    let (w2, c2) = (windowed(&text), cumulative(&text));
    assert!(
        w2 >= w1,
        "window lost traffic inside its span: {w1} -> {w2}"
    );
    assert!(
        c2 >= c1 + 2.0,
        "cumulative counter must only grow: {c1} -> {c2}"
    );
}

#[test]
fn structured_logging_does_not_change_report_bytes() {
    let dir = std::env::temp_dir().join("whart-serve-log-parity-test");
    std::fs::create_dir_all(&dir).unwrap();
    let log_path = dir.join("parity.jsonl");
    let _ = std::fs::remove_file(&log_path);
    let plain = spawn_serve(&[]);
    let logged = spawn_serve(&["--log", log_path.to_str().unwrap(), "--log-level", "debug"]);
    await_ready(&plain.addr);
    await_ready(&logged.addr);
    let spec = section_v_spec();

    for target in ["/v1/analyze", "/v1/analyze?format=text"] {
        let (status_plain, expected) = http(&plain.addr, "POST", target, &spec);
        let (status_logged, body) = http(&logged.addr, "POST", target, &spec);
        assert_eq!((status_plain, status_logged), (200, 200));
        assert_eq!(body, expected, "{target}: logging changed the report bytes");
    }

    // The log itself is schema-stable JSONL: every line parses and
    // carries the envelope fields.
    let deadline = Instant::now() + Duration::from_secs(5);
    let text = loop {
        let text = std::fs::read_to_string(&log_path).unwrap_or_default();
        if text.lines().any(|l| l.contains("\"http_request\"")) {
            break text;
        }
        assert!(Instant::now() < deadline, "request log never materialized");
        std::thread::sleep(Duration::from_millis(20));
    };
    for line in text.lines().filter(|l| !l.is_empty()) {
        let event = whart_json::Json::parse(line).expect("log line parses");
        assert!(event["ts_ms"].as_u64().is_some(), "{line}");
        assert!(event["level"].as_str().is_some(), "{line}");
        assert!(event["event"].as_str().is_some(), "{line}");
    }
    let wide = text
        .lines()
        .map(|l| whart_json::Json::parse(l).unwrap())
        .find(|e| e["event"].as_str() == Some("http_request"))
        .expect("wide request event");
    for field in ["request_id", "method", "route"] {
        assert!(wide[field].as_str().is_some(), "missing {field}");
    }
    for field in ["code", "bytes_in", "bytes_out", "queue_ns", "total_ns"] {
        assert!(wide[field].as_u64().is_some(), "missing {field}");
    }
}

#[test]
fn debug_profile_captures_live_and_process_gauges_are_exposed() {
    let serve = spawn_serve(&[]);
    await_ready(&serve.addr);
    let spec = section_v_spec();

    // Process resource telemetry is on /metrics from startup (the
    // sampler seeds its first reading synchronously) and on /statusz.
    let (status, text) = http(&serve.addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let exposition = whart_obs::prometheus::parse(&text).expect("parse exposition");
    exposition.validate().expect("valid exposition");
    assert!(
        exposition.value("process_rss_bytes").unwrap_or(0.0) > 0.0,
        "process_rss_bytes missing or zero:\n{text}"
    );
    assert!(exposition.value("process_threads").unwrap_or(0.0) >= 1.0);
    assert!(exposition.value("process_open_fds").unwrap_or(0.0) >= 1.0);
    assert!(
        exposition
            .value("process_start_time_seconds")
            .unwrap_or(0.0)
            > 0.0
    );
    assert!(exposition.value("process_cpu_percent").is_some());
    assert!(exposition.value("uptime_seconds").is_some());
    let (status, page) = http(&serve.addr, "GET", "/statusz", "");
    assert_eq!(status, 200);
    assert!(page.contains("process:"), "{page}");
    assert!(page.contains("rss_bytes:"), "{page}");

    // Keep the service busy with slow solves so the capture window
    // observes handler activity.
    let addr = serve.addr.clone();
    let busy_spec = spec.clone();
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let stop_bg = std::sync::Arc::clone(&stop);
    let traffic = std::thread::spawn(move || {
        while !stop_bg.load(std::sync::atomic::Ordering::Relaxed) {
            let _ = http(
                &addr,
                "POST",
                "/v1/analyze?backend=sim&seed=1&intervals=20000",
                &busy_spec,
            );
        }
    });

    // A capture under traffic eventually samples the analyze handler
    // frame; each attempt is a fresh 1 s window at a generous rate.
    let mut saw_handler_frame = false;
    let mut last = String::new();
    for _ in 0..5 {
        let (status, folded) = http(
            &serve.addr,
            "GET",
            "/v1/debug/profile?seconds=1&hz=4000",
            "",
        );
        assert_eq!(status, 200, "{folded}");
        let stacks = whart_prof::parse_folded(&folded).expect("folded output parses");
        last = folded;
        if stacks
            .iter()
            .any(|(stack, _)| stack.iter().any(|f| f == "serve.analyze"))
        {
            saw_handler_frame = true;
            break;
        }
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    traffic.join().expect("traffic thread");
    assert!(
        saw_handler_frame,
        "no serve.analyze frame in 5 captures; last:\n{last}"
    );

    // The JSON rendering parses and reports the capture parameters.
    let (status, json) = http(
        &serve.addr,
        "GET",
        "/v1/debug/profile?seconds=1&format=json",
        "",
    );
    assert_eq!(status, 200);
    let value = whart_json::Json::parse(&json).expect("profile JSON parses");
    assert!(value["hz"].as_u64().is_some(), "{json}");
    assert!(value["duration_ms"].as_f64().is_some(), "{json}");

    // Bad parameters answer 400 instead of capturing.
    let (status, _) = http(&serve.addr, "GET", "/v1/debug/profile?seconds=0", "");
    assert_eq!(status, 400);
    let (status, _) = http(&serve.addr, "GET", "/v1/debug/profile?seconds=9999", "");
    assert_eq!(status, 400);
    let (status, _) = http(&serve.addr, "GET", "/v1/debug/profile?format=xml", "");
    assert_eq!(status, 400);
    let (status, _) = http(&serve.addr, "GET", "/v1/debug/profile?hz=999999", "");
    assert_eq!(status, 400);
}

/// `Child::wait_with_output` with a watchdog: a hung drain should fail
/// the test, not wedge the suite.
trait WaitWithTimeout {
    fn wait_with_output_timeout(&mut self) -> std::process::Output;
}

impl WaitWithTimeout for Child {
    fn wait_with_output_timeout(&mut self) -> std::process::Output {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            match self.try_wait().expect("try_wait") {
                Some(_) => {
                    let child = std::mem::replace(self, dead_child());
                    return child.wait_with_output().expect("collect output");
                }
                None if Instant::now() >= deadline => {
                    let _ = self.kill();
                    panic!("serve did not exit within the drain deadline");
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }
}

/// A placeholder child (already exited) to swap into the struct while
/// collecting the real one's output.
fn dead_child() -> Child {
    let mut child = Command::new(env!("CARGO_BIN_EXE_whart"))
        .arg("help")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn placeholder");
    let _ = child.wait();
    child
}
