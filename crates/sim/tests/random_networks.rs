//! Randomized cross-validation: on arbitrary tree networks with arbitrary
//! link qualities and schedule priorities, the Monte-Carlo simulator must
//! agree with the analytical hierarchical model. This is the strongest
//! equivalence evidence in the suite — neither implementation shares code
//! with the other beyond the topology types.

use proptest::prelude::*;
use whart_channel::LinkModel;
use whart_model::NetworkModel;
use whart_net::{uplink_paths, NodeId, ReportingInterval, Schedule, Superframe, Topology};
use whart_sim::{PhyMode, Simulator};

/// Builds a random tree topology: device `i + 1` attaches to the gateway
/// (choice 0) or an earlier device, with its own link availability.
fn build_topology(attachments: &[(usize, f64)]) -> Topology {
    let mut t = Topology::new();
    for (i, &(choice, pi)) in attachments.iter().enumerate() {
        let node = NodeId::field(i as u32 + 1);
        t.add_node(node).unwrap();
        let parent = match choice % (i + 1) {
            0 => NodeId::Gateway,
            k => NodeId::field(k as u32),
        };
        let link = LinkModel::from_availability(pi, 0.9).unwrap();
        t.connect(node, parent, link).unwrap();
    }
    t
}

proptest! {
    // Each case runs a 20k-interval simulation; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn simulator_matches_model_on_random_trees(
        attachments in proptest::collection::vec((0usize..100, 0.6f64..0.99), 2..7),
        is in 1u32..5,
        seed in 0u64..1_000,
        reverse_priority in any::<bool>(),
    ) {
        let topology = build_topology(&attachments);
        let paths = uplink_paths(&topology).unwrap();
        // Only proceed if every path respects the 4-hop guideline; deep
        // random trees are rare and uninteresting here.
        prop_assume!(paths.iter().all(|p| p.hop_count() <= 4));
        let mut order: Vec<usize> = (0..paths.len()).collect();
        if reverse_priority {
            order.reverse();
        }
        let schedule = Schedule::sequential(&paths, &order).unwrap();
        let total_hops: u32 = paths.iter().map(|p| p.hop_count() as u32).sum();
        let superframe = Superframe::symmetric(total_hops).unwrap();
        let interval = ReportingInterval::new(is).unwrap();

        let model = NetworkModel::new(
            topology.clone(),
            paths.clone(),
            schedule.clone(),
            superframe,
            interval,
        )
        .unwrap();
        let analytic = model.evaluate().unwrap();

        let sim = Simulator::new(topology, paths, schedule, superframe, interval, PhyMode::Gilbert)
            .unwrap();
        let observed = sim.run(seed, 20_000);

        for (i, report) in analytic.reports().iter().enumerate() {
            let a = report.evaluation.reachability();
            let s = observed.paths[i].reachability();
            // 20k Bernoulli trials: allow ~5 sigma of the worst-case
            // binomial noise plus a little slack.
            prop_assert!((a - s).abs() < 0.02, "path {i}: analytic {a} vs simulated {s}");
            // Per-cycle distribution agrees too.
            let fractions = observed.paths[i].cycle_fractions();
            for (c, fraction) in fractions.iter().enumerate().take(is as usize) {
                let want = report.evaluation.cycle_probabilities().get(c);
                prop_assert!(
                    (fraction - want).abs() < 0.02,
                    "path {i} cycle {c}: {fraction} vs {want}"
                );
            }
        }
        // Aggregate utilization agrees with the exact expected-transmission
        // count (the simulator counts attempts, including those of lost
        // messages, unlike the published Table II convention).
        let ua: f64 = analytic
            .reports()
            .iter()
            .map(|r| r.evaluation.exact_utilization())
            .sum();
        let us = observed.network_utilization();
        prop_assert!((ua - us).abs() < 0.02, "utilization {ua} vs {us}");
    }
}
