//! The slot-level discrete-event simulator.
//!
//! [`Simulator`] executes a fully specified WirelessHART network exactly as
//! the TDMA MAC would: every 10 ms slot advances the per-link channel
//! processes (uplink *and* downlink — the medium never pauses), scheduled
//! uplink slots carry their transmissions, messages hop towards the
//! gateway, and TTL expiry discards them at the end of their reporting
//! interval.
//!
//! This plays the role the field measurements of [Petersen, ETFA'09] play
//! in the paper: an independent ground truth the analytical DTMC is checked
//! against. Unlike the per-path analytical model, the simulator shares one
//! link process between all paths crossing a physical link, so it also
//! quantifies the (small) correlation the analytical decomposition ignores.

use crate::interference::{InterferedHoppingSampler, InterferenceWindow};
use crate::samplers::{GilbertSampler, HoppingSampler, LinkSampler};
use crate::stats::{PathStats, SimReport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use whart_channel::{Blacklist, ChannelConditions, HopSequence, LinkState};
use whart_net::typical::TypicalNetwork;
use whart_net::{NetError, NodeId, Path, ReportingInterval, Schedule, Superframe, Topology};

/// The physical-layer fidelity of a simulation.
#[derive(Debug, Clone)]
pub enum PhyMode {
    /// Sample the paper's two-state link chains (one per physical link).
    Gilbert,
    /// Simulate pseudo-random channel hopping over the 16-channel band with
    /// per-channel bit error rates; message success is per-bit.
    Hopping {
        /// Per-channel bit error rates.
        conditions: ChannelConditions,
        /// The network manager's blacklist.
        blacklist: Blacklist,
        /// Message length in bits (the WirelessHART payload by default).
        message_bits: u32,
    },
    /// Channel hopping under time-varying interference bursts (e.g. Wi-Fi
    /// coexistence) — see [`InterferenceWindow`].
    HoppingInterfered {
        /// Per-channel baseline bit error rates.
        conditions: ChannelConditions,
        /// The network manager's blacklist.
        blacklist: Blacklist,
        /// Message length in bits.
        message_bits: u32,
        /// The interference bursts.
        windows: Vec<InterferenceWindow>,
    },
}

/// One physical link's sampler (enum dispatch keeps the samplers' generic
/// RNG methods object-free).
#[derive(Debug, Clone)]
enum Sampler {
    Gilbert(GilbertSampler),
    Hopping(HoppingSampler),
    Interfered(InterferedHoppingSampler),
}

impl Sampler {
    fn step<R: Rng + ?Sized>(&mut self, rng: &mut R, slot: u64) {
        match self {
            Sampler::Gilbert(s) => s.step(rng, slot),
            Sampler::Hopping(s) => s.step(rng, slot),
            Sampler::Interfered(s) => s.step(rng, slot),
        }
    }

    fn transmit<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        match self {
            Sampler::Gilbert(s) => s.transmit(rng),
            Sampler::Hopping(s) => s.transmit(rng),
            Sampler::Interfered(s) => s.transmit(rng),
        }
    }
}

/// A scheduled action: `(path_index, hop_position, undirected_link_key)`.
type SlotAction = (usize, usize, (NodeId, NodeId));

/// A slot-level Monte-Carlo simulation of a WirelessHART network.
#[derive(Debug, Clone)]
pub struct Simulator {
    topology: Topology,
    paths: Vec<Path>,
    schedule: Schedule,
    superframe: Superframe,
    interval: ReportingInterval,
    phy: PhyMode,
    /// Per uplink frame slot: the scheduled action, if any.
    slot_actions: Vec<Option<SlotAction>>,
    link_keys: Vec<(NodeId, NodeId)>,
}

impl Simulator {
    /// Creates a simulator after validating the schedule against the
    /// topology and paths.
    ///
    /// # Errors
    ///
    /// Returns the schedule/topology inconsistency found.
    pub fn new(
        topology: Topology,
        paths: Vec<Path>,
        schedule: Schedule,
        superframe: Superframe,
        interval: ReportingInterval,
        phy: PhyMode,
    ) -> Result<Self, NetError> {
        schedule.validate(&topology, &paths)?;
        if schedule.len() > superframe.uplink_slots() as usize {
            return Err(NetError::InvalidSchedule {
                reason: format!(
                    "schedule has {} slots but the uplink half only {}",
                    schedule.len(),
                    superframe.uplink_slots()
                ),
            });
        }
        let mut slot_actions = vec![None; superframe.uplink_slots() as usize];
        for (slot, entry) in schedule.transmissions() {
            let hop_position = paths[entry.path_index]
                .hops()
                .position(|h| h == entry.hop)
                .expect("validated schedules serve path hops");
            slot_actions[slot] = Some((entry.path_index, hop_position, entry.hop.undirected_key()));
        }
        let link_keys: Vec<(NodeId, NodeId)> = topology.links().map(|(k, _)| k).collect();
        Ok(Simulator {
            topology,
            paths,
            schedule,
            superframe,
            interval,
            phy,
            slot_actions,
            link_keys,
        })
    }

    /// A simulator for the paper's typical network under a schedule.
    ///
    /// # Errors
    ///
    /// See [`Simulator::new`].
    pub fn from_typical(
        network: &TypicalNetwork,
        schedule: Schedule,
        interval: ReportingInterval,
        phy: PhyMode,
    ) -> Result<Self, NetError> {
        Simulator::new(
            network.topology.clone(),
            network.paths.clone(),
            schedule,
            network.superframe,
            interval,
            phy,
        )
    }

    /// The communication schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Runs `intervals` reporting intervals on one thread with the given
    /// seed.
    pub fn run(&self, seed: u64, intervals: u64) -> SimReport {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut samplers = self.build_samplers(&mut rng);
        let cycles = self.interval.cycles() as usize;
        let f_up = u64::from(self.superframe.uplink_slots());
        let cycle_slots = u64::from(self.superframe.cycle_slots());
        let mut paths: Vec<PathStats> = (0..self.paths.len())
            .map(|_| PathStats::new(cycles))
            .collect();

        // position[p] = Some(hops completed) while in flight.
        let mut position: Vec<Option<usize>> = vec![Some(0); self.paths.len()];
        let mut absolute_slot = 0u64;
        for _ in 0..intervals {
            position.iter_mut().for_each(|p| *p = Some(0));
            for cycle in 0..cycles {
                for frame_slot in 0..cycle_slots {
                    for (key, sampler) in self.link_keys.iter().zip(samplers.iter_mut()) {
                        let _ = key;
                        sampler.step(&mut rng, absolute_slot);
                    }
                    if frame_slot < f_up {
                        if let Some((path, hop, link_key)) = self.slot_actions[frame_slot as usize]
                        {
                            if position[path] == Some(hop) {
                                paths[path].slots_used += 1;
                                let idx = self
                                    .link_keys
                                    .iter()
                                    .position(|k| *k == link_key)
                                    .expect("links indexed at construction");
                                if samplers[idx].transmit(&mut rng) {
                                    let next = hop + 1;
                                    if next == self.paths[path].hop_count() {
                                        position[path] = None;
                                        paths[path].delivered_by_cycle[cycle] += 1;
                                        let delay = self
                                            .superframe
                                            .delay_ms(cycle as u32 + 1, frame_slot as u32 + 1);
                                        paths[path].delay_total_ms += u64::from(delay);
                                    } else {
                                        position[path] = Some(next);
                                    }
                                }
                            }
                        }
                    }
                    absolute_slot += 1;
                }
            }
            // TTL expiry: anything still in flight is discarded.
            for (path, pos) in position.iter().enumerate() {
                if pos.is_some() {
                    paths[path].lost += 1;
                }
            }
        }
        SimReport {
            paths,
            intervals,
            uplink_slots_per_interval: u64::from(self.interval.cycles()) * f_up,
        }
    }

    /// Runs `intervals` reporting intervals split across `workers` threads
    /// (deterministic per-worker seeds derived from `seed`) and merges the
    /// tallies.
    pub fn run_parallel(&self, seed: u64, intervals: u64, workers: usize) -> SimReport {
        let workers = workers.max(1).min(intervals.max(1) as usize);
        if workers == 1 {
            return self.run(seed, intervals);
        }
        let per = intervals / workers as u64;
        let extra = intervals % workers as u64;
        let mut reports: Vec<Option<SimReport>> = vec![None; workers];
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (w, slot) in reports.iter_mut().enumerate() {
                let chunk = per + u64::from((w as u64) < extra);
                let worker_seed =
                    seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(w as u64 + 1));
                handles.push(scope.spawn(move || {
                    *slot = Some(self.run(worker_seed, chunk));
                }));
            }
            for h in handles {
                h.join().expect("simulation workers do not panic");
            }
        });
        let mut merged: Option<SimReport> = None;
        for report in reports.into_iter().flatten() {
            match &mut merged {
                Some(m) => m.merge(&report),
                None => merged = Some(report),
            }
        }
        merged.expect("at least one worker ran")
    }

    fn build_samplers(&self, rng: &mut StdRng) -> Vec<Sampler> {
        self.link_keys
            .iter()
            .enumerate()
            .map(|(offset, &(a, b))| match &self.phy {
                PhyMode::Gilbert => {
                    let model = self.topology.link(a, b).expect("links exist");
                    Sampler::Gilbert(if rng.gen::<f64>() < model.availability() {
                        GilbertSampler::new(model, LinkState::Up)
                    } else {
                        GilbertSampler::new(model, LinkState::Down)
                    })
                }
                PhyMode::Hopping {
                    conditions,
                    blacklist,
                    message_bits,
                } => {
                    let sequence = HopSequence::new(blacklist, offset)
                        .expect("blacklist keeps at least one channel");
                    Sampler::Hopping(HoppingSampler::new(
                        sequence,
                        conditions.clone(),
                        *message_bits,
                    ))
                }
                PhyMode::HoppingInterfered {
                    conditions,
                    blacklist,
                    message_bits,
                    windows,
                } => {
                    let sequence = HopSequence::new(blacklist, offset)
                        .expect("blacklist keeps at least one channel");
                    Sampler::Interfered(InterferedHoppingSampler::new(
                        sequence,
                        conditions.clone(),
                        windows.clone(),
                        *message_bits,
                    ))
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whart_channel::LinkModel;

    fn typical_sim(pi: f64) -> Simulator {
        let net = TypicalNetwork::new(LinkModel::from_availability(pi, 0.9).unwrap());
        Simulator::from_typical(
            &net,
            net.schedule_eta_a(),
            ReportingInterval::REGULAR,
            PhyMode::Gilbert,
        )
        .unwrap()
    }

    #[test]
    fn simulated_reachability_matches_analytical() {
        let sim = typical_sim(0.83);
        let report = sim.run(42, 30_000);
        // Analytical values for 1-, 2- and 3-hop paths at pi = 0.83.
        let want = [0.999165, 0.996391, 0.99066];
        for (path, hops) in [(0usize, 0usize), (3, 1), (9, 2)] {
            let r = report.paths[path].reachability();
            assert!(
                (r - want[hops]).abs() < 0.004,
                "path {path}: {r} vs {}",
                want[hops]
            );
        }
    }

    #[test]
    fn simulated_delay_matches_analytical() {
        let sim = typical_sim(0.83);
        let report = sim.run(7, 30_000);
        // Path 10's expected delay under eta_a is ~421 ms (Fig. 15).
        let d = report.paths[9].mean_delay_ms().unwrap();
        assert!((d - 421.4).abs() < 6.0, "{d}");
        // Network mean delay ~235 ms.
        let mean = report.mean_delay_ms().unwrap();
        assert!((mean - 235.0).abs() < 4.0, "{mean}");
    }

    #[test]
    fn simulated_utilization_matches_table2() {
        let sim = typical_sim(0.83);
        let report = sim.run(11, 30_000);
        let u = report.network_utilization();
        assert!((u - 0.283).abs() < 0.004, "{u}");
    }

    #[test]
    fn parallel_run_merges_all_intervals() {
        let sim = typical_sim(0.83);
        let report = sim.run_parallel(3, 10_000, 4);
        assert_eq!(report.intervals, 10_000);
        for p in &report.paths {
            assert_eq!(p.messages(), 10_000);
        }
        // Statistically sane.
        assert!(report.paths[0].reachability() > 0.99);
    }

    #[test]
    fn run_is_deterministic_per_seed() {
        let sim = typical_sim(0.83);
        let a = sim.run(5, 500);
        let b = sim.run(5, 500);
        assert_eq!(a, b);
        let c = sim.run(6, 500);
        assert_ne!(a, c);
    }

    #[test]
    fn hopping_mode_with_clean_channels_always_delivers() {
        let net = TypicalNetwork::new(LinkModel::from_availability(0.83, 0.9).unwrap());
        let sim = Simulator::from_typical(
            &net,
            net.schedule_eta_a(),
            ReportingInterval::REGULAR,
            PhyMode::Hopping {
                conditions: ChannelConditions::uniform(0.0).unwrap(),
                blacklist: Blacklist::new(),
                message_bits: 1016,
            },
        )
        .unwrap();
        let report = sim.run(1, 200);
        for p in &report.paths {
            assert_eq!(p.lost, 0);
            assert_eq!(p.delivered_by_cycle[0], 200); // all in cycle 1
        }
    }

    #[test]
    fn hopping_mode_with_uniform_ber_matches_memoryless_model() {
        // With identical BER on all 16 channels, hopping is equivalent to a
        // memoryless per-slot success probability (1 - ber)^L; a 1-hop path
        // then delivers in cycle 1 with exactly that probability.
        let ber = 2e-4;
        let p_success = 1.0 - whart_channel::message_failure_probability(ber, 1016);
        let net = TypicalNetwork::new(LinkModel::from_availability(0.83, 0.9).unwrap());
        let sim = Simulator::from_typical(
            &net,
            net.schedule_eta_a(),
            ReportingInterval::REGULAR,
            PhyMode::Hopping {
                conditions: ChannelConditions::uniform(ber).unwrap(),
                blacklist: Blacklist::new(),
                message_bits: 1016,
            },
        )
        .unwrap();
        let report = sim.run(9, 20_000);
        let first_cycle = report.paths[0].cycle_fractions()[0];
        assert!(
            (first_cycle - p_success).abs() < 0.005,
            "{first_cycle} vs {p_success}"
        );
    }

    #[test]
    fn persistent_interferer_degrades_and_blacklisting_restores() {
        // Note: with a 40-slot cycle the hop sequence resonates with the
        // frame (160 = 0 mod 16), so each path's retries revisit a fixed
        // set of channels — a real slow-hopping artifact. The robust claims
        // are aggregate: a wide interferer (Wi-Fi cells 1, 6 and 11 = 12 of
        // 16 channels at BER 0.5) causes losses somewhere in the network,
        // and blacklisting the interfered channels removes them entirely.
        let windows = vec![
            crate::InterferenceWindow::wifi(1, 0, u64::MAX, 0.5),
            crate::InterferenceWindow::wifi(6, 0, u64::MAX, 0.5),
            crate::InterferenceWindow::wifi(11, 0, u64::MAX, 0.5),
        ];
        let net = TypicalNetwork::new(LinkModel::from_availability(0.83, 0.9).unwrap());
        let sim = Simulator::from_typical(
            &net,
            net.schedule_eta_a(),
            ReportingInterval::REGULAR,
            PhyMode::HoppingInterfered {
                conditions: ChannelConditions::uniform(0.0).unwrap(),
                blacklist: Blacklist::new(),
                message_bits: 1016,
                windows: windows.clone(),
            },
        )
        .unwrap();
        let report = sim.run(13, 2_000);
        let total_lost: u64 = report.paths.iter().map(|p| p.lost).sum();
        assert!(
            total_lost > 0,
            "a 12-channel interferer must cost something"
        );

        // Blacklist the 12 interfered channels; the remaining 4 are clean.
        let mut blacklist = Blacklist::new();
        for w in &windows {
            for &c in &w.channels {
                blacklist.ban(c).unwrap();
            }
        }
        let clean = Simulator::from_typical(
            &net,
            net.schedule_eta_a(),
            ReportingInterval::REGULAR,
            PhyMode::HoppingInterfered {
                conditions: ChannelConditions::uniform(0.0).unwrap(),
                blacklist,
                message_bits: 1016,
                windows,
            },
        )
        .unwrap();
        let report = clean.run(13, 2_000);
        for p in &report.paths {
            assert_eq!(p.lost, 0);
        }
    }

    #[test]
    fn invalid_schedule_is_rejected() {
        let net = TypicalNetwork::new(LinkModel::from_availability(0.83, 0.9).unwrap());
        let too_long = net.schedule_eta_a().padded(25);
        assert!(Simulator::from_typical(
            &net,
            too_long,
            ReportingInterval::REGULAR,
            PhyMode::Gilbert
        )
        .is_err());
    }
}
