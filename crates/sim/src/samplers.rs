//! Per-link stochastic samplers.
//!
//! Two physical-layer fidelities are available:
//!
//! * [`GilbertSampler`] — samples the paper's two-state link DTMC directly
//!   (one chain per physical link, stepping every slot);
//! * [`HoppingSampler`] — the finer mechanism the two-state chain
//!   abstracts: pseudo-random channel hopping over 16 channels with
//!   per-channel bit error rates; each transmission succeeds iff all
//!   message bits cross the current channel's BSC uncorrupted.

use rand::Rng;
use whart_channel::{BinarySymmetricChannel, ChannelConditions, HopSequence, LinkModel, LinkState};

/// A stateful sampler for one physical link.
pub trait LinkSampler {
    /// Advances the link by one slot (called for every slot, uplink and
    /// downlink — the medium does not pause).
    fn step<R: Rng + ?Sized>(&mut self, rng: &mut R, absolute_slot: u64);

    /// Whether a transmission in the current slot succeeds.
    fn transmit<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool;
}

/// Samples the two-state (Gilbert) link chain of the paper's Section III.
#[derive(Debug, Clone)]
pub struct GilbertSampler {
    model: LinkModel,
    state: LinkState,
}

impl GilbertSampler {
    /// Creates a sampler starting from the given state.
    pub fn new(model: LinkModel, initial: LinkState) -> Self {
        GilbertSampler {
            model,
            state: initial,
        }
    }

    /// Creates a sampler whose initial state is drawn from the stationary
    /// distribution (the paper's steady-state assumption).
    pub fn stationary<R: Rng + ?Sized>(model: LinkModel, rng: &mut R) -> Self {
        let up = rng.gen::<f64>() < model.availability();
        GilbertSampler::new(model, if up { LinkState::Up } else { LinkState::Down })
    }

    /// The current state.
    pub fn state(&self) -> LinkState {
        self.state
    }
}

impl LinkSampler for GilbertSampler {
    fn step<R: Rng + ?Sized>(&mut self, rng: &mut R, _absolute_slot: u64) {
        let roll = rng.gen::<f64>();
        self.state = match self.state {
            LinkState::Up if roll < self.model.p_fl() => LinkState::Down,
            LinkState::Down if roll < self.model.p_rc() => LinkState::Up,
            s => s,
        };
    }

    fn transmit<R: Rng + ?Sized>(&mut self, _rng: &mut R) -> bool {
        self.state == LinkState::Up
    }
}

/// Samples the full channel-hopping PHY: the link's hop sequence picks one
/// of the 16 channels per slot and the message crosses that channel's BSC.
#[derive(Debug, Clone)]
pub struct HoppingSampler {
    sequence: HopSequence,
    conditions: ChannelConditions,
    message_bits: u32,
    current_channel_ber: f64,
}

impl HoppingSampler {
    /// Creates a sampler for a link with the given hop sequence and channel
    /// conditions.
    pub fn new(sequence: HopSequence, conditions: ChannelConditions, message_bits: u32) -> Self {
        let ber = conditions.ber(sequence.channel_at(0));
        HoppingSampler {
            sequence,
            conditions,
            message_bits,
            current_channel_ber: ber,
        }
    }

    /// The BER of the channel in use this slot.
    pub fn current_ber(&self) -> f64 {
        self.current_channel_ber
    }
}

impl LinkSampler for HoppingSampler {
    fn step<R: Rng + ?Sized>(&mut self, _rng: &mut R, absolute_slot: u64) {
        self.current_channel_ber = self.conditions.ber(self.sequence.channel_at(absolute_slot));
    }

    fn transmit<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        BinarySymmetricChannel::new(self.current_channel_ber)
            .expect("conditions hold probabilities")
            .sample_message_success(rng, self.message_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use whart_channel::Blacklist;

    #[test]
    fn gilbert_long_run_matches_availability() {
        let model = LinkModel::new(0.184, 0.9).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut sampler = GilbertSampler::stationary(model, &mut rng);
        let slots = 200_000;
        let mut up = 0u64;
        for t in 0..slots {
            sampler.step(&mut rng, t);
            if sampler.state() == LinkState::Up {
                up += 1;
            }
        }
        let fraction = up as f64 / slots as f64;
        assert!(
            (fraction - model.availability()).abs() < 0.005,
            "{fraction}"
        );
    }

    #[test]
    fn gilbert_run_lengths_are_geometric() {
        let model = LinkModel::new(0.25, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut sampler = GilbertSampler::new(model, LinkState::Up);
        let mut up_runs = Vec::new();
        let mut current = 0u64;
        for t in 0..300_000 {
            sampler.step(&mut rng, t);
            if sampler.state() == LinkState::Up {
                current += 1;
            } else if current > 0 {
                up_runs.push(current);
                current = 0;
            }
        }
        let mean = up_runs.iter().sum::<u64>() as f64 / up_runs.len() as f64;
        assert!((mean - model.mean_up_run()).abs() < 0.1, "{mean}");
    }

    #[test]
    fn hopping_sampler_tracks_channel_quality() {
        let mut conditions = ChannelConditions::uniform(0.0).unwrap();
        let bad = whart_channel::ChannelId::new(11).unwrap();
        conditions.set_ber(bad, 0.5).unwrap();
        let sequence = HopSequence::new(&Blacklist::new(), 0).unwrap();
        let mut sampler = HoppingSampler::new(sequence.clone(), conditions, 1016);
        let mut rng = StdRng::seed_from_u64(3);
        for t in 0..32 {
            sampler.step(&mut rng, t);
            let on_bad = sequence.channel_at(t) == bad;
            assert_eq!(sampler.current_ber() > 0.0, on_bad, "slot {t}");
            // Perfect channels always deliver; the broken one never does
            // (BER 0.5 over 1016 bits is a guaranteed corruption in practice).
            assert_eq!(sampler.transmit(&mut rng), !on_bad, "slot {t}");
        }
    }

    #[test]
    fn hopping_sampler_mean_success_matches_mixture() {
        // Two bad channels out of 16: long-run success fraction equals
        // the per-period mixture of message success probabilities.
        let mut conditions = ChannelConditions::uniform(1e-5).unwrap();
        for ch in [13u8, 20] {
            conditions
                .set_ber(whart_channel::ChannelId::new(ch).unwrap(), 1e-3)
                .unwrap();
        }
        let sequence = HopSequence::new(&Blacklist::new(), 5).unwrap();
        let mut sampler = HoppingSampler::new(sequence.clone(), conditions.clone(), 1016);
        let mut rng = StdRng::seed_from_u64(21);
        let trials = 80_000u64;
        let mut ok = 0u64;
        for t in 0..trials {
            sampler.step(&mut rng, t);
            if sampler.transmit(&mut rng) {
                ok += 1;
            }
        }
        let expected: f64 = (0..16u64)
            .map(|t| {
                let ber = conditions.ber(sequence.channel_at(t));
                BinarySymmetricChannel::new(ber)
                    .unwrap()
                    .message_success_probability(1016)
            })
            .sum::<f64>()
            / 16.0;
        let got = ok as f64 / trials as f64;
        assert!((got - expected).abs() < 0.005, "{got} vs {expected}");
    }
}
