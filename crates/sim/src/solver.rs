//! The Monte-Carlo backend of the compiled problem IR.
//!
//! [`MonteCarloSolver`] implements [`whart_model::Solver`] by statistical
//! solution of the *same* [`PathProblem`] the analytical backends
//! consume: each replication walks one message through the `Is * F_up`
//! uplink slots, drawing every scheduled transmission as an independent
//! Bernoulli trial with success probability `pi(up)(k)` at the absolute
//! slot `k` — exactly the per-slot probabilities of Eq. 5, including
//! transient initial states and outage windows. Estimates therefore
//! converge to the [`whart_model::FastSolver`] values as replications
//! grow, which is what closes the override/injection cross-validation
//! gap: any scenario the engine can express (link overrides, failure
//! injections, interval changes) lowers to a [`PathProblem`] and can be
//! checked against this backend without hand-wiring.
//!
//! This is deliberately *not* the slot-level [`crate::Simulator`]: that
//! one shares a persistent channel process among all paths crossing a
//! physical link and serves as the physical-fidelity oracle quantifying
//! the hierarchical abstraction's correlation error. The solver here
//! simulates the hierarchical abstraction itself.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use whart_model::{MeasurePlan, PathEvaluation, PathProblem, Result, Solver};
use whart_obs::Metrics;
use whart_trace::Trace;

/// Seed-mixing constant (the golden-ratio increment used throughout the
/// workspace's parallel seeding).
const SEED_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// A statistical [`Solver`] over compiled path problems.
///
/// Deterministic for a fixed `(seed, intervals)` configuration — repeated
/// solves of the same problem return identical estimates, so results are
/// cacheable by the batch engine like any other backend's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonteCarloSolver {
    seed: u64,
    intervals: u64,
}

impl MonteCarloSolver {
    /// Creates a solver running `intervals` replications (clamped to at
    /// least one) per path problem from `seed`.
    pub fn new(seed: u64, intervals: u64) -> MonteCarloSolver {
        MonteCarloSolver {
            seed,
            intervals: intervals.max(1),
        }
    }

    /// The base seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Replications per path problem.
    pub fn intervals(&self) -> u64 {
        self.intervals
    }

    /// Simulates one replication: returns `(delivery_cycle, attempts)`,
    /// with `delivery_cycle = None` when the message was discarded.
    fn replicate(problem: &PathProblem, rng: &mut StdRng) -> (Option<usize>, u64) {
        let n = problem.hop_count();
        let f_up = problem.superframe().uplink_slots() as usize;
        let total = f_up * problem.interval().cycles() as usize;
        let cycle_slots = u64::from(problem.superframe().cycle_slots());
        let ttl = problem.ttl();

        let mut by_slot: Vec<Option<usize>> = vec![None; f_up];
        for (hop, h) in problem.hops().iter().enumerate() {
            by_slot[h.frame_slot()] = Some(hop);
        }

        let mut position = 0usize;
        let mut attempts = 0u64;
        for step in 1..=total {
            let frame_slot = (step - 1) % f_up;
            let cycle = (step - 1) / f_up;
            if by_slot[frame_slot] == Some(position) {
                attempts += 1;
                let abs_slot = cycle as u64 * cycle_slots + frame_slot as u64;
                let ps = problem.hops()[position].dynamics().up_probability(abs_slot);
                if rng.gen::<f64>() < ps {
                    position += 1;
                    if position == n {
                        return (Some(cycle), attempts);
                    }
                }
            }
            if step as u32 >= ttl {
                break;
            }
        }
        (None, attempts)
    }

    /// The seed used for `problem` when solved in a batch at `index`
    /// (mixed so per-path streams are independent).
    fn path_seed(&self, index: u64) -> u64 {
        self.seed
            .wrapping_add(SEED_MIX.wrapping_mul(index.wrapping_add(1)))
    }

    fn solve_path_seeded(
        &self,
        problem: &PathProblem,
        seed: u64,
        _plan: MeasurePlan,
        obs: &Metrics,
    ) -> PathEvaluation {
        let span = obs.timer("solver.sim.solve_ns");
        let cycles = problem.interval().cycles() as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut deliveries = vec![0u64; cycles];
        let mut discards = 0u64;
        let mut attempts = 0u64;
        for _ in 0..self.intervals {
            let (delivered, tx) = MonteCarloSolver::replicate(problem, &mut rng);
            attempts += tx;
            match delivered {
                Some(cycle) => deliveries[cycle] += 1,
                None => discards += 1,
            }
        }
        let reps = self.intervals as f64;
        let cycle_probabilities = deliveries.iter().map(|&d| d as f64 / reps).collect();
        let evaluation = problem.evaluation_from_measures(
            cycle_probabilities,
            discards as f64 / reps,
            attempts as f64 / reps,
        );
        span.stop();
        // One Bernoulli draw per attempted transmission.
        obs.counter("solver.sim.draws").add(attempts);
        obs.counter("solver.sim.replications").add(self.intervals);
        evaluation
    }

    /// The traced counterpart of [`MonteCarloSolver::solve_path_seeded`]:
    /// the identical single sequential RNG stream (replication `k`
    /// consumes the draws replication `k-1` left off at — reseeding per
    /// replication would change the estimates), plus a `path_solve` span
    /// carrying the replication seed and the aggregate draw statistics,
    /// and one `hop` provenance instant per hop.
    fn solve_path_traced_seeded(
        &self,
        problem: &PathProblem,
        seed: u64,
        plan: MeasurePlan,
        obs: &Metrics,
        trace: &Trace,
    ) -> PathEvaluation {
        let mut span = trace.span("path_solve", "solver.sim");
        let evaluation = self.solve_path_seeded(problem, seed, plan, obs);
        whart_model::ir::trace_hops(problem, "solver.sim", trace);
        span.arg("seed", seed);
        span.arg("replications", self.intervals);
        span.arg(
            "draws",
            (evaluation.expected_transmissions() * self.intervals as f64).round() as u64,
        );
        span.arg("reachability", evaluation.reachability());
        span.arg("discard_probability", evaluation.discard_probability());
        evaluation
    }
}

impl Solver for MonteCarloSolver {
    fn name(&self) -> &'static str {
        "sim"
    }

    /// Statistical estimates of the path measures. Total — never fails.
    /// Trajectory requests are ignored (the estimator keeps no per-slot
    /// record); the returned evaluation carries scalars only.
    fn solve_path_observed(
        &self,
        problem: &PathProblem,
        plan: MeasurePlan,
        obs: &Metrics,
    ) -> Result<PathEvaluation> {
        Ok(self.solve_path_seeded(problem, self.path_seed(0), plan, obs))
    }

    /// The traced statistical solve; the RNG stream and therefore the
    /// estimates are bit-identical to [`Solver::solve_path_observed`];
    /// the seeded worker behind both entry points is shared.
    fn solve_path_traced(
        &self,
        problem: &PathProblem,
        plan: MeasurePlan,
        obs: &Metrics,
        trace: &Trace,
    ) -> Result<PathEvaluation> {
        if !trace.is_enabled() {
            return self.solve_path_observed(problem, plan, obs);
        }
        Ok(self.solve_path_traced_seeded(problem, self.path_seed(0), plan, obs, trace))
    }

    fn solve_network_observed(
        &self,
        problem: &whart_model::NetworkProblem,
        plan: MeasurePlan,
        obs: &Metrics,
    ) -> Result<whart_model::NetworkEvaluation> {
        use std::sync::Arc;
        let reports = problem
            .paths()
            .iter()
            .zip(problem.path_problems())
            .enumerate()
            .map(|(i, (path, p))| whart_model::PathReport {
                path: path.clone(),
                evaluation: Arc::new(self.solve_path_seeded(
                    p,
                    self.path_seed(i as u64),
                    plan,
                    obs,
                )),
            })
            .collect();
        Ok(whart_model::NetworkEvaluation::from_reports(reports))
    }

    /// The traced network solve. Must mirror the per-path-index seeding
    /// of [`Solver::solve_network_observed`] — the trait default routes
    /// through `solve_path_traced`, which always uses `path_seed(0)`
    /// and would break traced/untraced bit-parity for network problems.
    fn solve_network_traced(
        &self,
        problem: &whart_model::NetworkProblem,
        plan: MeasurePlan,
        obs: &Metrics,
        trace: &Trace,
    ) -> Result<whart_model::NetworkEvaluation> {
        if !trace.is_enabled() {
            return self.solve_network_observed(problem, plan, obs);
        }
        use std::sync::Arc;
        let reports = problem
            .paths()
            .iter()
            .zip(problem.path_problems())
            .enumerate()
            .map(|(i, (path, p))| whart_model::PathReport {
                path: path.clone(),
                evaluation: Arc::new(self.solve_path_traced_seeded(
                    p,
                    self.path_seed(i as u64),
                    plan,
                    obs,
                    trace,
                )),
            })
            .collect();
        Ok(whart_model::NetworkEvaluation::from_reports(reports))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whart_model::sweeps::section_v_model;
    use whart_model::{FastSolver, MeasurePlan};
    use whart_net::ReportingInterval;

    #[test]
    fn estimates_converge_to_the_analytical_values() {
        let problem = section_v_model(0.75, ReportingInterval::REGULAR)
            .unwrap()
            .compile();
        let exact = FastSolver
            .solve_path(&problem, MeasurePlan::SCALAR)
            .unwrap();
        let mc = MonteCarloSolver::new(7, 200_000)
            .solve_path(&problem, MeasurePlan::SCALAR)
            .unwrap();
        for i in 0..4 {
            assert!(
                (mc.cycle_probabilities().get(i) - exact.cycle_probabilities().get(i)).abs() < 5e-3,
                "cycle {i}: {} vs {}",
                mc.cycle_probabilities().get(i),
                exact.cycle_probabilities().get(i)
            );
        }
        assert!((mc.reachability() - exact.reachability()).abs() < 3e-3);
        assert!((mc.expected_transmissions() - exact.expected_transmissions()).abs() < 2e-2);
    }

    #[test]
    fn solves_are_deterministic_per_seed() {
        let problem = section_v_model(0.83, ReportingInterval::REGULAR)
            .unwrap()
            .compile();
        let solver = MonteCarloSolver::new(42, 10_000);
        let a = solver.solve_path(&problem, MeasurePlan::SCALAR).unwrap();
        let b = solver.solve_path(&problem, MeasurePlan::SCALAR).unwrap();
        assert_eq!(a, b);
        let other = MonteCarloSolver::new(43, 10_000)
            .solve_path(&problem, MeasurePlan::SCALAR)
            .unwrap();
        assert_ne!(a.cycle_probabilities(), other.cycle_probabilities());
    }

    #[test]
    fn trajectory_requests_stay_scalar() {
        let problem = section_v_model(0.83, ReportingInterval::REGULAR)
            .unwrap()
            .compile();
        let mc = MonteCarloSolver::new(1, 1_000)
            .solve_path(&problem, MeasurePlan::WITH_TRAJECTORY)
            .unwrap();
        assert!(!mc.has_trajectory());
    }

    #[test]
    fn replication_count_is_clamped_positive() {
        assert_eq!(MonteCarloSolver::new(1, 0).intervals(), 1);
    }

    #[test]
    fn network_solves_are_bit_identical_with_tracing_enabled() {
        use whart_channel::LinkModel;
        use whart_model::NetworkModel;
        use whart_net::typical::TypicalNetwork;
        use whart_obs::Metrics;
        use whart_trace::Trace;

        let net = TypicalNetwork::new(LinkModel::from_availability(0.83, 0.9).unwrap());
        let problem =
            NetworkModel::from_typical(&net, net.schedule_eta_a(), ReportingInterval::REGULAR)
                .unwrap()
                .compile()
                .unwrap();
        let solver = MonteCarloSolver::new(7, 5_000);
        let plain = solver
            .solve_network_observed(&problem, MeasurePlan::SCALAR, &Metrics::disabled())
            .unwrap();
        let trace = Trace::new();
        let traced = solver
            .solve_network_traced(&problem, MeasurePlan::SCALAR, &Metrics::disabled(), &trace)
            .unwrap();
        assert_eq!(plain.reports().len(), traced.reports().len());
        for (a, b) in plain.reports().iter().zip(traced.reports()) {
            assert_eq!(a.evaluation, b.evaluation, "{}", a.path);
        }
        // The journal records one solve span per path, each with the
        // per-index seed the untraced network solve uses.
        let log = trace.drain();
        let seeds: std::collections::HashSet<u64> = log
            .named("path_solve")
            .map(|e| e.arg("seed").and_then(|a| a.as_u64()).unwrap())
            .collect();
        assert_eq!(
            seeds.len(),
            problem.paths().len(),
            "per-path seeds distinct"
        );
    }
}
