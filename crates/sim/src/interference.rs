//! Time-varying interference (Wi-Fi coexistence).
//!
//! WirelessHART blacklists channels that "are highly utilized by other
//! networks and suffer constant interferences" (Section II). This module
//! models the cause: an interferer (e.g. an IEEE 802.11 cell) raising the
//! bit error rate of a set of overlapping channels during a window of
//! slots. Combined with channel hopping, transmissions only suffer when
//! the hop lands on an interfered channel during the burst — and
//! blacklisting the affected channels removes the loss entirely.

use crate::samplers::LinkSampler;
use rand::Rng;
use whart_channel::{BinarySymmetricChannel, ChannelConditions, ChannelId, HopSequence};

/// One interference burst: the given channels suffer `ber` during
/// `[start_slot, end_slot)`.
#[derive(Debug, Clone, PartialEq)]
pub struct InterferenceWindow {
    /// The 802.15.4 channels the interferer overlaps.
    pub channels: Vec<ChannelId>,
    /// First affected absolute slot.
    pub start_slot: u64,
    /// First slot after the burst.
    pub end_slot: u64,
    /// Bit error rate on the affected channels during the burst.
    pub ber: f64,
}

impl InterferenceWindow {
    /// A Wi-Fi-like interferer: one IEEE 802.11 channel overlaps four
    /// 802.15.4 channels. `wifi_channel` 1, 6 and 11 map onto 802.15.4
    /// channels 11-14, 16-19 and 21-24 respectively.
    ///
    /// # Panics
    ///
    /// Panics for Wi-Fi channels other than 1, 6 or 11 or an empty window.
    pub fn wifi(wifi_channel: u8, start_slot: u64, end_slot: u64, ber: f64) -> Self {
        let first = match wifi_channel {
            1 => 11,
            6 => 16,
            11 => 21,
            other => panic!("unsupported Wi-Fi channel {other} (use 1, 6 or 11)"),
        };
        assert!(
            end_slot > start_slot,
            "interference window must be non-empty"
        );
        InterferenceWindow {
            channels: (first..first + 4)
                .map(|c| ChannelId::new(c).expect("802.11 overlap stays in band"))
                .collect(),
            start_slot,
            end_slot,
            ber,
        }
    }

    /// Whether the window affects a channel at a slot.
    pub fn affects(&self, channel: ChannelId, slot: u64) -> bool {
        (self.start_slot..self.end_slot).contains(&slot) && self.channels.contains(&channel)
    }
}

/// A hopping link sampler under time-varying interference.
#[derive(Debug, Clone)]
pub struct InterferedHoppingSampler {
    sequence: HopSequence,
    base: ChannelConditions,
    windows: Vec<InterferenceWindow>,
    message_bits: u32,
    current_ber: f64,
}

impl InterferedHoppingSampler {
    /// Creates a sampler for one link.
    pub fn new(
        sequence: HopSequence,
        base: ChannelConditions,
        windows: Vec<InterferenceWindow>,
        message_bits: u32,
    ) -> Self {
        let current_ber = base.ber(sequence.channel_at(0));
        InterferedHoppingSampler {
            sequence,
            base,
            windows,
            message_bits,
            current_ber,
        }
    }

    /// The effective BER in the current slot.
    pub fn current_ber(&self) -> f64 {
        self.current_ber
    }
}

impl LinkSampler for InterferedHoppingSampler {
    fn step<R: Rng + ?Sized>(&mut self, _rng: &mut R, absolute_slot: u64) {
        let channel = self.sequence.channel_at(absolute_slot);
        let interfered = self
            .windows
            .iter()
            .filter(|w| w.affects(channel, absolute_slot))
            .map(|w| w.ber)
            .fold(f64::NAN, f64::max);
        self.current_ber = if interfered.is_nan() {
            self.base.ber(channel)
        } else {
            interfered
        };
    }

    fn transmit<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        BinarySymmetricChannel::new(self.current_ber)
            .expect("BERs are probabilities")
            .sample_message_success(rng, self.message_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use whart_channel::Blacklist;

    #[test]
    fn wifi_overlap_mapping() {
        let w = InterferenceWindow::wifi(1, 0, 100, 0.5);
        let numbers: Vec<u8> = w.channels.iter().map(|c| c.number()).collect();
        assert_eq!(numbers, vec![11, 12, 13, 14]);
        let w = InterferenceWindow::wifi(11, 0, 100, 0.5);
        let numbers: Vec<u8> = w.channels.iter().map(|c| c.number()).collect();
        assert_eq!(numbers, vec![21, 22, 23, 24]);
    }

    #[test]
    #[should_panic(expected = "unsupported Wi-Fi channel")]
    fn odd_wifi_channel_rejected() {
        let _ = InterferenceWindow::wifi(3, 0, 1, 0.5);
    }

    #[test]
    fn affects_is_bounded_in_time_and_frequency() {
        let w = InterferenceWindow::wifi(6, 10, 20, 0.5);
        let hit = ChannelId::new(17).unwrap();
        let miss = ChannelId::new(11).unwrap();
        assert!(w.affects(hit, 10));
        assert!(w.affects(hit, 19));
        assert!(!w.affects(hit, 20));
        assert!(!w.affects(hit, 9));
        assert!(!w.affects(miss, 15));
    }

    #[test]
    fn sampler_fails_only_on_interfered_hops() {
        let burst = InterferenceWindow::wifi(6, 0, 1_000, 0.5);
        let sequence = HopSequence::new(&Blacklist::new(), 0).unwrap();
        let mut sampler = InterferedHoppingSampler::new(
            sequence.clone(),
            ChannelConditions::uniform(0.0).unwrap(),
            vec![burst.clone()],
            1016,
        );
        let mut rng = StdRng::seed_from_u64(5);
        for t in 0..64 {
            sampler.step(&mut rng, t);
            let on_interfered = burst.affects(sequence.channel_at(t), t);
            assert_eq!(sampler.transmit(&mut rng), !on_interfered, "slot {t}");
        }
        // After the burst everything works again.
        for t in 1_000..1_016 {
            sampler.step(&mut rng, t);
            assert!(sampler.transmit(&mut rng));
        }
    }

    #[test]
    fn blacklisting_the_interfered_channels_restores_delivery() {
        let burst = InterferenceWindow::wifi(6, 0, u64::MAX, 0.5);
        let mut blacklist = Blacklist::new();
        for c in &burst.channels {
            blacklist.ban(*c).unwrap();
        }
        let sequence = HopSequence::new(&blacklist, 0).unwrap();
        let mut sampler = InterferedHoppingSampler::new(
            sequence,
            ChannelConditions::uniform(0.0).unwrap(),
            vec![burst],
            1016,
        );
        let mut rng = StdRng::seed_from_u64(6);
        for t in 0..128 {
            sampler.step(&mut rng, t);
            assert!(sampler.transmit(&mut rng), "slot {t}");
        }
    }

    #[test]
    fn overlapping_windows_take_the_worst_ber() {
        let ch = ChannelId::new(11).unwrap();
        let mild = InterferenceWindow {
            channels: vec![ch],
            start_slot: 0,
            end_slot: 10,
            ber: 1e-4,
        };
        let harsh = InterferenceWindow {
            channels: vec![ch],
            start_slot: 5,
            end_slot: 10,
            ber: 0.3,
        };
        let sequence = HopSequence::new(&Blacklist::new(), 0).unwrap();
        let mut sampler = InterferedHoppingSampler::new(
            sequence,
            ChannelConditions::uniform(0.0).unwrap(),
            vec![mild, harsh],
            1016,
        );
        let mut rng = StdRng::seed_from_u64(7);
        sampler.step(&mut rng, 0); // channel 11, only mild
        assert!((sampler.current_ber() - 1e-4).abs() < 1e-12);
        // Slot 16 is channel 11 again (period 16) but outside both windows.
        sampler.step(&mut rng, 16);
        assert_eq!(sampler.current_ber(), 0.0);
    }
}
