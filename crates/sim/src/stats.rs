//! Simulation statistics: per-path tallies and confidence intervals.

/// Tallies for one path across simulated reporting intervals.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PathStats {
    /// `delivered_by_cycle[i]`: messages that reached the destination in
    /// cycle `i + 1` of their interval.
    pub delivered_by_cycle: Vec<u64>,
    /// Messages discarded (TTL expiry at interval end).
    pub lost: u64,
    /// Slots in which this path's message was actually transmitted
    /// (successful or not) — the utilization numerator.
    pub slots_used: u64,
    /// Sum of delivery delays in milliseconds (delivered messages only).
    pub delay_total_ms: u64,
}

impl PathStats {
    /// Creates empty tallies for an `Is`-cycle interval.
    pub fn new(cycles: usize) -> Self {
        PathStats {
            delivered_by_cycle: vec![0; cycles],
            ..PathStats::default()
        }
    }

    /// Total messages generated (delivered + lost).
    pub fn messages(&self) -> u64 {
        self.delivered_by_cycle.iter().sum::<u64>() + self.lost
    }

    /// Empirical reachability.
    pub fn reachability(&self) -> f64 {
        let total = self.messages();
        if total == 0 {
            return 0.0;
        }
        (total - self.lost) as f64 / total as f64
    }

    /// Empirical cycle probability function (fractions of all messages).
    pub fn cycle_fractions(&self) -> Vec<f64> {
        let total = self.messages().max(1) as f64;
        self.delivered_by_cycle
            .iter()
            .map(|&c| c as f64 / total)
            .collect()
    }

    /// Mean delivery delay in milliseconds, `None` if nothing arrived.
    pub fn mean_delay_ms(&self) -> Option<f64> {
        let delivered = self.messages() - self.lost;
        (delivered > 0).then(|| self.delay_total_ms as f64 / delivered as f64)
    }

    /// Merges another tally into this one.
    ///
    /// # Panics
    ///
    /// Panics if the cycle counts differ.
    pub fn merge(&mut self, other: &PathStats) {
        assert_eq!(
            self.delivered_by_cycle.len(),
            other.delivered_by_cycle.len(),
            "cannot merge stats with different interval lengths"
        );
        for (a, b) in self
            .delivered_by_cycle
            .iter_mut()
            .zip(&other.delivered_by_cycle)
        {
            *a += b;
        }
        self.lost += other.lost;
        self.slots_used += other.slots_used;
        self.delay_total_ms += other.delay_total_ms;
    }
}

/// The outcome of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Per-path tallies, in path order.
    pub paths: Vec<PathStats>,
    /// Number of reporting intervals simulated.
    pub intervals: u64,
    /// Uplink slots available per interval (`Is * F_up`), the utilization
    /// denominator.
    pub uplink_slots_per_interval: u64,
}

impl SimReport {
    /// Empirical utilization of one path: transmissions per available slot.
    ///
    /// # Panics
    ///
    /// Panics if `path` is out of range.
    pub fn path_utilization(&self, path: usize) -> f64 {
        self.paths[path].slots_used as f64
            / (self.intervals * self.uplink_slots_per_interval) as f64
    }

    /// Empirical network utilization: the sum over paths (Eq. 11).
    pub fn network_utilization(&self) -> f64 {
        (0..self.paths.len())
            .map(|p| self.path_utilization(p))
            .sum()
    }

    /// Mean of the per-path mean delays (the estimator of `E[Gamma]`).
    pub fn mean_delay_ms(&self) -> Option<f64> {
        let mut total = 0.0;
        for p in &self.paths {
            total += p.mean_delay_ms()?;
        }
        Some(total / self.paths.len() as f64)
    }

    /// Merges another report (same configuration) into this one.
    ///
    /// # Panics
    ///
    /// Panics if the reports have different shapes.
    pub fn merge(&mut self, other: &SimReport) {
        assert_eq!(
            self.paths.len(),
            other.paths.len(),
            "mismatched path counts"
        );
        assert_eq!(
            self.uplink_slots_per_interval,
            other.uplink_slots_per_interval
        );
        for (a, b) in self.paths.iter_mut().zip(&other.paths) {
            a.merge(b);
        }
        self.intervals += other.intervals;
    }
}

/// The Wilson score interval for a binomial proportion: returns
/// `(low, high)` bounds for the success probability at critical value `z`
/// (1.96 for 95%).
///
/// Returns `(0, 1)` for zero trials.
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * ((p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt());
    ((center - half).max(0.0), (center + half).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats() -> PathStats {
        PathStats {
            delivered_by_cycle: vec![70, 20, 5],
            lost: 5,
            slots_used: 260,
            delay_total_ms: 9500,
        }
    }

    #[test]
    fn reachability_and_fractions() {
        let s = sample_stats();
        assert_eq!(s.messages(), 100);
        assert!((s.reachability() - 0.95).abs() < 1e-12);
        let f = s.cycle_fractions();
        assert!((f[0] - 0.70).abs() < 1e-12);
        assert!((f.iter().sum::<f64>() - 0.95).abs() < 1e-12);
        assert!((s.mean_delay_ms().unwrap() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = PathStats::new(4);
        assert_eq!(s.messages(), 0);
        assert_eq!(s.reachability(), 0.0);
        assert_eq!(s.mean_delay_ms(), None);
        assert_eq!(s.cycle_fractions(), vec![0.0; 4]);
    }

    #[test]
    fn merge_adds_tallies() {
        let mut a = sample_stats();
        a.merge(&sample_stats());
        assert_eq!(a.messages(), 200);
        assert_eq!(a.slots_used, 520);
        assert!((a.reachability() - 0.95).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different interval lengths")]
    fn merge_rejects_mismatched_shapes() {
        let mut a = PathStats::new(4);
        a.merge(&PathStats::new(2));
    }

    #[test]
    fn report_utilization() {
        let report = SimReport {
            paths: vec![sample_stats(), sample_stats()],
            intervals: 100,
            uplink_slots_per_interval: 28,
        };
        assert!((report.path_utilization(0) - 260.0 / 2800.0).abs() < 1e-12);
        assert!((report.network_utilization() - 520.0 / 2800.0).abs() < 1e-12);
        assert!((report.mean_delay_ms().unwrap() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn report_merge() {
        let mut a = SimReport {
            paths: vec![sample_stats()],
            intervals: 100,
            uplink_slots_per_interval: 28,
        };
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.intervals, 200);
        assert_eq!(a.paths[0].messages(), 200);
    }

    #[test]
    fn wilson_interval_behaves() {
        let (lo, hi) = wilson_interval(0, 0, 1.96);
        assert_eq!((lo, hi), (0.0, 1.0));
        let (lo, hi) = wilson_interval(95, 100, 1.96);
        assert!(lo < 0.95 && 0.95 < hi);
        assert!(lo > 0.87 && hi < 0.99);
        // Wider with fewer samples.
        let (lo2, hi2) = wilson_interval(19, 20, 1.96);
        assert!(hi2 - lo2 > hi - lo);
        // Degenerate extremes stay in [0, 1].
        let (lo3, hi3) = wilson_interval(20, 20, 1.96);
        assert!(lo3 > 0.8 && hi3 <= 1.0);
    }
}
