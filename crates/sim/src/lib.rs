//! Slot-level Monte-Carlo simulator of WirelessHART networks.
//!
//! The paper validates its DTMC against field measurements; this crate
//! plays that role from first principles. [`Simulator`] executes the TDMA
//! MAC slot by slot: per-link channel processes advance every 10 ms slot,
//! scheduled transmissions fire in their uplink slots, messages hop towards
//! the gateway and are discarded on TTL expiry. Two PHY fidelities are
//! available ([`PhyMode`]): the paper's two-state Gilbert chains, or full
//! 16-channel pseudo-random hopping with per-channel bit error rates.
//!
//! Unlike the analytical per-path decomposition, the simulator shares one
//! channel process among all paths crossing a physical link, so comparing
//! the two also quantifies the correlation the model ignores.
//!
//! # Example
//!
//! ```
//! use whart_channel::LinkModel;
//! use whart_net::typical::TypicalNetwork;
//! use whart_net::ReportingInterval;
//! use whart_sim::{PhyMode, Simulator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = TypicalNetwork::new(LinkModel::from_availability(0.83, 0.9)?);
//! let sim = Simulator::from_typical(
//!     &net,
//!     net.schedule_eta_a(),
//!     ReportingInterval::REGULAR,
//!     PhyMode::Gilbert,
//! )?;
//! let report = sim.run(42, 2_000);
//! assert!(report.paths[0].reachability() > 0.99); // 1-hop path
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod interference;
mod samplers;
mod solver;
mod stats;

pub use engine::{PhyMode, Simulator};
pub use interference::{InterferedHoppingSampler, InterferenceWindow};
pub use samplers::{GilbertSampler, HoppingSampler, LinkSampler};
pub use solver::MonteCarloSolver;
pub use stats::{wilson_interval, PathStats, SimReport};
