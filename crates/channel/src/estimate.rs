//! Pilot-packet link estimation (Section VI-E).
//!
//! Before a new node joins, the SNR of a candidate link "can be conveniently
//! measured by transmitting pilot packages via the link". The paper's
//! testbed measures real radios; here the measurement is simulated: pilot
//! packets are pushed through a [`BinarySymmetricChannel`] and the observed
//! failure fraction is inverted through Eqs. 2 and 1 back to a failure
//! probability, BER and Eb/N0 estimate. The substitution preserves the
//! relevant behaviour because the model only ever consumes the resulting
//! `p_fl` estimate.

use crate::bsc::BinarySymmetricChannel;
use crate::error::{ChannelError, Result};
use crate::link::LinkModel;
#[cfg(test)]
use crate::modulation::message_failure_probability;
use crate::modulation::Modulation;
use crate::snr::EbN0;
use rand::Rng;

/// Result of a pilot measurement campaign on one link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PilotReport {
    /// Number of pilot packets transmitted.
    pub pilots: u32,
    /// Number of packets received with at least one bit error.
    pub failures: u32,
    /// Estimated message failure probability `failures / pilots`.
    pub p_fl_estimate: f64,
    /// BER estimate obtained by inverting Eq. 2, if the failure fraction
    /// allows it (estimate is `None` when every pilot failed).
    pub ber_estimate: Option<f64>,
    /// Eb/N0 estimate obtained by inverting Eq. 1 on the BER estimate.
    pub snr_estimate: Option<EbN0>,
}

impl PilotReport {
    /// Builds a [`LinkModel`] from the estimated failure probability.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::InvalidProbability`] if the estimate cannot
    /// form a valid link model (e.g. `p_fl = p_rc = 0`).
    pub fn to_link_model(&self, p_rc: f64) -> Result<LinkModel> {
        LinkModel::new(self.p_fl_estimate, p_rc)
    }
}

/// A simulated pilot-measurement campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PilotEstimator {
    /// Pilot packet length in bits (defaults to the WirelessHART payload).
    pub packet_bits: u32,
    /// Number of pilots to transmit.
    pub pilots: u32,
    /// Modulation assumed when inverting BER back to SNR.
    pub modulation: Modulation,
}

impl Default for PilotEstimator {
    fn default() -> Self {
        PilotEstimator {
            packet_bits: crate::modulation::WIRELESSHART_MESSAGE_BITS,
            pilots: 1000,
            modulation: Modulation::Oqpsk,
        }
    }
}

impl PilotEstimator {
    /// Runs the campaign against a channel with the given true BER.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::NoPilots`] if `self.pilots == 0` and
    /// [`ChannelError::InvalidProbability`] for an invalid `true_ber`.
    pub fn measure<R: Rng + ?Sized>(&self, rng: &mut R, true_ber: f64) -> Result<PilotReport> {
        if self.pilots == 0 {
            return Err(ChannelError::NoPilots);
        }
        let channel = BinarySymmetricChannel::new(true_ber)?;
        let failures = (0..self.pilots)
            .filter(|_| !channel.sample_message_success(rng, self.packet_bits))
            .count() as u32;
        Ok(self.report(failures))
    }

    /// Builds the report for an observed failure count (useful when the
    /// counts come from a real deployment instead of the simulator).
    pub fn report(&self, failures: u32) -> PilotReport {
        let failures = failures.min(self.pilots);
        let p_fl = f64::from(failures) / f64::from(self.pilots);
        // Invert Eq. 2: ber = 1 - (1 - p_fl)^(1/bits).
        let ber_estimate =
            (p_fl < 1.0).then(|| -f64::exp_m1(f64::ln_1p(-p_fl) / f64::from(self.packet_bits)));
        let snr_estimate = ber_estimate.and_then(|ber| self.modulation.required_snr(ber));
        PilotReport {
            pilots: self.pilots,
            failures,
            p_fl_estimate: p_fl,
            ber_estimate,
            snr_estimate,
        }
    }
}

/// Inverts Eq. 2 exactly: the BER that yields the given message failure
/// probability at the given length.
///
/// # Panics
///
/// Panics if `p_fl` is not a probability below one.
pub fn ber_from_failure_probability(p_fl: f64, bits: u32) -> f64 {
    assert!(
        (0.0..1.0).contains(&p_fl),
        "p_fl must be in [0, 1), got {p_fl}"
    );
    -f64::exp_m1(f64::ln_1p(-p_fl) / f64::from(bits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ber_inversion_round_trips() {
        for &ber in &[1e-5, 1e-4, 3e-4, 5e-4] {
            let p_fl = message_failure_probability(ber, 1016);
            let back = ber_from_failure_probability(p_fl, 1016);
            assert!(((back - ber) / ber).abs() < 1e-10, "{back} vs {ber}");
        }
    }

    #[test]
    fn measurement_recovers_true_ber_within_noise() {
        let estimator = PilotEstimator {
            pilots: 50_000,
            ..PilotEstimator::default()
        };
        let mut rng = StdRng::seed_from_u64(99);
        let true_ber = 1e-4; // p_fl ~ 0.0966
        let report = estimator.measure(&mut rng, true_ber).unwrap();
        assert!(
            (report.p_fl_estimate - 0.0966).abs() < 0.005,
            "{}",
            report.p_fl_estimate
        );
        let ber = report.ber_estimate.unwrap();
        assert!(((ber - true_ber) / true_ber).abs() < 0.06, "{ber}");
        let snr = report.snr_estimate.unwrap();
        // True Eb/N0 for BER 1e-4 under OQPSK is ~6.92 linear.
        assert!((snr.linear() - 6.92).abs() < 0.3, "{}", snr.linear());
    }

    #[test]
    fn report_handles_all_failures() {
        let estimator = PilotEstimator {
            pilots: 10,
            ..PilotEstimator::default()
        };
        let report = estimator.report(10);
        assert_eq!(report.p_fl_estimate, 1.0);
        assert!(report.ber_estimate.is_none());
        assert!(report.snr_estimate.is_none());
        // p_fl = 1 with p_rc > 0 is still a valid (always-failing) link.
        assert!(report.to_link_model(0.9).is_ok());
    }

    #[test]
    fn report_handles_no_failures() {
        let estimator = PilotEstimator {
            pilots: 10,
            ..PilotEstimator::default()
        };
        let report = estimator.report(0);
        assert_eq!(report.p_fl_estimate, 0.0);
        assert_eq!(report.ber_estimate, Some(0.0));
        assert!(report.snr_estimate.is_none()); // zero BER needs infinite SNR
    }

    #[test]
    fn failure_count_is_clamped() {
        let estimator = PilotEstimator {
            pilots: 10,
            ..PilotEstimator::default()
        };
        let report = estimator.report(25);
        assert_eq!(report.failures, 10);
    }

    #[test]
    fn zero_pilots_is_an_error() {
        let estimator = PilotEstimator {
            pilots: 0,
            ..PilotEstimator::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            estimator.measure(&mut rng, 1e-4).unwrap_err(),
            ChannelError::NoPilots
        );
    }

    #[test]
    fn table_iv_snr_points_estimate_back() {
        // The paper's Table IV scenario: measure a channel whose true SNR is
        // Eb/N0 = 7, then check the estimated link model's p_fl ~ 0.089.
        let estimator = PilotEstimator {
            pilots: 100_000,
            ..PilotEstimator::default()
        };
        let mut rng = StdRng::seed_from_u64(2024);
        let true_ber = Modulation::Oqpsk.ber(EbN0::from_linear(7.0));
        let report = estimator.measure(&mut rng, true_ber).unwrap();
        let link = report.to_link_model(0.9).unwrap();
        assert!((link.p_fl() - 0.089).abs() < 0.005, "{}", link.p_fl());
    }
}
