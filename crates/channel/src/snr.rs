//! Signal-to-noise ratio newtypes.
//!
//! The paper parameterizes links by the normalized per-bit SNR `Eb/N0`
//! (Eq. 1). Two representations appear in practice — linear ratio and
//! decibels — and mixing them up is a classic source of silent errors, so
//! both get a newtype with explicit conversions.

use std::fmt;

/// Per-bit signal-to-noise ratio `Eb/N0` as a **linear** ratio.
///
/// The paper's Table IV example measures `Eb/N0 = 7` (linear) on one
/// channel and `6` on another.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct EbN0(f64);

impl EbN0 {
    /// Wraps a linear ratio.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is negative or not finite.
    pub fn from_linear(ratio: f64) -> Self {
        assert!(
            ratio.is_finite() && ratio >= 0.0,
            "Eb/N0 must be a finite non-negative ratio"
        );
        EbN0(ratio)
    }

    /// Converts from decibels: `ratio = 10^(db / 10)`.
    ///
    /// # Panics
    ///
    /// Panics if `db` is not finite.
    pub fn from_db(db: SnrDb) -> Self {
        EbN0(10f64.powf(db.value() / 10.0))
    }

    /// The linear ratio.
    pub fn linear(self) -> f64 {
        self.0
    }

    /// The value in decibels. Zero linear ratio maps to `-inf` dB.
    pub fn to_db(self) -> SnrDb {
        SnrDb::new_unchecked(10.0 * self.0.log10())
    }
}

impl fmt::Display for EbN0 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (Eb/N0)", self.0)
    }
}

/// A signal-to-noise ratio in decibels.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct SnrDb(f64);

impl SnrDb {
    /// Wraps a dB value.
    ///
    /// # Panics
    ///
    /// Panics if `db` is NaN.
    pub fn new(db: f64) -> Self {
        assert!(!db.is_nan(), "SNR in dB must not be NaN");
        SnrDb(db)
    }

    pub(crate) fn new_unchecked(db: f64) -> Self {
        SnrDb(db)
    }

    /// The raw dB value.
    pub fn value(self) -> f64 {
        self.0
    }
}

impl fmt::Display for SnrDb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} dB", self.0)
    }
}

impl From<SnrDb> for EbN0 {
    fn from(db: SnrDb) -> Self {
        EbN0::from_db(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_round_trip() {
        let x = EbN0::from_linear(7.0);
        let db = x.to_db();
        assert!((db.value() - 8.450980400142568).abs() < 1e-12);
        let back = EbN0::from_db(db);
        assert!((back.linear() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn zero_db_is_unit_ratio() {
        assert!((EbN0::from_db(SnrDb::new(0.0)).linear() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn ten_db_is_ratio_ten() {
        assert!((EbN0::from_db(SnrDb::new(10.0)).linear() - 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn negative_linear_rejected() {
        let _ = EbN0::from_linear(-1.0);
    }

    #[test]
    fn displays_units() {
        assert_eq!(SnrDb::new(3.0).to_string(), "3 dB");
        assert!(EbN0::from_linear(7.0).to_string().contains("Eb/N0"));
    }

    #[test]
    fn from_impl_matches_from_db() {
        let db = SnrDb::new(5.0);
        let a: EbN0 = db.into();
        assert_eq!(a, EbN0::from_db(db));
    }
}
