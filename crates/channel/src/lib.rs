//! WirelessHART physical-layer substrate.
//!
//! Implements Section III of Remke & Wu (DSN 2013) and the radio facts the
//! rest of the model relies on:
//!
//! * [`math`] — `erf`/`erfc` and incomplete gamma functions, from scratch;
//! * [`Modulation`] — AWGN bit-error-rate curves (OQPSK is the
//!   WirelessHART PHY, Eq. 1) and the message failure probability (Eq. 2);
//! * [`BinarySymmetricChannel`] — the per-bit channel (Fig. 2), with actual
//!   payload transmission for the Monte-Carlo simulator;
//! * [`LinkModel`] — the two-state UP/DOWN link DTMC (Fig. 3) with
//!   steady-state (Eq. 4) and transient (Eq. 3) analysis;
//! * [`ChannelId`] / [`Blacklist`] / [`HopSequence`] — the 16-channel band,
//!   blacklisting and pseudo-random channel hopping;
//! * [`PilotEstimator`] — simulated pilot-packet SNR measurement
//!   (Section VI-E).
//!
//! # Example
//!
//! From a measured per-bit SNR to a link model:
//!
//! ```
//! use whart_channel::{EbN0, LinkModel, Modulation};
//!
//! # fn main() -> Result<(), whart_channel::ChannelError> {
//! let snr = EbN0::from_linear(7.0); // measured via pilot packets
//! let link = LinkModel::from_snr(
//!     Modulation::Oqpsk,
//!     snr,
//!     whart_channel::WIRELESSHART_MESSAGE_BITS,
//!     LinkModel::DEFAULT_RECOVERY,
//! )?;
//! assert!((link.p_fl() - 0.089).abs() < 5e-4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bsc;
mod error;
mod estimate;
mod hopping;
mod link;
mod modulation;
mod propagation;
mod snr;

pub mod math;

pub use bsc::{binary_entropy, BinarySymmetricChannel};
pub use error::{ChannelError, Result};
pub use estimate::{ber_from_failure_probability, PilotEstimator, PilotReport};
pub use hopping::{
    Blacklist, ChannelConditions, ChannelId, HopSequence, CHANNEL_COUNT, FIRST_CHANNEL,
};
pub use link::{LinkDistribution, LinkModel, LinkState};
pub use modulation::{message_failure_probability, Modulation, WIRELESSHART_MESSAGE_BITS};
pub use propagation::PropagationModel;
pub use snr::{EbN0, SnrDb};
