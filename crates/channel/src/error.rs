//! Error types for the channel substrate.

use std::fmt;

/// Errors produced while constructing channel-layer models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ChannelError {
    /// A probability parameter was outside `[0, 1]` or not finite.
    InvalidProbability {
        /// Name of the parameter, e.g. `"p_fl"`.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A channel index was outside the WirelessHART band.
    ChannelOutOfRange {
        /// The offending IEEE 802.15.4 channel number.
        channel: u8,
    },
    /// An operation needed at least one active (non-blacklisted) channel.
    NoActiveChannels,
    /// Estimation was asked for with zero pilot packets.
    NoPilots,
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelError::InvalidProbability { name, value } => {
                write!(f, "parameter {name} = {value} is not a probability")
            }
            ChannelError::ChannelOutOfRange { channel } => {
                write!(
                    f,
                    "channel {channel} outside the 802.15.4 2.4 GHz band (11..=26)"
                )
            }
            ChannelError::NoActiveChannels => write!(f, "all channels are blacklisted"),
            ChannelError::NoPilots => write!(f, "at least one pilot packet is required"),
        }
    }
}

impl std::error::Error for ChannelError {}

/// Convenient result alias for channel operations.
pub type Result<T> = std::result::Result<T, ChannelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ChannelError::InvalidProbability {
            name: "p_fl",
            value: 2.0,
        };
        assert!(e.to_string().contains("p_fl"));
        assert!(ChannelError::ChannelOutOfRange { channel: 5 }
            .to_string()
            .contains('5'));
        assert!(!ChannelError::NoActiveChannels.to_string().is_empty());
        assert!(!ChannelError::NoPilots.to_string().is_empty());
    }
}
