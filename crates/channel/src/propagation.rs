//! Radio propagation: from plant geometry to link quality.
//!
//! The paper takes each link's SNR as a measured input. To model whole
//! deployments from first principles (and to generate realistic synthetic
//! topologies), this module provides the standard log-distance path-loss
//! model for the 2.4 GHz ISM band:
//!
//! `PL(d) = PL(d0) + 10 n log10(d / d0) + margin`
//!
//! with the received `Eb/N0` derived from the SNR via the IEEE 802.15.4
//! processing gain (2 MHz channel bandwidth over 250 kb/s).

use crate::error::{ChannelError, Result};
use crate::link::LinkModel;
use crate::modulation::Modulation;
use crate::snr::{EbN0, SnrDb};

/// A log-distance path-loss radio environment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PropagationModel {
    /// Transmit power in dBm (WirelessHART radios: typically 10 dBm).
    pub tx_power_dbm: f64,
    /// Path loss at the 1 m reference distance, in dB (~40 dB at 2.4 GHz).
    pub reference_loss_db: f64,
    /// Path-loss exponent `n` (2 = free space; 2.5-4 in industrial halls).
    pub path_loss_exponent: f64,
    /// Receiver noise floor in dBm (thermal noise over 2 MHz plus noise
    /// figure; around -95 dBm for 802.15.4 receivers).
    pub noise_floor_dbm: f64,
    /// Static fade/shadowing margin in dB subtracted from the link budget
    /// (a deterministic stand-in for log-normal shadowing).
    pub fade_margin_db: f64,
    /// Processing gain: channel bandwidth over bit rate (2 MHz / 250 kb/s
    /// = 8 for 802.15.4), converting SNR to per-bit Eb/N0.
    pub processing_gain: f64,
}

impl PropagationModel {
    /// A typical industrial indoor environment: 10 dBm radios, exponent
    /// 2.8, 10 dB fade margin.
    pub fn industrial() -> Self {
        PropagationModel {
            tx_power_dbm: 10.0,
            reference_loss_db: 40.0,
            path_loss_exponent: 2.8,
            noise_floor_dbm: -95.0,
            fade_margin_db: 10.0,
            processing_gain: 8.0,
        }
    }

    /// Free-space propagation with no margin (line of sight outdoors).
    pub fn free_space() -> Self {
        PropagationModel {
            path_loss_exponent: 2.0,
            fade_margin_db: 0.0,
            ..PropagationModel::industrial()
        }
    }

    /// The path loss in dB at a distance (meters).
    ///
    /// # Panics
    ///
    /// Panics if `distance_m` is not positive.
    pub fn path_loss_db(&self, distance_m: f64) -> f64 {
        assert!(distance_m > 0.0, "distance must be positive");
        self.reference_loss_db
            + 10.0 * self.path_loss_exponent * (distance_m.max(1.0)).log10()
            + self.fade_margin_db
    }

    /// Received power in dBm at a distance.
    pub fn received_power_dbm(&self, distance_m: f64) -> f64 {
        self.tx_power_dbm - self.path_loss_db(distance_m)
    }

    /// The received SNR in dB at a distance.
    pub fn snr_db(&self, distance_m: f64) -> SnrDb {
        SnrDb::new(self.received_power_dbm(distance_m) - self.noise_floor_dbm)
    }

    /// The per-bit `Eb/N0` at a distance (SNR times the processing gain).
    pub fn eb_n0(&self, distance_m: f64) -> EbN0 {
        EbN0::from_linear(EbN0::from_db(self.snr_db(distance_m)).linear() * self.processing_gain)
    }

    /// The two-state link model of a link spanning `distance_m` meters
    /// (Eqs. 1-2 applied to the predicted Eb/N0).
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::InvalidProbability`] for an invalid `p_rc`.
    pub fn link_model(&self, distance_m: f64, bits: u32, p_rc: f64) -> Result<LinkModel> {
        LinkModel::from_snr(Modulation::Oqpsk, self.eb_n0(distance_m), bits, p_rc)
    }

    /// The longest distance at which the link's stationary availability
    /// still reaches `min_availability`, found by bisection. `None` if even
    /// one meter cannot achieve it.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::InvalidProbability`] for invalid thresholds.
    pub fn range_for_availability(
        &self,
        min_availability: f64,
        bits: u32,
        p_rc: f64,
    ) -> Result<Option<f64>> {
        if !(0.0..=1.0).contains(&min_availability) || !min_availability.is_finite() {
            return Err(ChannelError::InvalidProbability {
                name: "min_availability",
                value: min_availability,
            });
        }
        let available = |d: f64| -> Result<bool> {
            Ok(self.link_model(d, bits, p_rc)?.availability() >= min_availability)
        };
        if !available(1.0)? {
            return Ok(None);
        }
        let mut lo = 1.0f64;
        let mut hi = 2.0f64;
        while available(hi)? {
            hi *= 2.0;
            if hi > 1e5 {
                return Ok(Some(hi)); // effectively unlimited
            }
        }
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if available(mid)? {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(Some(lo))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_loss_grows_with_distance_and_exponent() {
        let m = PropagationModel::industrial();
        assert!(m.path_loss_db(10.0) > m.path_loss_db(2.0));
        let free = PropagationModel::free_space();
        // At 100 m the industrial environment loses much more.
        assert!(m.path_loss_db(100.0) > free.path_loss_db(100.0));
        // Free space: +6 dB per doubling (n = 2).
        let d6 = free.path_loss_db(20.0) - free.path_loss_db(10.0);
        assert!((d6 - 6.02).abs() < 0.01, "{d6}");
    }

    #[test]
    fn snr_and_ebn0_budget() {
        let m = PropagationModel::industrial();
        // At 1 m: 10 - (40 + 0 + 10) = -40 dBm received; SNR = 55 dB.
        assert!((m.received_power_dbm(1.0) + 40.0).abs() < 1e-9);
        assert!((m.snr_db(1.0).value() - 55.0).abs() < 1e-9);
        // Eb/N0 adds the 9 dB processing gain.
        let eb = m.eb_n0(1.0).to_db().value();
        assert!((eb - (55.0 + 9.03)).abs() < 0.01, "{eb}");
    }

    #[test]
    fn short_links_are_nearly_perfect_long_links_die() {
        let m = PropagationModel::industrial();
        let near = m.link_model(5.0, 1016, 0.9).unwrap();
        assert!(near.availability() > 0.999, "{}", near.availability());
        let far = m.link_model(300.0, 1016, 0.9).unwrap();
        assert!(far.availability() < 0.7, "{}", far.availability());
    }

    #[test]
    fn availability_is_monotone_in_distance() {
        let m = PropagationModel::industrial();
        let mut last = 1.0;
        for d in [1.0, 10.0, 30.0, 60.0, 100.0, 200.0] {
            let a = m.link_model(d, 1016, 0.9).unwrap().availability();
            assert!(a <= last + 1e-12, "at {d} m");
            last = a;
        }
    }

    #[test]
    fn range_bisection_brackets_the_threshold() {
        let m = PropagationModel::industrial();
        let range = m.range_for_availability(0.9, 1016, 0.9).unwrap().unwrap();
        let at_range = m.link_model(range, 1016, 0.9).unwrap().availability();
        let beyond = m
            .link_model(range * 1.05, 1016, 0.9)
            .unwrap()
            .availability();
        assert!(at_range >= 0.9 - 1e-6, "{at_range}");
        assert!(beyond < 0.9, "{beyond}");
        // A typical industrial WirelessHART hop is tens of meters.
        assert!((10.0..200.0).contains(&range), "{range}");
    }

    #[test]
    fn impossible_availability_yields_none() {
        let mut m = PropagationModel::industrial();
        m.tx_power_dbm = -80.0; // hopeless radio
        assert_eq!(m.range_for_availability(0.99, 1016, 0.9).unwrap(), None);
        assert!(m.range_for_availability(1.5, 1016, 0.9).is_err());
    }

    #[test]
    #[should_panic(expected = "distance must be positive")]
    fn zero_distance_rejected() {
        let _ = PropagationModel::industrial().path_loss_db(0.0);
    }
}
