//! Special functions needed by the physical-layer model.
//!
//! The Rust standard library has no error function, and this substrate stays
//! dependency-free, so `erf`/`erfc` are computed here via the regularized
//! incomplete gamma functions (`erf(x) = P(1/2, x^2)`), using the classic
//! series / continued-fraction pair with a Lanczos `ln_gamma`. Absolute and
//! relative accuracy is near machine precision over the range the model
//! uses (`|x| <= 10`), verified against high-precision reference values in
//! the tests.

/// Natural log of the gamma function (Lanczos approximation, g = 7, n = 9).
///
/// Accurate to ~1e-15 relative for `x > 0`.
///
/// # Panics
///
/// Panics in debug builds for `x <= 0` (outside the domain used here).
#[allow(clippy::excessive_precision)] // Lanczos coefficients quoted at full published precision
pub fn ln_gamma(x: f64) -> f64 {
    debug_assert!(x > 0.0, "ln_gamma domain");
    // Lanczos coefficients for g = 7.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    const G: f64 = 7.0;
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// # Panics
///
/// Panics in debug builds for `a <= 0` or `x < 0`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0 && x >= 0.0, "gamma_p domain");
    if x == 0.0 {
        0.0
    } else if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
///
/// # Panics
///
/// Panics in debug builds for `a <= 0` or `x < 0`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0 && x >= 0.0, "gamma_q domain");
    if x == 0.0 {
        1.0
    } else if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// `ln Gamma(a)`, using exact values for the arguments the error functions
/// hit (`a = 1/2`) so `erfc` keeps full relative accuracy in the tail.
fn ln_gamma_exactish(a: f64) -> f64 {
    if a == 0.5 {
        // ln Gamma(1/2) = ln sqrt(pi).
        0.5 * std::f64::consts::PI.ln()
    } else {
        ln_gamma(a)
    }
}

/// Series expansion of `P(a, x)`, effective for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-16;
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut term = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma_exactish(a)).exp()
}

/// Continued fraction for `Q(a, x)` (modified Lentz), effective for
/// `x >= a + 1`.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-16;
    const FPMIN: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma_exactish(a)).exp() * h
}

/// The error function `erf(x)`.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        0.0
    } else if x > 0.0 {
        gamma_p(0.5, x * x)
    } else {
        -gamma_p(0.5, x * x)
    }
}

/// The complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Computed directly from `Q(1/2, x^2)` for positive `x`, so it keeps full
/// relative accuracy deep into the tail (where `1 - erf(x)` would cancel).
pub fn erfc(x: f64) -> f64 {
    if x >= 0.0 {
        gamma_q(0.5, x * x)
    } else {
        1.0 + gamma_p(0.5, x * x)
    }
}

/// The Gaussian tail function `Q(x) = 0.5 * erfc(x / sqrt(2))`, the
/// probability that a standard normal exceeds `x`.
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

#[cfg(test)]
#[allow(clippy::excessive_precision)]
mod tests {
    use super::*;

    /// Reference values computed with mpmath at 50 digits.
    const ERF_TABLE: &[(f64, f64)] = &[
        (0.0, 0.0),
        (0.1, 0.1124629160182849),
        (0.5, 0.5204998778130465),
        (1.0, 0.8427007929497149),
        (1.5, 0.9661051464753107),
        (2.0, 0.9953222650189527),
        (3.0, 0.9999779095030014),
    ];

    const ERFC_TABLE: &[(f64, f64)] = &[
        (0.5, 0.4795001221869535),
        (1.0, 0.1572992070502851),
        (2.0, 0.004677734981047266),
        (2.449489742783178, 5.3200550513924966e-4), // sqrt(6), Table IV (paper: 2 * 2.66e-4)
        (2.6457513110645907, 1.8281063298183494e-4), // sqrt(7), Table IV (paper: 2 * 9.14e-5)
        (3.0, 2.209049699858544e-5),
        (4.0, 1.541725790028002e-8),
        (5.0, 1.5374597944280351e-12),
    ];

    #[test]
    fn erf_matches_reference() {
        for &(x, want) in ERF_TABLE {
            let got = erf(x);
            assert!((got - want).abs() <= 1e-14, "erf({x}) = {got}, want {want}");
        }
    }

    #[test]
    fn erfc_matches_reference_with_relative_accuracy() {
        for &(x, want) in ERFC_TABLE {
            let got = erfc(x);
            let rel = ((got - want) / want).abs();
            assert!(rel <= 1e-12, "erfc({x}) = {got}, want {want} (rel {rel})");
        }
    }

    #[test]
    fn erf_is_odd_and_erfc_complements() {
        for &x in &[0.1, 0.7, 1.3, 2.9] {
            assert!((erf(-x) + erf(x)).abs() < 1e-15);
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-14);
            assert!((erfc(-x) - (2.0 - erfc(x))).abs() < 1e-14);
        }
    }

    #[test]
    fn erf_is_monotone() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64 * 0.05).collect();
        for w in xs.windows(2) {
            assert!(erf(w[0]) < erf(w[1]));
            assert!(erfc(w[0]) > erfc(w[1]));
        }
    }

    #[test]
    fn paper_ber_operating_points() {
        // Section VI-E: BER3 = erfc(sqrt(7))/2 = 9.14e-5 and
        // BER4 = erfc(sqrt(6))/2 = 2.66e-4, as printed in the paper.
        assert!((0.5 * erfc(7.0_f64.sqrt()) - 9.14e-5).abs() < 5e-7);
        assert!((0.5 * erfc(6.0_f64.sqrt()) - 2.66e-4).abs() < 5e-7);
    }

    #[test]
    fn ln_gamma_known_values() {
        assert!((ln_gamma(1.0)).abs() < 1e-14); // Gamma(1) = 1
        assert!((ln_gamma(2.0)).abs() < 1e-14); // Gamma(2) = 1
        assert!((ln_gamma(5.0) - 24.0_f64.ln()).abs() < 1e-13); // Gamma(5) = 24
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-13);
    }

    #[test]
    fn gamma_p_q_sum_to_one() {
        for &a in &[0.5, 1.0, 2.5, 7.0] {
            for &x in &[0.1, 1.0, 3.0, 10.0] {
                assert!((gamma_p(a, x) + gamma_q(a, x) - 1.0).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn gamma_p_half_is_chi_square_cdf() {
        // P(1/2, x) is the chi-square(1) CDF at 2x; at x = 0.5 it equals
        // erf(sqrt(0.5)) = 0.6826894921370859 (the one-sigma probability).
        assert!((gamma_p(0.5, 0.5) - 0.6826894921370859).abs() < 1e-13);
    }

    #[test]
    fn q_function_tail_values() {
        assert!((q_function(0.0) - 0.5).abs() < 1e-15);
        // Q(1.96) ~ 0.025 (the 97.5th percentile of the normal).
        assert!((q_function(1.959963984540054) - 0.025).abs() < 1e-12);
    }
}
